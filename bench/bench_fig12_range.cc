// Reproduces Fig. 12: range query performance of the four MAMs as a
// function of the search radius r (2..64% of d+), on Signature, Words,
// Color and DNA. Also runs the Lemma 2 ("free inclusion") ablation called
// out in DESIGN.md: the SPB-tree's compdists with and without the
// guaranteed-within shortcut differ by the number of shortcut hits.
#include "bench/mam_zoo.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 12: range query performance vs r (%% of d+)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  const double fracs[] = {0.02, 0.04, 0.06, 0.08, 0.16, 0.32, 0.64};
  for (const char* name : {"signature", "words", "color", "dna"}) {
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset ds = MakeDatasetByName(name, n, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    const double d_plus = ds.metric->max_distance();
    std::printf("\n[%s, |O|=%zu]\n", name, ds.objects.size());
    PrintRule();
    std::printf("%-12s %5s | %12s %12s %10s\n", "MAM", "r%", "PA",
                "compdists", "time(ms)");
    PrintRule();
    for (const char* mam : kAllMams) {
      BuiltMam built = BuildMam(mam, ds, config.seed);
      for (double frac : fracs) {
        const AvgCost avg =
            RunRangeQueries(*built.index, queries, frac * d_plus);
        std::printf("%-12s %5.0f | %12.1f %12.1f %10.3f\n", mam, frac * 100,
                    avg.page_accesses, avg.distance_computations,
                    avg.seconds * 1000.0);
      }
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): SPB-tree has the lowest PA everywhere and "
      "the lowest-or-comparable compdists; costs grow with r for every MAM; "
      "M-tree is the most expensive in compdists.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/10000,
                                        /*default_queries=*/25));
  return 0;
}
