// Reproduces Table 4: SPB-tree kNN efficiency under different space-filling
// curves (Hilbert vs Z-order). Metrics: page accesses (PA), distance
// computations (compdists), CPU time; kNN with the paper's default k = 8.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Table 4: SPB-tree efficiency under different SFCs (k=8)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  PrintRule();
  std::printf("%-10s %-8s | %12s %12s %10s\n", "dataset", "curve", "PA",
              "compdists", "time(ms)");
  PrintRule();
  for (const char* name : {"color", "words", "dna"}) {
    // DNA's metric is the most expensive; run it smaller by default.
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset ds = MakeDatasetByName(name, n, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    // Greedy traversal on DNA (the paper's default for the low-precision
    // dataset) makes curve clustering visible in compdists as well.
    const KnnTraversal traversal = std::string(name) == "dna"
                                       ? KnnTraversal::kGreedy
                                       : KnnTraversal::kIncremental;
    for (CurveType curve : {CurveType::kHilbert, CurveType::kZOrder}) {
      SpbTreeOptions opts;
      opts.curve = curve;
      opts.seed = config.seed;
      std::unique_ptr<SpbTree> tree;
      if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
        std::abort();
      }
      AvgCost avg;
      {
        std::vector<Neighbor> result;
        for (const Blob& q : queries) {
          tree->FlushCaches();
          QueryStats stats;
          if (!tree->KnnQuery(q, 8, &result, &stats, traversal).ok()) {
            std::abort();
          }
          avg.Accumulate(stats);
        }
        avg.Finish(queries.size());
      }
      std::printf("%-10s %-8s | %12.1f %12.1f %10.3f\n", name,
                  curve == CurveType::kHilbert ? "Hilbert" : "Z-curve",
                  avg.page_accesses, avg.distance_computations,
                  avg.seconds * 1000.0);
    }
  }
  PrintRule();
  std::printf(
      "Expected shape (paper): Hilbert <= Z-curve in PA and compdists; "
      "Z-curve can win CPU time on cheap metrics (transform cost).\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
