// Reproduces Table 5: kNN search with the incremental vs the greedy
// traversal strategy (Section 4.3). Incremental is optimal in distance
// computations (Lemma 4); greedy avoids repeated RAF page visits and wins on
// low-precision datasets such as DNA.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

AvgCost RunKnnWithTraversal(SpbTree& tree, const std::vector<Blob>& queries,
                            size_t k, KnnTraversal traversal) {
  AvgCost avg;
  std::vector<Neighbor> result;
  for (const Blob& q : queries) {
    tree.FlushCaches();
    QueryStats stats;
    if (!tree.KnnQuery(q, k, &result, &stats, traversal).ok()) std::abort();
    avg.Accumulate(stats);
  }
  avg.Finish(queries.size());
  return avg;
}

void Run(const BenchConfig& config) {
  std::printf("Table 5: kNN search with different traversal strategies (k=8)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  PrintRule();
  std::printf("%-10s %-12s | %12s %12s %10s\n", "dataset", "traversal", "PA",
              "compdists", "time(ms)");
  PrintRule();
  for (const char* name : {"color", "words", "dna"}) {
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset ds = MakeDatasetByName(name, n, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    SpbTreeOptions opts;
    opts.seed = config.seed;
    std::unique_ptr<SpbTree> tree;
    if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
      std::abort();
    }
    for (KnnTraversal t :
         {KnnTraversal::kIncremental, KnnTraversal::kGreedy}) {
      const AvgCost avg = RunKnnWithTraversal(*tree, queries, 8, t);
      std::printf("%-10s %-12s | %12.1f %12.1f %10.3f\n", name,
                  t == KnnTraversal::kIncremental ? "incremental" : "greedy",
                  avg.page_accesses, avg.distance_computations,
                  avg.seconds * 1000.0);
    }
  }
  PrintRule();
  std::printf(
      "\nExpected shape (paper): incremental has the fewest compdists; "
      "greedy has the fewest PA and wins overall on the low-precision DNA "
      "dataset.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
