// Reproduces Fig. 15: accuracy of the range-query cost model — actual vs
// estimated PA and compdists as functions of r, with the paper's accuracy
// measure 1 - |actual - estimated| / actual.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

double Accuracy(double actual, double estimated) {
  if (actual <= 0.0) return estimated <= 0.0 ? 1.0 : 0.0;
  return 1.0 - std::abs(actual - estimated) / actual;
}

void Run(const BenchConfig& config) {
  std::printf("Fig. 15: range query cost model vs r\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  for (const char* name : {"words", "color", "synthetic"}) {
    Dataset ds = MakeDatasetByName(name, config.scale, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    const double d_plus = ds.metric->max_distance();
    SpbTreeOptions opts;
    opts.seed = config.seed;
    std::unique_ptr<SpbTree> tree;
    if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
      std::abort();
    }
    std::printf("\n[%s]\n", name);
    PrintRule();
    std::printf("%4s | %10s %10s %6s | %10s %10s %6s\n", "r%", "act.cd",
                "est.cd", "acc", "act.PA", "est.PA", "acc");
    PrintRule();
    for (double frac : {0.02, 0.04, 0.06, 0.08, 0.16}) {
      const double r = frac * d_plus;
      AvgCost actual;
      double est_cd = 0.0, est_pa = 0.0;
      std::vector<ObjectId> result;
      for (const Blob& q : queries) {
        const CostEstimate est = tree->EstimateRangeCost(q, r);
        est_cd += est.distance_computations;
        est_pa += est.page_accesses;
        tree->FlushCaches();
        QueryStats stats;
        if (!tree->RangeQuery(q, r, &result, &stats).ok()) std::abort();
        actual.Accumulate(stats);
      }
      actual.Finish(queries.size());
      est_cd /= double(queries.size());
      est_pa /= double(queries.size());
      std::printf("%4.0f | %10.1f %10.1f %6.2f | %10.1f %10.1f %6.2f\n",
                  frac * 100, actual.distance_computations, est_cd,
                  Accuracy(actual.distance_computations, est_cd),
                  actual.page_accesses, est_pa,
                  Accuracy(actual.page_accesses, est_pa));
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): estimated curves track the actual ones with "
      "average accuracy above ~0.8.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000,
                                        /*default_queries=*/40));
  return 0;
}
