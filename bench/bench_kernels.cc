// Micro-benchmark for the distance-kernel layer (src/kernels/) plus the
// query-level effect of cutoff-aware verification. Emits JSON so runs are
// easy to diff and to record in EXPERIMENTS.md.
//
// Sections:
//   kernels   — ns/call for every available kernel table (scalar, sse2,
//               avx2, ...) across vector dims {2, 8, 20, 128, 282}, plus
//               speedup of the dispatched Active() table over scalar.
//   edit      — edit-distance ns/call, full DP vs banded cutoff DP, across
//               string lengths.
//   hamming   — byte-mismatch counting, scalar vs dispatched.
//   queries   — RQA / NNA wall-clock and cutoff hit rates on a synthetic
//               tree, early abandoning on vs off (warm caches, so the
//               distance work dominates over I/O).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/spb_tree.h"
#include "data/datasets.h"
#include "kernels/kernels.h"
#include "metrics/edit_distance.h"

namespace spb {
namespace {

volatile double g_sink;  // defeats dead-code elimination of timed loops

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<float> RandomFloats(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (float& f : v) f = static_cast<float>(rng->NextDouble());
  return v;
}

// Times `fn(pair_index)` averaged over enough repetitions of `pairs` items
// to run ~0.1s; returns ns per call.
template <typename Fn>
double TimeNsPerCall(size_t pairs, Fn fn) {
  // Warm-up + calibration pass.
  double sink = 0.0;
  for (size_t i = 0; i < pairs; ++i) sink += fn(i);
  const double t0 = NowSeconds();
  uint64_t calls = 0;
  double elapsed = 0.0;
  do {
    for (size_t i = 0; i < pairs; ++i) sink += fn(i);
    calls += pairs;
    elapsed = NowSeconds() - t0;
  } while (elapsed < 0.1);
  g_sink = sink;
  return elapsed * 1e9 / double(calls);
}

void BenchFloatKernels() {
  const size_t kPairs = 512;
  std::printf("  \"kernels\": [\n");
  bool first = true;
  for (size_t dim : {size_t(2), size_t(8), size_t(20), size_t(128),
                     size_t(282)}) {
    Rng rng(77 + dim);
    std::vector<std::vector<float>> as, bs;
    for (size_t i = 0; i < kPairs; ++i) {
      as.push_back(RandomFloats(&rng, dim));
      bs.push_back(RandomFloats(&rng, dim));
    }
    double scalar_l2 = 0.0;
    for (const auto* table : kernels::AvailableTables()) {
      const double l2 = TimeNsPerCall(kPairs, [&](size_t i) {
        return table->l2_sq(as[i].data(), bs[i].data(), dim);
      });
      const double l1 = TimeNsPerCall(kPairs, [&](size_t i) {
        return table->l1(as[i].data(), bs[i].data(), dim);
      });
      const double linf = TimeNsPerCall(kPairs, [&](size_t i) {
        return table->linf(as[i].data(), bs[i].data(), dim);
      });
      if (std::string(table->name) == "scalar") scalar_l2 = l2;
      std::printf("%s    {\"dim\": %zu, \"table\": \"%s\", "
                  "\"l2_sq_ns\": %.1f, \"l1_ns\": %.1f, \"linf_ns\": %.1f, "
                  "\"l2_speedup_vs_scalar\": %.2f}",
                  first ? "" : ",\n", dim, table->name, l2, l1, linf,
                  scalar_l2 > 0 ? scalar_l2 / l2 : 1.0);
      first = false;
    }
  }
  std::printf("\n  ],\n");
}

void BenchEditDistance() {
  std::printf("  \"edit\": [\n");
  bool first = true;
  for (size_t len : {size_t(8), size_t(16), size_t(34)}) {
    Rng rng(1234 + len);
    const size_t kPairs = 256;
    std::vector<Blob> as, bs;
    for (size_t i = 0; i < kPairs; ++i) {
      Blob a(len), b(len);
      for (auto& c : a) c = uint8_t('a' + rng.Uniform(8));
      for (auto& c : b) c = uint8_t('a' + rng.Uniform(8));
      as.push_back(a);
      bs.push_back(b);
    }
    const EditDistance metric(40);
    const double full = TimeNsPerCall(kPairs, [&](size_t i) {
      return metric.Distance(as[i], bs[i]);
    });
    // tau = 2: the selective regime a Words range query actually runs in.
    const double banded = TimeNsPerCall(kPairs, [&](size_t i) {
      return metric.DistanceWithCutoff(as[i], bs[i], 2.0);
    });
    std::printf("%s    {\"len\": %zu, \"full_dp_ns\": %.1f, "
                "\"banded_tau2_ns\": %.1f, \"speedup\": %.2f}",
                first ? "" : ",\n", len, full, banded, full / banded);
    first = false;
  }
  std::printf("\n  ],\n");
}

void BenchHamming() {
  const size_t kPairs = 512, len = 64;
  Rng rng(5);
  std::vector<std::vector<uint8_t>> as, bs;
  for (size_t i = 0; i < kPairs; ++i) {
    std::vector<uint8_t> a(len), b(len);
    for (auto& c : a) c = uint8_t(rng.Uniform(4));
    for (auto& c : b) c = uint8_t(rng.Uniform(4));
    as.push_back(a);
    bs.push_back(b);
  }
  std::printf("  \"hamming\": [\n");
  bool first = true;
  for (const auto* table : kernels::AvailableTables()) {
    const double ns = TimeNsPerCall(kPairs, [&](size_t i) {
      return double(table->hamming(as[i].data(), bs[i].data(), len));
    });
    std::printf("%s    {\"len\": %zu, \"table\": \"%s\", \"ns\": %.1f}",
                first ? "" : ",\n", len, table->name, ns);
    first = false;
  }
  std::printf("\n  ],\n");
}

// Query-level: same tree, same queries, cutoff on vs off. Warm caches so
// the comparison isolates distance-computation work.
void BenchQueries(const bench::BenchConfig& config) {
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  SpbTreeOptions opts;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }
  const std::vector<Blob> queries = bench::QueryWorkload(ds, config.queries);
  const double r = 0.04 * ds.metric->max_distance();
  const size_t k = 10;

  auto run = [&](bool cutoff, const char* kind) {
    TuningOptions tn = tree->tuning();
    tn.enable_cutoff = cutoff;
    if (!tree->ApplyTuning(tn).ok()) std::abort();
    tree->ResetCounters();
    std::vector<ObjectId> range_result;
    std::vector<Neighbor> knn_result;
    // Warm pass (fills both LRU caches), then the timed pass.
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = NowSeconds();
      uint64_t calls0 = tree->counting().cutoff_calls();
      uint64_t hits0 = tree->counting().cutoff_hits();
      for (const Blob& q : queries) {
        if (std::string(kind) == "range") {
          if (!tree->RangeQuery(q, r, &range_result).ok()) std::abort();
        } else {
          if (!tree->KnnQuery(q, k, &knn_result).ok()) std::abort();
        }
      }
      if (pass == 1) {
        const double secs = NowSeconds() - t0;
        const uint64_t calls = tree->counting().cutoff_calls() - calls0;
        const uint64_t hits = tree->counting().cutoff_hits() - hits0;
        std::printf("    {\"kind\": \"%s\", \"cutoff\": %s, "
                    "\"qps\": %.1f, \"cutoff_calls\": %llu, "
                    "\"cutoff_hits\": %llu, \"hit_rate\": %.3f}",
                    kind, cutoff ? "true" : "false",
                    double(queries.size()) / secs,
                    (unsigned long long)calls, (unsigned long long)hits,
                    calls > 0 ? double(hits) / double(calls) : 0.0);
      }
    }
  };
  std::printf("  \"queries\": [\n");
  run(false, "range");
  std::printf(",\n");
  run(true, "range");
  std::printf(",\n");
  run(false, "knn");
  std::printf(",\n");
  run(true, "knn");
  std::printf("\n  ]\n");
}

}  // namespace
}  // namespace spb

int main(int argc, char** argv) {
  const spb::bench::BenchConfig config =
      spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000);
  std::printf("{\n  \"active_table\": \"%s\",\n",
              spb::kernels::Active().name);
  spb::BenchFloatKernels();
  spb::BenchEditDistance();
  spb::BenchHamming();
  spb::BenchQueries(config);
  std::printf("}\n");
  return 0;
}
