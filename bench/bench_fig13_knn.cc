// Reproduces Fig. 13: kNN query performance of the four MAMs as a function
// of k (1..32) on Signature, Words, Color and DNA.
#include "bench/mam_zoo.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 13: kNN query performance vs k\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  for (const char* name : {"signature", "words", "color", "dna"}) {
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset ds = MakeDatasetByName(name, n, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    std::printf("\n[%s, |O|=%zu]\n", name, ds.objects.size());
    PrintRule();
    std::printf("%-12s %4s | %12s %12s %10s\n", "MAM", "k", "PA", "compdists",
                "time(ms)");
    PrintRule();
    for (const char* mam : kAllMams) {
      BuiltMam built = BuildMam(mam, ds, config.seed);
      for (size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const AvgCost avg = RunKnnQueries(*built.index, queries, k);
        std::printf("%-12s %4zu | %12.1f %12.1f %10.3f\n", mam, k,
                    avg.page_accesses, avg.distance_computations,
                    avg.seconds * 1000.0);
      }
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): SPB-tree lowest PA at every k; compdists "
      "grow slowly with k for all MAMs; SPB-tree best or comparable in "
      "compdists and time.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/10000,
                                        /*default_queries=*/25));
  return 0;
}
