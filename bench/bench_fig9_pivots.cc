// Reproduces Fig. 9: efficiency of pivot selection methods (HFI vs HF vs
// Spacing vs PCA) as a function of the number of pivots |P| in {1,3,5,7,9}.
// Workload: kNN (k=8); metrics: compdists, PA, CPU time, plus precision(P).
#include "bench/bench_common.h"
#include "pivots/selection.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 9: pivot selection methods vs |P| (kNN, k=8)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  const PivotSelectorType selectors[] = {
      PivotSelectorType::kHfi, PivotSelectorType::kHf,
      PivotSelectorType::kSpacing, PivotSelectorType::kPca};
  for (const char* name : {"words", "color"}) {
    Dataset ds = MakeDatasetByName(name, config.scale, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    std::printf("\n[%s]\n", name);
    PrintRule();
    std::printf("%-8s %3s | %12s %10s %10s %10s\n", "method", "|P|",
                "compdists", "PA", "time(ms)", "precision");
    PrintRule();
    for (PivotSelectorType sel : selectors) {
      for (size_t p : {1u, 3u, 5u, 7u, 9u}) {
        SpbTreeOptions opts;
        opts.num_pivots = p;
        opts.pivot_selector = sel;
        opts.seed = config.seed;
        std::unique_ptr<SpbTree> tree;
        if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
          std::abort();
        }
        const AvgCost avg = RunKnnQueries(*tree, queries, 8);
        const double precision = PivotSetPrecision(
            tree->space().pivots(), ds.objects, *ds.metric, 300, config.seed);
        std::printf("%-8s %3zu | %12.1f %10.1f %10.3f %10.3f\n",
                    PivotSelectorName(sel), p, avg.distance_computations,
                    avg.page_accesses, avg.seconds * 1000.0, precision);
      }
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): HFI <= the other selectors in compdists at "
      "every |P|; compdists falls as |P| grows; PA and time bottom out near "
      "the intrinsic dimensionality (~3-6) and then flatten or rise.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/10000,
                                        /*default_queries=*/30));
  return 0;
}
