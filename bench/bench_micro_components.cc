// Micro-benchmarks (google-benchmark) of the SPB-tree's inner loops:
// space-filling-curve coding, metric distance kernels, discretizer bounds,
// and B+-tree point operations. Complements the paper-level benches with
// component-level numbers for regression tracking.
#include <benchmark/benchmark.h>

#include "bptree/bptree.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "metrics/discretizer.h"
#include "sfc/sfc.h"

namespace spb {
namespace {

void BM_HilbertEncode(benchmark::State& state) {
  const size_t dims = size_t(state.range(0));
  const int bits = int(64 / dims);
  auto curve = SpaceFillingCurve::Create(CurveType::kHilbert, dims, bits);
  Rng rng(1);
  std::vector<uint32_t> coords(dims);
  for (auto& c : coords) c = uint32_t(rng.Uniform(1u << bits));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->Encode(coords));
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(5)->Arg(9);

void BM_HilbertDecode(benchmark::State& state) {
  const size_t dims = size_t(state.range(0));
  const int bits = int(64 / dims);
  auto curve = SpaceFillingCurve::Create(CurveType::kHilbert, dims, bits);
  std::vector<uint32_t> coords;
  uint64_t key = 0xDEADBEEF;
  for (auto _ : state) {
    curve->Decode(key, &coords);
    benchmark::DoNotOptimize(coords);
    ++key;
  }
}
BENCHMARK(BM_HilbertDecode)->Arg(2)->Arg(5)->Arg(9);

void BM_ZOrderEncode(benchmark::State& state) {
  const size_t dims = size_t(state.range(0));
  const int bits = int(64 / dims);
  auto curve = SpaceFillingCurve::Create(CurveType::kZOrder, dims, bits);
  Rng rng(1);
  std::vector<uint32_t> coords(dims);
  for (auto& c : coords) c = uint32_t(rng.Uniform(1u << bits));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->Encode(coords));
  }
}
BENCHMARK(BM_ZOrderEncode)->Arg(2)->Arg(5)->Arg(9);

void BM_EditDistance(benchmark::State& state) {
  Dataset ds = MakeWords(1000, 3);
  Rng rng(4);
  for (auto _ : state) {
    const Blob& a = ds.objects[rng.Uniform(ds.objects.size())];
    const Blob& b = ds.objects[rng.Uniform(ds.objects.size())];
    benchmark::DoNotOptimize(ds.metric->Distance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_TrigramCosine(benchmark::State& state) {
  Dataset ds = MakeDna(500, 3);
  Rng rng(4);
  for (auto _ : state) {
    const Blob& a = ds.objects[rng.Uniform(ds.objects.size())];
    const Blob& b = ds.objects[rng.Uniform(ds.objects.size())];
    benchmark::DoNotOptimize(ds.metric->Distance(a, b));
  }
}
BENCHMARK(BM_TrigramCosine);

void BM_L5Norm(benchmark::State& state) {
  Dataset ds = MakeColor(1000, 3);
  Rng rng(4);
  for (auto _ : state) {
    const Blob& a = ds.objects[rng.Uniform(ds.objects.size())];
    const Blob& b = ds.objects[rng.Uniform(ds.objects.size())];
    benchmark::DoNotOptimize(ds.metric->Distance(a, b));
  }
}
BENCHMARK(BM_L5Norm);

void BM_BptreeInsert(benchmark::State& state) {
  auto curve = SpaceFillingCurve::Create(CurveType::kHilbert, 2, 16);
  std::unique_ptr<BPlusTree> tree;
  if (!BPlusTree::Create(PageFile::CreateInMemory(), 64, curve.get(), &tree)
           .ok()) {
    state.SkipWithError("create failed");
    return;
  }
  Rng rng(5);
  uint64_t ptr = 0;
  for (auto _ : state) {
    if (!tree->Insert(rng.Uniform(1ull << 32), ptr++).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
}
BENCHMARK(BM_BptreeInsert);

void BM_BptreeSeek(benchmark::State& state) {
  auto curve = SpaceFillingCurve::Create(CurveType::kHilbert, 2, 16);
  std::unique_ptr<BPlusTree> tree;
  if (!BPlusTree::Create(PageFile::CreateInMemory(), 64, curve.get(), &tree)
           .ok()) {
    state.SkipWithError("create failed");
    return;
  }
  std::vector<LeafEntry> entries;
  for (uint64_t k = 0; k < 100000; ++k) entries.push_back({k * 3, k});
  if (!tree->BulkLoad(entries).ok()) {
    state.SkipWithError("bulk load failed");
    return;
  }
  Rng rng(6);
  BptNode leaf;
  size_t pos;
  for (auto _ : state) {
    if (!tree->SeekLeaf(rng.Uniform(300000), &leaf, &pos).ok()) {
      state.SkipWithError("seek failed");
      return;
    }
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_BptreeSeek);

void BM_DiscretizerCellRange(benchmark::State& state) {
  Discretizer disc(1.0, false, 0.005);
  Rng rng(7);
  uint32_t lo, hi;
  for (auto _ : state) {
    const double q = rng.NextDouble();
    benchmark::DoNotOptimize(disc.CellRange(q - 0.05, q + 0.05, &lo, &hi));
  }
}
BENCHMARK(BM_DiscretizerCellRange);

}  // namespace
}  // namespace spb

BENCHMARK_MAIN();
