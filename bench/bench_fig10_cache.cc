// Reproduces Fig. 10: effect of the RAF cache size (in pages) on kNN query
// cost. Cache sizes {0, 8, 16, 32, 64, 128}; the cache is flushed before
// each query, exactly as in the paper.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 10: effect of cache size (pages) on kNN (k=8)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  for (const char* name : {"color", "words"}) {
    Dataset ds = MakeDatasetByName(name, config.scale, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    SpbTreeOptions opts;
    opts.seed = config.seed;
    std::unique_ptr<SpbTree> tree;
    if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
      std::abort();
    }
    std::printf("\n[%s]\n", name);
    PrintRule();
    std::printf("%10s | %12s %12s %10s\n", "cache(pg)", "PA", "compdists",
                "time(ms)");
    PrintRule();
    for (size_t cache : {0u, 8u, 16u, 32u, 64u, 128u}) {
      TuningOptions tn = tree->tuning();
      tn.raf_cache_pages = cache;
      if (!tree->ApplyTuning(tn).ok()) std::abort();
      const AvgCost avg = RunKnnQueries(*tree, queries, 8);
      std::printf("%10zu | %12.1f %12.1f %10.3f\n", cache, avg.page_accesses,
                  avg.distance_computations, avg.seconds * 1000.0);
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): PA and time drop as the cache grows and "
      "level off quickly — a small cache suffices because SFC clustering "
      "makes RAF accesses local.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
