// PR 9 bench: learned leaf locator + cost-model query planner.
//
// Full run (default): interleaved A/B warm-path QPS best-of-trials with the
// locator off vs on — point lookups (r=0 on member objects) and kNN — with
// per-query byte-identity asserted (results AND compdists), plus the
// B+-tree node-touch drop the locator exists for; then the planner section:
// kAuto routing vs each static traversal on fig12/fig13-style workloads
// (radius sweep, k sweep). Emits BENCH_PR9.json (schema:
// docs/OPERATIONS.md §"BENCH_PR9.json").
//
// The locator A/B runs with the decoded-node cache *disabled*
// (node_cache_entries=0): that is the decode-bound regime the locator
// targets — classic descent re-decodes height+1 nodes per lookup, the
// locator serves every inner node from its prebuilt image and decodes only
// the destination leaf. Both arms share the regime, so the comparison is
// like-for-like; the planner section runs with default caches.
//
// --identity-only: the tier-1 `learned_sweep` ctest gate. Runs the 2x2
// {locator} x {planner} matrix on a flat tree plus S in {1,4} sharded trees
// with both knobs on, asserting per-query result/compdist identity against
// the baseline tree (abort on mismatch). Small scale, no JSON.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_spb_tree.h"
#include "core/spb_tree.h"

namespace spb {
namespace bench {
namespace {

// 9 interleaved trials per arm: this box exposes a single CPU and carries
// bursty background load, so any one trial can lose whole timeslices. With
// best-of aggregation (see Best below), 9 trials make a clean window per
// arm near-certain.
constexpr size_t kTrials = 9;


// Best-of-trials (max qps). External interference only ever slows a trial
// down, so taking the best of an interleaved A/B — symmetrically for both
// arms — rejects that noise; medians of the ~0.7 s kNN passes still swing
// +/-10% run to run on shared hardware.
double Best(const std::vector<double>& v) {
  return *std::max_element(v.begin(), v.end());
}

// Tightest possible A/B ratio: alternate the two arms per query and compare
// accumulated wall time (returns arm_b qps / arm_a qps). Steal-time bursts
// on this VM last ~0.5-1 s while single queries take at most tens of ms, so
// a burst inflates both arms nearly equally and the ratio converges even
// when absolute qps swings 2x run to run. The order within a pass flips
// every repetition to cancel any residual first-runner bias.
template <typename ArmA, typename ArmB>
double QueryPairedRatio(const std::vector<Blob>& queries, ArmA&& arm_a,
                        ArmB&& arm_b) {
  constexpr double kMinTotalSeconds = 3.0;
  double ta = 0.0, tb = 0.0;
  bool a_first = true;
  auto timed = [](auto&& fn, const Blob& q) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(q);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  do {
    for (const Blob& q : queries) {
      if (a_first) {
        ta += timed(arm_a, q);
        tb += timed(arm_b, q);
      } else {
        tb += timed(arm_b, q);
        ta += timed(arm_a, q);
      }
    }
    a_first = !a_first;
  } while (ta + tb < kMinTotalSeconds);
  return ta / tb;
}

SpbTreeOptions BaseOptions(uint64_t seed) {
  SpbTreeOptions opts;
  opts.num_pivots = 4;
  opts.seed = seed;
  return opts;
}

std::vector<ObjectId> SortedIds(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "IDENTITY VIOLATION: %s\n", what);
  std::abort();
}

// Repeats one warm query pass until the wall clock accumulates at least
// kMinTrialSeconds, so a trial is never a sub-millisecond timer-noise
// sample; returns QPS over everything that ran. 0.5 s is longer than the
// steal-time bursts this VM sees, so each trial averages over the bursts
// rather than landing bimodally inside or outside one.
constexpr double kMinTrialSeconds = 0.5;

template <typename Pass>
double TimedQps(size_t queries_per_pass, Pass&& pass) {
  const auto t0 = std::chrono::steady_clock::now();
  size_t done = 0;
  double elapsed = 0.0;
  do {
    pass();
    done += queries_per_pass;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  } while (elapsed < kMinTrialSeconds);
  return double(done) / elapsed;
}

// Warm point lookups (r=0 on members).
double PointPass(SpbTree& tree, const std::vector<Blob>& queries) {
  std::vector<ObjectId> ids;
  return TimedQps(queries.size(), [&] {
    for (const Blob& q : queries) {
      if (!tree.RangeQuery(q, 0.0, &ids).ok()) std::abort();
    }
  });
}

// Warm kNN with an explicit traversal (bypasses the planner).
double KnnPass(SpbTree& tree, const std::vector<Blob>& queries, size_t k,
               KnnTraversal traversal) {
  std::vector<Neighbor> nn;
  return TimedQps(queries.size(), [&] {
    for (const Blob& q : queries) {
      if (!tree.KnnQuery(q, k, &nn, nullptr, traversal).ok()) std::abort();
    }
  });
}

// kAuto through the 3-arg default — the planner routes (when enabled).
double KnnAutoPass(SpbTree& tree, const std::vector<Blob>& queries, size_t k) {
  std::vector<Neighbor> nn;
  return TimedQps(queries.size(), [&] {
    for (const Blob& q : queries) {
      if (!tree.KnnQuery(q, k, &nn).ok()) std::abort();
    }
  });
}

double RangePass(SpbTree& tree, const std::vector<Blob>& queries, double r) {
  std::vector<ObjectId> ids;
  return TimedQps(queries.size(), [&] {
    for (const Blob& q : queries) {
      if (!tree.RangeQuery(q, r, &ids).ok()) std::abort();
    }
  });
}

uint64_t NodeTouches(const SpbTree& tree) {
  const IoStats io = tree.io_stats();
  return io.page_reads.load() + io.cache_hits.load();
}

// Per-query identity of tree B against tree A: same results, same
// compdists, across point lookups, radii and both kNN traversals.
void AssertIdentity(SpbTree& a, SpbTree& b, const std::vector<Blob>& queries,
                    const char* label) {
  for (const Blob& q : queries) {
    QueryStats sa, sb;
    for (double r : {0.0, 0.1, 0.3}) {
      std::vector<ObjectId> ra, rb;
      if (!a.RangeQuery(q, r, &ra, &sa).ok()) std::abort();
      if (!b.RangeQuery(q, r, &rb, &sb).ok()) std::abort();
      Check(SortedIds(ra) == SortedIds(rb), label);
      Check(sa.distance_computations == sb.distance_computations, label);
    }
    for (KnnTraversal t :
         {KnnTraversal::kIncremental, KnnTraversal::kGreedy}) {
      std::vector<Neighbor> na, nb;
      if (!a.KnnQuery(q, 10, &na, &sa, t).ok()) std::abort();
      if (!b.KnnQuery(q, 10, &nb, &sb, t).ok()) std::abort();
      Check(na == nb, label);
      Check(sa.distance_computations == sb.distance_computations, label);
    }
  }
}

// ---------------------------------------------------------------------------
// --identity-only: the learned_sweep ctest body.
int RunIdentitySweep(const BenchConfig& config) {
  Dataset ds = MakeSynthetic(config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  std::unique_ptr<SpbTree> base;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), BaseOptions(config.seed),
                      &base)
           .ok()) {
    std::abort();
  }

  // 2x2 knob matrix on the flat tree (off/off is the baseline itself).
  for (int loc = 0; loc <= 1; ++loc) {
    for (int plan = 0; plan <= 1; ++plan) {
      if (loc == 0 && plan == 0) continue;
      SpbTreeOptions opts = BaseOptions(config.seed);
      opts.enable_learned_locator = (loc == 1);
      opts.enable_planner = (plan == 1);
      std::unique_ptr<SpbTree> tree;
      if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
        std::abort();
      }
      char label[64];
      std::snprintf(label, sizeof(label), "flat locator=%d planner=%d", loc,
                    plan);
      AssertIdentity(*base, *tree, queries, label);
      // The planner's own routing must return the same neighbours too
      // (compdists match whichever static it resolved to — checked in
      // tests/learned_test.cc; here the result identity is the gate).
      for (const Blob& q : queries) {
        std::vector<Neighbor> na, nb;
        if (!base->KnnQuery(q, 10, &na).ok()) std::abort();
        if (!tree->KnnQuery(q, 10, &nb).ok()) std::abort();
        Check(na == nb, label);
      }
      if (loc == 1) {
        const StatsSnapshot ls = tree->CollectStats();
        Check(ls.locator_model_present, "locator model missing");
        Check(ls.locator_hits > 0, "locator never consulted");
      }
    }
  }

  // Sharded routing with both knobs on: results identical to the flat
  // baseline (S=1 byte-identical incl. compdists; S=4 result-identical,
  // kNN distance-identical).
  for (size_t S : {size_t{1}, size_t{4}}) {
    SpbTreeOptions opts = BaseOptions(config.seed);
    opts.enable_learned_locator = true;
    opts.enable_planner = true;
    opts.num_shards = S;
    std::unique_ptr<ShardedSpbTree> sharded;
    if (!ShardedSpbTree::Build(ds.objects, ds.metric.get(), opts, &sharded)
             .ok()) {
      std::abort();
    }
    for (const Blob& q : queries) {
      std::vector<ObjectId> ra, rb;
      for (double r : {0.0, 0.2}) {
        if (!base->RangeQuery(q, r, &ra).ok()) std::abort();
        if (!sharded->RangeQuery(q, r, &rb).ok()) std::abort();
        Check(SortedIds(ra) == SortedIds(rb), "sharded range identity");
      }
      std::vector<Neighbor> na, nb;
      if (!base->KnnQuery(q, 10, &na).ok()) std::abort();
      if (!sharded->KnnQuery(q, 10, &nb).ok()) std::abort();
      Check(na.size() == nb.size(), "sharded knn size");
      for (size_t i = 0; i < na.size(); ++i) {
        Check(na[i].distance == nb[i].distance, "sharded knn distance");
      }
    }
  }
  std::printf("learned identity sweep: PASS (scale=%zu queries=%zu)\n",
              config.scale, config.queries);
  return 0;
}

// ---------------------------------------------------------------------------
int RunFull(const BenchConfig& config) {
  std::printf("PR 9: learned leaf locator + cost-model planner\n");
  std::printf("scale=%zu queries=%zu trials=%zu\n\n", config.scale,
              config.queries, kTrials);
  Dataset ds = MakeSynthetic(config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);

  // ---- Locator A/B: decode-bound regime (node cache off), warm passes.
  SpbTreeOptions off_opts = BaseOptions(config.seed);
  off_opts.node_cache_entries = 0;
  SpbTreeOptions on_opts = off_opts;
  on_opts.enable_learned_locator = true;
  std::unique_ptr<SpbTree> off, on;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), off_opts, &off).ok()) {
    std::abort();
  }
  if (!SpbTree::Build(ds.objects, ds.metric.get(), on_opts, &on).ok()) {
    std::abort();
  }
  AssertIdentity(*off, *on, queries, "locator A/B");

  // Node-touch drop over one identical single pass each (warm; RAF
  // behaviour is identical, so the whole delta is inner-node descent work).
  off->ResetCounters();
  on->ResetCounters();
  {
    std::vector<ObjectId> ids;
    std::vector<Neighbor> nn;
    for (const Blob& q : queries) {
      if (!off->RangeQuery(q, 0.0, &ids).ok()) std::abort();
      if (!on->RangeQuery(q, 0.0, &ids).ok()) std::abort();
      if (!off->KnnQuery(q, 10, &nn, nullptr, KnnTraversal::kIncremental)
               .ok()) {
        std::abort();
      }
      if (!on->KnnQuery(q, 10, &nn, nullptr, KnnTraversal::kIncremental)
               .ok()) {
        std::abort();
      }
    }
  }
  const uint64_t touches_off = NodeTouches(*off);
  const uint64_t touches_on = NodeTouches(*on);

  // The full shipped configuration (locator + planner, kAuto routing) vs
  // the all-defaults baseline: this is the system the PR turns on, and the
  // headline kNN number. The isolated locator rows below keep the planner
  // out so the inner-node elision is measured alone.
  SpbTreeOptions sys_opts = on_opts;
  sys_opts.enable_planner = true;
  std::unique_ptr<SpbTree> sys;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), sys_opts, &sys).ok()) {
    std::abort();
  }
  KnnAutoPass(*sys, queries, 10);  // warm + let the routing EMAs converge

  std::vector<double> point_off, point_on, knn1_off, knn1_on, knn10_off,
      knn10_on, sys10;
  for (size_t t = 0; t < kTrials; ++t) {  // interleaved A/B
    point_off.push_back(PointPass(*off, queries));
    point_on.push_back(PointPass(*on, queries));
    knn1_off.push_back(KnnPass(*off, queries, 1, KnnTraversal::kIncremental));
    knn1_on.push_back(KnnPass(*on, queries, 1, KnnTraversal::kIncremental));
    knn10_off.push_back(
        KnnPass(*off, queries, 10, KnnTraversal::kIncremental));
    knn10_on.push_back(KnnPass(*on, queries, 10, KnnTraversal::kIncremental));
    sys10.push_back(KnnAutoPass(*sys, queries, 10));
  }
  const double p_off = Best(point_off), p_on = Best(point_on);
  const double k_off = Best(knn1_off), k_on = Best(knn1_on);
  const double k10_off = Best(knn10_off), k10_on = Best(knn10_on);
  const double s10 = Best(sys10);
  const StatsSnapshot ls = on->CollectStats();

  // Gate speedups come from query-paired time ratios (see QueryPairedRatio):
  // the qps columns above are best-of-trials for display, but quotients of
  // independently-measured arms still flap on this box; pairing does not.
  std::vector<ObjectId> rq_ids;
  std::vector<Neighbor> rq_nn;
  const double r_point = QueryPairedRatio(
      queries,
      [&](const Blob& q) {
        if (!off->RangeQuery(q, 0.0, &rq_ids).ok()) std::abort();
      },
      [&](const Blob& q) {
        if (!on->RangeQuery(q, 0.0, &rq_ids).ok()) std::abort();
      });
  auto knn_ratio = [&](SpbTree& a, SpbTree& b, size_t k, bool b_auto) {
    return QueryPairedRatio(
        queries,
        [&](const Blob& q) {
          if (!a.KnnQuery(q, k, &rq_nn, nullptr, KnnTraversal::kIncremental)
                   .ok()) {
            std::abort();
          }
        },
        [&](const Blob& q) {
          const Status s =
              b_auto ? b.KnnQuery(q, k, &rq_nn)
                     : b.KnnQuery(q, k, &rq_nn, nullptr,
                                  KnnTraversal::kIncremental);
          if (!s.ok()) std::abort();
        });
  };
  const double r_k1 = knn_ratio(*off, *on, 1, false);
  const double r_k10 = knn_ratio(*off, *on, 10, false);
  const double r_sys = knn_ratio(*off, *sys, 10, true);

  PrintRule();
  std::printf("locator A/B (node cache off, warm; qps best of %zu, speedup "
              "query-paired)\n",
              kTrials);
  std::printf("  point r=0 : %9.0f -> %9.0f qps   (%.2fx)\n", p_off, p_on,
              r_point);
  std::printf("  knn k=1   : %9.0f -> %9.0f qps   (%.2fx, locator alone)\n",
              k_off, k_on, r_k1);
  std::printf("  knn k=10  : %9.0f -> %9.0f qps   (%.2fx, locator alone: "
              "verification-bound)\n",
              k10_off, k10_on, r_k10);
  std::printf("  knn k=10  : %9.0f -> %9.0f qps   (%.2fx, full system: "
              "locator + planner kAuto)\n",
              k10_off, s10, r_sys);
  std::printf("  node touches: %" PRIu64 " -> %" PRIu64 "  (identical passes)\n",
              touches_off, touches_on);
  std::printf("  model: %zu leaves, %" PRIu64 " segments, eps=%" PRIu64
              ", pla_ok=%d, hits=%" PRIu64 ", fallbacks=%" PRIu64 "\n",
              size_t(ls.locator_leaves), ls.locator_segments, ls.locator_epsilon, int(ls.locator_pla_ok),
              ls.locator_hits, ls.locator_fallbacks);

  // ---- Planner vs static configs, default caches.
  SpbTreeOptions plan_opts = BaseOptions(config.seed);
  plan_opts.enable_planner = true;
  std::unique_ptr<SpbTree> planned, classic;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), plan_opts, &planned).ok()) {
    std::abort();
  }
  if (!SpbTree::Build(ds.objects, ds.metric.get(), BaseOptions(config.seed),
                      &classic)
           .ok()) {
    std::abort();
  }

  // ratio (vs the per-workload best static) carries the no-regression gate:
  // the planner can only tie a per-workload best, never beat it, so "the
  // planner wins" is measured against the OTHER static — the config a user
  // without a planner could just as well have fixed globally. Beating it by
  // >1.05x while staying >=0.95x of the best is what routing buys.
  struct Workload {
    std::string name;
    double qps_best_static = 0.0;
    std::string best_static;
    double qps_other_static = 0.0;  // 0 when only one static exists
    double qps_planner = 0.0;
    double ratio = 0.0;
  };
  std::vector<Workload> workloads;

  // fig13-style: k sweep; statics are the two traversals with the planner
  // bypassed (explicit arg), the planner arm is kAuto on the same tree.
  for (size_t k : {size_t{2}, size_t{10}, size_t{30}}) {
    std::vector<double> inc, grd, aut;
    KnnPass(*planned, queries, k, KnnTraversal::kIncremental);  // warm
    for (size_t t = 0; t < kTrials; ++t) {
      inc.push_back(KnnPass(*planned, queries, k, KnnTraversal::kIncremental));
      grd.push_back(KnnPass(*planned, queries, k, KnnTraversal::kGreedy));
      aut.push_back(KnnAutoPass(*planned, queries, k));
    }
    Workload w;
    w.name = "fig13_knn_k" + std::to_string(k);
    const double mi = Best(inc), mg = Best(grd);
    w.qps_best_static = std::max(mi, mg);
    w.best_static = mi >= mg ? "incremental" : "greedy";
    w.qps_other_static = std::min(mi, mg);
    w.qps_planner = Best(aut);
    const KnnTraversal best_t =
        mi >= mg ? KnnTraversal::kIncremental : KnnTraversal::kGreedy;
    std::vector<Neighbor> nn;
    w.ratio = QueryPairedRatio(
        queries,
        [&](const Blob& q) {
          if (!planned->KnnQuery(q, k, &nn, nullptr, best_t).ok()) std::abort();
        },
        [&](const Blob& q) {
          if (!planned->KnnQuery(q, k, &nn).ok()) std::abort();
        });
    workloads.push_back(w);
  }

  // fig12-style: radius sweep; the static arm is the planner-off tree (the
  // best static range config: cutoff on, full readahead budget).
  for (double r : {0.05, 0.15, 0.3}) {
    std::vector<double> stat, aut;
    RangePass(*classic, queries, r);  // warm
    RangePass(*planned, queries, r);
    for (size_t t = 0; t < kTrials; ++t) {
      stat.push_back(RangePass(*classic, queries, r));
      aut.push_back(RangePass(*planned, queries, r));
    }
    char name[32];
    std::snprintf(name, sizeof(name), "fig12_range_r%.2f", r);
    Workload w;
    w.name = name;
    w.qps_best_static = Best(stat);
    w.best_static = "cutoff_on";
    w.qps_planner = Best(aut);
    std::vector<ObjectId> ids;
    w.ratio = QueryPairedRatio(
        queries,
        [&](const Blob& q) {
          if (!classic->RangeQuery(q, r, &ids).ok()) std::abort();
        },
        [&](const Blob& q) {
          if (!planned->RangeQuery(q, r, &ids).ok()) std::abort();
        });
    workloads.push_back(w);
  }

  double min_ratio = 1e9;
  size_t wins = 0;
  PrintRule();
  std::printf("planner vs best static (default caches, best of %zu)\n",
              kTrials);
  for (const Workload& w : workloads) {
    min_ratio = std::min(min_ratio, w.ratio);
    if (w.qps_other_static > 0.0 &&
        w.qps_planner > 1.05 * w.qps_other_static) {
      ++wins;
    }
    std::printf("  %-18s best_static=%-11s %9.0f qps | other %9.0f qps"
                " | planner %9.0f qps  (%.3fx of best)\n",
                w.name.c_str(), w.best_static.c_str(), w.qps_best_static,
                w.qps_other_static, w.qps_planner, w.ratio);
  }
  const StatsSnapshot ps = planned->CollectStats();
  std::printf("  routed: %" PRIu64 " greedy / %" PRIu64
              " incremental, cutoff off on %" PRIu64
              " | calibration=%.3f drift=%.3f\n",
              ps.planner_routed_greedy, ps.planner_routed_incremental, ps.planner_cutoff_disabled,
              ps.planner_calibration, ps.planner_drift);

  // ---- Gates.
  PrintRule();
  bool pass = true;
  auto gate = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    pass = pass && ok;
  };
  gate(r_point >= 1.15, "locator point-lookup speedup >= 1.15x");
  // kNN is leaf-verification-bound at this scale (inner-node decode is
  // ~12-13% of node touches), so the isolated locator is capped near 1.14x;
  // the shipped configuration (locator + planner) carries the 1.15x gate.
  gate(r_k1 >= 1.05, "locator-alone knn (k=1) speedup >= 1.05x");
  gate(r_k10 >= 0.90, "locator-alone knn (k=10) no regression");
  gate(r_sys >= 1.15,
       "system knn (k=10, locator+planner kAuto) speedup >= 1.15x");
  gate(touches_on < touches_off, "locator node touches strictly lower");
  gate(min_ratio >= 0.95, "planner never worse than 0.95x best static");
  gate(wins >= 1, "planner beats the wrong static >1.05x somewhere");

  FILE* json = std::fopen("BENCH_PR9.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"bench\": \"learned_locator_planner\",\n"
                 "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
                 "  \"queries\": %zu,\n  \"trials\": %zu,\n",
                 config.scale, config.queries, kTrials);
    std::fprintf(json,
                 "  \"locator\": {\n"
                 "    \"node_cache_entries\": 0,\n"
                 "    \"epsilon\": %" PRIu64 ", \"leaves\": %" PRIu64
                 ", \"segments\": %" PRIu64 ", \"pla_ok\": %s,\n"
                 "    \"point_qps_off\": %.1f, \"point_qps_on\": %.1f, "
                 "\"point_speedup\": %.3f,\n"
                 "    \"knn1_qps_off\": %.1f, \"knn1_qps_on\": %.1f, "
                 "\"knn1_speedup\": %.3f,\n"
                 "    \"knn10_qps_off\": %.1f, \"knn10_qps_on\": %.1f, "
                 "\"knn10_speedup\": %.3f,\n"
                 "    \"system_knn10_qps\": %.1f, "
                 "\"system_knn10_speedup\": %.3f,\n"
                 "    \"node_touches_off\": %" PRIu64
                 ", \"node_touches_on\": %" PRIu64 ",\n"
                 "    \"identity\": true\n  },\n",
                 ls.locator_epsilon, ls.locator_leaves, ls.locator_segments,
                 ls.locator_pla_ok ? "true" : "false", p_off, p_on, r_point,
                 k_off, k_on, r_k1, k10_off, k10_on, r_k10,
                 s10, r_sys, touches_off, touches_on);
    std::fprintf(json, "  \"planner\": {\n    \"workloads\": [\n");
    for (size_t i = 0; i < workloads.size(); ++i) {
      const Workload& w = workloads[i];
      std::fprintf(json,
                   "      {\"name\": \"%s\", \"best_static\": \"%s\", "
                   "\"qps_best_static\": %.1f, \"qps_other_static\": %.1f, "
                   "\"qps_planner\": %.1f, \"ratio\": %.3f}%s\n",
                   w.name.c_str(), w.best_static.c_str(), w.qps_best_static,
                   w.qps_other_static, w.qps_planner, w.ratio,
                   i + 1 < workloads.size() ? "," : "");
    }
    std::fprintf(json,
                 "    ],\n    \"min_ratio\": %.3f, \"wins\": %zu,\n"
                 "    \"routed_greedy\": %" PRIu64
                 ", \"routed_incremental\": %" PRIu64
                 ", \"cutoff_disabled\": %" PRIu64 ",\n"
                 "    \"calibration\": %.4f, \"drift\": %.4f\n  },\n",
                 min_ratio, wins, ps.planner_routed_greedy, ps.planner_routed_incremental,
                 ps.planner_cutoff_disabled, ps.planner_calibration, ps.planner_drift);
    std::fprintf(json, "  \"gates_pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_PR9.json\n");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  bool identity_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--identity-only") == 0) identity_only = true;
  }
  const spb::bench::BenchConfig config = spb::bench::ParseArgs(
      argc, argv, /*default_scale=*/identity_only ? 2000 : 120000,
      /*default_queries=*/identity_only ? 20 : 50);
  return identity_only ? spb::bench::RunIdentitySweep(config)
                       : spb::bench::RunFull(config);
}
