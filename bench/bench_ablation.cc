// Ablation study of the SPB-tree design choices called out in DESIGN.md §5:
//   (a) the Lemma 2 "free inclusion" shortcut (skip d(q,o) for objects a
//       pivot proves close enough),
//   (b) the computeSFC leaf optimization of Algorithm 1 (enumerate the
//       intersected region's keys instead of decoding every leaf entry),
//   (c) the Hilbert curve against the Z-order curve (clustering quality).
// Each variant runs the same range-query workload; deltas isolate the
// feature's contribution.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Ablation: SPB-tree design choices (range queries)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  struct Variant {
    const char* label;
    bool lemma2;
    bool compute_sfc;
    CurveType curve;
  };
  const Variant variants[] = {
      {"full (default)", true, true, CurveType::kHilbert},
      {"no Lemma 2", false, true, CurveType::kHilbert},
      {"no computeSFC", true, false, CurveType::kHilbert},
      {"Z-order curve", true, true, CurveType::kZOrder},
      {"bare minimum", false, false, CurveType::kZOrder},
  };
  for (const char* name : {"words", "color"}) {
    Dataset ds = MakeDatasetByName(name, config.scale, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    std::printf("\n[%s]\n", name);
    PrintRule();
    std::printf("%-16s %4s | %12s %12s %10s\n", "variant", "r%", "PA",
                "compdists", "time(ms)");
    PrintRule();
    for (const Variant& v : variants) {
      SpbTreeOptions opts;
      opts.enable_lemma2 = v.lemma2;
      opts.enable_compute_sfc = v.compute_sfc;
      opts.curve = v.curve;
      opts.seed = config.seed;
      std::unique_ptr<SpbTree> tree;
      if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
        std::abort();
      }
      // Small radii exercise computeSFC (few region cells); large radii
      // exercise Lemma 2 (r exceeds some d(q, p_i)).
      for (double frac : {0.02, 0.08, 0.32, 0.64}) {
        const double r = frac * ds.metric->max_distance();
        const AvgCost avg = RunRangeQueries(*tree, queries, r);
        std::printf("%-16s %4.0f | %12.1f %12.1f %10.3f\n", v.label,
                    frac * 100, avg.page_accesses,
                    avg.distance_computations, avg.seconds * 1000.0);
      }
    }
    PrintRule();
  }
  std::printf(
      "\nReading: 'no Lemma 2' raises compdists by the shortcut's hit count; "
      "'no computeSFC' raises CPU time on dense leaves; the Z-order variant "
      "shows the clustering gap the Hilbert default closes.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
