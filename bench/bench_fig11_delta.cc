// Reproduces Fig. 11: effect of the delta-approximation granularity on the
// SPB-tree (continuous metrics only: Color and Synthetic). delta in
// {0.001, 0.003, 0.005, 0.007, 0.009}, kNN with k = 8.
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 11: effect of delta (kNN, k=8)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  for (const char* name : {"color", "synthetic"}) {
    Dataset ds = MakeDatasetByName(name, config.scale, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    std::printf("\n[%s]\n", name);
    PrintRule();
    std::printf("%10s | %12s %12s %10s %10s\n", "delta", "compdists", "PA",
                "time(ms)", "grid/dim");
    PrintRule();
    for (double delta : {0.001, 0.003, 0.005, 0.007, 0.009}) {
      SpbTreeOptions opts;
      opts.delta = delta;
      opts.seed = config.seed;
      std::unique_ptr<SpbTree> tree;
      if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
        std::abort();
      }
      const AvgCost avg = RunKnnQueries(*tree, queries, 8);
      std::printf("%10.3f | %12.1f %12.1f %10.3f %10u\n", delta,
                  avg.distance_computations, avg.page_accesses,
                  avg.seconds * 1000.0,
                  tree->space().discretizer().num_cells());
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): compdists rises with delta (coarser cells "
      "collide more); PA and time first drop then stabilize as delta "
      "grows.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
