// Reproduces Fig. 18: accuracy of the similarity-join cost model (Eqs. 7-8)
// — actual vs estimated PA and compdists as functions of eps.
#include "bench/bench_common.h"
#include "join/sja.h"
#include "pivots/selection.h"

namespace spb {
namespace bench {
namespace {

double Accuracy(double actual, double estimated) {
  if (actual <= 0.0) return estimated <= 0.0 ? 1.0 : 0.0;
  return 1.0 - std::abs(actual - estimated) / actual;
}

void Run(const BenchConfig& config) {
  std::printf("Fig. 18: similarity join cost model vs eps\n");
  std::printf("scale=%zu (|Q| = scale/4, |O| = scale)\n", config.scale);
  for (const char* name : {"words", "color"}) {
    Dataset o = MakeDatasetByName(name, config.scale, config.seed);
    Dataset q = MakeDatasetByName(name, config.scale / 4, config.seed + 1);
    const double d_plus = o.metric->max_distance();

    std::vector<Blob> combined = q.objects;
    combined.insert(combined.end(), o.objects.begin(), o.objects.end());
    PivotSelectionOptions popts;
    popts.num_pivots = 5;
    popts.seed = config.seed;
    PivotTable pivots(SelectPivots(PivotSelectorType::kHfi, combined,
                                   *o.metric, popts));
    SpbTreeOptions sopts;
    sopts.curve = CurveType::kZOrder;
    sopts.seed = config.seed;
    std::unique_ptr<SpbTree> spb_q, spb_o;
    if (!SpbTree::BuildWithPivots(q.objects, q.metric.get(), pivots, sopts,
                                  &spb_q)
             .ok() ||
        !SpbTree::BuildWithPivots(o.objects, o.metric.get(), pivots, sopts,
                                  &spb_o)
             .ok()) {
      std::abort();
    }

    std::printf("\n[%s, |Q|=%zu |O|=%zu]\n", name, q.objects.size(),
                o.objects.size());
    PrintRule();
    std::printf("%5s | %10s %10s %6s | %10s %10s %6s\n", "eps%", "act.cd",
                "est.cd", "acc", "act.PA", "est.PA", "acc");
    PrintRule();
    for (double frac : {0.02, 0.04, 0.06, 0.08, 0.10}) {
      const double eps = frac * d_plus;
      const CostEstimate est =
          spb_o->cost_model().EstimateJoin(spb_q->cost_model(), eps);
      std::vector<JoinPair> result;
      QueryStats stats;
      spb_q->FlushCaches();
      spb_o->FlushCaches();
      if (!SimilarityJoinSJA(*spb_q, *spb_o, eps, &result, &stats).ok()) {
        std::abort();
      }
      std::printf("%5.0f | %10.0f %10.0f %6.2f | %10.0f %10.0f %6.2f\n",
                  frac * 100, double(stats.distance_computations),
                  est.distance_computations,
                  Accuracy(double(stats.distance_computations),
                           est.distance_computations),
                  double(stats.page_accesses), est.page_accesses,
                  Accuracy(double(stats.page_accesses), est.page_accesses));
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): the join cost model tracks actual costs "
      "with average accuracy above ~0.9 (EPA is a structural constant per "
      "eps; EDC follows the region probability).\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/8000));
  return 0;
}
