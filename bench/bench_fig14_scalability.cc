// Reproduces Fig. 14: scalability of SPB-tree similarity search with the
// dataset cardinality (the paper sweeps 200K..1000K on Synthetic; here the
// sweep is 20%..100% of --scale, so --scale=1000000 reproduces the paper's
// axis exactly).
#include "bench/bench_common.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 14: scalability vs cardinality (Synthetic)\n");
  std::printf("max scale=%zu queries=%zu\n", config.scale, config.queries);
  PrintRule();
  std::printf("%10s %-6s | %12s %12s %10s\n", "|O|", "query", "PA",
              "compdists", "time(ms)");
  PrintRule();
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const size_t n = size_t(double(config.scale) * frac);
    Dataset ds = MakeSynthetic(n, config.seed);
    const auto queries = QueryWorkload(ds, config.queries);
    SpbTreeOptions opts;
    opts.seed = config.seed;
    std::unique_ptr<SpbTree> tree;
    if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
      std::abort();
    }
    const double r = 0.08 * ds.metric->max_distance();
    const AvgCost range = RunRangeQueries(*tree, queries, r);
    std::printf("%10zu %-6s | %12.1f %12.1f %10.3f\n", n, "range",
                range.page_accesses, range.distance_computations,
                range.seconds * 1000.0);
    const AvgCost knn = RunKnnQueries(*tree, queries, 8);
    std::printf("%10zu %-6s | %12.1f %12.1f %10.3f\n", n, "kNN",
                knn.page_accesses, knn.distance_computations,
                knn.seconds * 1000.0);
  }
  PrintRule();
  std::printf(
      "\nExpected shape (paper): all three costs grow roughly linearly with "
      "cardinality for both query types.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/50000,
                                        /*default_queries=*/25));
  return 0;
}
