// Concurrent batch-query throughput plus cold-path I/O engine sweeps.
//
// Two regimes per buffer-pool capacity (server-sized 256 pages and a
// capacity-constrained 64 pages):
//
//   cold  — the paper's protocol (flush caches before every query), run at
//           T=1 because FlushCaches() is a single-writer operation. Each
//           workload runs twice, prefetch off then on; the off run is the
//           demand-path baseline, the on run must produce byte-identical
//           results and identical logical PA (the I/O engine's
//           claim-on-touch contract), and the reported speedup is the
//           engine's cold-path win.
//   warm  — sweeps the QueryExecutor's thread count T over {1, 2, 4, 8}
//           with a shared warm pool, the production regime the ROADMAP
//           targets. Result sets are checked to be identical across all T.
//
// Later PR sections ride along: the warm-path decode engine A/B (PR 4,
// BENCH_PR4.json), the mixed 90/10 read/write sweep (PR 5, BENCH_PR5.json),
// the sharded scatter-gather sweep (PR 6, BENCH_PR6.json, also standalone
// via --shards-only) and the durable write-path engine sweep (PR 7,
// BENCH_PR7.json, standalone via --wal-only).
//
// Every row reports logical PA (the paper's reproduction metric, invariant
// under prefetch) alongside the engine's physical counters: physical_reads
// (actual PageFile read calls), prefetch_issued/prefetch_hits (pages staged
// / staged pages actually claimed) and coalesced_pages (pages that rode a
// multi-page span read). Emits one JSON line per configuration alongside
// the table so results can be scraped like the other bench targets'
// outputs.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "core/sharded_spb_tree.h"
#include "exec/query_executor.h"

namespace spb {
namespace bench {
namespace {

// One measured configuration, shared by the cold (hand-rolled loop) and
// warm (QueryExecutor) paths.
struct RunResult {
  size_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;  // warm only (cold rows report 0)
  double p99_ms = 0.0;
  QueryStats totals;
  IoStats io;
};

void PrintJson(const char* mode, const char* workload, size_t cache_pages,
               bool prefetch, size_t threads, const RunResult& s,
               double speedup) {
  std::printf(
      "JSON {\"bench\":\"concurrency\",\"mode\":\"%s\",\"workload\":\"%s\","
      "\"cache_pages\":%zu,\"prefetch\":%d,\"threads\":%zu,\"queries\":%zu,"
      "\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"pa\":%llu,"
      "\"compdists\":%llu,\"physical_reads\":%llu,\"prefetch_issued\":%llu,"
      "\"prefetch_hits\":%llu,\"coalesced_pages\":%llu,\"speedup\":%.2f}\n",
      mode, workload, cache_pages, prefetch ? 1 : 0, threads, s.queries,
      s.qps, s.p50_ms, s.p99_ms, (unsigned long long)s.totals.page_accesses,
      (unsigned long long)s.totals.distance_computations,
      (unsigned long long)s.io.physical_reads.load(),
      (unsigned long long)s.io.prefetch_issued.load(),
      (unsigned long long)s.io.prefetch_hits.load(),
      (unsigned long long)s.io.coalesced_pages.load(), speedup);
}

void PrintRow(const char* mode, const char* workload, const char* variant,
              const RunResult& s, double speedup) {
  std::printf(
      "%-5s %-6s %-9s | %8.1f | %9.1f %9.1f | %9llu %9llu %9llu | %6.2fx\n",
      mode, workload, variant, s.qps,
      double(s.totals.page_accesses) / double(s.queries),
      double(s.io.physical_reads.load()) / double(s.queries),
      (unsigned long long)s.io.prefetch_issued.load(),
      (unsigned long long)s.io.prefetch_hits.load(),
      (unsigned long long)s.io.coalesced_pages.load(), speedup);
}

IoStats IoDelta(const IoStats& after, const IoStats& before) {
  IoStats d;
  d.page_reads = after.page_reads.load() - before.page_reads.load();
  d.page_writes = after.page_writes.load() - before.page_writes.load();
  d.cache_hits = after.cache_hits.load() - before.cache_hits.load();
  d.physical_reads =
      after.physical_reads.load() - before.physical_reads.load();
  d.prefetch_issued =
      after.prefetch_issued.load() - before.prefetch_issued.load();
  d.prefetch_hits = after.prefetch_hits.load() - before.prefetch_hits.load();
  d.coalesced_pages =
      after.coalesced_pages.load() - before.coalesced_pages.load();
  return d;
}

// Runs one cold (flush-per-query) pass at T=1 and fills a RunResult from
// the cumulative-counter deltas.
template <typename QueryFn>
RunResult RunCold(SpbTree& tree, size_t n, const QueryFn& one_query) {
  RunResult out;
  out.queries = n;
  const QueryStats before = tree.cumulative_stats();
  const IoStats io_before = tree.io_stats();
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    tree.FlushCaches();
    one_query(i);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const QueryStats after = tree.cumulative_stats();
  out.qps = wall > 0.0 ? double(n) / wall : 0.0;
  out.totals.page_accesses = after.page_accesses - before.page_accesses;
  out.totals.distance_computations =
      after.distance_computations - before.distance_computations;
  out.io = IoDelta(tree.io_stats(), io_before);
  return out;
}

RunResult FromBatchStats(const BatchStats& s) {
  RunResult out;
  out.queries = s.num_queries;
  out.qps = s.qps;
  out.p50_ms = s.p50_seconds * 1e3;
  out.p99_ms = s.p99_seconds * 1e3;
  out.totals = s.totals;
  out.io = s.io_totals;
  return out;
}

void RunCapacity(const BenchConfig& config, const Dataset& ds,
                 const std::vector<Blob>& queries, double r, size_t k,
                 size_t cache_pages) {
  SpbTreeOptions opts;
  opts.seed = config.seed;
  opts.btree_cache_pages = cache_pages;
  opts.raf_cache_pages = cache_pages;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }

  std::printf("\n[cache=%zu pages, range r=8%% of d+, kNN k=%zu]\n",
              cache_pages, k);
  PrintRule(96);
  std::printf("%-5s %-6s %-9s | %8s | %9s %9s | %9s %9s %9s | %7s\n", "mode",
              "work", "variant", "QPS", "pa/q", "phys/q", "issued", "hits",
              "coalesced", "speedup");
  PrintRule(96);

  // ---- Cold regime: flush-per-query at T=1 (FlushCaches is
  // single-writer), prefetch off (demand baseline) then on. The on run must
  // match the off run's results and logical PA exactly.
  std::vector<std::vector<ObjectId>> cold_range(queries.size());
  std::vector<std::vector<Neighbor>> cold_knn(queries.size());
  std::vector<std::vector<ObjectId>> base_range;
  std::vector<std::vector<Neighbor>> base_knn;
  RunResult base_cr, base_ck;
  for (const bool prefetch : {false, true}) {
    TuningOptions tn = tree->tuning();
    tn.enable_prefetch = prefetch;
    if (!tree->ApplyTuning(tn).ok()) std::abort();
    const RunResult cr = RunCold(*tree, queries.size(), [&](size_t i) {
      if (!tree->RangeQuery(queries[i], r, &cold_range[i], nullptr).ok()) {
        std::abort();
      }
      std::sort(cold_range[i].begin(), cold_range[i].end());
    });
    const RunResult ck = RunCold(*tree, queries.size(), [&](size_t i) {
      if (!tree->KnnQuery(queries[i], k, &cold_knn[i], nullptr).ok()) {
        std::abort();
      }
    });
    if (!prefetch) {
      base_range = cold_range;
      base_knn = cold_knn;
      base_cr = cr;
      base_ck = ck;
      PrintRow("cold", "range", "demand", cr, 1.0);
      PrintJson("cold", "range", cache_pages, false, 1, cr, 1.0);
      PrintRow("cold", "knn", "demand", ck, 1.0);
      PrintJson("cold", "knn", cache_pages, false, 1, ck, 1.0);
      continue;
    }
    if (cold_range != base_range || cold_knn != base_knn) {
      std::printf("FAIL: prefetch changed result sets (cache=%zu)\n",
                  cache_pages);
      std::abort();
    }
    if (cr.totals.page_accesses != base_cr.totals.page_accesses ||
        ck.totals.page_accesses != base_ck.totals.page_accesses) {
      std::printf("FAIL: prefetch changed logical PA (cache=%zu)\n",
                  cache_pages);
      std::abort();
    }
    const double r_speed = base_cr.qps > 0 ? cr.qps / base_cr.qps : 0.0;
    const double k_speed = base_ck.qps > 0 ? ck.qps / base_ck.qps : 0.0;
    PrintRow("cold", "range", "prefetch", cr, r_speed);
    PrintJson("cold", "range", cache_pages, true, 1, cr, r_speed);
    PrintRow("cold", "knn", "prefetch", ck, k_speed);
    PrintJson("cold", "knn", cache_pages, true, 1, ck, k_speed);
  }
  std::printf("cold: prefetch results and logical PA identical to demand "
              "path\n");

  // ---- Warm regime: executor thread sweep, prefetch on.
  TuningOptions warm_tn = tree->tuning();
  warm_tn.enable_prefetch = true;
  if (!tree->ApplyTuning(warm_tn).ok()) std::abort();
  const size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<ObjectId>> range_baseline;
  std::vector<std::vector<Neighbor>> knn_baseline;
  double range_qps_t1 = 0.0, knn_qps_t1 = 0.0;
  for (size_t threads : thread_counts) {
    QueryExecutor exec(tree.get(), threads);

    std::vector<std::vector<ObjectId>> range_results;
    BatchStats rs;
    // Warm-up pass so every T sees the same warm cache, then the measured
    // pass.
    if (!exec.RunRangeBatch(queries, r, &range_results, nullptr).ok() ||
        !exec.RunRangeBatch(queries, r, &range_results, &rs).ok()) {
      std::abort();
    }
    if (threads == 1) {
      range_baseline = range_results;
      range_qps_t1 = rs.qps;
    } else if (range_results != range_baseline) {
      std::printf("FAIL: range results differ at T=%zu\n", threads);
      std::abort();
    }
    const double rspeed = range_qps_t1 > 0 ? rs.qps / range_qps_t1 : 0.0;
    char variant[16];
    std::snprintf(variant, sizeof(variant), "T=%zu", threads);
    PrintRow("warm", "range", variant, FromBatchStats(rs), rspeed);
    PrintJson("warm", "range", cache_pages, true, threads,
              FromBatchStats(rs), rspeed);

    std::vector<std::vector<Neighbor>> knn_results;
    BatchStats ks;
    if (!exec.RunKnnBatch(queries, k, &knn_results, nullptr).ok() ||
        !exec.RunKnnBatch(queries, k, &knn_results, &ks).ok()) {
      std::abort();
    }
    if (threads == 1) {
      knn_baseline = knn_results;
      knn_qps_t1 = ks.qps;
    } else if (knn_results != knn_baseline) {
      std::printf("FAIL: kNN results differ at T=%zu\n", threads);
      std::abort();
    }
    const double kspeed = knn_qps_t1 > 0 ? ks.qps / knn_qps_t1 : 0.0;
    PrintRow("warm", "knn", variant, FromBatchStats(ks), kspeed);
    PrintJson("warm", "knn", cache_pages, true, threads, FromBatchStats(ks),
              kspeed);
  }
  PrintRule(96);
}

// ---------------------------------------------- warm-path decode engine A/B

// One measured pass of the decode-engine A/B: every query once, T=1. For
// the warm regime an unmeasured sweep first brings the buffer pool (and,
// when enabled, the node cache) to steady state; for the cold regime every
// query is preceded by FlushCaches(), the paper's protocol.
struct AbPass {
  double qps = 0.0;
  uint64_t pa = 0;    // logical page accesses
  uint64_t hits = 0;  // buffer-pool cache hits
  uint64_t cd = 0;    // distance computations
};

template <typename QueryFn>
AbPass MeasureAbPass(SpbTree& tree, size_t n, bool cold,
                     const QueryFn& one_query) {
  if (!cold) {
    for (size_t i = 0; i < n; ++i) one_query(i);  // warm-up sweep
  }
  const QueryStats before = tree.cumulative_stats();
  const IoStats io_before = tree.io_stats();
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (cold) tree.FlushCaches();
    one_query(i);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const QueryStats after = tree.cumulative_stats();
  AbPass p;
  p.qps = wall > 0.0 ? double(n) / wall : 0.0;
  p.pa = after.page_accesses - before.page_accesses;
  p.cd = after.distance_computations - before.distance_computations;
  p.hits = tree.io_stats().cache_hits.load() - io_before.cache_hits.load();
  return p;
}

double Median3(double a, double b, double c) {
  double v[3] = {a, b, c};
  std::sort(v, v + 3);
  return v[1];
}

// Aggregated A/B medians for one (regime, workload) cell.
struct AbCell {
  double qps_on = 0.0, qps_off = 0.0;
  AbPass sample_on, sample_off;  // counters (identical across trials/configs)
  double speedup() const {
    return qps_off > 0.0 ? qps_on / qps_off : 0.0;
  }
};

void PrintAbCell(FILE* json, const char* regime, const char* workload,
                 size_t queries, const AbCell& c, bool last) {
  std::printf("%-5s %-6s | on %8.1f QPS | off %8.1f QPS | %6.2fx | "
              "pa/q %.1f cd/q %.1f\n",
              regime, workload, c.qps_on, c.qps_off, c.speedup(),
              double(c.sample_on.pa) / double(queries),
              double(c.sample_on.cd) / double(queries));
  std::printf("JSON {\"bench\":\"warm_engine_ab\",\"regime\":\"%s\","
              "\"workload\":\"%s\",\"qps_on\":%.1f,\"qps_off\":%.1f,"
              "\"speedup\":%.2f,\"pa\":%llu,\"cache_hits\":%llu,"
              "\"compdists\":%llu}\n",
              regime, workload, c.qps_on, c.qps_off, c.speedup(),
              (unsigned long long)c.sample_on.pa,
              (unsigned long long)c.sample_on.hits,
              (unsigned long long)c.sample_on.cd);
  if (json != nullptr) {
    std::fprintf(json,
                 "    {\"regime\": \"%s\", \"workload\": \"%s\", "
                 "\"qps_on_median\": %.1f, \"qps_off_median\": %.1f, "
                 "\"speedup\": %.3f, \"pa\": %llu, \"cache_hits\": %llu, "
                 "\"compdists\": %llu}%s\n",
                 regime, workload, c.qps_on, c.qps_off, c.speedup(),
                 (unsigned long long)c.sample_on.pa,
                 (unsigned long long)c.sample_on.hits,
                 (unsigned long long)c.sample_on.cd, last ? "" : ",");
  }
}

// Interleaved A/B of the warm-path decode engine (decoded-node cache +
// zero-copy reads) vs both toggles off, T=1, medians of 3 trials. Each
// trial runs the on pass and the off pass back to back so environmental
// drift lands on both configs equally. The off pass must reproduce the on
// pass byte-for-byte — result sets, logical PA, buffer-pool cache hits and
// compdists — or the bench aborts (the accounting-parity rule). Writes
// BENCH_PR4.json into the working directory (schema: EXPERIMENTS.md).
void RunEngineAb(const BenchConfig& config, const Dataset& ds,
                 const std::vector<Blob>& queries, double r, size_t k) {
  SpbTreeOptions opts;
  opts.seed = config.seed;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }
  const size_t n = queries.size();
  std::printf("\n[warm-path decode engine A/B: node cache + zero-copy vs "
              "off, T=1, median of 3]\n");
  PrintRule(96);

  auto set_engine = [&](bool on) {
    TuningOptions tn = tree->tuning();
    tn.node_cache_entries = on ? opts.node_cache_entries : 0;
    tn.enable_zero_copy = on;
    if (!tree->ApplyTuning(tn).ok()) std::abort();
  };

  std::vector<std::vector<ObjectId>> range_on(n), range_off(n);
  std::vector<std::vector<Neighbor>> knn_on(n), knn_off(n);
  auto run_range = [&](std::vector<std::vector<ObjectId>>* out, bool cold,
                       AbPass* p) {
    *p = MeasureAbPass(*tree, n, cold, [&](size_t i) {
      if (!tree->RangeQuery(queries[i], r, &(*out)[i], nullptr).ok()) {
        std::abort();
      }
    });
  };
  auto run_knn = [&](std::vector<std::vector<Neighbor>>* out, bool cold,
                     AbPass* p) {
    *p = MeasureAbPass(*tree, n, cold, [&](size_t i) {
      if (!tree->KnnQuery(queries[i], k, &(*out)[i], nullptr).ok()) {
        std::abort();
      }
    });
  };
  auto check_identical = [&](const AbPass& on, const AbPass& off,
                             bool results_equal, const char* what) {
    if (!results_equal) {
      std::printf("FAIL: decode engine changed %s result sets\n", what);
      std::abort();
    }
    if (on.pa != off.pa || on.hits != off.hits || on.cd != off.cd) {
      std::printf("FAIL: decode engine changed %s counters "
                  "(pa %llu/%llu hits %llu/%llu cd %llu/%llu)\n",
                  what, (unsigned long long)on.pa, (unsigned long long)off.pa,
                  (unsigned long long)on.hits, (unsigned long long)off.hits,
                  (unsigned long long)on.cd, (unsigned long long)off.cd);
      std::abort();
    }
  };

  AbCell cells[2][2];  // [regime: 0=warm,1=cold][workload: 0=range,1=knn]
  for (int regime = 0; regime < 2; ++regime) {
    const bool cold = regime == 1;
    double rq_on[3], rq_off[3], kq_on[3], kq_off[3];
    AbPass rp_on, rp_off, kp_on, kp_off;
    for (int trial = 0; trial < 3; ++trial) {
      set_engine(true);
      run_range(&range_on, cold, &rp_on);
      run_knn(&knn_on, cold, &kp_on);
      set_engine(false);
      run_range(&range_off, cold, &rp_off);
      run_knn(&knn_off, cold, &kp_off);
      check_identical(rp_on, rp_off, range_on == range_off, "range");
      check_identical(kp_on, kp_off, knn_on == knn_off, "knn");
      rq_on[trial] = rp_on.qps;
      rq_off[trial] = rp_off.qps;
      kq_on[trial] = kp_on.qps;
      kq_off[trial] = kp_off.qps;
    }
    AbCell& rc = cells[regime][0];
    rc.qps_on = Median3(rq_on[0], rq_on[1], rq_on[2]);
    rc.qps_off = Median3(rq_off[0], rq_off[1], rq_off[2]);
    rc.sample_on = rp_on;
    rc.sample_off = rp_off;
    AbCell& kc = cells[regime][1];
    kc.qps_on = Median3(kq_on[0], kq_on[1], kq_on[2]);
    kc.qps_off = Median3(kq_off[0], kq_off[1], kq_off[2]);
    kc.sample_on = kp_on;
    kc.sample_off = kp_off;
  }

  FILE* json = std::fopen("BENCH_PR4.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"bench\": \"warm_path_decode_engine\",\n"
                 "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
                 "  \"queries\": %zu,\n  \"threads\": 1,\n"
                 "  \"trials\": 3,\n  \"node_cache_entries\": %zu,\n"
                 "  \"identity\": \"results, logical PA, cache_hits and "
                 "compdists byte-identical engine on vs off (asserted)\",\n"
                 "  \"cells\": [\n",
                 config.scale, n, opts.node_cache_entries);
  }
  PrintAbCell(json, "warm", "range", n, cells[0][0], false);
  PrintAbCell(json, "warm", "knn", n, cells[0][1], false);
  PrintAbCell(json, "cold", "range", n, cells[1][0], false);
  PrintAbCell(json, "cold", "knn", n, cells[1][1], true);
  if (json != nullptr) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_PR4.json\n");
  }
  PrintRule(96);
  std::printf("warm A/B: results and counters identical engine on vs off\n");
}

// ------------------------------------------- mixed read/write sweep (PR 5)

// The update engine's throughput claim: a 90/10 read/write mix (sized in
// blocks of 20 ops: 9 range + 9 kNN + 1 insert + 1 delete) runs through
// Submit at the same thread counts as the read-only warm sweep, on a
// warm tree, with writers serialized by the executor and queries pinning
// snapshots. Each batch inserts fresh ids and deletes the ids the previous
// batch inserted, so the tree's cardinality is steady across the sweep and
// every delete provably finds its target. Emits BENCH_PR5.json (schema in
// EXPERIMENTS.md).
void RunMixedSweep(const BenchConfig& config, const Dataset& ds,
                   const std::vector<Blob>& queries, double r, size_t k) {
  SpbTreeOptions opts;
  opts.seed = config.seed;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }
  const size_t blocks = queries.size();  // 20 ops per block
  const size_t n_ops = blocks * 20;

  std::printf("\n[mixed 90/10 read/write sweep: %zu ops/batch "
              "(18 queries : 1 insert : 1 delete per block)]\n",
              n_ops);
  PrintRule(96);
  std::printf("%-7s | %10s | %12s | %7s | %9s %9s\n", "threads", "mixed QPS",
              "read-only QPS", "ratio", "p50(ms)", "p99(ms)");
  PrintRule(96);

  // Ids inserted by the previous batch; the next batch deletes them.
  std::vector<ObjectId> prev_ids;
  ObjectId next_id = ObjectId(ds.objects.size());
  auto make_batch = [&](std::vector<Request>* ops) {
    ops->clear();
    std::vector<ObjectId> new_ids;
    for (size_t b = 0; b < blocks; ++b) {
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kRange;
        op.obj = queries[(b + j) % queries.size()];
        op.radius = r;
        ops->push_back(std::move(op));
      }
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kKnn;
        op.obj = queries[(b + j + 3) % queries.size()];
        op.k = k;
        ops->push_back(std::move(op));
      }
      Request ins;
      ins.kind = Request::Kind::kInsert;
      ins.obj = ds.objects[b % ds.objects.size()];
      ins.id = next_id++;
      new_ids.push_back(ins.id);
      ops->push_back(std::move(ins));
      Request del;
      del.kind = Request::Kind::kDelete;
      if (prev_ids.empty()) {
        // First batch: nothing to delete yet; delete the id this batch
        // inserts (the executor's write serialization publishes the insert
        // before the delete can run only by luck, so target a dataset
        // object instead — always present).
        del.obj = ds.objects[b];
        del.id = ObjectId(b);
      } else {
        // prev_ids[b] was inserted by block b of the previous batch, whose
        // payload was ds.objects[b % size] — the same payload this block
        // inserts under a fresh id.
        del.obj = ds.objects[b % ds.objects.size()];
        del.id = prev_ids[b % prev_ids.size()];
      }
      ops->push_back(std::move(del));
    }
    prev_ids = std::move(new_ids);
  };

  // Seed pass (also warms the caches): restores cardinality by re-inserting
  // what the first batch's deletes removed is unnecessary — deleted dataset
  // ids stay deleted for the whole sweep, the same workload for every T.
  struct Cell {
    size_t threads;
    double mixed_qps, read_qps, p50_ms, p99_ms;
  };
  std::vector<Cell> cells;
  for (size_t threads : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    QueryExecutor exec(tree.get(), threads);

    std::vector<Blob> read_queries = queries;
    std::vector<std::vector<ObjectId>> read_results;
    BatchStats read_stats;
    if (!exec.RunRangeBatch(read_queries, r, &read_results, nullptr).ok() ||
        !exec.RunRangeBatch(read_queries, r, &read_results, &read_stats)
             .ok()) {
      std::abort();
    }

    std::vector<Request> ops;
    make_batch(&ops);
    BatchResult batch = exec.Submit(ops);
    if (!batch.first_error.ok()) {
      std::printf("FAIL: mixed batch reported an error at T=%zu\n", threads);
      std::abort();
    }
    const std::vector<OpResult>& results = batch.results;
    const BatchStats& stats = batch.stats;
    size_t deletes_found = 0, deletes = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!results[i].status.ok()) std::abort();
      if (ops[i].kind == Request::Kind::kDelete) {
        ++deletes;
        deletes_found += results[i].found ? 1 : 0;
      }
    }
    if (deletes_found != deletes) {
      std::printf("FAIL: %zu/%zu deletes missed their target at T=%zu\n",
                  deletes - deletes_found, deletes, threads);
      std::abort();
    }

    const double ratio =
        read_stats.qps > 0 ? stats.qps / read_stats.qps : 0.0;
    std::printf("T=%-5zu | %10.1f | %12.1f | %6.2fx | %9.3f %9.3f\n",
                threads, stats.qps, read_stats.qps, ratio,
                stats.p50_seconds * 1e3, stats.p99_seconds * 1e3);
    std::printf(
        "JSON {\"bench\":\"mixed\",\"threads\":%zu,\"ops\":%zu,"
        "\"mixed_qps\":%.1f,\"read_only_qps\":%.1f,\"ratio\":%.3f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
        threads, n_ops, stats.qps, read_stats.qps, ratio,
        stats.p50_seconds * 1e3, stats.p99_seconds * 1e3);
    cells.push_back(Cell{threads, stats.qps, read_stats.qps,
                         stats.p50_seconds * 1e3, stats.p99_seconds * 1e3});
  }
  PrintRule(96);
  if (!tree->CheckIntegrity().ok()) {
    std::printf("FAIL: integrity check after mixed sweep\n");
    std::abort();
  }
  std::printf("mixed sweep: all ops OK, every delete found its target, "
              "integrity intact\n");

  FILE* json = std::fopen("BENCH_PR5.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"bench\": \"mixed_read_write\",\n"
                 "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
                 "  \"ops_per_batch\": %zu,\n  \"read_fraction\": 0.9,\n"
                 "  \"mix\": \"per 20 ops: 9 range, 9 knn, 1 insert, "
                 "1 delete\",\n"
                 "  \"invariants\": \"all op statuses OK; every delete "
                 "found its target; CheckIntegrity after sweep "
                 "(asserted)\",\n  \"cells\": [\n",
                 config.scale, n_ops);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"threads\": %zu, \"mixed_qps\": %.1f, "
                   "\"read_only_qps\": %.1f, \"ratio\": %.3f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   c.threads, c.mixed_qps, c.read_qps,
                   c.read_qps > 0 ? c.mixed_qps / c.read_qps : 0.0, c.p50_ms,
                   c.p99_ms, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_PR5.json\n");
  }
}

// --------------------------------------------- sharded scatter-gather (PR 6)

// The sharded SPB-tree's S sweep: for S in {1, 2, 4, 8}, build a sharded
// tree over the same dataset, gate S=1 on byte-identity with the unsharded
// tree (cold per-query results, PA and compdists), then measure on a warm
// tree at T=4: read-only QPS, the 90/10 mixed QPS (and the write ops/s
// inside it) and a pure-insert batch throughput. All trees are driven
// through MetricIndex — the executor never downcasts. Emits BENCH_PR6.json
// (schema in EXPERIMENTS.md).
void RunShardSweep(const BenchConfig& config, const Dataset& ds,
                   const std::vector<Blob>& queries, double r, size_t k) {
  SpbTreeOptions base_opts;
  base_opts.seed = config.seed;
  std::unique_ptr<SpbTree> flat;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), base_opts, &flat).ok()) {
    std::abort();
  }
  const size_t n = queries.size();

  // Cold unsharded baseline: the identity reference for S=1.
  std::vector<std::vector<ObjectId>> flat_range(n);
  std::vector<std::vector<Neighbor>> flat_knn(n);
  std::vector<uint64_t> flat_pa(n), flat_cd(n);
  for (size_t i = 0; i < n; ++i) {
    QueryStats rs, ks;
    flat->FlushCaches();
    if (!flat->RangeQuery(queries[i], r, &flat_range[i], &rs).ok()) {
      std::abort();
    }
    std::sort(flat_range[i].begin(), flat_range[i].end());
    flat->FlushCaches();
    if (!flat->KnnQuery(queries[i], k, &flat_knn[i], &ks).ok()) std::abort();
    flat_pa[i] = rs.page_accesses + ks.page_accesses;
    flat_cd[i] = rs.distance_computations + ks.distance_computations;
  }

  std::printf("\n[sharded scatter-gather sweep: S in {1,2,4,8}, T=4, "
              "90/10 mix as in the PR 5 sweep]\n");
  PrintRule(96);
  std::printf("%-5s | %8s | %9s | %9s | %10s | %10s | %s\n", "S", "build(s)",
              "read QPS", "mixed QPS", "write/s", "insert/s", "shard sizes");
  PrintRule(96);

  struct Cell {
    size_t shards;
    double build_s, read_qps, mixed_qps, write_ops_s, insert_qps;
    std::string sizes;
  };
  std::vector<Cell> cells;
  const size_t blocks = n;
  for (size_t S : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    SpbTreeOptions opts = base_opts;
    opts.num_shards = S;
    std::unique_ptr<ShardedSpbTree> tree;
    const auto b0 = std::chrono::steady_clock::now();
    if (!ShardedSpbTree::Build(ds.objects, ds.metric.get(), opts, &tree)
             .ok()) {
      std::abort();
    }
    const double build_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - b0)
            .count();

    if (S == 1) {
      // Identity gate: the S=1 router is pure delegation, so cold results,
      // logical PA and compdists must match the unsharded tree exactly.
      for (size_t i = 0; i < n; ++i) {
        QueryStats rs, ks;
        std::vector<ObjectId> ids;
        std::vector<Neighbor> nn;
        tree->FlushCaches();
        if (!tree->RangeQuery(queries[i], r, &ids, &rs).ok()) std::abort();
        std::sort(ids.begin(), ids.end());
        tree->FlushCaches();
        if (!tree->KnnQuery(queries[i], k, &nn, &ks).ok()) std::abort();
        if (ids != flat_range[i] || nn != flat_knn[i]) {
          std::printf("FAIL: S=1 results differ from unsharded at q%zu\n", i);
          std::abort();
        }
        if (rs.page_accesses + ks.page_accesses != flat_pa[i] ||
            rs.distance_computations + ks.distance_computations !=
                flat_cd[i]) {
          std::printf("FAIL: S=1 PA/compdists differ from unsharded at "
                      "q%zu\n",
                      i);
          std::abort();
        }
      }
      std::printf("S=1: cold results, PA and compdists byte-identical to "
                  "the unsharded tree (%zu queries)\n",
                  n);
    }

    QueryExecutor exec(tree.get(), 4);

    // Warm read-only throughput (warm-up pass, then measured range + kNN).
    std::vector<std::vector<ObjectId>> rr;
    std::vector<std::vector<Neighbor>> kr;
    BatchStats rstats, kstats;
    if (!exec.RunRangeBatch(queries, r, &rr, nullptr).ok() ||
        !exec.RunRangeBatch(queries, r, &rr, &rstats).ok() ||
        !exec.RunKnnBatch(queries, k, &kr, &kstats).ok()) {
      std::abort();
    }
    const double read_qps =
        rstats.qps > 0 && kstats.qps > 0
            ? double(2 * n) / (double(n) / rstats.qps + double(n) / kstats.qps)
            : 0.0;

    // Mixed 90/10 batch (blocks of 20: 9 range, 9 kNN, 1 insert, 1 delete;
    // deletes target distinct dataset ids — always present on this fresh
    // tree).
    std::vector<Request> ops;
    ObjectId next_id = ObjectId(ds.objects.size());
    for (size_t b = 0; b < blocks; ++b) {
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kRange;
        op.obj = queries[(b + j) % n];
        op.radius = r;
        ops.push_back(std::move(op));
      }
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kKnn;
        op.obj = queries[(b + j + 3) % n];
        op.k = k;
        ops.push_back(std::move(op));
      }
      Request ins;
      ins.kind = Request::Kind::kInsert;
      ins.obj = ds.objects[b % ds.objects.size()];
      ins.id = next_id++;
      ops.push_back(std::move(ins));
      Request del;
      del.kind = Request::Kind::kDelete;
      del.obj = ds.objects[b];
      del.id = ObjectId(b);
      ops.push_back(std::move(del));
    }
    BatchResult mixed = exec.Submit(ops);
    if (!mixed.first_error.ok()) std::abort();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!mixed.results[i].status.ok()) std::abort();
      if (ops[i].kind == Request::Kind::kDelete && !mixed.results[i].found) {
        std::printf("FAIL: delete missed its target at S=%zu\n", S);
        std::abort();
      }
    }
    const double mixed_qps = mixed.stats.qps;
    // 2 writes per 20-op block; write ops/s inside the mixed batch.
    const double write_ops_s = mixed_qps * 2.0 / 20.0;

    // Pure-insert batch: fresh ids, payloads cycled from the dataset. The
    // per-shard win here is structural — shallower COW spines — not
    // parallelism (writes still serialize on one core).
    const size_t n_inserts = 512;
    std::vector<Request> ins_ops(n_inserts);
    for (size_t i = 0; i < n_inserts; ++i) {
      ins_ops[i].kind = Request::Kind::kInsert;
      ins_ops[i].obj = ds.objects[(7 * i) % ds.objects.size()];
      ins_ops[i].id = next_id++;
    }
    BatchResult ins_batch = exec.Submit(ins_ops);
    if (!ins_batch.first_error.ok()) std::abort();
    for (const OpResult& res : ins_batch.results) {
      if (!res.status.ok()) std::abort();
    }
    if (!tree->CheckIntegrity().ok()) {
      std::printf("FAIL: integrity check after shard sweep at S=%zu\n", S);
      std::abort();
    }

    std::string sizes;
    for (size_t s = 0; s < tree->num_shards(); ++s) {
      if (s > 0) sizes += "/";
      sizes += std::to_string(tree->shard(s).size());
    }
    std::printf("S=%-3zu | %8.2f | %9.1f | %9.1f | %10.1f | %10.1f | %s\n", S,
                build_s, read_qps, mixed_qps, write_ops_s, ins_batch.stats.qps,
                sizes.c_str());
    std::printf(
        "JSON {\"bench\":\"sharded\",\"shards\":%zu,\"build_s\":%.3f,"
        "\"read_qps\":%.1f,\"mixed_qps\":%.1f,\"write_ops_s\":%.1f,"
        "\"insert_qps\":%.1f,\"shard_sizes\":\"%s\"}\n",
        S, build_s, read_qps, mixed_qps, write_ops_s, ins_batch.stats.qps,
        sizes.c_str());
    cells.push_back(
        Cell{S, build_s, read_qps, mixed_qps, write_ops_s, ins_batch.stats.qps, sizes});
  }
  PrintRule(96);
  const Cell& s1 = cells[0];
  const Cell* s4 = nullptr;
  for (const Cell& c : cells) {
    if (c.shards == 4) s4 = &c;
  }
  if (s4 != nullptr) {
    std::printf("S=4 vs S=1: mixed write throughput %.1f vs %.1f ops/s "
                "(%.2fx), insert batch %.1f vs %.1f ops/s (%.2fx)\n",
                s4->write_ops_s, s1.write_ops_s,
                s1.write_ops_s > 0 ? s4->write_ops_s / s1.write_ops_s : 0.0,
                s4->insert_qps, s1.insert_qps,
                s1.insert_qps > 0 ? s4->insert_qps / s1.insert_qps : 0.0);
  }

  FILE* json = std::fopen("BENCH_PR6.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"bench\": \"sharded_scatter_gather\",\n"
                 "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
                 "  \"queries\": %zu,\n  \"threads\": 4,\n"
                 "  \"mix\": \"per 20 ops: 9 range, 9 knn, 1 insert, "
                 "1 delete\",\n"
                 "  \"identity\": \"S=1 cold results, PA and compdists "
                 "byte-identical to the unsharded tree (asserted)\",\n"
                 "  \"cells\": [\n",
                 config.scale, n);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"shards\": %zu, \"build_s\": %.3f, "
                   "\"read_qps\": %.1f, \"mixed_qps\": %.1f, "
                   "\"write_ops_s\": %.1f, \"insert_qps\": %.1f, "
                   "\"shard_sizes\": \"%s\"}%s\n",
                   c.shards, c.build_s, c.read_qps, c.mixed_qps,
                   c.write_ops_s, c.insert_qps, c.sizes.c_str(),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_PR6.json\n");
  }
}

// ------------------------------------------ write-path engine sweep (PR 7)

// One cell of the write-heavy sweep: a 50/50 mixed batch (per 4-op block:
// 1 range, 1 kNN, 1 insert, 1 delete) through the executor on a
// disk-backed tree with full durability on (WAL + group commit + one fsync
// per commit group).
struct WalCell {
  size_t threads = 0;
  size_t group_max = 0;
  double write_ops_s = 0.0;
  double mixed_qps = 0.0;
  double fsyncs_per_write = 0.0;  // the group-commit amortization
  double p50_ms = 0.0, p99_ms = 0.0;
  uint64_t busy_retries = 0;  // must be 0: queued writers never see kBusy
};

void PrintWalCell(const WalCell& c) {
  std::printf("W=%-3zu G=%-4zu | %9.1f | %9.1f | %8.3f | %9.3f %9.3f | %4llu\n",
              c.threads, c.group_max, c.write_ops_s, c.mixed_qps,
              c.fsyncs_per_write, c.p50_ms, c.p99_ms,
              (unsigned long long)c.busy_retries);
  std::printf(
      "JSON {\"bench\":\"write_engine\",\"threads\":%zu,\"group_max\":%zu,"
      "\"write_ops_s\":%.1f,\"mixed_qps\":%.1f,\"fsyncs_per_write\":%.3f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"busy_retries\":%llu}\n",
      c.threads, c.group_max, c.write_ops_s, c.mixed_qps, c.fsyncs_per_write,
      c.p50_ms, c.p99_ms, (unsigned long long)c.busy_retries);
}

// Measures one (writers, group_max) cell. `prev_ids`/`next_id` thread the
// steady-cardinality chain across cells: each batch inserts fresh ids and
// deletes what the previous batch inserted (dataset ids on the first
// batch), so every delete provably finds its target and the tree's size is
// flat across the sweep.
WalCell MeasureWalCell(SpbTree* tree, const Dataset& ds,
                       const std::vector<Blob>& queries, double r, size_t k,
                       size_t threads, size_t group_max,
                       std::vector<ObjectId>* prev_ids, ObjectId* next_id) {
  TuningOptions tn = tree->tuning();
  tn.wal_group_max = group_max;
  if (!tree->ApplyTuning(tn).ok()) std::abort();
  // Checkpoint between cells so the WAL segment stays bounded and every
  // cell pays the same per-fsync cost.
  if (!tree->Save().ok()) std::abort();

  const size_t blocks = queries.size();
  std::vector<Request> ops;
  std::vector<ObjectId> new_ids;
  for (size_t b = 0; b < blocks; ++b) {
    Request rq;
    rq.kind = Request::Kind::kRange;
    rq.obj = queries[b % queries.size()];
    rq.radius = r;
    ops.push_back(std::move(rq));
    Request kq;
    kq.kind = Request::Kind::kKnn;
    kq.obj = queries[(b + 3) % queries.size()];
    kq.k = k;
    ops.push_back(std::move(kq));
    Request ins;
    ins.kind = Request::Kind::kInsert;
    ins.obj = ds.objects[b % ds.objects.size()];
    ins.id = (*next_id)++;
    new_ids.push_back(ins.id);
    ops.push_back(std::move(ins));
    Request del;
    del.kind = Request::Kind::kDelete;
    if (prev_ids->empty()) {
      del.obj = ds.objects[b];  // dataset ids: present on the fresh tree
      del.id = ObjectId(b);
    } else {
      del.obj = ds.objects[b % ds.objects.size()];
      del.id = (*prev_ids)[b % prev_ids->size()];
    }
    ops.push_back(std::move(del));
  }
  *prev_ids = std::move(new_ids);

  QueryExecutor exec(tree, threads);
  const uint64_t fsyncs_before = tree->CollectStats().wal_fsyncs;
  BatchResult batch = exec.Submit(ops);
  if (!batch.first_error.ok()) std::abort();
  const std::vector<OpResult>& results = batch.results;
  const BatchStats& stats = batch.stats;
  size_t writes = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!results[i].status.ok()) std::abort();
    if (ops[i].kind == Request::Kind::kDelete && !results[i].found) {
      std::printf("FAIL: delete missed its target at W=%zu G=%zu\n", threads,
                  group_max);
      std::abort();
    }
    if (ops[i].kind == Request::Kind::kInsert ||
        ops[i].kind == Request::Kind::kDelete) {
      ++writes;
    }
  }
  const uint64_t fsyncs = tree->CollectStats().wal_fsyncs - fsyncs_before;

  WalCell c;
  c.threads = threads;
  c.group_max = group_max;
  c.mixed_qps = stats.qps;
  c.write_ops_s = stats.qps * double(writes) / double(ops.size());
  c.fsyncs_per_write = writes > 0 ? double(fsyncs) / double(writes) : 0.0;
  c.p50_ms = stats.p50_seconds * 1e3;
  c.p99_ms = stats.p99_seconds * 1e3;
  c.busy_retries = stats.busy_retries;
  return c;
}

// One cold range pass under the paper's protocol; returns QPS.
double ColdRangeQps(SpbTree& tree, const std::vector<Blob>& queries,
                    double r) {
  std::vector<ObjectId> out;
  const auto start = std::chrono::steady_clock::now();
  for (const Blob& q : queries) {
    tree.FlushCaches();
    if (!tree.RangeQuery(q, r, &out, nullptr).ok()) std::abort();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall > 0.0 ? double(queries.size()) / wall : 0.0;
}

// Churn + compaction: delete and re-insert >= 30% of the tree (so a third
// of the RAF is dead bytes and the survivors are interleaved with garbage),
// then Compact() — the same rewrite the background worker runs — and
// compare cold range QPS at each state against a freshly built twin.
struct ChurnResult {
  size_t churned = 0, total = 0;
  uint64_t dead_before = 0, dead_after = 0;
  double fresh_qps = 0.0, churned_qps = 0.0, compacted_qps = 0.0;
  double compacted_vs_fresh = 0.0;
};

ChurnResult RunChurnCompaction(const BenchConfig& config, const Dataset& ds,
                               const std::vector<Blob>& queries, double r,
                               const std::string& dir) {
  SpbTreeOptions opts;
  opts.seed = config.seed;
  opts.storage_dir = dir;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }
  if (!tree->Save().ok()) std::abort();

  ChurnResult out;
  out.total = ds.objects.size();
  out.fresh_qps = Median3(ColdRangeQps(*tree, queries, r),
                          ColdRangeQps(*tree, queries, r),
                          ColdRangeQps(*tree, queries, r));

  // Churn every third object: delete, then re-insert the same payload
  // under a fresh id. Cardinality is unchanged; a third of the RAF records
  // are orphaned and the replacements land appended out of SFC order.
  std::vector<Blob> payloads;
  std::vector<ObjectId> fresh_ids;
  ObjectId next_id = ObjectId(ds.objects.size());
  for (size_t i = 0; i < ds.objects.size(); i += 3) {
    bool found = false;
    if (!tree->Delete(ds.objects[i], ObjectId(i), &found).ok() || !found) {
      std::abort();
    }
    payloads.push_back(ds.objects[i]);
    fresh_ids.push_back(next_id++);
  }
  if (!tree->BatchInsert(payloads, fresh_ids).ok()) std::abort();
  out.churned = payloads.size();
  out.dead_before = tree->io_stats().dead_bytes.load();
  out.churned_qps = Median3(ColdRangeQps(*tree, queries, r),
                            ColdRangeQps(*tree, queries, r),
                            ColdRangeQps(*tree, queries, r));

  if (!tree->Compact().ok()) std::abort();
  out.dead_after = tree->io_stats().dead_bytes.load();
  if (out.dead_after != 0) {
    std::printf("FAIL: compaction left %llu dead bytes\n",
                (unsigned long long)out.dead_after);
    std::abort();
  }
  if (!tree->CheckIntegrity().ok()) {
    std::printf("FAIL: integrity check after compaction\n");
    std::abort();
  }
  out.compacted_qps = Median3(ColdRangeQps(*tree, queries, r),
                              ColdRangeQps(*tree, queries, r),
                              ColdRangeQps(*tree, queries, r));
  out.compacted_vs_fresh =
      out.fresh_qps > 0.0 ? out.compacted_qps / out.fresh_qps : 0.0;
  return out;
}

// The write-path engine sweep (PR 7): disk-backed S=1 tree with WAL +
// group commit + fsync-per-group, a writer sweep (W in {1,2,4,8} at
// G=64) and a group-size sweep (G in {1,4,16,64} at W=4), then the churn +
// compaction experiment. Reports write ops/s, fsyncs/write, p50/p99 and
// busy_retries per cell and emits BENCH_PR7.json (schema in
// EXPERIMENTS.md). Acceptance gate: the best S=1 write ops/s must reach
// 2x the BENCH_PR6 S=1 mixed write baseline (244.9 ops/s, measured with
// no durability at all) — the bench aborts when missed.
void RunWriteEngine(const BenchConfig& config, const Dataset& ds,
                    const std::vector<Blob>& queries, double r, size_t k) {
  // BENCH_PR6.json, cells[shards=1].write_ops_s.
  constexpr double kPr6BaselineWriteOpsS = 244.9;

  const std::string dir = "bench_wal_dir";
  SpbTreeOptions opts;
  opts.seed = config.seed;
  opts.storage_dir = dir;
  opts.enable_wal = true;
  opts.enable_group_commit = true;
  opts.wal_fsync = true;
  opts.wal_group_max = 64;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }
  if (!tree->Save().ok()) std::abort();  // recovery base: checkpoint LSN 0

  std::printf("\n[write-path engine: disk-backed, WAL + group commit + "
              "fsync per group, 50/50 mix]\n");
  PrintRule(96);
  std::printf("%-11s | %9s | %9s | %8s | %9s %9s | %4s\n", "writersxgrp",
              "write/s", "mixed QPS", "fsync/wr", "p50(ms)", "p99(ms)",
              "busy");
  PrintRule(96);

  std::vector<ObjectId> prev_ids;
  ObjectId next_id = ObjectId(ds.objects.size());
  std::vector<WalCell> writer_cells, group_cells;
  for (size_t W : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    writer_cells.push_back(MeasureWalCell(tree.get(), ds, queries, r, k, W,
                                          64, &prev_ids, &next_id));
    PrintWalCell(writer_cells.back());
  }
  PrintRule(96);
  for (size_t G : {size_t(1), size_t(4), size_t(16), size_t(64)}) {
    group_cells.push_back(MeasureWalCell(tree.get(), ds, queries, r, k, 4, G,
                                         &prev_ids, &next_id));
    PrintWalCell(group_cells.back());
  }
  PrintRule(96);
  for (const WalCell& c : writer_cells) {
    if (c.busy_retries != 0) {
      std::printf("FAIL: group-commit writers saw kBusy (W=%zu)\n",
                  c.threads);
      std::abort();
    }
  }
  if (!tree->CheckIntegrity().ok()) {
    std::printf("FAIL: integrity check after write sweep\n");
    std::abort();
  }
  double best = 0.0;
  for (const WalCell& c : writer_cells) best = std::max(best, c.write_ops_s);
  for (const WalCell& c : group_cells) best = std::max(best, c.write_ops_s);
  const double speedup = best / kPr6BaselineWriteOpsS;
  std::printf("best durable write throughput: %.1f ops/s = %.2fx the "
              "BENCH_PR6 S=1 baseline (%.1f, no durability)\n",
              best, speedup, kPr6BaselineWriteOpsS);
  if (speedup < 2.0) {
    std::printf("FAIL: durable write throughput below the 2x acceptance "
                "gate\n");
    std::abort();
  }

  std::printf("\n[churn + compaction: delete/re-insert 1/3 of the tree, "
              "compact, cold range QPS]\n");
  const ChurnResult churn =
      RunChurnCompaction(config, ds, queries, r, dir + "_churn");
  std::printf("churned %zu/%zu objects; dead bytes %llu -> %llu; cold "
              "range QPS fresh %.1f / churned %.1f / compacted %.1f "
              "(%.2fx of fresh)\n",
              churn.churned, churn.total,
              (unsigned long long)churn.dead_before,
              (unsigned long long)churn.dead_after, churn.fresh_qps,
              churn.churned_qps, churn.compacted_qps,
              churn.compacted_vs_fresh);
  if (churn.compacted_vs_fresh < 0.9) {
    std::printf("WARN: compacted cold QPS below 90%% of the fresh tree\n");
  }

  FILE* json = std::fopen("BENCH_PR7.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(
        json,
        "  \"bench\": \"write_path_engine\",\n"
        "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
        "  \"queries\": %zu,\n  \"shards\": 1,\n"
        "  \"durability\": \"wal + group commit + one fsync per group\",\n"
        "  \"mix\": \"per 4 ops: 1 range, 1 knn, 1 insert, 1 delete\",\n"
        "  \"baseline_pr6_s1_write_ops_s\": %.1f,\n"
        "  \"best_write_ops_s\": %.1f,\n"
        "  \"speedup_vs_pr6_baseline\": %.2f,\n"
        "  \"acceptance\": \"best durable write_ops_s >= 2x the PR6 "
        "baseline; busy_retries == 0 in every cell (asserted)\",\n"
        "  \"writer_sweep\": [\n",
        config.scale, queries.size(), kPr6BaselineWriteOpsS, best, speedup);
    auto emit = [&](const std::vector<WalCell>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        const WalCell& c = cells[i];
        std::fprintf(json,
                     "    {\"threads\": %zu, \"group_max\": %zu, "
                     "\"write_ops_s\": %.1f, \"mixed_qps\": %.1f, "
                     "\"fsyncs_per_write\": %.3f, \"p50_ms\": %.3f, "
                     "\"p99_ms\": %.3f, \"busy_retries\": %llu}%s\n",
                     c.threads, c.group_max, c.write_ops_s, c.mixed_qps,
                     c.fsyncs_per_write, c.p50_ms, c.p99_ms,
                     (unsigned long long)c.busy_retries,
                     i + 1 < cells.size() ? "," : "");
      }
    };
    emit(writer_cells);
    std::fprintf(json, "  ],\n  \"group_sweep\": [\n");
    emit(group_cells);
    std::fprintf(
        json,
        "  ],\n  \"churn_compaction\": {\n"
        "    \"churned\": %zu, \"total\": %zu,\n"
        "    \"dead_bytes_before\": %llu, \"dead_bytes_after\": %llu,\n"
        "    \"cold_range_qps_fresh\": %.1f,\n"
        "    \"cold_range_qps_churned\": %.1f,\n"
        "    \"cold_range_qps_compacted\": %.1f,\n"
        "    \"compacted_vs_fresh\": %.3f\n  }\n}\n",
        churn.churned, churn.total, (unsigned long long)churn.dead_before,
        (unsigned long long)churn.dead_after, churn.fresh_qps,
        churn.churned_qps, churn.compacted_qps, churn.compacted_vs_fresh);
    std::fclose(json);
    std::printf("wrote BENCH_PR7.json\n");
  }
  PrintRule(96);
}

// ------------------------------------- parallel fan-out sweep (PR 8)

double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// The PR 8 sweep (BENCH_PR8.json, schema in docs/OPERATIONS.md):
/// S in {1,4} x T in {1,8}, serial vs parallel cross-shard scatter.
///
/// Per cell, the A/B runs are *interleaved* (serial, parallel, serial, ...)
/// so drift — cache warm-up, frequency scaling — lands on both sides
/// equally, and medians are reported. Every parallel rep's results are
/// compared against the serial rep's byte-for-byte; a mismatch aborts the
/// bench. Per-query PA/compdist identity is gated separately through
/// single-query batches (one query alone on the tree at a time — the only
/// regime where cumulative-counter deltas attribute per query — with the
/// query's own shard fan-out still parallel).
///
/// The mixed cell at T=8 additionally A/Bs the arena itself: the lock-free
/// ticket ring vs the SPB_ARENA_MUTEX=1 mutex/condvar fallback (the
/// pre-PR 8 executor shape), reporting p99 and busy_retries for both, plus
/// the contention-registry counters accumulated during the measured phase.
void RunFanoutSweep(const BenchConfig& config, const Dataset& ds,
                    const std::vector<Blob>& queries, double r, size_t k) {
  const size_t n = queries.size();
  constexpr int kReps = 5;

  std::printf("\n[parallel fan-out sweep: S in {1,4} x T in {1,8}, "
              "interleaved serial/parallel A/B, median of %d]\n",
              kReps);
  PrintRule(96);
  std::printf("%-9s | %10s | %10s | %8s | %10s | %10s\n", "cell",
              "ser QPS", "par QPS", "par/ser", "ser p99ms", "par p99ms");
  PrintRule(96);

  struct Cell {
    size_t shards, threads;
    double serial_qps, parallel_qps, serial_p99_ms, parallel_p99_ms;
  };
  std::vector<Cell> cells;

  for (size_t S : {size_t(1), size_t(4)}) {
    SpbTreeOptions opts;
    opts.seed = config.seed;
    opts.num_shards = S;
    std::unique_ptr<ShardedSpbTree> tree;
    if (!ShardedSpbTree::Build(ds.objects, ds.metric.get(), opts, &tree)
             .ok()) {
      std::abort();
    }

    // Per-query identity gate: serial baseline on this thread, parallel
    // rerun through single-query groups on a T=8 pool.
    {
      tree->set_parallel_scatter(false);
      std::vector<std::vector<ObjectId>> want_ids(n);
      std::vector<uint64_t> want_pa(n), want_cd(n);
      for (size_t i = 0; i < n; ++i) {
        QueryStats rs, ks;
        std::vector<Neighbor> nn;
        // Cold per query on both sides of the gate: logical PA depends on
        // what the decoded-node cache absorbs, so identity is asserted
        // cold-vs-cold (same discipline as the PR 6 S=1 gate).
        tree->FlushCaches();
        if (!tree->RangeQuery(queries[i], r, &want_ids[i], &rs).ok()) {
          std::abort();
        }
        tree->FlushCaches();
        if (!tree->KnnQuery(queries[i], k, &nn, &ks).ok()) std::abort();
        want_pa[i] = rs.page_accesses + ks.page_accesses;
        want_cd[i] = rs.distance_computations + ks.distance_computations;
      }
      tree->set_parallel_scatter(true);
      QueryExecutor exec(tree.get(), 8);
      for (size_t i = 0; i < n; ++i) {
        QueryStats rs, ks;
        std::vector<ObjectId> ids;
        std::vector<Neighbor> nn;
        bool ok = true;
        const std::function<void(size_t)> one = [&](size_t) {
          ok = tree->RangeQuery(queries[i], r, &ids, &rs).ok();
        };
        const std::function<void(size_t)> two = [&](size_t) {
          ok = ok && tree->KnnQuery(queries[i], k, &nn, &ks).ok();
        };
        tree->FlushCaches();
        exec.arena()->RunGroup(1, one, /*help=*/false);
        tree->FlushCaches();
        exec.arena()->RunGroup(1, two, /*help=*/false);
        if (!ok) std::abort();
        if (ids != want_ids[i] ||
            rs.page_accesses + ks.page_accesses != want_pa[i] ||
            rs.distance_computations + ks.distance_computations !=
                want_cd[i]) {
          std::printf("FAIL: parallel scatter not identical to serial at "
                      "S=%zu q%zu (ids %zu vs %zu, pa %llu vs %llu, cd "
                      "%llu vs %llu)\n",
                      S, i, ids.size(), want_ids[i].size(),
                      (unsigned long long)(rs.page_accesses +
                                           ks.page_accesses),
                      (unsigned long long)want_pa[i],
                      (unsigned long long)(rs.distance_computations +
                                           ks.distance_computations),
                      (unsigned long long)want_cd[i]);
          std::abort();
        }
      }
    }

    for (size_t T : {size_t(1), size_t(8)}) {
      QueryExecutor exec(tree.get(), T);
      // Warm-up pass (also the identity reference for the batch reps).
      tree->set_parallel_scatter(false);
      std::vector<std::vector<ObjectId>> want_rr;
      std::vector<std::vector<Neighbor>> want_kr;
      if (!exec.RunRangeBatch(queries, r, &want_rr, nullptr).ok() ||
          !exec.RunKnnBatch(queries, k, &want_kr, nullptr).ok()) {
        std::abort();
      }

      std::vector<double> ser_qps, par_qps, ser_p99, par_p99;
      for (int rep = 0; rep < kReps; ++rep) {
        for (bool parallel : {false, true}) {
          tree->set_parallel_scatter(parallel);
          std::vector<std::vector<ObjectId>> rr;
          std::vector<std::vector<Neighbor>> kr;
          BatchStats rstats, kstats;
          if (!exec.RunRangeBatch(queries, r, &rr, &rstats).ok() ||
              !exec.RunKnnBatch(queries, k, &kr, &kstats).ok()) {
            std::abort();
          }
          if (rr != want_rr || kr.size() != want_kr.size()) {
            std::printf("FAIL: A/B results diverged at S=%zu T=%zu "
                        "parallel=%d\n",
                        S, T, int(parallel));
            std::abort();
          }
          for (size_t i = 0; i < kr.size(); ++i) {
            if (kr[i].size() != want_kr[i].size()) std::abort();
            for (size_t j = 0; j < kr[i].size(); ++j) {
              if (kr[i][j].id != want_kr[i][j].id ||
                  kr[i][j].distance != want_kr[i][j].distance) {
                std::printf("FAIL: kNN A/B diverged at S=%zu T=%zu\n", S, T);
                std::abort();
              }
            }
          }
          const double qps =
              rstats.qps > 0 && kstats.qps > 0
                  ? double(2 * n) /
                        (double(n) / rstats.qps + double(n) / kstats.qps)
                  : 0.0;
          const double p99 =
              std::max(rstats.p99_seconds, kstats.p99_seconds) * 1e3;
          (parallel ? par_qps : ser_qps).push_back(qps);
          (parallel ? par_p99 : ser_p99).push_back(p99);
        }
      }
      Cell c;
      c.shards = S;
      c.threads = T;
      c.serial_qps = MedianOf(ser_qps);
      c.parallel_qps = MedianOf(par_qps);
      c.serial_p99_ms = MedianOf(ser_p99);
      c.parallel_p99_ms = MedianOf(par_p99);
      cells.push_back(c);
      std::printf("S=%zu T=%-3zu | %10.1f | %10.1f | %7.2fx | %10.3f | "
                  "%10.3f\n",
                  S, T, c.serial_qps, c.parallel_qps,
                  c.serial_qps > 0 ? c.parallel_qps / c.serial_qps : 0.0,
                  c.serial_p99_ms, c.parallel_p99_ms);
    }
  }
  PrintRule(96);

  // Mixed 90/10 at T=8 on S=4: lock-free ring vs mutex-fallback arena, with
  // the contention registry accumulating over each measured phase.
  struct MixedCell {
    const char* arena;
    double qps = 0.0, p99_ms = 0.0;
    uint64_t busy_retries = 0;
    ArenaQueueStats queue;
    std::vector<LockStatsSnapshot> locks;
  };
  std::vector<MixedCell> mixed_cells;
  for (const bool mutex_arena : {false, true}) {
    SpbTreeOptions opts;
    opts.seed = config.seed;
    opts.num_shards = 4;
    std::unique_ptr<ShardedSpbTree> tree;
    if (!ShardedSpbTree::Build(ds.objects, ds.metric.get(), opts, &tree)
             .ok()) {
      std::abort();
    }
    if (mutex_arena) ::setenv("SPB_ARENA_MUTEX", "1", 1);
    QueryExecutor exec(tree.get(), 8);
    if (mutex_arena) ::unsetenv("SPB_ARENA_MUTEX");

    std::vector<Request> ops;
    ObjectId next_id = ObjectId(ds.objects.size());
    for (size_t b = 0; b < n; ++b) {
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kRange;
        op.obj = queries[(b + j) % n];
        op.radius = r;
        ops.push_back(std::move(op));
      }
      for (size_t j = 0; j < 9; ++j) {
        Request op;
        op.kind = Request::Kind::kKnn;
        op.obj = queries[(b + j + 3) % n];
        op.k = k;
        ops.push_back(std::move(op));
      }
      Request ins;
      ins.kind = Request::Kind::kInsert;
      ins.obj = ds.objects[b % ds.objects.size()];
      ins.id = next_id++;
      ops.push_back(std::move(ins));
      Request del;
      del.kind = Request::Kind::kDelete;
      del.obj = ds.objects[b];
      del.id = ObjectId(b);
      ops.push_back(std::move(del));
    }

    BatchResult warm = exec.Submit(ops);
    if (!warm.first_error.ok()) std::abort();

    ContentionReset();
    std::vector<double> qps, p99;
    uint64_t busy = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      // Re-target the per-rep writes: each insert gets a fresh id (payload
      // keyed off the id so insert/delete pairs agree), each delete targets
      // the previous round's insert from the same block — always present.
      for (Request& op : ops) {
        if (op.kind == Request::Kind::kInsert) {
          op.id = next_id++;
          op.obj = ds.objects[size_t(op.id) % ds.objects.size()];
        }
        if (op.kind == Request::Kind::kDelete) {
          op.id = ObjectId(uint64_t(next_id) - 1 - n);
          op.obj = ds.objects[size_t(op.id) % ds.objects.size()];
        }
      }
      BatchResult rep_batch = exec.Submit(ops);
      if (!rep_batch.first_error.ok()) std::abort();
      for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == Request::Kind::kDelete &&
            !rep_batch.results[i].found) {
          std::printf("FAIL: mixed-rep delete missed its target\n");
          std::abort();
        }
      }
      qps.push_back(rep_batch.stats.qps);
      p99.push_back(rep_batch.stats.p99_seconds * 1e3);
      busy += rep_batch.stats.busy_retries;
    }
    MixedCell mc;
    mc.arena = mutex_arena ? "mutex_fallback" : "ring";
    mc.qps = MedianOf(qps);
    mc.p99_ms = MedianOf(p99);
    mc.busy_retries = busy;
    mc.queue = exec.arena()->queue_stats();
    mc.locks = ContentionSnapshot();
    mixed_cells.push_back(std::move(mc));
    std::printf("mixed 90/10 T=8 S=4 arena=%-14s: %10.1f QPS, p99 %.3f ms, "
                "%llu busy retries\n",
                mixed_cells.back().arena, mixed_cells.back().qps,
                mixed_cells.back().p99_ms,
                (unsigned long long)mixed_cells.back().busy_retries);
  }

  FILE* json = std::fopen("BENCH_PR8.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n");
    std::fprintf(
        json,
        "  \"bench\": \"parallel_fanout\",\n"
        "  \"dataset\": \"synthetic\",\n  \"scale\": %zu,\n"
        "  \"queries\": %zu,\n  \"reps\": %d,\n"
        "  \"identity\": \"parallel scatter byte-identical to serial per "
        "query (results, PA, compdists) and per batch (asserted, abort on "
        "mismatch)\",\n"
        "  \"cells\": [\n",
        config.scale, n, kReps);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"shards\": %zu, \"threads\": %zu, "
                   "\"serial_qps\": %.1f, \"parallel_qps\": %.1f, "
                   "\"serial_p99_ms\": %.3f, \"parallel_p99_ms\": %.3f}%s\n",
                   c.shards, c.threads, c.serial_qps, c.parallel_qps,
                   c.serial_p99_ms, c.parallel_p99_ms,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"mixed_t8_s4\": [\n");
    for (size_t i = 0; i < mixed_cells.size(); ++i) {
      const MixedCell& mc = mixed_cells[i];
      std::fprintf(
          json,
          "    {\"arena\": \"%s\", \"qps\": %.1f, \"p99_ms\": %.3f, "
          "\"busy_retries\": %llu,\n"
          "     \"queue\": {\"tickets_pushed\": %llu, \"tickets_popped\": "
          "%llu, \"stale_tickets\": %llu, \"inline_drains\": %llu, "
          "\"parks\": %llu, \"unparks\": %llu, \"fallback_lock_claims\": "
          "%llu, \"fallback_tickets_claimed\": %llu},\n"
          "     \"locks\": [",
          mc.arena, mc.qps, mc.p99_ms, (unsigned long long)mc.busy_retries,
          (unsigned long long)mc.queue.tickets_pushed,
          (unsigned long long)mc.queue.tickets_popped,
          (unsigned long long)mc.queue.stale_tickets,
          (unsigned long long)mc.queue.inline_drains,
          (unsigned long long)mc.queue.parks,
          (unsigned long long)mc.queue.unparks,
          (unsigned long long)mc.queue.fallback_lock_claims,
          (unsigned long long)mc.queue.fallback_tickets_claimed);
      bool first = true;
      for (const LockStatsSnapshot& l : mc.locks) {
        if (l.acquires == 0) continue;
        std::fprintf(json,
                     "%s\n       {\"name\": \"%s\", \"acquires\": %llu, "
                     "\"contended\": %llu, \"wait_ms\": %.3f}",
                     first ? "" : ",", l.name.c_str(),
                     (unsigned long long)l.acquires,
                     (unsigned long long)l.contended, l.wait_ns / 1e6);
        first = false;
      }
      std::fprintf(json, "\n     ]}%s\n",
                   i + 1 < mixed_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_PR8.json\n");
  }
}

void Run(const BenchConfig& config) {
  std::printf("Concurrency + cold-path I/O engine: throughput sweeps\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  const double r = 0.08 * ds.metric->max_distance();
  constexpr size_t kK = 8;

  // Server-sized pool, then a capacity-constrained one (64 pages holds a
  // fraction of the working set, so every query faults pages back in even
  // without an explicit flush).
  for (size_t cache_pages : {size_t(256), size_t(64)}) {
    RunCapacity(config, ds, queries, r, kK, cache_pages);
  }

  // Warm-path decode engine A/B (PR 4): default pool sizes, T=1.
  RunEngineAb(config, ds, queries, r, kK);

  // Mixed 90/10 read/write sweep (PR 5): snapshot-pinned queries
  // interleaved with serialized writers, fresh tree.
  RunMixedSweep(config, ds, queries, r, kK);

  // Sharded scatter-gather sweep (PR 6): S in {1,2,4,8}, S=1 identity-gated
  // against the unsharded tree.
  RunShardSweep(config, ds, queries, r, kK);

  // Write-path engine sweep (PR 7): durable group-commit writes + churn /
  // compaction, disk-backed.
  RunWriteEngine(config, ds, queries, r, kK);

  // Parallel fan-out sweep (PR 8): serial vs parallel cross-shard scatter,
  // identity-gated, plus the ring vs mutex-fallback arena A/B.
  RunFanoutSweep(config, ds, queries, r, kK);

  std::printf(
      "\nCold rows: prefetch vs demand is the I/O engine's win (speedup "
      "column); logical PA is invariant by construction. Warm rows: QPS "
      "scales with T up to the machine's core count, p99 grows with T as "
      "workers queue on memory bandwidth.\n\n");
}

// Runs only the sharded sweep (ctest / check.sh entry point: the S=1
// identity gate and the S sweep at a small scale without the full bench).
void RunShardsOnly(const BenchConfig& config) {
  std::printf("Sharded scatter-gather sweep (standalone)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  const double r = 0.08 * ds.metric->max_distance();
  RunShardSweep(config, ds, queries, r, /*k=*/8);
}

// Runs only the parallel fan-out sweep (ctest / check.sh entry point:
// identity gates plus BENCH_PR8.json at a small scale).
void RunFanoutOnly(const BenchConfig& config) {
  std::printf("Parallel fan-out sweep (standalone)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  const double r = 0.08 * ds.metric->max_distance();
  RunFanoutSweep(config, ds, queries, r, /*k=*/8);
}

// Runs only the write-path engine sweep (produces BENCH_PR7.json in the
// working directory without touching the other bench JSONs).
void RunWalOnly(const BenchConfig& config) {
  std::printf("Write-path engine sweep (standalone)\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  const double r = 0.08 * ds.metric->max_distance();
  RunWriteEngine(config, ds, queries, r, /*k=*/8);
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  // ParseArgs ignores flags it does not know, so --shards-only composes
  // with --scale/--queries/--seed.
  bool shards_only = false;
  bool wal_only = false;
  bool fanout_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards-only") == 0) shards_only = true;
    if (std::strcmp(argv[i], "--wal-only") == 0) wal_only = true;
    if (std::strcmp(argv[i], "--fanout-only") == 0) fanout_only = true;
  }
  const spb::bench::BenchConfig config = spb::bench::ParseArgs(
      argc, argv, /*default_scale=*/20000, /*default_queries=*/256);
  if (shards_only) {
    spb::bench::RunShardsOnly(config);
  } else if (fanout_only) {
    spb::bench::RunFanoutOnly(config);
  } else if (wal_only) {
    spb::bench::RunWalOnly(config);
  } else {
    spb::bench::Run(config);
  }
  return 0;
}
