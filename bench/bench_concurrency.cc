// Concurrent batch-query throughput: sweeps the QueryExecutor's thread
// count T over {1, 2, 4, 8} on the synthetic vector dataset and reports
// QPS, p50/p99 latency and aggregate PA/compdists for range and kNN
// batches. Unlike the per-query paper benchmarks (bench_fig*), caches are
// NOT flushed between queries — this measures served throughput with a
// warm, shared, striped buffer pool, the production regime the ROADMAP
// targets. Emits one JSON line per configuration alongside the table so
// results can be scraped like the other bench targets' outputs.
//
// Result sets are checked to be identical across all T (the concurrent
// read path must not change answers).
#include <string>

#include "bench/bench_common.h"
#include "exec/query_executor.h"

namespace spb {
namespace bench {
namespace {

void PrintJson(const char* workload, size_t threads, const BatchStats& s,
               double speedup) {
  std::printf(
      "JSON {\"bench\":\"concurrency\",\"workload\":\"%s\",\"threads\":%zu,"
      "\"queries\":%zu,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"pa\":%llu,\"compdists\":%llu,\"speedup_vs_t1\":%.2f}\n",
      workload, threads, s.num_queries, s.qps, s.p50_seconds * 1e3,
      s.p99_seconds * 1e3, (unsigned long long)s.totals.page_accesses,
      (unsigned long long)s.totals.distance_computations, speedup);
}

void Run(const BenchConfig& config) {
  std::printf("Concurrency: batch query throughput vs worker threads\n");
  std::printf("scale=%zu queries=%zu\n", config.scale, config.queries);
  Dataset ds = MakeDatasetByName("synthetic", config.scale, config.seed);
  const auto queries = QueryWorkload(ds, config.queries);
  const double r = 0.08 * ds.metric->max_distance();
  constexpr size_t kK = 8;

  SpbTreeOptions opts;
  opts.seed = config.seed;
  // Server-sized caches: large enough that the LRU stripes across shards
  // and concurrent queries share warm pages.
  opts.btree_cache_pages = 256;
  opts.raf_cache_pages = 256;
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &tree).ok()) {
    std::abort();
  }

  const size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<ObjectId>> range_baseline;
  std::vector<std::vector<Neighbor>> knn_baseline;
  double range_qps_t1 = 0.0, knn_qps_t1 = 0.0;

  std::printf("\n[synthetic, |O|=%zu, range r=8%% of d+, kNN k=%zu]\n",
              ds.objects.size(), kK);
  PrintRule();
  std::printf("%-6s %2s | %10s %10s %10s | %12s %12s | %8s\n", "work", "T",
              "QPS", "p50(ms)", "p99(ms)", "PA", "compdists", "speedup");
  PrintRule();

  for (size_t threads : thread_counts) {
    QueryExecutor exec(tree.get(), threads);

    std::vector<std::vector<ObjectId>> range_results;
    BatchStats rs;
    // Warm-up pass so every T sees the same warm cache, then the measured
    // pass.
    if (!exec.RunRangeBatch(queries, r, &range_results, nullptr).ok() ||
        !exec.RunRangeBatch(queries, r, &range_results, &rs).ok()) {
      std::abort();
    }
    if (threads == 1) {
      range_baseline = range_results;
      range_qps_t1 = rs.qps;
    } else if (range_results != range_baseline) {
      std::printf("FAIL: range results differ at T=%zu\n", threads);
      std::abort();
    }
    const double rspeed = range_qps_t1 > 0 ? rs.qps / range_qps_t1 : 0.0;
    std::printf("%-6s %2zu | %10.1f %10.3f %10.3f | %12llu %12llu | %7.2fx\n",
                "range", threads, rs.qps, rs.p50_seconds * 1e3,
                rs.p99_seconds * 1e3,
                (unsigned long long)rs.totals.page_accesses,
                (unsigned long long)rs.totals.distance_computations, rspeed);
    PrintJson("range", threads, rs, rspeed);

    std::vector<std::vector<Neighbor>> knn_results;
    BatchStats ks;
    if (!exec.RunKnnBatch(queries, kK, &knn_results, nullptr).ok() ||
        !exec.RunKnnBatch(queries, kK, &knn_results, &ks).ok()) {
      std::abort();
    }
    if (threads == 1) {
      knn_baseline = knn_results;
      knn_qps_t1 = ks.qps;
    } else if (knn_results != knn_baseline) {
      std::printf("FAIL: kNN results differ at T=%zu\n", threads);
      std::abort();
    }
    const double kspeed = knn_qps_t1 > 0 ? ks.qps / knn_qps_t1 : 0.0;
    std::printf("%-6s %2zu | %10.1f %10.3f %10.3f | %12llu %12llu | %7.2fx\n",
                "knn", threads, ks.qps, ks.p50_seconds * 1e3,
                ks.p99_seconds * 1e3,
                (unsigned long long)ks.totals.page_accesses,
                (unsigned long long)ks.totals.distance_computations, kspeed);
    PrintJson("knn", threads, ks, kspeed);
  }
  PrintRule();
  std::printf(
      "\nResult sets identical across all thread counts. Expected shape: QPS "
      "scales with T up to the machine's core count (this workload is "
      "CPU-bound once the buffer pool is warm), p99 grows with T as workers "
      "queue on memory bandwidth.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000,
                                        /*default_queries=*/256));
  return 0;
}
