// Closed-loop serving bench for the network layer (PR 10, src/net): N
// client threads (N in {1, 4, 16}) each drive one TCP connection over
// loopback against a server multiplexing onto one QueryExecutor pool, with
// a mixed 90/10 read/write workload (5 range + 4 kNN + 1 insert-or-delete
// per 10-op block). Reported per client count: achieved QPS, client-side
// p50/p99 latency, and the busy-reply rate under the server's admission
// control (busy ops are retried with capped backoff — the PR 7 taxonomy —
// and still counted against latency). Results land in BENCH_PR10.json.
//
//   --identity-only   run just the wire-identity gate: the same Request
//                     sequence over TCP vs in-process Submit() on an
//                     identically-built twin index must produce
//                     byte-identical results, PA and compdists. Aborts on
//                     any divergence; registered as the tier-1 `net_sweep`
//                     ctest.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/spb_tree.h"
#include "exec/query_executor.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

namespace spb {
namespace bench {
namespace {

constexpr double kRadius = 0.2;
constexpr size_t kK = 5;

SpbTreeOptions BaseOptions(const BenchConfig& config) {
  SpbTreeOptions opts;
  opts.num_pivots = 4;
  opts.seed = config.seed;
  return opts;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------------ identity gate

// Wire-identity gate (tier-1 `net_sweep`): mixed blocks — range + kNN
// reads, one insert and one delete each — submitted over loopback TCP and
// through an in-process QueryExecutor::Submit() on a twin index built
// identically. Serialized results must match byte for byte and the
// PA/compdists aggregates in the reply trailer must equal the in-process
// BatchStats, block after block.
int RunIdentity(const BenchConfig& config) {
  Dataset ds = MakeSynthetic(config.scale, 23);
  std::unique_ptr<SpbTree> served, twin;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), BaseOptions(config),
                      &served)
           .ok() ||
      !SpbTree::Build(ds.objects, ds.metric.get(), BaseOptions(config),
                      &twin)
           .ok()) {
    std::abort();
  }
  // Single-threaded executors on both sides: logical PA depends on what the
  // decoded-node cache absorbs, which depends on op interleaving, so the PA
  // leg of the gate needs deterministic serial execution (same discipline as
  // the fanout_sweep per-query gate — concurrency identity is its job; this
  // gate isolates the wire layer).
  QueryExecutor served_exec(served.get(), 1);
  QueryExecutor twin_exec(twin.get(), 1);
  net::Server server(&served_exec, net::ServerOptions{});
  if (!server.Start().ok()) std::abort();
  net::Client client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) std::abort();

  const size_t n = ds.objects.size();
  const size_t blocks = std::max<size_t>(1, config.queries / 4);
  ObjectId next_id = ObjectId(n);
  for (size_t block = 0; block < blocks; ++block) {
    std::vector<Request> ops;
    for (size_t j = 0; j < 4; ++j) {
      ops.push_back(Request::Range(ds.objects[(7 * block + j) % n], kRadius));
      ops.push_back(Request::Knn(ds.objects[(11 * block + j) % n], kK));
    }
    ops.push_back(Request::Insert(ds.objects[(3 * block) % n], next_id++));
    ops.push_back(Request::Delete(ds.objects[block % n], ObjectId(block % n)));

    served->FlushCaches();
    twin->FlushCaches();
    served->ResetCounters();
    twin->ResetCounters();
    std::vector<OpResult> wire_results;
    net::WireBatchStats wire_stats;
    if (!client.Submit(ops, &wire_results, &wire_stats).ok()) std::abort();
    BatchResult local = twin_exec.Submit(ops);
    if (!local.first_error.ok()) std::abort();

    std::vector<uint8_t> wire_bytes, local_bytes;
    for (size_t i = 0; i < ops.size(); ++i) {
      net::EncodeOpResult(ops[i], wire_results[i], &wire_bytes);
      net::EncodeOpResult(ops[i], local.results[i], &local_bytes);
    }
    if (wire_bytes != local_bytes) {
      std::printf("FAIL: wire results diverge from in-process in block %zu\n",
                  block);
      std::abort();
    }
    if (wire_stats.page_accesses != local.stats.totals.page_accesses ||
        wire_stats.distance_computations !=
            local.stats.totals.distance_computations) {
      std::printf(
          "FAIL: wire costs diverge in block %zu: PA %llu vs %llu, "
          "compdists %llu vs %llu\n",
          block, (unsigned long long)wire_stats.page_accesses,
          (unsigned long long)local.stats.totals.page_accesses,
          (unsigned long long)wire_stats.distance_computations,
          (unsigned long long)local.stats.totals.distance_computations);
      std::abort();
    }
  }
  server.Stop();
  std::printf(
      "net identity sweep: %zu blocks byte-identical over the wire "
      "(results + PA + compdists)\n",
      blocks);
  return 0;
}

// --------------------------------------------------------- closed-loop bench

struct Cell {
  size_t clients = 0;
  size_t ops = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double busy_rate = 0.0;  // busy replies / (ops + busy replies)
  uint64_t busy_replies = 0;
};

// One client thread's closed loop: `ops` mixed operations, one at a time,
// retrying BUSY with capped exponential backoff. Latencies include retries
// (the client-visible cost of pushback).
void ClientLoop(const Dataset& ds, uint16_t port, size_t client_idx,
                size_t ops, std::vector<double>* latencies,
                std::atomic<uint64_t>* busy_replies,
                std::atomic<bool>* failed) {
  net::Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    failed->store(true);
    return;
  }
  const size_t n = ds.objects.size();
  // Per-client id space so deletes always target this client's inserts.
  ObjectId next_id = ObjectId(1000000 + client_idx * 100000);
  std::vector<std::pair<ObjectId, size_t>> live;  // (id, object index)
  latencies->reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    const size_t phase = i % 10;
    const size_t oi = (client_idx * 7919 + i * 131) % n;
    Status s;
    const double start = Now();
    for (int attempt = 0;; ++attempt) {
      if (phase < 5) {
        std::vector<ObjectId> ids;
        s = client.Range(ds.objects[oi], kRadius, &ids);
      } else if (phase < 9) {
        std::vector<Neighbor> nn;
        s = client.Knn(ds.objects[oi], kK, &nn);
      } else if (live.empty() || (i / 10) % 2 == 0) {
        s = client.Insert(ds.objects[oi], next_id);
        if (s.ok()) live.emplace_back(next_id++, oi);
      } else {
        const auto [id, obj] = live.back();
        s = client.Delete(ds.objects[obj], id);
        if (s.ok()) live.pop_back();
      }
      if (s.code() != Status::Code::kBusy) break;
      busy_replies->fetch_add(1, std::memory_order_relaxed);
      // Capped exponential backoff, same shape as the executor's write
      // retry loop (PR 7): 50us doubling to 1ms.
      const int shift = std::min(attempt, 4);
      std::this_thread::sleep_for(std::chrono::microseconds(50 << shift));
    }
    if (!s.ok()) {
      failed->store(true);
      return;
    }
    latencies->push_back(Now() - start);
  }
}

int RunServingSweep(const BenchConfig& config) {
  Dataset ds = MakeSynthetic(config.scale, 23);
  std::unique_ptr<SpbTree> tree;
  if (!SpbTree::Build(ds.objects, ds.metric.get(), BaseOptions(config),
                      &tree)
           .ok()) {
    std::abort();
  }
  QueryExecutor exec(tree.get(), 4);
  net::ServerOptions sopts;
  sopts.num_dispatchers = 4;
  net::Server server(&exec, sopts);
  if (!server.Start().ok()) std::abort();

  std::printf("serving sweep: %zu objects, mixed 90/10 workload, loopback, "
              "4 executor threads / 4 dispatchers\n",
              ds.objects.size());
  std::printf("N(clients) | achieved QPS |  p50 ms |  p99 ms | busy rate\n");
  PrintRule(60);

  std::vector<Cell> cells;
  for (size_t clients : {size_t{1}, size_t{4}, size_t{16}}) {
    const size_t ops_per_client =
        std::max<size_t>(100, config.queries * 10 / clients);
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<uint64_t> busy_replies{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    const double start = Now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(ClientLoop, std::cref(ds), server.port(), c,
                           ops_per_client, &latencies[c], &busy_replies,
                           &failed);
    }
    for (std::thread& t : threads) t.join();
    const double wall = Now() - start;
    if (failed.load()) {
      std::printf("FAIL: a client saw a non-busy error at N=%zu\n", clients);
      std::abort();
    }
    std::vector<double> all;
    for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    Cell cell;
    cell.clients = clients;
    cell.ops = all.size();
    cell.qps = wall > 0 ? double(all.size()) / wall : 0.0;
    cell.p50_ms = all.empty() ? 0.0 : all[all.size() / 2] * 1e3;
    cell.p99_ms = all.empty() ? 0.0 : all[size_t(double(all.size()) * 0.99)] *
                                          1e3;
    cell.busy_replies = busy_replies.load();
    cell.busy_rate =
        double(cell.busy_replies) / double(cell.ops + cell.busy_replies);
    cells.push_back(cell);
    std::printf("N=%-8zu | %12.1f | %7.3f | %7.3f | %9.4f\n", clients,
                cell.qps, cell.p50_ms, cell.p99_ms, cell.busy_rate);
    std::printf(
        "JSON {\"bench\":\"serving\",\"clients\":%zu,\"ops\":%zu,"
        "\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"busy_rate\":%.4f}\n",
        clients, cell.ops, cell.qps, cell.p50_ms, cell.p99_ms,
        cell.busy_rate);
  }
  PrintRule(60);
  if (!tree->CheckIntegrity().ok()) {
    std::printf("FAIL: integrity check after serving sweep\n");
    std::abort();
  }
  const net::ServerStats ss = server.stats();
  std::printf("server totals: %llu ops, %llu frames in / %llu out, "
              "%llu busy-rejected, %llu protocol errors\n",
              (unsigned long long)ss.ops_executed,
              (unsigned long long)ss.frames_received,
              (unsigned long long)ss.frames_sent,
              (unsigned long long)ss.ops_rejected_busy,
              (unsigned long long)ss.protocol_errors);
  server.Stop();

  FILE* json = std::fopen("BENCH_PR10.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"serving\",\n");
    WriteHostJson(json);
    std::fprintf(json, ",\n  \"config\": {\"scale\": %zu, \"queries\": %zu, "
                       "\"workload\": \"mixed 90/10 closed loop, loopback\", "
                       "\"executor_threads\": 4, \"dispatchers\": 4},\n",
                 config.scale, config.queries);
    std::fprintf(json, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"clients\": %zu, \"ops\": %zu, \"qps\": %.1f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"busy_rate\": "
                   "%.4f, \"busy_replies\": %llu}%s\n",
                   c.clients, c.ops, c.qps, c.p50_ms, c.p99_ms, c.busy_rate,
                   (unsigned long long)c.busy_replies,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"identity\": \"enforced by the net_sweep "
                       "ctest (--identity-only)\"\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_PR10.json\n");
  }
  return 0;
}

int Main(int argc, char** argv) {
  bool identity_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--identity-only") == 0) identity_only = true;
  }
  const BenchConfig config = ParseArgs(argc, argv, /*default_scale=*/4000,
                                       /*default_queries=*/40);
  if (identity_only) return RunIdentity(config);
  return RunServingSweep(config);
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) { return spb::bench::Main(argc, argv); }
