// Reproduces Table 7: update cost — the average cost of inserting 100
// random objects into each MAM built on Words.
#include "bench/mam_zoo.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Table 7: update (insertion) cost of MAMs on Words\n");
  std::printf("scale=%zu inserts=100\n", config.scale);
  Dataset ds = MakeWords(config.scale, config.seed);
  Dataset extra = MakeWords(100, config.seed + 1);
  PrintRule();
  std::printf("%-12s | %12s %12s %12s\n", "MAM", "PA", "compdists",
              "time(ms)");
  PrintRule();
  for (const char* mam : kAllMams) {
    BuiltMam built = BuildMam(mam, ds, config.seed);
    built.index->FlushCaches();
    built.index->ResetCounters();
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < extra.objects.size(); ++i) {
      if (!built.index
               ->Insert(extra.objects[i], ObjectId(ds.objects.size() + i))
               .ok()) {
        std::abort();
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const QueryStats cost = built.index->cumulative_stats();
    const double n = double(extra.objects.size());
    std::printf("%-12s | %12.2f %12.2f %12.4f\n", mam,
                double(cost.page_accesses) / n,
                double(cost.distance_computations) / n, secs * 1000.0 / n);
  }
  PrintRule();
  std::printf(
      "\nExpected shape (paper): SPB-tree has by far the lowest update time "
      "and compdists (|P| per insert); its PA is relatively high because "
      "both B+-tree and RAF pages are touched; M-tree needs the most "
      "distance computations per insert.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
