#ifndef SPB_BENCH_BENCH_COMMON_H_
#define SPB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/metric_index.h"
#include "core/spb_tree.h"
#include "data/datasets.h"

namespace spb {
namespace bench {

/// Shared experiment configuration. Every bench binary accepts
///   --scale=N     dataset cardinality (default per-bench, paper uses
///                 112K-1M; defaults here are laptop-sized so the full
///                 harness finishes in minutes)
///   --queries=N   number of query objects (paper: 500; default 50)
///   --seed=N
/// following the paper's protocol: queries are the first N objects of each
/// dataset and every reported number is the average over those queries with
/// caches flushed before each query.
///
/// Cost accounting (docs/ARCHITECTURE.md §"Cost accounting"): PA counts
/// buffer-pool misses only (page_reads + page_writes; cache_hits excluded,
/// including RAF dirty-tail reads), compdists counts calls through each
/// index's CountingDistance wrapper. Per-query numbers come from QueryStats
/// deltas, which are valid here because bench queries run serially;
/// bench_concurrency instead reads aggregate cumulative-counter deltas.
struct BenchConfig {
  size_t scale;
  size_t queries;
  uint64_t seed = 20150415;
};

inline BenchConfig ParseArgs(int argc, char** argv, size_t default_scale,
                             size_t default_queries = 50) {
  BenchConfig config{default_scale, default_queries, 20150415};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = size_t(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      config.queries = size_t(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = uint64_t(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--scale=N] [--queries=N] [--seed=N]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return config;
}

/// Average per-query costs in the paper's three metrics.
struct AvgCost {
  double page_accesses = 0.0;
  double distance_computations = 0.0;
  double seconds = 0.0;

  void Accumulate(const QueryStats& s) {
    page_accesses += double(s.page_accesses);
    distance_computations += double(s.distance_computations);
    seconds += s.elapsed_seconds;
  }
  void Finish(size_t n) {
    if (n == 0) return;
    page_accesses /= double(n);
    distance_computations /= double(n);
    seconds /= double(n);
  }
};

/// Runs kNN queries under the paper's protocol (flush caches before each
/// query, average costs).
inline AvgCost RunKnnQueries(MetricIndex& index,
                             const std::vector<Blob>& queries, size_t k) {
  AvgCost avg;
  std::vector<Neighbor> result;
  for (const Blob& q : queries) {
    index.FlushCaches();
    QueryStats stats;
    if (!index.KnnQuery(q, k, &result, &stats).ok()) std::abort();
    avg.Accumulate(stats);
  }
  avg.Finish(queries.size());
  return avg;
}

/// Same for range queries with radius r.
inline AvgCost RunRangeQueries(MetricIndex& index,
                               const std::vector<Blob>& queries, double r) {
  AvgCost avg;
  std::vector<ObjectId> result;
  for (const Blob& q : queries) {
    index.FlushCaches();
    QueryStats stats;
    if (!index.RangeQuery(q, r, &result, &stats).ok()) std::abort();
    avg.Accumulate(stats);
  }
  avg.Finish(queries.size());
  return avg;
}

/// First `n` objects of the dataset, the paper's query workload.
inline std::vector<Blob> QueryWorkload(const Dataset& ds, size_t n) {
  n = std::min(n, ds.objects.size());
  return std::vector<Blob>(ds.objects.begin(), ds.objects.begin() + n);
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace spb

#endif  // SPB_BENCH_BENCH_COMMON_H_
