#ifndef SPB_BENCH_BENCH_COMMON_H_
#define SPB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metric_index.h"
#include "core/spb_tree.h"
#include "data/datasets.h"

namespace spb {
namespace bench {

/// Shared experiment configuration. Every bench binary accepts
///   --scale=N     dataset cardinality (default per-bench, paper uses
///                 112K-1M; defaults here are laptop-sized so the full
///                 harness finishes in minutes)
///   --queries=N   number of query objects (paper: 500; default 50)
///   --seed=N
/// following the paper's protocol: queries are the first N objects of each
/// dataset and every reported number is the average over those queries with
/// caches flushed before each query.
///
/// Cost accounting (docs/ARCHITECTURE.md §"Cost accounting"): PA counts
/// buffer-pool misses only (page_reads + page_writes; cache_hits excluded,
/// including RAF dirty-tail reads), compdists counts calls through each
/// index's CountingDistance wrapper. Per-query numbers come from QueryStats
/// deltas, which are valid here because bench queries run serially;
/// bench_concurrency instead reads aggregate cumulative-counter deltas.
struct BenchConfig {
  size_t scale;
  size_t queries;
  uint64_t seed = 20150415;
};

inline BenchConfig ParseArgs(int argc, char** argv, size_t default_scale,
                             size_t default_queries = 50) {
  BenchConfig config{default_scale, default_queries, 20150415};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = size_t(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      config.queries = size_t(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = uint64_t(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--scale=N] [--queries=N] [--seed=N]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return config;
}

/// Average per-query costs in the paper's three metrics.
struct AvgCost {
  double page_accesses = 0.0;
  double distance_computations = 0.0;
  double seconds = 0.0;

  void Accumulate(const QueryStats& s) {
    page_accesses += double(s.page_accesses);
    distance_computations += double(s.distance_computations);
    seconds += s.elapsed_seconds;
  }
  void Finish(size_t n) {
    if (n == 0) return;
    page_accesses /= double(n);
    distance_computations /= double(n);
    seconds /= double(n);
  }
};

/// Runs kNN queries under the paper's protocol (flush caches before each
/// query, average costs).
inline AvgCost RunKnnQueries(MetricIndex& index,
                             const std::vector<Blob>& queries, size_t k) {
  AvgCost avg;
  std::vector<Neighbor> result;
  for (const Blob& q : queries) {
    index.FlushCaches();
    QueryStats stats;
    if (!index.KnnQuery(q, k, &result, &stats).ok()) std::abort();
    avg.Accumulate(stats);
  }
  avg.Finish(queries.size());
  return avg;
}

/// Same for range queries with radius r.
inline AvgCost RunRangeQueries(MetricIndex& index,
                               const std::vector<Blob>& queries, double r) {
  AvgCost avg;
  std::vector<ObjectId> result;
  for (const Blob& q : queries) {
    index.FlushCaches();
    QueryStats stats;
    if (!index.RangeQuery(q, r, &result, &stats).ok()) std::abort();
    avg.Accumulate(stats);
  }
  avg.Finish(queries.size());
  return avg;
}

/// First `n` objects of the dataset, the paper's query workload.
inline std::vector<Blob> QueryWorkload(const Dataset& ds, size_t n) {
  n = std::min(n, ds.objects.size());
  return std::vector<Blob>(ds.objects.begin(), ds.objects.begin() + n);
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Host provenance stamped into every bench JSON so numbers from different
/// machines are never compared blind: hardware thread count, the CPU model
/// string, and whether the run happened inside a container (throughput
/// numbers from shared/cgroup-limited hosts are directional only).
struct HostInfo {
  unsigned hardware_threads = 0;
  std::string cpu_model;  // "unknown" when /proc/cpuinfo has no model name
  bool container = false;
};

inline HostInfo QueryHostInfo() {
  HostInfo h;
  h.hardware_threads = std::thread::hardware_concurrency();
  h.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  for (std::string line; std::getline(cpuinfo, line);) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) h.cpu_model = line.substr(start);
      }
      break;
    }
  }
  // Containers either mount /.dockerenv or run pid 1 in a non-root cgroup.
  if (std::ifstream("/.dockerenv").good()) {
    h.container = true;
  } else {
    std::ifstream cg("/proc/1/cgroup");
    for (std::string line; std::getline(cg, line);) {
      if (line.find("docker") != std::string::npos ||
          line.find("containerd") != std::string::npos ||
          line.find("kubepods") != std::string::npos ||
          line.find("lxc") != std::string::npos) {
        h.container = true;
        break;
      }
    }
  }
  return h;
}

/// Escapes a string for embedding in a JSON literal (quotes + backslashes;
/// CPU model strings never need more).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// Emits the host block: `"host": {...}` (no trailing comma) on `f`.
inline void WriteHostJson(std::FILE* f) {
  const HostInfo h = QueryHostInfo();
  std::fprintf(f,
               "  \"host\": {\"hardware_threads\": %u, \"cpu_model\": "
               "\"%s\", \"container\": %s}",
               h.hardware_threads, JsonEscape(h.cpu_model).c_str(),
               h.container ? "true" : "false");
}

}  // namespace bench
}  // namespace spb

#endif  // SPB_BENCH_BENCH_COMMON_H_
