#ifndef SPB_BENCH_MAM_ZOO_H_
#define SPB_BENCH_MAM_ZOO_H_

#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/spb_tree.h"
#include "mindex/m_index.h"
#include "mtree/mtree.h"
#include "omni/omni_rtree.h"
#include "pivots/selection.h"

namespace spb {
namespace bench {

/// A built MAM together with its construction cost — the rows of the
/// paper's Table 6.
struct BuiltMam {
  std::unique_ptr<MetricIndex> index;
  double build_seconds = 0.0;
  QueryStats build_cost;  // page accesses + distance computations
};

/// Builds one of the four competitors with paper-faithful configurations:
/// M-tree (bulk-loaded), OmniR-tree (intrinsic-dimensionality+1 HF foci),
/// M-Index (20 random pivots), SPB-tree (5 HFI pivots, Hilbert).
inline BuiltMam BuildMam(const std::string& which, const Dataset& ds,
                         uint64_t seed) {
  BuiltMam out;
  const auto start = std::chrono::steady_clock::now();
  if (which == "M-tree") {
    MtreeOptions opts;
    opts.seed = seed;
    std::unique_ptr<MTree> t;
    if (!MTree::Build(ds.objects, ds.metric.get(), opts, &t).ok()) {
      std::abort();
    }
    out.index = std::move(t);
  } else if (which == "OmniR-tree") {
    OmniOptions opts;
    opts.seed = seed;
    const double rho =
        IntrinsicDimensionality(ds.objects, *ds.metric, 500, seed);
    opts.num_pivots = std::max<size_t>(2, size_t(rho) + 1);
    std::unique_ptr<OmniRTree> t;
    if (!OmniRTree::Build(ds.objects, ds.metric.get(), opts, &t).ok()) {
      std::abort();
    }
    out.index = std::move(t);
  } else if (which == "M-Index") {
    MIndexOptions opts;
    opts.seed = seed;
    std::unique_ptr<MIndex> t;
    if (!MIndex::Build(ds.objects, ds.metric.get(), opts, &t).ok()) {
      std::abort();
    }
    out.index = std::move(t);
  } else {  // SPB-tree
    SpbTreeOptions opts;
    opts.seed = seed;
    std::unique_ptr<SpbTree> t;
    if (!SpbTree::Build(ds.objects, ds.metric.get(), opts, &t).ok()) {
      std::abort();
    }
    out.index = std::move(t);
  }
  out.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.build_cost = out.index->cumulative_stats();
  out.index->ResetCounters();
  return out;
}

inline const char* const kAllMams[] = {"M-tree", "OmniR-tree", "M-Index",
                                       "SPB-tree"};

}  // namespace bench
}  // namespace spb

#endif  // SPB_BENCH_MAM_ZOO_H_
