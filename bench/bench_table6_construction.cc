// Reproduces Table 6: construction cost (PA, compdists, wall time) and
// storage size of the four MAMs, built with their bulk-loading methods.
#include "bench/mam_zoo.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Table 6: construction costs and storage sizes of MAMs\n");
  std::printf("scale=%zu\n", config.scale);
  for (const char* name : {"color", "words", "dna"}) {
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset ds = MakeDatasetByName(name, n, config.seed);
    std::printf("\n[%s, |O|=%zu]\n", name, ds.objects.size());
    PrintRule();
    std::printf("%-12s | %12s %12s %10s %12s\n", "MAM", "PA", "compdists",
                "time(s)", "storage(KB)");
    PrintRule();
    for (const char* mam : kAllMams) {
      BuiltMam built = BuildMam(mam, ds, config.seed);
      std::printf("%-12s | %12llu %12llu %10.3f %12.1f\n", mam,
                  (unsigned long long)built.build_cost.page_accesses,
                  (unsigned long long)built.build_cost.distance_computations,
                  built.build_seconds,
                  double(built.index->storage_bytes()) / 1024.0);
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): SPB-tree has the lowest construction PA, "
      "compdists and time, and the smallest storage; M-Index storage blows "
      "up on string data (stores all pivot distances); M-tree has the most "
      "construction distance computations.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/20000));
  return 0;
}
