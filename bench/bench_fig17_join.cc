// Reproduces Fig. 17: similarity join performance vs epsilon (2..10% of d+)
// for the SPB-tree join (SJA), Quickjoin (QJA), the eD-index based method,
// and the naive per-object range join. QJA is memory-resident, so its PA is
// reported as 0 (the paper omits it).
#include "bench/bench_common.h"
#include "edindex/ed_index.h"
#include "join/quickjoin.h"
#include "join/sja.h"
#include "pivots/selection.h"

namespace spb {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("Fig. 17: similarity join performance vs eps (%% of d+)\n");
  std::printf("scale=%zu (|Q| = scale/4, |O| = scale)\n", config.scale);
  const double fracs[] = {0.02, 0.04, 0.06, 0.08, 0.10};
  for (const char* name : {"words", "color", "dna"}) {
    const size_t n = std::string(name) == "dna" ? config.scale / 2
                                                : config.scale;
    Dataset o = MakeDatasetByName(name, n, config.seed);
    Dataset q = MakeDatasetByName(name, n / 4, config.seed + 1);
    const double d_plus = o.metric->max_distance();

    // SPB-trees with a shared pivot table and Z-order (SJA precondition).
    std::vector<Blob> combined = q.objects;
    combined.insert(combined.end(), o.objects.begin(), o.objects.end());
    PivotSelectionOptions popts;
    popts.num_pivots = 5;
    popts.seed = config.seed;
    PivotTable pivots(SelectPivots(PivotSelectorType::kHfi, combined,
                                   *o.metric, popts));
    SpbTreeOptions sopts;
    sopts.curve = CurveType::kZOrder;
    sopts.seed = config.seed;
    std::unique_ptr<SpbTree> spb_q, spb_o;
    if (!SpbTree::BuildWithPivots(q.objects, q.metric.get(), pivots, sopts,
                                  &spb_q)
             .ok() ||
        !SpbTree::BuildWithPivots(o.objects, o.metric.get(), pivots, sopts,
                                  &spb_o)
             .ok()) {
      std::abort();
    }

    std::printf("\n[%s, |Q|=%zu |O|=%zu]\n", name, q.objects.size(),
                o.objects.size());
    PrintRule();
    std::printf("%-10s %5s | %12s %12s %10s %8s\n", "method", "eps%", "PA",
                "compdists", "time(ms)", "|result|");
    PrintRule();
    for (double frac : fracs) {
      const double eps = frac * d_plus;
      std::vector<JoinPair> result;
      QueryStats stats;

      spb_q->FlushCaches();
      spb_o->FlushCaches();
      spb_q->ResetCounters();
      spb_o->ResetCounters();
      if (!SimilarityJoinSJA(*spb_q, *spb_o, eps, &result, &stats).ok()) {
        std::abort();
      }
      std::printf("%-10s %5.0f | %12.0f %12.0f %10.1f %8zu\n", "SJA",
                  frac * 100, double(stats.page_accesses),
                  double(stats.distance_computations),
                  stats.elapsed_seconds * 1000.0, result.size());

      Quickjoin qj(o.metric.get(), 32, config.seed);
      result = qj.Join(q.objects, o.objects, eps, &stats);
      std::printf("%-10s %5.0f | %12s %12.0f %10.1f %8zu\n", "QJA",
                  frac * 100, "-", double(stats.distance_computations),
                  stats.elapsed_seconds * 1000.0, result.size());

      // The eD-index must be (re)built for each eps — exactly the
      // applicability limitation the paper highlights. Build cost excluded,
      // as in the paper.
      EdIndexOptions eopts;
      eopts.epsilon_build = eps;
      eopts.seed = config.seed;
      std::unique_ptr<EdIndex> ed;
      if (!EdIndex::Build(q.objects, o.objects, o.metric.get(), eopts, &ed)
               .ok()) {
        std::abort();
      }
      if (!ed->SimilarityJoin(eps, &result, &stats).ok()) std::abort();
      std::printf("%-10s %5.0f | %12.0f %12.0f %10.1f %8zu\n", "eD-index",
                  frac * 100, double(stats.page_accesses),
                  double(stats.distance_computations),
                  stats.elapsed_seconds * 1000.0, result.size());

      spb_o->FlushCaches();
      spb_o->ResetCounters();
      if (!RangeJoin(q.objects, *spb_o, eps, &result, &stats).ok()) {
        std::abort();
      }
      std::printf("%-10s %5.0f | %12.0f %12.0f %10.1f %8zu\n", "RangeJoin",
                  frac * 100, double(stats.page_accesses),
                  double(stats.distance_computations),
                  stats.elapsed_seconds * 1000.0, result.size());
    }
    PrintRule();
  }
  std::printf(
      "\nExpected shape (paper): SJA beats QJA and is orders of magnitude "
      "cheaper than the eD-index method in PA; all costs grow with eps; the "
      "eD-index must be rebuilt per eps.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace spb

int main(int argc, char** argv) {
  spb::bench::Run(spb::bench::ParseArgs(argc, argv, /*default_scale=*/8000));
  return 0;
}
