file(REMOVE_RECURSE
  "libspb.a"
)
