
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bptree/bptree.cc" "src/CMakeFiles/spb.dir/bptree/bptree.cc.o" "gcc" "src/CMakeFiles/spb.dir/bptree/bptree.cc.o.d"
  "/root/repo/src/bptree/node.cc" "src/CMakeFiles/spb.dir/bptree/node.cc.o" "gcc" "src/CMakeFiles/spb.dir/bptree/node.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/spb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/spb.dir/common/status.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/spb.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/spb.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/mapped_space.cc" "src/CMakeFiles/spb.dir/core/mapped_space.cc.o" "gcc" "src/CMakeFiles/spb.dir/core/mapped_space.cc.o.d"
  "/root/repo/src/core/spb_tree.cc" "src/CMakeFiles/spb.dir/core/spb_tree.cc.o" "gcc" "src/CMakeFiles/spb.dir/core/spb_tree.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/spb.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/spb.dir/data/datasets.cc.o.d"
  "/root/repo/src/edindex/ed_index.cc" "src/CMakeFiles/spb.dir/edindex/ed_index.cc.o" "gcc" "src/CMakeFiles/spb.dir/edindex/ed_index.cc.o.d"
  "/root/repo/src/join/join_common.cc" "src/CMakeFiles/spb.dir/join/join_common.cc.o" "gcc" "src/CMakeFiles/spb.dir/join/join_common.cc.o.d"
  "/root/repo/src/join/quickjoin.cc" "src/CMakeFiles/spb.dir/join/quickjoin.cc.o" "gcc" "src/CMakeFiles/spb.dir/join/quickjoin.cc.o.d"
  "/root/repo/src/join/sja.cc" "src/CMakeFiles/spb.dir/join/sja.cc.o" "gcc" "src/CMakeFiles/spb.dir/join/sja.cc.o.d"
  "/root/repo/src/metrics/edit_distance.cc" "src/CMakeFiles/spb.dir/metrics/edit_distance.cc.o" "gcc" "src/CMakeFiles/spb.dir/metrics/edit_distance.cc.o.d"
  "/root/repo/src/metrics/lp_norm.cc" "src/CMakeFiles/spb.dir/metrics/lp_norm.cc.o" "gcc" "src/CMakeFiles/spb.dir/metrics/lp_norm.cc.o.d"
  "/root/repo/src/metrics/trigram_cosine.cc" "src/CMakeFiles/spb.dir/metrics/trigram_cosine.cc.o" "gcc" "src/CMakeFiles/spb.dir/metrics/trigram_cosine.cc.o.d"
  "/root/repo/src/mindex/m_index.cc" "src/CMakeFiles/spb.dir/mindex/m_index.cc.o" "gcc" "src/CMakeFiles/spb.dir/mindex/m_index.cc.o.d"
  "/root/repo/src/mtree/mtree.cc" "src/CMakeFiles/spb.dir/mtree/mtree.cc.o" "gcc" "src/CMakeFiles/spb.dir/mtree/mtree.cc.o.d"
  "/root/repo/src/omni/omni_rtree.cc" "src/CMakeFiles/spb.dir/omni/omni_rtree.cc.o" "gcc" "src/CMakeFiles/spb.dir/omni/omni_rtree.cc.o.d"
  "/root/repo/src/pivots/pivot_table.cc" "src/CMakeFiles/spb.dir/pivots/pivot_table.cc.o" "gcc" "src/CMakeFiles/spb.dir/pivots/pivot_table.cc.o.d"
  "/root/repo/src/pivots/selection.cc" "src/CMakeFiles/spb.dir/pivots/selection.cc.o" "gcc" "src/CMakeFiles/spb.dir/pivots/selection.cc.o.d"
  "/root/repo/src/sfc/sfc.cc" "src/CMakeFiles/spb.dir/sfc/sfc.cc.o" "gcc" "src/CMakeFiles/spb.dir/sfc/sfc.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/spb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/spb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/spb.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/spb.dir/storage/page_file.cc.o.d"
  "/root/repo/src/storage/raf.cc" "src/CMakeFiles/spb.dir/storage/raf.cc.o" "gcc" "src/CMakeFiles/spb.dir/storage/raf.cc.o.d"
  "/root/repo/src/vptree/vp_tree.cc" "src/CMakeFiles/spb.dir/vptree/vp_tree.cc.o" "gcc" "src/CMakeFiles/spb.dir/vptree/vp_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
