# Empty compiler generated dependencies file for spb.
# This may be replaced when dependencies are built.
