file(REMOVE_RECURSE
  "CMakeFiles/spb_cli.dir/spb_cli.cc.o"
  "CMakeFiles/spb_cli.dir/spb_cli.cc.o.d"
  "spb_cli"
  "spb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
