# Empty dependencies file for spb_cli.
# This may be replaced when dependencies are built.
