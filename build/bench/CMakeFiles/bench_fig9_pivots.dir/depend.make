# Empty dependencies file for bench_fig9_pivots.
# This may be replaced when dependencies are built.
