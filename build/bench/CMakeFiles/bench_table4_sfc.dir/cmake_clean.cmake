file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sfc.dir/bench_table4_sfc.cc.o"
  "CMakeFiles/bench_table4_sfc.dir/bench_table4_sfc.cc.o.d"
  "bench_table4_sfc"
  "bench_table4_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
