# Empty compiler generated dependencies file for bench_table4_sfc.
# This may be replaced when dependencies are built.
