file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_knn.dir/bench_fig13_knn.cc.o"
  "CMakeFiles/bench_fig13_knn.dir/bench_fig13_knn.cc.o.d"
  "bench_fig13_knn"
  "bench_fig13_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
