# Empty dependencies file for bench_table5_traversal.
# This may be replaced when dependencies are built.
