file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_traversal.dir/bench_table5_traversal.cc.o"
  "CMakeFiles/bench_table5_traversal.dir/bench_table5_traversal.cc.o.d"
  "bench_table5_traversal"
  "bench_table5_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
