# Empty compiler generated dependencies file for bench_fig17_join.
# This may be replaced when dependencies are built.
