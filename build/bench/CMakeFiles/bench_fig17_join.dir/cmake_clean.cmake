file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_join.dir/bench_fig17_join.cc.o"
  "CMakeFiles/bench_fig17_join.dir/bench_fig17_join.cc.o.d"
  "bench_fig17_join"
  "bench_fig17_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
