# Empty dependencies file for bench_fig10_cache.
# This may be replaced when dependencies are built.
