file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cache.dir/bench_fig10_cache.cc.o"
  "CMakeFiles/bench_fig10_cache.dir/bench_fig10_cache.cc.o.d"
  "bench_fig10_cache"
  "bench_fig10_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
