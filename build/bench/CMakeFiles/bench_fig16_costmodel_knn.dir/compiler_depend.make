# Empty compiler generated dependencies file for bench_fig16_costmodel_knn.
# This may be replaced when dependencies are built.
