file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_costmodel_knn.dir/bench_fig16_costmodel_knn.cc.o"
  "CMakeFiles/bench_fig16_costmodel_knn.dir/bench_fig16_costmodel_knn.cc.o.d"
  "bench_fig16_costmodel_knn"
  "bench_fig16_costmodel_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_costmodel_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
