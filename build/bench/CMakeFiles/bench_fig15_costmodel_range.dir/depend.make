# Empty dependencies file for bench_fig15_costmodel_range.
# This may be replaced when dependencies are built.
