# Empty dependencies file for bench_fig18_costmodel_join.
# This may be replaced when dependencies are built.
