# Empty dependencies file for bench_table6_construction.
# This may be replaced when dependencies are built.
