file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_construction.dir/bench_table6_construction.cc.o"
  "CMakeFiles/bench_table6_construction.dir/bench_table6_construction.cc.o.d"
  "bench_table6_construction"
  "bench_table6_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
