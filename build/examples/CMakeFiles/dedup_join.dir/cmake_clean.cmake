file(REMOVE_RECURSE
  "CMakeFiles/dedup_join.dir/dedup_join.cpp.o"
  "CMakeFiles/dedup_join.dir/dedup_join.cpp.o.d"
  "dedup_join"
  "dedup_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
