# Empty dependencies file for dedup_join.
# This may be replaced when dependencies are built.
