file(REMOVE_RECURSE
  "CMakeFiles/word_search.dir/word_search.cpp.o"
  "CMakeFiles/word_search.dir/word_search.cpp.o.d"
  "word_search"
  "word_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
