file(REMOVE_RECURSE
  "CMakeFiles/spb_tree_test.dir/spb_tree_test.cc.o"
  "CMakeFiles/spb_tree_test.dir/spb_tree_test.cc.o.d"
  "spb_tree_test"
  "spb_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
