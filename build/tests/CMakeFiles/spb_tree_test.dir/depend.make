# Empty dependencies file for spb_tree_test.
# This may be replaced when dependencies are built.
