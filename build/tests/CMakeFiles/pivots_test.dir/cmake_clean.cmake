file(REMOVE_RECURSE
  "CMakeFiles/pivots_test.dir/pivots_test.cc.o"
  "CMakeFiles/pivots_test.dir/pivots_test.cc.o.d"
  "pivots_test"
  "pivots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
