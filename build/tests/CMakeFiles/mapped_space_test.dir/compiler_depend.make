# Empty compiler generated dependencies file for mapped_space_test.
# This may be replaced when dependencies are built.
