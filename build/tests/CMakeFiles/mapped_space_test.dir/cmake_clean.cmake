file(REMOVE_RECURSE
  "CMakeFiles/mapped_space_test.dir/mapped_space_test.cc.o"
  "CMakeFiles/mapped_space_test.dir/mapped_space_test.cc.o.d"
  "mapped_space_test"
  "mapped_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapped_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
