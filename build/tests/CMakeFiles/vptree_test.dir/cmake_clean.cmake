file(REMOVE_RECURSE
  "CMakeFiles/vptree_test.dir/vptree_test.cc.o"
  "CMakeFiles/vptree_test.dir/vptree_test.cc.o.d"
  "vptree_test"
  "vptree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
