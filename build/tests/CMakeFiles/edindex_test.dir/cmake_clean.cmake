file(REMOVE_RECURSE
  "CMakeFiles/edindex_test.dir/edindex_test.cc.o"
  "CMakeFiles/edindex_test.dir/edindex_test.cc.o.d"
  "edindex_test"
  "edindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
