# Empty compiler generated dependencies file for edindex_test.
# This may be replaced when dependencies are built.
