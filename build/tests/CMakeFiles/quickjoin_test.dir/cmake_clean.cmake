file(REMOVE_RECURSE
  "CMakeFiles/quickjoin_test.dir/quickjoin_test.cc.o"
  "CMakeFiles/quickjoin_test.dir/quickjoin_test.cc.o.d"
  "quickjoin_test"
  "quickjoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
