# Empty compiler generated dependencies file for quickjoin_test.
# This may be replaced when dependencies are built.
