// Concurrent search: build an SPB-tree once, then serve a batch of range
// and kNN queries from a fixed pool of worker threads with the
// QueryExecutor. This is the runnable twin of the snippet in docs/API.md.
//
//   ./concurrent_search
#include <cstdio>

#include "core/spb_tree.h"
#include "data/datasets.h"
#include "exec/query_executor.h"

int main() {
  using namespace spb;

  // 1. Build the index (bulk-load). After Build returns, the tree is
  //    immutable and its whole read path — B+-tree traversal, RAF lookups,
  //    striped buffer pools — is safe for any number of concurrent readers.
  Dataset ds = MakeSynthetic(20000, /*seed=*/42);
  SpbTreeOptions options;
  options.btree_cache_pages = 256;  // large caches stripe the LRU 8 ways
  options.raf_cache_pages = 256;
  std::unique_ptr<SpbTree> index;
  Status s = SpbTree::Build(ds.objects, ds.metric.get(), options, &index);
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %llu vectors under %s\n",
              (unsigned long long)index->size(),
              ds.metric->name().c_str());

  // 2. A batch of queries (here: the first 128 data objects).
  std::vector<Blob> queries(ds.objects.begin(), ds.objects.begin() + 128);
  const double r = 0.08 * ds.metric->max_distance();

  // 3. Fan the batch over 4 worker threads. The executor owns the threads
  //    for its whole lifetime; batches run back-to-back without respawning.
  QueryExecutor executor(index.get(), /*num_threads=*/4);

  std::vector<std::vector<ObjectId>> range_results;
  BatchStats stats;
  s = executor.RunRangeBatch(queries, r, &range_results, &stats);
  if (!s.ok()) return 1;
  std::printf(
      "range batch: %zu queries on %zu threads -> %.0f QPS "
      "(p50 %.2f ms, p99 %.2f ms), %llu page accesses, %llu compdists\n",
      stats.num_queries, stats.num_threads, stats.qps,
      stats.p50_seconds * 1e3, stats.p99_seconds * 1e3,
      (unsigned long long)stats.totals.page_accesses,
      (unsigned long long)stats.totals.distance_computations);

  std::vector<std::vector<Neighbor>> knn_results;
  s = executor.RunKnnBatch(queries, /*k=*/8, &knn_results, &stats);
  if (!s.ok()) return 1;
  std::printf(
      "kNN batch:   %zu queries on %zu threads -> %.0f QPS "
      "(p50 %.2f ms, p99 %.2f ms)\n",
      stats.num_queries, stats.num_threads, stats.qps,
      stats.p50_seconds * 1e3, stats.p99_seconds * 1e3);

  // 4. Per-query results land in order: slot i answers queries[i].
  std::printf("query 0: %zu objects in range, nearest neighbor d=%.3f\n",
              range_results[0].size(),
              knn_results[0].empty() ? -1.0 : knn_results[0][0].distance);
  return 0;
}
