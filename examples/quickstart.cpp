// Quickstart: build an SPB-tree over a word collection, run a range query
// and a kNN query, and inspect the cost counters and cost-model estimates.
//
//   ./quickstart
#include <cstdio>

#include "core/spb_tree.h"
#include "data/datasets.h"
#include "metrics/edit_distance.h"

int main() {
  using namespace spb;

  // 1. A collection of objects and a metric. Objects are opaque byte blobs;
  //    here they are words compared by edit distance.
  Dataset words = MakeWords(20000, /*seed=*/42);
  std::printf("indexing %zu words under %s distance (d+ = %.0f)\n",
              words.objects.size(), words.metric->name().c_str(),
              words.metric->max_distance());

  // 2. Build the index. Defaults follow the paper: 5 HFI pivots, Hilbert
  //    curve, delta = 0.005, 32-page LRU caches, in-memory page files (set
  //    options.storage_dir to put the B+-tree and RAF on disk).
  SpbTreeOptions options;
  std::unique_ptr<SpbTree> index;
  Status s = SpbTree::Build(words.objects, words.metric.get(), options,
                            &index);
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const QueryStats build_cost = index->cumulative_stats();
  std::printf("built: %llu objects, %.1f KB storage, %llu compdists\n\n",
              (unsigned long long)index->size(),
              double(index->storage_bytes()) / 1024.0,
              (unsigned long long)build_cost.distance_computations);

  // 3. Range query: all words within edit distance 1 of a query word.
  const Blob query = words.objects[17];
  std::vector<ObjectId> in_range;
  QueryStats stats;
  index->FlushCaches();
  s = index->RangeQuery(query, 1.0, &in_range, &stats);
  if (!s.ok()) return 1;
  std::printf("range query around \"%s\" (r=1): %zu hits using %llu "
              "compdists, %llu page accesses\n",
              BlobToString(query).c_str(), in_range.size(),
              (unsigned long long)stats.distance_computations,
              (unsigned long long)stats.page_accesses);
  for (size_t i = 0; i < in_range.size() && i < 5; ++i) {
    std::printf("  hit: %s\n",
                BlobToString(words.objects[in_range[i]]).c_str());
  }

  // 4. kNN query: the 5 most similar words.
  std::vector<Neighbor> nearest;
  index->FlushCaches();
  s = index->KnnQuery(query, 5, &nearest, &stats);
  if (!s.ok()) return 1;
  std::printf("\n5-NN of \"%s\" (%llu compdists vs %zu for a linear scan):\n",
              BlobToString(query).c_str(),
              (unsigned long long)stats.distance_computations,
              words.objects.size());
  for (const Neighbor& n : nearest) {
    std::printf("  %-20s  d=%.0f\n",
                BlobToString(words.objects[n.id]).c_str(), n.distance);
  }

  // 5. Cost model: predict before you pay.
  const CostEstimate est = index->EstimateRangeCost(query, 2.0);
  std::printf("\ncost model for r=2: ~%.0f compdists, ~%.0f page accesses\n",
              est.distance_computations, est.page_accesses);

  // 6. Updates: insert and delete are cheap B+-tree operations.
  s = index->Insert(BlobFromString("spbtree"), ObjectId(words.objects.size()));
  if (!s.ok()) return 1;
  bool found;
  s = index->Delete(BlobFromString("spbtree"),
                    ObjectId(words.objects.size()), &found);
  if (!s.ok() || !found) return 1;
  std::printf("insert + delete round-trip OK\n");
  return 0;
}
