// Plugging a user-defined metric into the SPB-tree: geographic points under
// great-circle (haversine) distance. Shows that the index needs nothing but
// a DistanceFunction with the triangle inequality — no coordinates are ever
// interpreted by the index itself.
//
//   ./custom_metric
#include <cmath>
#include <cstdio>

#include "core/spb_tree.h"

namespace {

using spb::Blob;

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;

Blob EncodeLatLon(double lat_deg, double lon_deg) {
  return spb::BlobFromFloats({float(lat_deg), float(lon_deg)});
}

/// Great-circle distance in kilometers. A metric on the sphere: symmetric,
/// non-negative, zero only for identical points, and triangle-inequality
/// compliant (it is the geodesic distance of a metric space).
class HaversineDistance final : public spb::DistanceFunction {
 public:
  double Distance(spb::BlobRef a, spb::BlobRef b) const override {
    const auto pa = spb::BlobToFloats(a);
    const auto pb = spb::BlobToFloats(b);
    const double lat1 = pa[0] * kPi / 180.0, lon1 = pa[1] * kPi / 180.0;
    const double lat2 = pb[0] * kPi / 180.0, lon2 = pb[1] * kPi / 180.0;
    const double dlat = lat2 - lat1, dlon = lon2 - lon1;
    const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                     std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                         std::sin(dlon / 2);
    return 2.0 * kEarthRadiusKm *
           std::asin(std::min(1.0, std::sqrt(h)));
  }
  double max_distance() const override { return kPi * kEarthRadiusKm; }
  bool is_discrete() const override { return false; }
  std::string name() const override { return "haversine-km"; }
};

struct City {
  const char* name;
  double lat, lon;
};

constexpr City kCities[] = {
    {"Hangzhou", 30.27, 120.16}, {"Shanghai", 31.23, 121.47},
    {"Beijing", 39.90, 116.40},  {"Aalborg", 57.05, 9.92},
    {"Copenhagen", 55.68, 12.57}, {"Berlin", 52.52, 13.40},
    {"Paris", 48.86, 2.35},      {"London", 51.51, -0.13},
    {"New York", 40.71, -74.01}, {"San Francisco", 37.77, -122.42},
    {"Tokyo", 35.68, 139.69},    {"Seoul", 37.57, 126.98},
    {"Sydney", -33.87, 151.21},  {"Nairobi", -1.29, 36.82},
    {"Sao Paulo", -23.55, -46.63}, {"Moscow", 55.76, 37.62},
};

}  // namespace

int main() {
  using namespace spb;
  HaversineDistance metric;

  std::vector<Blob> points;
  for (const City& c : kCities) points.push_back(EncodeLatLon(c.lat, c.lon));

  SpbTreeOptions options;
  options.num_pivots = 3;
  options.delta = 0.002;  // ~40 km cells on a 20,000 km range
  std::unique_ptr<SpbTree> index;
  if (!SpbTree::Build(points, &metric, options, &index).ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  std::printf("indexed %zu cities under great-circle distance\n\n",
              points.size());

  const Blob query = EncodeLatLon(48.21, 16.37);  // Vienna
  std::vector<Neighbor> nearest;
  if (!index->KnnQuery(query, 4, &nearest).ok()) return 1;
  std::printf("4 cities nearest to Vienna:\n");
  for (const Neighbor& n : nearest) {
    std::printf("  %-13s %7.0f km\n", kCities[n.id].name, n.distance);
  }

  std::vector<ObjectId> within;
  if (!index->RangeQuery(query, 1500.0, &within).ok()) return 1;
  std::printf("\ncities within 1500 km of Vienna:");
  for (ObjectId id : within) std::printf(" %s", kCities[id].name);
  std::printf("\n");

  // Sanity: Berlin-Paris is ~878 km.
  const double bp = metric.Distance(EncodeLatLon(52.52, 13.40),
                                    EncodeLatLon(48.86, 2.35));
  std::printf("\nmetric check: Berlin-Paris = %.0f km (expected ~878)\n", bp);
  return std::fabs(bp - 878.0) < 30.0 ? 0 : 1;
}
