// Network search: build an SPB-tree, put it behind the SPB1 wire protocol
// (docs/PROTOCOL.md) with net::Server, and query it over loopback TCP with
// the blocking net::Client — single ops, a mixed batch, and the STATS op.
// The client results are byte-identical to in-process calls (that identity
// is a CI gate, tests/net_test.cc); this example shows the round trip.
//
//   ./network_search
#include <cstdio>

#include "core/spb_tree.h"
#include "data/datasets.h"
#include "exec/query_executor.h"
#include "net/client.h"
#include "net/server.h"

int main() {
  using namespace spb;

  // 1. Build the index and stand a server up on an ephemeral port. The
  //    server multiplexes every connection onto one QueryExecutor pool:
  //    an epoll I/O thread owns the sockets, dispatcher threads hand
  //    decoded frames to Submit().
  Dataset ds = MakeSynthetic(20000, /*seed=*/42);
  std::unique_ptr<SpbTree> index;
  Status s = SpbTree::Build(ds.objects, ds.metric.get(), SpbTreeOptions{},
                            &index);
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  QueryExecutor executor(index.get(), /*num_threads=*/4);
  net::ServerOptions sopts;  // port=0 -> ephemeral; defaults otherwise
  net::Server server(&executor, sopts);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving %llu objects on 127.0.0.1:%u\n",
              (unsigned long long)index->size(), unsigned(server.port()));

  // 2. Connect a client (blocking, one outstanding request — open one per
  //    worker thread in real applications) and run single ops. A kBusy
  //    status here would be admission-control pushback: back off, retry.
  net::Client client;
  s = client.Connect("127.0.0.1", server.port());
  if (!s.ok()) return 1;

  const Blob& q = ds.objects[7];
  std::vector<ObjectId> ids;
  s = client.Range(q, 0.08 * ds.metric->max_distance(), &ids);
  if (!s.ok()) return 1;
  std::vector<Neighbor> nn;
  s = client.Knn(q, 5, &nn);
  if (!s.ok()) return 1;
  std::printf("over the wire: %zu in range, nearest d=%.6f\n", ids.size(),
              nn.empty() ? -1.0 : nn[0].distance);

  // 3. A mixed batch in one frame — the wire twin of Submit(). The reply
  //    trailer carries the executor's exact PA/compdists for the batch.
  std::vector<Request> ops;
  ops.push_back(Request::Range(q, 0.1));
  ops.push_back(Request::Knn(ds.objects[11], 3));
  ops.push_back(Request::Insert(ds.objects[0], ObjectId(90001)));
  std::vector<OpResult> results;
  net::WireBatchStats wire_stats;
  s = client.Submit(ops, &results, &wire_stats);
  if (!s.ok()) return 1;
  std::printf("batch of %zu: %llu page accesses, %llu compdists\n",
              results.size(),
              (unsigned long long)wire_stats.page_accesses,
              (unsigned long long)wire_stats.distance_computations);

  // 4. The STATS op returns the server index's full StatsSnapshot — the
  //    same struct CollectStats() returns in-process.
  StatsSnapshot snap;
  s = client.CollectStats(&snap);
  if (!s.ok()) return 1;
  std::printf("server stats: %s, %llu objects, %llu compdists total\n",
              snap.name.c_str(), (unsigned long long)snap.num_objects,
              (unsigned long long)snap.distance_computations);

  client.Close();
  server.Stop();
  return 0;
}
