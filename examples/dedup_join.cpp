// Data-cleaning scenario from the paper's introduction: find near-duplicate
// records between a sales feed and a master catalog with a metric
// similarity join. Compares the SPB-tree merge join (SJA) against Quickjoin
// and a nested loop.
//
//   ./dedup_join [catalog_size]
#include <cstdio>
#include <cstdlib>

#include "core/spb_tree.h"
#include "data/datasets.h"
#include "join/join_common.h"
#include "join/quickjoin.h"
#include "join/sja.h"
#include "pivots/selection.h"

int main(int argc, char** argv) {
  using namespace spb;
  const size_t n = argc > 1 ? size_t(std::atoll(argv[1])) : 4000;

  // Master catalog plus a "dirty" feed: half the feed entries are catalog
  // names with typos, the rest are unrelated.
  Dataset catalog = MakeWords(n, 11);
  Dataset feed = MakeWords(n / 4, 12);
  for (size_t i = 0; i < feed.objects.size(); i += 2) {
    Blob record = catalog.objects[(i * 13) % catalog.objects.size()];
    if (!record.empty()) record[0] = 'z';  // one-character typo
    feed.objects[i] = std::move(record);
  }
  const double eps = 1.0;  // records within edit distance 1 are duplicates

  std::printf("catalog: %zu records, feed: %zu records, eps = %.0f\n\n",
              catalog.objects.size(), feed.objects.size(), eps);

  // SJA needs both SPB-trees on one pivot table and the Z-order curve.
  std::vector<Blob> combined = feed.objects;
  combined.insert(combined.end(), catalog.objects.begin(),
                  catalog.objects.end());
  PivotSelectionOptions popts;
  popts.num_pivots = 5;
  PivotTable pivots(SelectPivots(PivotSelectorType::kHfi, combined,
                                 *catalog.metric, popts));
  SpbTreeOptions opts;
  opts.curve = CurveType::kZOrder;
  std::unique_ptr<SpbTree> feed_index, catalog_index;
  if (!SpbTree::BuildWithPivots(feed.objects, feed.metric.get(), pivots, opts,
                                &feed_index)
           .ok() ||
      !SpbTree::BuildWithPivots(catalog.objects, catalog.metric.get(), pivots,
                                opts, &catalog_index)
           .ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }

  std::vector<JoinPair> matches;
  QueryStats stats;
  feed_index->FlushCaches();
  catalog_index->FlushCaches();
  feed_index->ResetCounters();
  catalog_index->ResetCounters();
  if (!SimilarityJoinSJA(*feed_index, *catalog_index, eps, &matches, &stats)
           .ok()) {
    std::fprintf(stderr, "join failed\n");
    return 1;
  }
  std::printf("SJA: %zu near-duplicate pairs, %llu compdists, %llu page "
              "accesses, %.1f ms\n",
              matches.size(),
              (unsigned long long)stats.distance_computations,
              (unsigned long long)stats.page_accesses,
              stats.elapsed_seconds * 1000.0);
  for (size_t i = 0; i < matches.size() && i < 5; ++i) {
    std::printf("  feed \"%s\"  ~  catalog \"%s\"\n",
                BlobToString(feed.objects[matches[i].q_id]).c_str(),
                BlobToString(catalog.objects[matches[i].o_id]).c_str());
  }

  Quickjoin qj(catalog.metric.get());
  std::vector<JoinPair> qj_matches =
      qj.Join(feed.objects, catalog.objects, eps, &stats);
  std::printf("\nQuickjoin: %zu pairs, %llu compdists, %.1f ms\n",
              qj_matches.size(),
              (unsigned long long)stats.distance_computations,
              stats.elapsed_seconds * 1000.0);

  std::vector<JoinPair> nl =
      NestedLoopJoin(feed.objects, catalog.objects, *catalog.metric, eps,
                     &stats);
  std::printf("nested loop: %zu pairs, %llu compdists, %.1f ms\n", nl.size(),
              (unsigned long long)stats.distance_computations,
              stats.elapsed_seconds * 1000.0);

  const bool agree =
      matches.size() == nl.size() && qj_matches.size() == nl.size();
  std::printf("\nall three methods agree: %s\n", agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
