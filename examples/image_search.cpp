// Content-based image retrieval scenario (the paper's Color workload):
// index 16-d color feature vectors under the L5-norm and retrieve the most
// similar "images". Demonstrates a continuous metric (delta-approximation),
// disk-backed index files, and the cost model choosing a search radius.
//
//   ./image_search [collection_size]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/spb_tree.h"
#include "data/datasets.h"

int main(int argc, char** argv) {
  using namespace spb;
  const size_t n = argc > 1 ? size_t(std::atoll(argv[1])) : 30000;

  Dataset images = MakeColor(n, 99);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spb_image_search").string();
  std::filesystem::remove_all(dir);

  SpbTreeOptions options;
  options.storage_dir = dir;  // keep the index on disk, like a real system
  std::unique_ptr<SpbTree> index;
  if (!SpbTree::Build(images.objects, images.metric.get(), options, &index)
           .ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("image collection: %zu feature vectors (16-d, L5-norm)\n",
              images.objects.size());
  std::printf("on-disk index: %s (%.1f KB)\n\n", dir.c_str(),
              double(index->storage_bytes()) / 1024.0);

  // Retrieval: "find images like this one".
  const Blob& probe = images.objects[123];
  std::vector<Neighbor> similar;
  QueryStats stats;
  index->FlushCaches();
  if (!index->KnnQuery(probe, 8, &similar, &stats).ok()) return 1;
  std::printf("8 most similar images to image #123:\n");
  for (const Neighbor& s : similar) {
    std::printf("  image #%-6u  distance %.4f\n", s.id, s.distance);
  }
  std::printf("query cost: %llu distance computations, %llu page accesses, "
              "%.2f ms\n\n",
              (unsigned long long)stats.distance_computations,
              (unsigned long long)stats.page_accesses,
              stats.elapsed_seconds * 1000.0);

  // Use the cost model to pick a "cheap enough" radius for a fuzzy search.
  const double d_plus = images.metric->max_distance();
  std::printf("cost model sweep (choosing a radius under a budget):\n");
  for (double frac : {0.02, 0.05, 0.10, 0.20}) {
    const CostEstimate est = index->EstimateRangeCost(probe, frac * d_plus);
    std::printf("  r = %4.0f%% of d+ -> ~%7.0f compdists, ~%6.0f pages\n",
                frac * 100, est.distance_computations, est.page_accesses);
  }

  // Run the cheapest radius whose estimate stays under 2000 compdists.
  double chosen = 0.02 * d_plus;
  for (double frac : {0.20, 0.10, 0.05, 0.02}) {
    if (index->EstimateRangeCost(probe, frac * d_plus)
            .distance_computations < 2000) {
      chosen = frac * d_plus;
      break;
    }
  }
  std::vector<ObjectId> hits;
  index->FlushCaches();
  if (!index->RangeQuery(probe, chosen, &hits, &stats).ok()) return 1;
  std::printf("\nchosen radius %.4f: %zu matches at %llu actual compdists\n",
              chosen, hits.size(),
              (unsigned long long)stats.distance_computations);

  index.reset();
  std::filesystem::remove_all(dir);
  return 0;
}
