// Spell-suggestion scenario (the paper's Words workload): index a
// dictionary under edit distance and, for a few misspelled inputs, suggest
// the closest dictionary words — comparing the SPB-tree's cost against a
// full scan.
//
//   ./word_search [dictionary_size]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/spb_tree.h"
#include "data/datasets.h"

namespace {

// Mutates a word to fake a typo: one substitution and one deletion.
spb::Blob MakeTypo(const spb::Blob& word, uint64_t salt) {
  spb::Blob typo = word;
  if (!typo.empty()) {
    typo[salt % typo.size()] = uint8_t('a' + (salt % 26));
  }
  if (typo.size() > 2) {
    typo.erase(typo.begin() + ptrdiff_t((salt / 7) % typo.size()));
  }
  return typo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spb;
  const size_t n = argc > 1 ? size_t(std::atoll(argv[1])) : 50000;

  Dataset dict = MakeWords(n, 7);
  SpbTreeOptions options;
  std::unique_ptr<SpbTree> index;
  if (!SpbTree::Build(dict.objects, dict.metric.get(), options, &index)
           .ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("dictionary: %zu words, index: %.1f KB\n\n", n,
              double(index->storage_bytes()) / 1024.0);

  uint64_t total_compdists = 0;
  const int kProbes = 10;
  for (int i = 0; i < kProbes; ++i) {
    const Blob& original = dict.objects[size_t(i) * 37 + 11];
    const Blob typo = MakeTypo(original, uint64_t(i) * 1337 + 5);

    std::vector<Neighbor> suggestions;
    QueryStats stats;
    index->FlushCaches();
    if (!index->KnnQuery(typo, 3, &suggestions, &stats).ok()) return 1;
    total_compdists += stats.distance_computations;

    std::printf("typed \"%s\" -> did you mean:", BlobToString(typo).c_str());
    for (const Neighbor& s : suggestions) {
      std::printf("  %s(d=%.0f)", BlobToString(dict.objects[s.id]).c_str(),
                  s.distance);
    }
    std::printf("\n");
  }
  std::printf(
      "\naverage cost: %.0f edit-distance computations per lookup "
      "(a linear scan needs %zu)\n",
      double(total_compdists) / kProbes, n);
  return 0;
}
