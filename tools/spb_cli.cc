// spb_cli — command-line front end for the SPB-tree.
//
// Build an index over a text file and query it from the shell:
//
//   spb_cli build   --dir=/tmp/idx --metric=edit --input=words.txt
//   spb_cli knn     --dir=/tmp/idx --metric=edit --query=defoliate --k=5
//   spb_cli range   --dir=/tmp/idx --metric=edit --query=defoliate --r=2
//   spb_cli stats   --dir=/tmp/idx --metric=edit
//   spb_cli compact --dir=/tmp/idx --metric=edit
//
// Serve the same index over TCP (docs/PROTOCOL.md) and query it remotely:
//
//   spb_cli serve --dir=/tmp/idx --metric=edit --port=7878 --threads=4
//   spb_cli knn   --connect=127.0.0.1:7878 --metric=edit --query=word --k=5
//   spb_cli range --connect=127.0.0.1:7878 --metric=edit --query=word --r=2
//   spb_cli stats --connect=127.0.0.1:7878
//   spb_cli ping  --connect=127.0.0.1:7878
//
// `build --shards=N` (N a power of two > 1) builds an SFC-range-sharded
// index instead; knn/range/stats detect the sharded layout on open (the
// shards.spb manifest), so querying needs no extra flag.
//
// `--learned` turns on the learned leaf locator and the cost-model query
// planner (build or open); `stats` then reports the locator/planner
// counter lines (docs/OPERATIONS.md §"Reading locator/planner counters").
//
// Input formats:
//   --metric=edit      one word per line (edit distance)
//   --metric=l2|l5     whitespace-separated floats per line (vectors)
//   --metric=hamming   one symbol string per line
//   --metric=dna       one ACGT sequence per line (tri-gram cosine)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/contention.h"
#include "core/sharded_spb_tree.h"
#include "core/spb_tree.h"
#include "exec/query_executor.h"
#include "metrics/edit_distance.h"
#include "metrics/hamming.h"
#include "metrics/lp_norm.h"
#include "metrics/trigram_cosine.h"
#include "net/client.h"
#include "net/server.h"

namespace spb {
namespace cli {
namespace {

struct Args {
  std::string command;
  std::string dir;
  std::string metric = "edit";
  std::string input;
  std::string query;
  double r = 1.0;
  size_t k = 5;
  size_t dim = 16;
  size_t pivots = 5;
  size_t shards = 1;
  size_t repeat = 1;
  bool cold = false;
  bool no_prefetch = false;
  bool learned = false;  // learned leaf locator + cost-model planner
  // Network serving layer (PR 10).
  std::string connect;     // host:port — run the command against a server
  uint16_t port = 7878;    // serve: listen port
  size_t threads = 4;      // serve: executor pool size
  size_t dispatchers = 2;  // serve: dispatcher threads
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* key) -> const char* {
      const size_t len = std::strlen(key);
      if (arg.compare(0, len, key) == 0) return arg.c_str() + len;
      return nullptr;
    };
    if (const char* v = value("--dir=")) {
      args->dir = v;
    } else if (const char* v = value("--metric=")) {
      args->metric = v;
    } else if (const char* v = value("--input=")) {
      args->input = v;
    } else if (const char* v = value("--query=")) {
      args->query = v;
    } else if (const char* v = value("--r=")) {
      args->r = std::atof(v);
    } else if (const char* v = value("--k=")) {
      args->k = size_t(std::atoll(v));
    } else if (const char* v = value("--dim=")) {
      args->dim = size_t(std::atoll(v));
    } else if (const char* v = value("--pivots=")) {
      args->pivots = size_t(std::atoll(v));
    } else if (const char* v = value("--shards=")) {
      args->shards = size_t(std::atoll(v));
    } else if (const char* v = value("--repeat=")) {
      args->repeat = size_t(std::atoll(v));
    } else if (const char* v = value("--connect=")) {
      args->connect = v;
    } else if (const char* v = value("--port=")) {
      args->port = uint16_t(std::atoi(v));
    } else if (const char* v = value("--threads=")) {
      args->threads = size_t(std::atoll(v));
    } else if (const char* v = value("--dispatchers=")) {
      args->dispatchers = size_t(std::atoll(v));
    } else if (arg == "--cold") {
      args->cold = true;
    } else if (arg == "--no-prefetch") {
      args->no_prefetch = true;
    } else if (arg == "--learned") {
      args->learned = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !args->dir.empty() || !args->connect.empty();
}

std::unique_ptr<DistanceFunction> MakeMetric(const Args& args) {
  if (args.metric == "edit") return std::make_unique<EditDistance>(64);
  if (args.metric == "l2") return std::make_unique<LpNorm>(args.dim, 2.0);
  if (args.metric == "l5") return std::make_unique<LpNorm>(args.dim, 5.0);
  if (args.metric == "hamming") return std::make_unique<Hamming>(64);
  if (args.metric == "dna") return std::make_unique<TrigramCosine>();
  return nullptr;
}

// Parses one input/query line into an object under the selected metric.
bool ParseObject(const Args& args, const std::string& line, Blob* out) {
  if (args.metric == "l2" || args.metric == "l5") {
    std::istringstream in(line);
    std::vector<float> v;
    float x;
    while (in >> x) v.push_back(x);
    if (v.size() != args.dim) return false;
    *out = BlobFromFloats(v);
    return true;
  }
  *out = BlobFromString(line);
  return !out->empty();
}

int Build(const Args& args, const DistanceFunction* metric) {
  std::ifstream in(args.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.input.c_str());
    return 1;
  }
  std::vector<Blob> objects;
  std::string line;
  size_t skipped = 0;
  while (std::getline(in, line)) {
    Blob obj;
    if (ParseObject(args, line, &obj)) {
      objects.push_back(std::move(obj));
    } else if (!line.empty()) {
      ++skipped;
    }
  }
  std::printf("read %zu objects (%zu lines skipped)\n", objects.size(),
              skipped);

  SpbTreeOptions options;
  options.storage_dir = args.dir;
  options.num_pivots = args.pivots;
  options.enable_learned_locator = args.learned;
  options.enable_planner = args.learned;

  auto report = [&](const auto& index) {
    const QueryStats cost = index.cumulative_stats();
    std::printf("%s built in %s: %llu objects, %.1f KB, "
                "%llu distance computations\n",
                index.name().c_str(), args.dir.c_str(),
                (unsigned long long)index.size(),
                double(index.storage_bytes()) / 1024.0,
                (unsigned long long)cost.distance_computations);
  };

  Status s;
  if (args.shards > 1) {
    options.num_shards = args.shards;
    std::unique_ptr<ShardedSpbTree> index;
    s = ShardedSpbTree::Build(objects, metric, options, &index);
    if (s.ok()) s = index->Save();
    if (s.ok()) report(*index);
  } else {
    std::unique_ptr<SpbTree> index;
    s = SpbTree::Build(objects, metric, options, &index);
    if (s.ok()) s = index->Save();
    if (s.ok()) report(*index);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

// True when `dir` holds a write-ahead log; such an index is opened with the
// WAL enabled so records a crashed writer left behind replay before any
// query or stat runs.
bool HasWal(const std::string& dir) {
  std::ifstream f(dir + "/wal.spb");
  return f.good();
}

// Renders one StatsSnapshot — THE stats surface since PR 10
// (MetricIndex::CollectStats(), also what the wire STATS op carries, so
// local and --connect stats print identically). Sections an index never
// exercised are omitted; `indent` nests the per-shard drill-down.
void PrintSnapshotScalars(const StatsSnapshot& s, const char* indent) {
  std::printf("%scost: %llu page accesses, %llu distance computations\n",
              indent, (unsigned long long)s.page_accesses,
              (unsigned long long)s.distance_computations);
  std::printf(
      "%sio: %llu page reads (%llu cache hits, %llu physical), "
      "%llu page writes\n",
      indent, (unsigned long long)s.page_reads,
      (unsigned long long)s.cache_hits, (unsigned long long)s.physical_reads,
      (unsigned long long)s.page_writes);
  std::printf(
      "%sio: %llu prefetch issued, %llu prefetch hits, %llu coalesced "
      "pages\n",
      indent, (unsigned long long)s.prefetch_issued,
      (unsigned long long)s.prefetch_hits,
      (unsigned long long)s.coalesced_pages);
  std::printf("%sdead bytes: %llu (lazy deletes awaiting compaction)\n",
              indent, (unsigned long long)s.dead_bytes);
  if (s.wal_segment_bytes > 0 || s.wal_next_lsn > 0) {
    std::printf(
        "%swal: %llu segment bytes, checkpoint lsn %llu, %llu pending "
        "records, %llu replayed on open\n",
        indent, (unsigned long long)s.wal_segment_bytes,
        (unsigned long long)s.wal_checkpoint_lsn,
        (unsigned long long)s.wal_pending_records,
        (unsigned long long)s.wal_replayed_records);
  }
  if (s.wq_ops > 0 || s.wq_groups > 0) {
    std::printf(
        "%swrite queue: %llu ops in %llu groups (max group %llu), "
        "%llu compactions\n",
        indent, (unsigned long long)s.wq_ops,
        (unsigned long long)s.wq_groups, (unsigned long long)s.wq_max_group,
        (unsigned long long)s.wq_compactions);
  }
  if (s.locator_model_present || s.locator_hits > 0 ||
      s.locator_fallbacks > 0) {
    std::printf(
        "%slocator: %s, %llu leaves / %llu segments (eps=%llu, pla_ok=%d), "
        "%llu internal nodes imaged\n",
        indent, s.locator_model_present ? "model present" : "no model",
        (unsigned long long)s.locator_leaves,
        (unsigned long long)s.locator_segments,
        (unsigned long long)s.locator_epsilon, int(s.locator_pla_ok),
        (unsigned long long)s.locator_internal_nodes);
    std::printf(
        "%slocator counters: %llu hits, %llu fallbacks, %llu stale, "
        "%llu seek misses, %llu rebuilds\n",
        indent, (unsigned long long)s.locator_hits,
        (unsigned long long)s.locator_fallbacks,
        (unsigned long long)s.locator_stale,
        (unsigned long long)s.locator_seek_misses,
        (unsigned long long)s.locator_rebuilds);
  }
  if (s.planner_planned_range > 0 || s.planner_planned_knn > 0) {
    std::printf(
        "%splanner: %llu range / %llu knn planned; routed %llu greedy / "
        "%llu incremental, cutoff off on %llu\n",
        indent, (unsigned long long)s.planner_planned_range,
        (unsigned long long)s.planner_planned_knn,
        (unsigned long long)s.planner_routed_greedy,
        (unsigned long long)s.planner_routed_incremental,
        (unsigned long long)s.planner_cutoff_disabled);
    std::printf("%splanner calibration: %.4f (drift %.4f)\n", indent,
                s.planner_calibration, s.planner_drift);
  }
}

void PrintSnapshot(const StatsSnapshot& s) {
  std::printf("index: %s\nobjects: %llu\nstorage: %.1f KB\nshards: %u\n",
              s.name.c_str(), (unsigned long long)s.num_objects,
              double(s.storage_bytes) / 1024.0, s.num_shards);
  PrintSnapshotScalars(s, "");
  for (size_t sh = 0; sh < s.shards.size(); ++sh) {
    const StatsSnapshot& shard = s.shards[sh];
    std::printf("  shard %zu: %llu objects, %.1f KB\n", sh,
                (unsigned long long)shard.num_objects,
                double(shard.storage_bytes) / 1024.0);
    PrintSnapshotScalars(shard, "    ");
  }
}

// The `compact` command body, shared by both layouts: rewrite the RAF(s)
// into SFC order, dropping the dead-byte debt, and checkpoint.
template <typename Index>
int RunCompact(Index* index) {
  const uint64_t before =
      index->io_stats().dead_bytes.load(std::memory_order_relaxed);
  const Status s = index->Compact();
  if (!s.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("compacted: reclaimed %llu dead bytes, %.1f KB on disk\n",
              (unsigned long long)before,
              double(index->storage_bytes()) / 1024.0);
  return 0;
}

// Lock-contention counters accumulated over this process's work (open,
// queries, compaction). Zero-acquire locks are omitted; the histogram is
// summarized as the worst waited bucket (docs/OPERATIONS.md §"Reading
// contention counters").
void PrintContentionStats() {
  bool any = false;
  for (const LockStatsSnapshot& l : ContentionSnapshot()) {
    if (l.acquires == 0) continue;
    if (!any) std::printf("lock contention (this process):\n");
    any = true;
    int worst = -1;
    for (size_t b = 0; b < kContentionBuckets; ++b) {
      if (l.wait_hist[b] > 0) worst = int(b);
    }
    std::printf("  %-18s %10llu acquires, %8llu contended, %8.3f ms "
                "waited%s%s\n",
                l.name.c_str(), (unsigned long long)l.acquires,
                (unsigned long long)l.contended, l.wait_ns / 1e6,
                worst >= 0 ? ", worst bucket us 2^" : "",
                worst >= 0 ? std::to_string(worst).c_str() : "");
  }
}

// Common stats header shared by the plain and sharded layouts; `index` is
// SpbTree or ShardedSpbTree (both expose size/storage_bytes/space).
template <typename Index>
void PrintCommonStats(const Index& index) {
  std::printf("objects: %llu\nstorage: %.1f KB\npivots: %zu\n"
              "curve bits/dim: %d\ncells/dim: %u\n",
              (unsigned long long)index.size(),
              double(index.storage_bytes()) / 1024.0,
              index.space().pivots().size(), index.space().curve().bits(),
              index.space().discretizer().num_cells());
}

// The knn/range loop, shared by both layouts (only MetricIndex-surface
// methods plus ApplyTuning/tuning, which both types provide).
template <typename Index>
int RunQuery(const Args& args, Index* index) {
  Status s;
  Blob q;
  if (!ParseObject(args, args.query, &q)) {
    std::fprintf(stderr, "cannot parse --query under metric %s\n",
                 args.metric.c_str());
    return 1;
  }
  if (args.no_prefetch) {
    TuningOptions tn = index->tuning();
    tn.enable_prefetch = false;
    if (!index->ApplyTuning(tn).ok()) {
      std::fprintf(stderr, "ApplyTuning failed\n");
      return 1;
    }
  }
  // --cold measures the paper's protocol: drop both LRU pools and zero the
  // cumulative counters before the (repeated) query runs.
  if (args.cold) {
    index->FlushCaches();
    index->ResetCounters();
  }
  const size_t repeat = args.repeat == 0 ? 1 : args.repeat;
  const IoStats io_before = index->io_stats();
  QueryStats totals;
  for (size_t rep = 0; rep < repeat; ++rep) {
    if (args.cold) index->FlushCaches();
    QueryStats stats;
    const bool last = rep + 1 == repeat;
    if (args.command == "knn") {
      std::vector<Neighbor> result;
      s = index->KnnQuery(q, args.k, &result, &stats);
      if (!s.ok()) {
        std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (last) {
        for (const Neighbor& n : result) {
          std::printf("id=%u distance=%.6g\n", n.id, n.distance);
        }
      }
    } else {  // range
      std::vector<ObjectId> result;
      s = index->RangeQuery(q, args.r, &result, &stats);
      if (!s.ok()) {
        std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (last) {
        for (ObjectId id : result) std::printf("id=%u\n", id);
      }
    }
    totals += stats;
  }
  const IoStats io_after = index->io_stats();
  const double per = 1.0 / double(repeat);
  std::fprintf(stderr,
               "[%s%s%.1f distance computations, %.1f page accesses, "
               "%.2f ms/query over %zu run(s)]\n",
               args.cold ? "cold, " : "",
               args.no_prefetch ? "prefetch off, " : "",
               double(totals.distance_computations) * per,
               double(totals.page_accesses) * per,
               totals.elapsed_seconds * 1000.0 * per, repeat);
  auto delta = [&](const StripedU64& a, const StripedU64& b) {
    return (unsigned long long)(a.load() - b.load());
  };
  std::fprintf(stderr,
               "[io: %llu physical reads, %llu prefetch issued, "
               "%llu prefetch hits, %llu coalesced pages]\n",
               delta(io_after.physical_reads, io_before.physical_reads),
               delta(io_after.prefetch_issued, io_before.prefetch_issued),
               delta(io_after.prefetch_hits, io_before.prefetch_hits),
               delta(io_after.coalesced_pages, io_before.coalesced_pages));
  PrintContentionStats();
  return 0;
}

// `serve` blocks until SIGINT/SIGTERM.
volatile std::sig_atomic_t g_stop_serving = 0;
void HandleStopSignal(int) { g_stop_serving = 1; }

// The `serve` command body: one executor pool over the opened index, one
// TCP server multiplexing every connection onto it (docs/PROTOCOL.md).
int Serve(const Args& args, MetricIndex* index) {
  QueryExecutor exec(index, args.threads == 0 ? 1 : args.threads);
  net::ServerOptions sopts;
  sopts.port = args.port;
  sopts.num_dispatchers = args.dispatchers;
  net::Server server(&exec, sopts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("serving %s on %s:%u (%zu executor threads, %zu dispatchers); "
              "Ctrl-C to stop\n",
              index->name().c_str(), sopts.host.c_str(), server.port(),
              exec.num_threads(), sopts.num_dispatchers);
  std::fflush(stdout);
  while (g_stop_serving == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  const net::ServerStats ss = server.stats();
  std::printf("served %llu ops over %llu connections (%llu frames in, "
              "%llu out, %llu busy-rejected, %llu protocol errors)\n",
              (unsigned long long)ss.ops_executed,
              (unsigned long long)ss.connections_accepted,
              (unsigned long long)ss.frames_received,
              (unsigned long long)ss.frames_sent,
              (unsigned long long)ss.ops_rejected_busy,
              (unsigned long long)ss.protocol_errors);
  return 0;
}

// Runs knn/range/stats/ping against a running server (--connect=host:port)
// through the blocking client. Same output shape as the local commands.
int Remote(const Args& args) {
  const size_t colon = args.connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants host:port, got %s\n",
                 args.connect.c_str());
    return 2;
  }
  const std::string host = args.connect.substr(0, colon);
  const uint16_t port = uint16_t(std::atoi(args.connect.c_str() + colon + 1));
  net::Client client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (args.command == "ping") {
    s = client.Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pong from %s\n", args.connect.c_str());
    return 0;
  }
  if (args.command == "stats") {
    StatsSnapshot snapshot;
    s = client.CollectStats(&snapshot);
    if (!s.ok()) {
      std::fprintf(stderr, "stats failed: %s\n", s.ToString().c_str());
      return 1;
    }
    PrintSnapshot(snapshot);
    return 0;
  }
  Blob q;
  if (!ParseObject(args, args.query, &q)) {
    std::fprintf(stderr, "cannot parse --query under metric %s\n",
                 args.metric.c_str());
    return 1;
  }
  if (args.command == "knn") {
    std::vector<Neighbor> result;
    s = client.Knn(q, args.k, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const Neighbor& n : result) {
      std::printf("id=%u distance=%.6g\n", n.id, n.distance);
    }
    return 0;
  }
  if (args.command == "range") {
    std::vector<ObjectId> result;
    s = client.Range(q, args.r, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (ObjectId id : result) std::printf("id=%u\n", id);
    return 0;
  }
  std::fprintf(stderr, "command %s does not support --connect\n",
               args.command.c_str());
  return 2;
}

int Query(const Args& args, const DistanceFunction* metric) {
  SpbTreeOptions options;
  options.enable_learned_locator = args.learned;
  options.enable_planner = args.learned;
  // The on-disk layout picks the engine: a shards.spb manifest means the
  // directory holds an SFC-range-sharded index.
  if (ShardedSpbTree::IsShardedDir(args.dir)) {
    options.enable_wal = HasWal(args.dir + "/shard_0");
    std::unique_ptr<ShardedSpbTree> index;
    Status s = ShardedSpbTree::Open(args.dir, metric, options, &index);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (args.command == "compact") return RunCompact(index.get());
    if (args.command == "stats") {
      PrintCommonStats(*index);
      PrintSnapshot(index->CollectStats());
      PrintContentionStats();
      return 0;
    }
    if (args.command == "serve") return Serve(args, index.get());
    return RunQuery(args, index.get());
  }

  options.enable_wal = HasWal(args.dir);
  std::unique_ptr<SpbTree> index;
  Status s = SpbTree::Open(args.dir, metric, options, &index);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (args.command == "compact") return RunCompact(index.get());
  if (args.command == "stats") {
    PrintCommonStats(*index);
    std::printf("precision: %.3f\n", index->cost_model().precision());
    PrintSnapshot(index->CollectStats());
    PrintContentionStats();
    return 0;
  }
  if (args.command == "serve") return Serve(args, index.get());
  return RunQuery(args, index.get());
}

int Main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: spb_cli <build|knn|range|stats|compact|serve|ping> "
        "--dir=PATH | --connect=HOST:PORT [--metric=edit|"
        "l2|l5|hamming|dna] [--input=FILE] [--query=Q] [--r=R] [--k=K] "
        "[--dim=D] [--pivots=P] [--shards=S] [--repeat=N] [--cold] "
        "[--no-prefetch] [--learned] [--port=P] [--threads=T] "
        "[--dispatchers=D]\n");
    return 2;
  }
  if (!args.connect.empty()) {
    if (args.command == "knn" || args.command == "range" ||
        args.command == "stats" || args.command == "ping") {
      return Remote(args);
    }
    std::fprintf(stderr, "command %s does not support --connect\n",
                 args.command.c_str());
    return 2;
  }
  auto metric = MakeMetric(args);
  if (metric == nullptr) {
    std::fprintf(stderr, "unknown metric: %s\n", args.metric.c_str());
    return 2;
  }
  if (args.command == "build") return Build(args, metric.get());
  if (args.command == "knn" || args.command == "range" ||
      args.command == "stats" || args.command == "compact" ||
      args.command == "serve") {
    return Query(args, metric.get());
  }
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 2;
}

}  // namespace
}  // namespace cli
}  // namespace spb

int main(int argc, char** argv) { return spb::cli::Main(argc, argv); }
