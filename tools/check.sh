#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# build that runs the concurrency tests (the concurrent read path must be
# data-race-free, not just correct-by-luck).
#
#   tools/check.sh            # everything
#   tools/check.sh --tsan     # only the TSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

run_tier1() {
  echo "==> tier-1: build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "==> tsan: concurrency tests under ThreadSanitizer"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target concurrency_test
  ./build-tsan/tests/concurrency_test
}

if [[ "${1:-}" == "--tsan" ]]; then
  run_tsan
else
  run_tier1
  run_tsan
fi
echo "==> all checks passed"
