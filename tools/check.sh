#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# build that runs the concurrency tests (the concurrent read path must be
# data-race-free, not just correct-by-luck), then an Address/UB-sanitizer
# build that runs the kernel parity and metric tests — once with the
# dispatched SIMD kernels and once with SPB_DISABLE_SIMD=1 — so out-of-bounds
# lane loads or UB in any kernel table fail loudly on every path.
#
#   tools/check.sh            # everything
#   tools/check.sh --tsan     # only the TSan stage
#   tools/check.sh --asan     # only the ASan/UBSan kernel stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

run_tier1() {
  echo "==> tier-1: build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "==> tsan: concurrency tests under ThreadSanitizer"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target concurrency_test
  ./build-tsan/tests/concurrency_test
}

run_asan() {
  echo "==> asan: kernel parity + metric tests under ASan/UBSan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target kernels_test metrics_test
  ./build-asan/tests/kernels_test
  ./build-asan/tests/metrics_test
  echo "==> asan: same tests with SPB_DISABLE_SIMD=1 (scalar dispatch path)"
  SPB_DISABLE_SIMD=1 ./build-asan/tests/kernels_test
  SPB_DISABLE_SIMD=1 ./build-asan/tests/metrics_test
}

case "${1:-}" in
  --tsan) run_tsan ;;
  --asan) run_asan ;;
  *)
    run_tier1
    run_tsan
    run_asan
    ;;
esac
echo "==> all checks passed"
