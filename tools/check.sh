#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# build that runs the concurrency and storage tests (the concurrent read
# path — single-flight fetches, the prefetch pipeline's background span
# reads and staged-page claims — must be data-race-free, not just
# correct-by-luck), then an Address/UB-sanitizer build that runs the kernel
# parity, metric and SFC batch-decode tests — once with the dispatched SIMD
# variants and once with SPB_DISABLE_SIMD=1 — so out-of-bounds lane loads or
# UB in any dispatch table fail loudly on every path. Finally an io_uring
# configure check: -DSPB_IOURING=ON must degrade gracefully (warning + the
# portable pread backend) on machines without liburing.
#
#   tools/check.sh            # everything
#   tools/check.sh --tsan     # only the TSan stage
#   tools/check.sh --asan     # only the ASan/UBSan kernel stage
#   tools/check.sh --iouring  # only the io_uring configure/build check
#   tools/check.sh --warmab   # only the warm A/B identity sweep (ASan+TSan)
#   tools/check.sh --updates  # only the update-engine stage (TSan+ASan)
#   tools/check.sh --sharded  # only the sharded-tree stage (TSan+ASan)
#   tools/check.sh --wal      # only the write-path engine stage (TSan+ASan)
#   tools/check.sh --fanout   # only the fan-out/contention stage (TSan+ASan)
#   tools/check.sh --learned  # only the learned locator/planner stage (TSan+ASan)
#   tools/check.sh --net      # only the network serving stage (TSan+ASan)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

run_tier1() {
  echo "==> tier-1: build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "==> tsan: concurrency + storage (prefetch pipeline) tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target concurrency_test storage_test
  ./build-tsan/tests/concurrency_test
  ./build-tsan/tests/storage_test
}

run_asan() {
  echo "==> asan: kernel/SFC parity + metric tests under ASan/UBSan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target kernels_test metrics_test \
    sfc_test
  ./build-asan/tests/kernels_test
  ./build-asan/tests/metrics_test
  ./build-asan/tests/sfc_test
  echo "==> asan: same tests with SPB_DISABLE_SIMD=1 (scalar dispatch path)"
  SPB_DISABLE_SIMD=1 ./build-asan/tests/kernels_test
  SPB_DISABLE_SIMD=1 ./build-asan/tests/metrics_test
  SPB_DISABLE_SIMD=1 ./build-asan/tests/sfc_test
}

run_warmab() {
  # The warm-path decode engine's A/B identity sweep (bench_concurrency
  # aborts if the node cache or zero-copy reads change results, logical PA,
  # cache_hits or compdists), run at a small scale under both ASan (pin
  # lifetimes: a BlobView must keep evicted frames alive) and TSan (node
  # cache sharding + pin hand-off under the concurrent executor).
  echo "==> warmab: decode-engine A/B identity sweep under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target bench_concurrency \
    node_cache_test
  ./build-asan/tests/node_cache_test
  (cd build-asan && ./bench/bench_concurrency --scale=3000 --queries=48)
  echo "==> warmab: decode-engine A/B identity sweep under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target bench_concurrency
  (cd build-tsan && ./bench/bench_concurrency --scale=3000 --queries=48)
}

run_updates() {
  # The update engine's correctness stage: epoch-based snapshot publication
  # (interleaved insert/delete + query identity, COW page retirement, writer
  # kBusy taxonomy, mixed executor batches) under TSan — the interleaved
  # tests are exactly the read/write races the snapshot protocol must make
  # benign — and under ASan (COW page recycling and retire callbacks must
  # never free pages a pinned snapshot still reads).
  echo "==> updates: snapshot/update-engine tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target updates_test
  ./build-tsan/tests/updates_test
  echo "==> updates: snapshot/update-engine tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target updates_test
  ./build-asan/tests/updates_test
}

run_sharded() {
  # The sharded-tree stage: scatter-gather identity vs the single tree,
  # cross-shard kNN under the shared NDk bound, per-shard writer isolation
  # and concurrent mixed executor batches. TSan catches races in the
  # shared-bound CAS loop, the per-shard box growth and the retry-on-Busy
  # dispatch; ASan covers the pre-mapped insert paths' pointer lifetimes
  # (MappedInsert borrows the caller's phi rows).
  echo "==> sharded: sharded SPB-tree tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target sharded_test
  ./build-tsan/tests/sharded_test
  echo "==> sharded: sharded SPB-tree tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target sharded_test
  ./build-asan/tests/sharded_test
}

run_wal() {
  # The write-path engine stage: group-commit WAL, writer queueing and
  # epoch-safe compaction under both sanitizers. TSan covers the leader
  # hand-off in the commit queue (concurrent Submit/SubmitBatch callers
  # electing a drain leader), the background compactor thread racing
  # pinned-snapshot readers, and the checkpoint-gated page recycling; ASan
  # covers WAL replay buffers, the RAF rewrite's fresh-page staging and the
  # retire-callback lifetimes across the compaction swap. The kill-point
  # matrix re-execs the test binary with SPB_CRASH_POINT set, which works
  # unchanged under either sanitizer (children _exit at the kill point).
  echo "==> wal: write-path engine tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target wal_test
  ./build-tsan/tests/wal_test
  echo "==> wal: write-path engine tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target wal_test
  ./build-asan/tests/wal_test
}

run_fanout() {
  # The multi-core query engine stage: TaskArena ticket ring + per-worker
  # parking, nested fan-out from workers (pool-size-1 deadlock regression),
  # the mutex-free snapshot Acquire/Release fast path racing publish/retire
  # churn (the zero-mutex claim is only credible TSan-clean), striped
  # counters, and parallel-scatter byte-identity. The small --fanout-only
  # sweep re-runs the serial-vs-parallel identity gates at batch scale
  # under both sanitizers.
  echo "==> fanout: task arena + snapshot fast path tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target fanout_test bench_concurrency
  ./build-tsan/tests/fanout_test
  (cd build-tsan && ./bench/bench_concurrency --fanout-only --scale=1200 --queries=12)
  echo "==> fanout: task arena + snapshot fast path tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target fanout_test bench_concurrency
  ./build-asan/tests/fanout_test
  (cd build-asan && ./bench/bench_concurrency --fanout-only --scale=1200 --queries=12)
}

run_learned() {
  # The learned-layer stage: leaf-locator property tests (SeekRank exactness
  # at any epsilon, COW-churn invalidation and threshold rebuild) and the
  # planner identity tests, plus the bench's 2x2 locator x planner identity
  # sweep. TSan covers the model swap under MaybeRefreshLocatorLocked racing
  # readers that hold the previous shared_ptr, and the planner's cost_mu_
  # feedback path racing concurrent queries; ASan covers the borrowed
  # internal-node image lifetimes (NodeHandle::SetBorrowed must never
  # outlive the model that owns the DecodedNode).
  echo "==> learned: locator/planner tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target learned_test bench_learned
  ./build-tsan/tests/learned_test
  (cd build-tsan && ./bench/bench_learned --identity-only --scale=2000 --queries=20)
  echo "==> learned: locator/planner tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target learned_test bench_learned
  ./build-asan/tests/learned_test
  (cd build-asan && ./bench/bench_learned --identity-only --scale=2000 --queries=20)
}

run_net() {
  # The network serving stage: frame assembly/protocol robustness, the
  # epoll I/O thread handing sockets' outboxes to dispatcher threads (the
  # per-conn mutex + eventfd wake protocol is only credible TSan-clean),
  # admission-control CAS on the in-flight op counter, concurrent clients,
  # and mid-frame disconnects. ASan covers the shared_ptr<Conn> lifecycle
  # across I/O-thread close vs in-flight dispatcher replies, torn-frame
  # reassembly buffers, and decode bounds on hostile payloads. The
  # --identity-only sweep re-runs the wire identity gate under both.
  echo "==> net: serving layer tests under TSan"
  cmake -B build-tsan -S . -DSPB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target net_test bench_serving
  ./build-tsan/tests/net_test
  (cd build-tsan && ./bench/bench_serving --identity-only --scale=1500 --queries=16)
  echo "==> net: serving layer tests under ASan"
  cmake -B build-asan -S . -DSPB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target net_test bench_serving
  ./build-asan/tests/net_test
  (cd build-asan && ./bench/bench_serving --identity-only --scale=1500 --queries=16)
}

run_iouring() {
  echo "==> iouring: -DSPB_IOURING=ON must build (falls back to pread"
  echo "    with a warning when liburing is absent)"
  cmake -B build-iouring -S . -DSPB_IOURING=ON >/dev/null
  cmake --build build-iouring -j "${JOBS}" --target storage_test
  ./build-iouring/tests/storage_test
}

case "${1:-}" in
  --tsan) run_tsan ;;
  --asan) run_asan ;;
  --iouring) run_iouring ;;
  --warmab) run_warmab ;;
  --updates) run_updates ;;
  --sharded) run_sharded ;;
  --wal) run_wal ;;
  --fanout) run_fanout ;;
  --learned) run_learned ;;
  --net) run_net ;;
  *)
    run_tier1
    run_tsan
    run_asan
    run_warmab
    run_updates
    run_sharded
    run_wal
    run_fanout
    run_learned
    run_net
    run_iouring
    ;;
esac
echo "==> all checks passed"
