#include "exec/task_arena.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace spb {

namespace {

thread_local TaskArena* tl_arena = nullptr;

constexpr size_t kRingCapacity = 256;  // power of two

bool MutexFallbackRequested() {
  const char* v = std::getenv("SPB_ARENA_MUTEX");
  return v != nullptr && v[0] == '1';
}

}  // namespace

TaskArena* TaskArena::Current() { return tl_arena; }

TaskArena::TicketRing::TicketRing(size_t capacity_pow2)
    : cells_(new Cell[capacity_pow2]), mask_(capacity_pow2 - 1) {
  for (size_t i = 0; i <= mask_; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TaskArena::TicketRing::Push(std::shared_ptr<GroupState> g) {
  size_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& c = cells_[pos & mask_];
    const size_t seq = c.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        c.val = std::move(g);
        c.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool TaskArena::TicketRing::Pop(std::shared_ptr<GroupState>* out) {
  size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& c = cells_[pos & mask_];
    const size_t seq = c.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        *out = std::move(c.val);
        c.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool TaskArena::TicketRing::EmptyApprox() const {
  return head_.load(std::memory_order_seq_cst) ==
         tail_.load(std::memory_order_seq_cst);
}

TaskArena::TaskArena(size_t num_threads)
    : use_mutex_(MutexFallbackRequested()), ring_(kRingCapacity) {
  const size_t n = std::clamp<size_t>(num_threads, 1, 64);
  park_words_.reset(new ParkWord[n]);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskArena::~TaskArena() {
  if (use_mutex_) {
    {
      std::lock_guard<InstrumentedMutex> lock(queue_mu_);
      stop_.store(true, std::memory_order_seq_cst);
    }
    queue_cv_.notify_all();
  } else {
    stop_.store(true, std::memory_order_seq_cst);
    // Keep posting wake tokens until every worker has observed stop_: a
    // token written before a worker's park-entry reset would otherwise be
    // lost, and atomic wait has no timeout to recover with.
    while (exited_.load(std::memory_order_acquire) < threads_.size()) {
      for (size_t i = 0; i < threads_.size(); ++i) {
        park_words_[i].w.store(1, std::memory_order_release);
        park_words_[i].w.notify_all();
      }
      std::this_thread::yield();
    }
  }
  for (std::thread& t : threads_) t.join();
}

size_t TaskArena::DrainGroup(GroupState& g) {
  size_t ran = 0;
  for (;;) {
    const size_t begin = g.next.fetch_add(g.chunk, std::memory_order_relaxed);
    if (begin >= g.total) break;
    const size_t end = std::min(begin + g.chunk, g.total);
    for (size_t i = begin; i < end; ++i) (*g.fn)(i);
    ran += end - begin;
    const size_t done_now = end - begin;
    if (g.completed.fetch_add(done_now, std::memory_order_acq_rel) +
            done_now ==
        g.total) {
      g.done.store(1, std::memory_order_release);
      g.done.notify_all();
    }
  }
  return ran;
}

void TaskArena::RunGroup(size_t n, const std::function<void(size_t)>& fn,
                         bool help) {
  if (n == 0) return;
  auto g = std::make_shared<GroupState>();
  g->fn = &fn;
  g->total = n;
  // Chunked claiming: large top-level batches move their cursor in strides
  // (fewer contended RMWs), small fan-out groups stay at 1 so every worker
  // can grab a shard.
  g->chunk = std::clamp<size_t>(n / (threads_.size() * 4), 1, 16);
  size_t want = std::min(n, threads_.size());
  size_t pushed = 0;
  if (use_mutex_) {
    {
      std::lock_guard<InstrumentedMutex> lock(queue_mu_);
      for (; pushed < want; ++pushed) queue_.push_back(g);
    }
    if (pushed == 1) {
      queue_cv_.notify_one();
    } else {
      queue_cv_.notify_all();
    }
  } else {
    if (help) {
      // Nested fan-out from a worker: publish tickets only up to the idle
      // (parked) worker count. A busy worker that stole a chunk couldn't
      // run it sooner than we can ourselves — it would only couple this
      // query's latency to another thread's scheduling — whereas parked
      // workers are genuinely free capacity. With zero idle workers the
      // group degrades to an inline drain, which is exactly the serial
      // path. Results are identical either way (byte-identity holds
      // regardless of who runs a task).
      const auto idle = static_cast<size_t>(
          std::popcount(parked_mask_.load(std::memory_order_seq_cst)));
      want = std::min(want, idle);
    }
    for (; pushed < want; ++pushed) {
      if (!ring_.Push(g)) break;
    }
    if (pushed > 0) Unpark(pushed);
  }
  stats_.tickets_pushed.fetch_add(pushed);
  if (help || pushed == 0) {
    // help: nested fan-out — the caller is a worker and must make progress
    // itself (see the deadlock-freedom induction in the header).
    // pushed == 0: ring full — degrade to inline execution, never block.
    if (pushed == 0) stats_.inline_drains.fetch_add(1);
    DrainGroup(*g);
  }
  while (g->done.load(std::memory_order_acquire) == 0) {
    g->done.wait(0, std::memory_order_acquire);
  }
}

void TaskArena::WorkerLoop(size_t id) {
  tl_arena = this;
  if (use_mutex_) {
    MutexWorkerLoop();
  } else {
    while (!stop_.load(std::memory_order_acquire)) {
      std::shared_ptr<GroupState> g;
      if (ring_.Pop(&g)) {
        stats_.tickets_popped.fetch_add(1);
        if (DrainGroup(*g) == 0) stats_.stale_tickets.fetch_add(1);
        g.reset();
        continue;
      }
      Park(id);
    }
  }
  tl_arena = nullptr;
  exited_.fetch_add(1, std::memory_order_release);
}

void TaskArena::MutexWorkerLoop() {
  std::vector<std::shared_ptr<GroupState>> claimed;
  claimed.reserve(kClaimBatch);
  for (;;) {
    claimed.clear();
    {
      std::unique_lock<InstrumentedMutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) break;  // stop requested and nothing left
      // Claim a batch of tickets under one lock acquisition: O(tickets / K)
      // lock round-trips instead of one per ticket.
      while (!queue_.empty() && claimed.size() < kClaimBatch) {
        claimed.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    stats_.fallback_lock_claims.fetch_add(1);
    stats_.fallback_tickets_claimed.fetch_add(claimed.size());
    stats_.tickets_popped.fetch_add(claimed.size());
    for (auto& g : claimed) {
      if (DrainGroup(*g) == 0) stats_.stale_tickets.fetch_add(1);
      g.reset();
    }
  }
}

void TaskArena::Park(size_t id) {
  const uint64_t bit = uint64_t{1} << id;
  ParkWord& pw = park_words_[id];
  // Reset any stale wake token from a previous round *before* announcing:
  // a token stored after this point either finds us in the mask (we will be
  // woken) or races the recheck below (spurious wake, harmless).
  pw.w.store(0, std::memory_order_relaxed);
  parked_mask_.fetch_or(bit, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Store-buffering crossing with RunGroup's push-then-read-mask: at least
  // one side observes the other, so either we see the ticket here or the
  // producer sees our bit and posts a token.
  if (!ring_.EmptyApprox() || stop_.load(std::memory_order_relaxed)) {
    parked_mask_.fetch_and(~bit, std::memory_order_seq_cst);
    return;
  }
  stats_.parks.fetch_add(1);
  pw.w.wait(0, std::memory_order_acquire);
}

void TaskArena::Unpark(size_t want) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  size_t woken = 0;
  while (woken < want) {
    const uint64_t m = parked_mask_.load(std::memory_order_seq_cst);
    if (m == 0) return;
    const int id = std::countr_zero(m);
    const uint64_t bit = uint64_t{1} << id;
    // Claim the bit; losing the race (the worker un-parked itself, or
    // another producer woke it first) just means reloading the mask.
    if (parked_mask_.fetch_and(~bit, std::memory_order_seq_cst) & bit) {
      park_words_[id].w.store(1, std::memory_order_release);
      park_words_[id].w.notify_one();
      stats_.unparks.fetch_add(1);
      ++woken;
    }
  }
}

ArenaQueueStats TaskArena::queue_stats() const {
  ArenaQueueStats s;
  s.tickets_pushed = stats_.tickets_pushed.load();
  s.tickets_popped = stats_.tickets_popped.load();
  s.stale_tickets = stats_.stale_tickets.load();
  s.inline_drains = stats_.inline_drains.load();
  s.parks = stats_.parks.load();
  s.unparks = stats_.unparks.load();
  s.fallback_lock_claims = stats_.fallback_lock_claims.load();
  s.fallback_tickets_claimed = stats_.fallback_tickets_claimed.load();
  return s;
}

}  // namespace spb
