#ifndef SPB_EXEC_TASK_ARENA_H_
#define SPB_EXEC_TASK_ARENA_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/contention.h"
#include "common/striped.h"

namespace spb {

/// Counters describing how work moved through a TaskArena (PR 8
/// observability; surfaced in bench JSON). All values are cumulative since
/// construction; exact once the racing work has been joined.
struct ArenaQueueStats {
  uint64_t tickets_pushed = 0;   ///< group tickets enqueued by RunGroup
  uint64_t tickets_popped = 0;   ///< tickets taken by workers
  uint64_t stale_tickets = 0;    ///< popped tickets whose group was drained
  uint64_t inline_drains = 0;    ///< RunGroup ran inline (ring full)
  uint64_t parks = 0;            ///< worker went to sleep (ring mode)
  uint64_t unparks = 0;          ///< producer woke a parked worker
  uint64_t fallback_lock_claims = 0;     ///< mutex mode: claiming lock grabs
  uint64_t fallback_tickets_claimed = 0; ///< mutex mode: tickets per grab sum
};

/// A fixed pool of worker threads executing *task groups*: RunGroup(n, fn)
/// runs fn(0..n-1) across the pool and returns when all n calls finished.
/// This is the two-level task model of docs/ARCHITECTURE.md §"Threading
/// model": top-level batch groups (one task per query, submitted by
/// QueryExecutor) and nested fan-out groups (one task per surviving shard,
/// submitted by ShardedSpbTree *from inside* a batch task) share the same
/// pool without deadlock:
///
///  - A group is published as up to num_threads() *tickets* on a bounded
///    lock-free MPMC ring (Vyukov queue). A ticket is an invitation, not a
///    task: whoever pops one claims chunks of the group's index space from
///    an atomic cursor until the group is dry, so a single popped ticket
///    suffices to drain a whole group and late/stale tickets are harmless.
///  - A submitter that must not block the pool (nested fan-out: the caller
///    *is* a worker) passes help=true and claims its own group's tasks
///    inline before waiting. Progress induction: a help-submitter always
///    drains its group without third-party assistance, so a chain of nested
///    fan-outs bottoms out at leaf tasks and every blocked RunGroup wait is
///    on tasks another worker is actively running — no cycles, any pool
///    size (the pool-size-1 regression test in tests/fanout_test.cc pins
///    this).
///  - If the ring is full, RunGroup simply runs the group inline —
///    backpressure degrades to serial execution, never to blocking.
///  - Completion waits use C++20 atomic wait/notify on a per-group flag; no
///    condition variable, no mutex anywhere on the submit/execute/complete
///    path.
///
/// Idle workers park on a per-worker futex word after registering in an
/// atomic bitmask; producers wake at most as many workers as they pushed
/// tickets. The mask-register / ring-recheck on the parking side and the
/// ring-push / mask-read on the waking side are seq_cst (store-buffering
/// crossing), so a worker can never sleep through a push.
///
/// Setting SPB_ARENA_MUTEX=1 in the environment swaps the ring + parking
/// for a mutex/condvar ticket queue (the pre-PR 8 shape, kept as an A/B
/// lever for the contention bench). Workers in that mode claim up to
/// kClaimBatch tickets per lock acquisition so the queue lock is taken
/// O(tickets / K) times instead of O(tickets).
class TaskArena {
 public:
  /// Tickets claimed per queue-lock acquisition in mutex-fallback mode.
  static constexpr size_t kClaimBatch = 4;

  /// `num_threads` is clamped to [1, 64] (the parking bitmask is one word).
  explicit TaskArena(size_t num_threads);
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// The arena whose worker is running the calling thread, or nullptr when
  /// called from outside any arena. Nested fan-out keys off this: inside a
  /// batch task it returns the executor's arena, so subqueries land on the
  /// same pool.
  static TaskArena* Current();

  /// Runs fn(0), ..., fn(n-1) across the pool; returns when every call has
  /// finished. `fn` must be noexcept in spirit (errors travel through the
  /// closure, e.g. a Status slot per index) and must tolerate concurrent
  /// invocation for distinct indices. With help=true the calling thread
  /// claims tasks from this group inline (mandatory when calling from a
  /// worker — see the deadlock-freedom note above); with help=false it only
  /// waits, preserving "exactly num_threads() threads do the work" for
  /// external batch submitters.
  void RunGroup(size_t n, const std::function<void(size_t)>& fn, bool help);

  size_t num_threads() const { return threads_.size(); }
  bool mutex_fallback() const { return use_mutex_; }
  ArenaQueueStats queue_stats() const;

 private:
  /// One published group. `next` is the claim cursor (claimed in chunks of
  /// `chunk`), `completed` counts finished tasks, `done` flips to 1 exactly
  /// once for the atomic-wait on the submitter side. Stale tickets keep the
  /// state alive via shared_ptr but never dereference `fn` (the cursor is
  /// checked first), so `fn` may point into the submitter's frame.
  struct GroupState {
    const std::function<void(size_t)>* fn = nullptr;
    size_t total = 0;
    size_t chunk = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<uint32_t> done{0};
  };

  /// Bounded MPMC ticket ring (Vyukov). Capacity is fixed; Push returns
  /// false when full and the submitter degrades to an inline drain.
  class TicketRing {
   public:
    explicit TicketRing(size_t capacity_pow2);
    bool Push(std::shared_ptr<GroupState> g);
    bool Pop(std::shared_ptr<GroupState>* out);
    /// Approximate emptiness for the parking recheck; seq_cst loads so it
    /// participates in the store-buffering pairing with Push.
    bool EmptyApprox() const;

   private:
    struct Cell {
      std::atomic<size_t> seq{0};
      std::shared_ptr<GroupState> val;
    };
    std::unique_ptr<Cell[]> cells_;
    size_t mask_;
    alignas(64) std::atomic<size_t> head_{0};
    alignas(64) std::atomic<size_t> tail_{0};
  };

  struct alignas(64) ParkWord {
    std::atomic<uint32_t> w{0};
  };

  /// Claims chunks of `g` until its cursor is exhausted; returns the number
  /// of tasks this thread ran (0 for a stale ticket).
  size_t DrainGroup(GroupState& g);
  void WorkerLoop(size_t id);
  void MutexWorkerLoop();
  void Park(size_t id);
  void Unpark(size_t want);

  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> exited_{0};
  const bool use_mutex_;

  // Ring mode.
  TicketRing ring_;
  std::atomic<uint64_t> parked_mask_{0};
  std::unique_ptr<ParkWord[]> park_words_;

  // Mutex-fallback mode (SPB_ARENA_MUTEX=1).
  InstrumentedMutex queue_mu_{"arena.queue_mu"};
  std::condition_variable_any queue_cv_;
  std::deque<std::shared_ptr<GroupState>> queue_;

  // Observability (striped: workers bump their own slabs).
  struct {
    StripedU64 tickets_pushed;
    StripedU64 tickets_popped;
    StripedU64 stale_tickets;
    StripedU64 inline_drains;
    StripedU64 parks;
    StripedU64 unparks;
    StripedU64 fallback_lock_claims;
    StripedU64 fallback_tickets_claimed;
  } stats_;
};

}  // namespace spb

#endif  // SPB_EXEC_TASK_ARENA_H_
