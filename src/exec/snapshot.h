#ifndef SPB_EXEC_SNAPSHOT_H_
#define SPB_EXEC_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/contention.h"
#include "storage/page.h"

namespace spb {

class Raf;

/// One published state of an index: the B+-tree root a reader traverses
/// from, plus the RAF tail watermark that bounds which record offsets the
/// version can reference. Everything a query touches is reachable from
/// `root` (the COW write path never mutates a published page) or lies below
/// `raf_end_offset` (the RAF is append-only), so a reader holding a Snapshot
/// of this version sees a perfectly consistent index regardless of how many
/// writes publish after it.
struct IndexVersion {
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  /// B+-tree entries in this version.
  uint64_t num_entries = 0;
  /// RAF end offset at publication; every leaf entry's `ptr` plus record
  /// length is below this watermark.
  uint64_t raf_end_offset = 0;
  /// Live objects in this version.
  uint64_t num_objects = 0;
  /// The RAF generation this version's leaf entries point into. Background
  /// compaction swaps the tree's RAF for a rewritten one; versions published
  /// before the swap keep the old file alive through this reference, so a
  /// query pinning them still resolves its offsets against the bytes they
  /// were built for. Null only for indexes without the snapshot/compaction
  /// machinery wired (bare unit-test setups).
  std::shared_ptr<Raf> raf;
};

class SnapshotManager;

namespace detail {

/// The manually refcounted body of a Snapshot. `refs` counts pins: the
/// manager's own pin on the current version plus one per live Snapshot.
/// Readers only ever touch `refs` (and, once validly pinned, read `version`
/// and `epoch`); all other bookkeeping — `retired`, recycling, the version
/// payload rewrite — is done by writers under the manager's admin mutex.
/// Nodes are owned by the manager for its whole lifetime (never freed while
/// it lives), which is what makes the readers' unsynchronized `refs`
/// increment safe: the worst a stale pointer can dereference is a recycled
/// node, and the validation step below turns that into either a retry or a
/// benign "pin whatever is current now".
struct SnapshotState {
  IndexVersion version;
  uint64_t epoch = 0;
  std::atomic<int64_t> refs{0};
  /// Writer-side flag (guarded by the admin mutex): the dead-epoch
  /// bookkeeping for this node already ran, don't run it again if a stray
  /// reader bounced `refs` off zero in between.
  bool retired = false;
};

/// `refs` value marking a node parked on the manager's freelist. Hugely
/// negative so a stray reader's transient +1 (immediately undone once its
/// validation fails) can never make a freelist node look live.
inline constexpr int64_t kFreeState = INT64_MIN / 2;

}  // namespace detail

/// A pinned reference to one published IndexVersion. Copyable and cheap
/// (one relaxed refcount increment); the pinned epoch stays live — and every
/// page of its version stays un-retired — until the last copy is destroyed.
/// Queries acquire one Snapshot up front and hold it across the whole
/// traversal; writers publish freely in the meantime.
class Snapshot {
 public:
  Snapshot() = default;

  Snapshot(const Snapshot& other) : state_(other.state_) {
    // We are duplicating a pin the caller already holds, so the node cannot
    // be concurrently recycled: relaxed is enough.
    if (state_ != nullptr) state_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Snapshot(Snapshot&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Snapshot& operator=(const Snapshot& other) {
    if (other.state_ != nullptr) {
      other.state_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    Unpin();
    state_ = other.state_;
    return *this;
  }
  Snapshot& operator=(Snapshot&& other) noexcept {
    if (this != &other) {
      Unpin();
      state_ = other.state_;
      other.state_ = nullptr;
    }
    return *this;
  }
  ~Snapshot() { Unpin(); }

  bool valid() const { return state_ != nullptr; }
  const IndexVersion& version() const { return state_->version; }
  uint64_t epoch() const { return state_->epoch; }

 private:
  friend class SnapshotManager;
  explicit Snapshot(detail::SnapshotState* state) : state_(state) {}

  void Unpin() {
    // Release so every read of the pinned version happens-before a writer's
    // later reclamation of the node. Nothing else runs here: dead-epoch
    // drains are writer-driven (see SnapshotManager), so dropping the last
    // pin is mutex-free and wait-free.
    if (state_ != nullptr) state_->refs.fetch_sub(1, std::memory_order_release);
    state_ = nullptr;
  }

  detail::SnapshotState* state_ = nullptr;
};

/// Epoch-based publication of IndexVersions (the update engine's reclamation
/// protocol, docs/ARCHITECTURE.md §"Epoch-based snapshots").
///
/// The reader fast path is mutex-free (PR 8): Acquire is load-current /
/// increment-refs / validate-current-unchanged (undo and retry on a lost
/// race), and Release is one refcount decrement. Neither ever takes a lock
/// or runs reclamation — the stress test in tests/fanout_test.cc asserts the
/// instrumented admin mutex records *zero* acquisitions under pure reader
/// churn.
///
/// All bookkeeping migrated to writers: dead epochs are detected and their
/// retire entries drained under the admin mutex ("snapshot.admin") at the
/// end of every Publish, by the live_epochs()/pending_retirements()
/// accessors (which double as explicit drain points for tests and tools),
/// and by the destructor. Consequently the retire callback now runs on the
/// *writer* (or accessor) thread, not on whichever reader drops the last
/// pin — strictly friendlier: readers never pay for reclamation, and the
/// callback still may not assume any particular thread.
///
///  - Readers call Acquire() and get the current version pinned under its
///    epoch.
///  - The writer prepares a new version out of line (COW pages, RAF tail
///    appends) and calls Publish(new_version, superseded_pages). Publication
///    is atomic: after Publish returns, every Acquire sees the new version;
///    snapshots acquired before keep the old one.
///  - `superseded_pages` — the page ids the COW walk replaced — are queued
///    with the retired epoch as their bound and handed to the retire
///    callback only once every snapshot with epoch <= bound has been
///    destroyed *and* a drain point has run. The callback typically drops
///    buffer-pool frames and node-cache entries and recycles the page ids.
///
/// The manager itself always pins the current version, so the current
/// version's pages can never be retired.
class SnapshotManager {
 public:
  using RetireFn = std::function<void(std::vector<PageId>)>;

  /// `retire` may be empty (superseded pages are then simply dropped).
  SnapshotManager(const IndexVersion& initial, RetireFn retire);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Pins and returns the current version. Thread-safe and mutex-free: two
  /// atomic RMWs in the worst case, with a retry only when a Publish lands
  /// between the load and the validation.
  Snapshot Acquire() const;

  /// Atomically replaces the current version (writer-side; the caller holds
  /// the single-writer lock). Pages in `superseded` are retired once the
  /// last snapshot pinning an epoch <= the superseded epoch drains; this
  /// call is itself a drain point, so fully unpinned pages retire before it
  /// returns.
  void Publish(const IndexVersion& version, std::vector<PageId> superseded);

  /// Current version without a lasting pin (diagnostics / writer
  /// bookkeeping). Mutex-free (pins internally for the copy).
  IndexVersion current_version() const;
  uint64_t current_epoch() const;

  /// Number of epochs still pinned (including the current one). Drain
  /// point + test hook: runs dead-epoch bookkeeping first, so the count
  /// reflects pins only, and any retirements it unblocks fire before it
  /// returns.
  size_t live_epochs() const;
  /// Retire-queue entries not yet handed to the callback, after draining —
  /// the same drain Publish runs, so calling this hands every unblocked
  /// entry to the callback. Test hook.
  size_t pending_retirements() const;

 private:
  struct RetireEntry {
    uint64_t epoch_bound;
    std::vector<PageId> pages;
  };

  /// Scans every state under mu_: counts live (pinned) epochs, runs the
  /// one-time bookkeeping for dead ones (dropping their RAF reference,
  /// recycling the node onto the freelist), and pops every retire entry
  /// whose bound is below the minimum live epoch into `out` so the caller
  /// can run the callback outside the lock. Returns the live-epoch count.
  size_t DrainLocked(std::vector<RetireEntry>* out) const;
  /// Pops a freelist node and claims it (CAS kFreeState -> 1), spinning
  /// briefly past stray readers' transient increments. Returns nullptr when
  /// the freelist is empty (caller allocates a fresh node).
  detail::SnapshotState* ClaimFreeStateLocked();
  void Fire(std::vector<RetireEntry> entries) const;

  /// Admin mutex: Publish, the drain-point accessors and the destructor.
  /// Never touched by Acquire/Release — the fanout_test stress test pins
  /// that property via the contention registry.
  mutable InstrumentedMutex mu_{"snapshot.admin"};
  RetireFn retire_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<detail::SnapshotState*> current_{nullptr};
  /// Every state ever allocated, owned for the manager's whole lifetime
  /// (nodes are recycled, never freed — that is what licenses the readers'
  /// unsynchronized refs increment). Guarded by mu_, as are the freelist and
  /// the retire queue. Mutable because the const accessors are drain points.
  mutable std::vector<std::unique_ptr<detail::SnapshotState>> all_states_;
  mutable std::vector<detail::SnapshotState*> free_list_;
  mutable std::deque<RetireEntry> retire_queue_;
};

}  // namespace spb

#endif  // SPB_EXEC_SNAPSHOT_H_
