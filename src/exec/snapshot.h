#ifndef SPB_EXEC_SNAPSHOT_H_
#define SPB_EXEC_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "storage/page.h"

namespace spb {

class Raf;

/// One published state of an index: the B+-tree root a reader traverses
/// from, plus the RAF tail watermark that bounds which record offsets the
/// version can reference. Everything a query touches is reachable from
/// `root` (the COW write path never mutates a published page) or lies below
/// `raf_end_offset` (the RAF is append-only), so a reader holding a Snapshot
/// of this version sees a perfectly consistent index regardless of how many
/// writes publish after it.
struct IndexVersion {
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  /// B+-tree entries in this version.
  uint64_t num_entries = 0;
  /// RAF end offset at publication; every leaf entry's `ptr` plus record
  /// length is below this watermark.
  uint64_t raf_end_offset = 0;
  /// Live objects in this version.
  uint64_t num_objects = 0;
  /// The RAF generation this version's leaf entries point into. Background
  /// compaction swaps the tree's RAF for a rewritten one; versions published
  /// before the swap keep the old file alive through this reference, so a
  /// query pinning them still resolves its offsets against the bytes they
  /// were built for. Null only for indexes without the snapshot/compaction
  /// machinery wired (bare unit-test setups).
  std::shared_ptr<Raf> raf;
};

class SnapshotManager;

/// A pinned, refcounted reference to one published IndexVersion. Copyable
/// and cheap (one shared_ptr); the pinned epoch stays live — and every page
/// of its version stays un-retired — until the last copy is destroyed.
/// Queries acquire one Snapshot up front and hold it across the whole
/// traversal; writers publish freely in the meantime.
class Snapshot {
 public:
  Snapshot() = default;

  bool valid() const { return state_ != nullptr; }
  const IndexVersion& version() const;
  uint64_t epoch() const;

 private:
  friend class SnapshotManager;
  struct State;
  explicit Snapshot(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Epoch-based publication of IndexVersions (the update engine's reclamation
/// protocol, docs/ARCHITECTURE.md §"Epoch-based snapshots"):
///
///  - Readers call Acquire() and get the current version pinned under its
///    epoch. Acquire is one mutex acquisition plus one shared_ptr copy —
///    negligible against a query traversal.
///  - The writer prepares a new version out of line (COW pages, RAF tail
///    appends) and calls Publish(new_version, superseded_pages). Publication
///    is atomic: after Publish returns, every Acquire sees the new version;
///    snapshots acquired before keep the old one.
///  - `superseded_pages` — the page ids the COW walk replaced — are queued
///    with the retired epoch as their bound and handed to the retire
///    callback only once every snapshot with epoch <= bound has been
///    destroyed. The callback typically drops buffer-pool frames and
///    node-cache entries and recycles the page ids; it may run on *any*
///    thread (whichever releases the last pinning snapshot), so everything
///    it touches must be internally synchronized.
///
/// The manager itself always pins the current version, so the live-epoch set
/// is never empty and the current version's pages can never be retired.
class SnapshotManager {
 public:
  using RetireFn = std::function<void(std::vector<PageId>)>;

  /// `retire` may be empty (superseded pages are then simply dropped).
  SnapshotManager(const IndexVersion& initial, RetireFn retire);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Pins and returns the current version. Thread-safe, wait-free against
  /// other readers (one uncontended mutex in the common case).
  Snapshot Acquire() const;

  /// Atomically replaces the current version (writer-side; the caller holds
  /// the single-writer lock). Pages in `superseded` are retired once the
  /// last snapshot pinning an epoch <= the superseded epoch drains.
  void Publish(const IndexVersion& version, std::vector<PageId> superseded);

  /// Current version without pinning (diagnostics / writer bookkeeping).
  IndexVersion current_version() const;
  uint64_t current_epoch() const;

  /// Number of epochs still pinned (including the current one). Test hook.
  size_t live_epochs() const;
  /// Retire-queue entries not yet handed to the callback. Test hook.
  size_t pending_retirements() const;

 private:
  /// State's destructor is the epoch-drain signal calling back into
  /// OnEpochReleased.
  friend struct Snapshot::State;

  struct RetireEntry {
    uint64_t epoch_bound;
    std::vector<PageId> pages;
  };

  void OnEpochReleased(uint64_t epoch);
  /// Pops every retire entry whose bound is below the minimum live epoch.
  /// Must be called with mu_ held; returns the popped entries so the caller
  /// can run the callback outside the lock.
  std::vector<RetireEntry> CollectRetirableLocked();

  mutable std::mutex mu_;
  RetireFn retire_;
  uint64_t epoch_ = 0;
  std::shared_ptr<const Snapshot::State> current_;
  std::set<uint64_t> live_epochs_;
  std::deque<RetireEntry> retire_queue_;
};

}  // namespace spb

#endif  // SPB_EXEC_SNAPSHOT_H_
