#include "exec/write_queue.h"

#include <algorithm>

namespace spb {

WriteQueue::WriteQueue(CommitFn commit, size_t group_max)
    : commit_(std::move(commit)), group_max_(std::max<size_t>(1, group_max)) {}

WriteQueue::~WriteQueue() { Stop(); }

void WriteQueue::StartCompactor(NeedsCompactFn needs, CompactFn compact) {
  needs_compact_ = std::move(needs);
  compact_ = std::move(compact);
  compactor_ = std::thread([this] { CompactorLoop(); });
}

void WriteQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    if (stop_) return;
    stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

Status WriteQueue::Submit(Request req, bool* found) {
  std::unique_lock<InstrumentedMutex> lock(mu_);
  pending_.push_back(&req);
  DriveUntilDone(lock, &req);
  if (found != nullptr) *found = req.found;
  return req.status;
}

Status WriteQueue::SubmitBatch(std::vector<Request>* reqs) {
  if (reqs->empty()) return Status::OK();
  std::unique_lock<InstrumentedMutex> lock(mu_);
  for (Request& r : *reqs) pending_.push_back(&r);
  // Waiting on the last request suffices to drive the whole batch through
  // (groups drain in FIFO order), but a request of ours could still be
  // pending if another leader committed the last one first — so wait on
  // each in turn.
  for (Request& r : *reqs) DriveUntilDone(lock, &r);
  Status first_error;
  for (const Request& r : *reqs) {
    if (first_error.ok() && !r.status.ok()) first_error = r.status;
  }
  return first_error;
}

void WriteQueue::DriveUntilDone(std::unique_lock<InstrumentedMutex>& lock,
                                Request* req) {
  for (;;) {
    if (req->done) return;
    if (!leader_active_) {
      LeadLocked(lock, req);
      if (req->done) return;
      continue;  // stepped down without committing our request (spurious)
    }
    cv_.wait(lock);
  }
}

void WriteQueue::LeadLocked(std::unique_lock<InstrumentedMutex>& lock,
                            Request* own) {
  leader_active_ = true;
  std::vector<Request*> group;
  while (!own->done && !pending_.empty()) {
    group.clear();
    const size_t take = std::min(group_max_, pending_.size());
    for (size_t i = 0; i < take; ++i) {
      group.push_back(pending_.front());
      pending_.pop_front();
    }
    lock.unlock();
    commit_(group);
    lock.lock();
    for (Request* r : group) r->done = true;
    stats_.ops += group.size();
    stats_.groups += 1;
    stats_.max_group = std::max<uint64_t>(stats_.max_group, group.size());
    cv_.notify_all();
  }
  leader_active_ = false;
  // Wake a waiter to promote itself if requests arrived while we committed
  // our last group.
  if (!pending_.empty()) cv_.notify_all();
  lock.unlock();
  Poke();
  lock.lock();
}

void WriteQueue::Poke() {
  if (!compactor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_wake_ = true;
  }
  compact_cv_.notify_one();
}

void WriteQueue::CompactorLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compact_mu_);
      compact_cv_.wait(lock, [this] { return compact_wake_ || stop_; });
      if (stop_) return;
      compact_wake_ = false;
    }
    while (needs_compact_()) {
      {
        std::lock_guard<std::mutex> lock(compact_mu_);
        if (stop_) return;
      }
      compact_();
      std::lock_guard<InstrumentedMutex> lock(mu_);
      ++stats_.compactions;
    }
  }
}

void WriteQueue::set_group_max(size_t n) {
  std::lock_guard<InstrumentedMutex> lock(mu_);
  group_max_ = std::max<size_t>(1, n);
}

size_t WriteQueue::group_max() const {
  std::lock_guard<InstrumentedMutex> lock(mu_);
  return group_max_;
}

WriteQueue::Stats WriteQueue::stats() const {
  std::lock_guard<InstrumentedMutex> lock(mu_);
  return stats_;
}

}  // namespace spb
