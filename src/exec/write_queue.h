#ifndef SPB_EXEC_WRITE_QUEUE_H_
#define SPB_EXEC_WRITE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/blob.h"
#include "common/contention.h"
#include "common/status.h"

namespace spb {

/// Group-commit writer queue (the PR 7 write-path engine's front half).
///
/// Concurrent Insert/Delete/BatchInsert callers enqueue logical write
/// requests and block. The first caller to find no active leader becomes the
/// *leader*: it drains the queue in groups of up to group_max, hands each
/// group to the owner-supplied CommitFn (which appends one WAL segment,
/// issues one fsync, applies the group through the COW write path under the
/// writer lock, and publishes ONE snapshot epoch), marks the group's
/// requests done and wakes their owners. Leadership is bounded: once the
/// leader's own request commits it steps down, and a still-waiting caller
/// promotes itself — no thread is stuck serving others forever, and there is
/// always a leader while requests are pending.
///
/// This turns the single-writer kBusy taxonomy into queued throughput: a
/// caller never observes kBusy from the queue; it waits (briefly) and gets
/// the real commit status of its own request.
///
/// The queue also owns the optional background compaction worker (the
/// engine's back half): after each commit round the leader pokes the worker,
/// which runs the owner's CompactFn whenever NeedsCompactFn reports the
/// dead-bytes debt is over threshold. The worker thread must be stopped
/// (destructor or Stop()) before the structures the hooks touch are torn
/// down.
class WriteQueue {
 public:
  enum class OpKind : uint8_t { kInsert, kDelete };

  /// One queued logical write. The caller pre-computes the pivot mapping
  /// (phi, key) outside any lock so the |P| distance computations of Section
  /// 3.1 run concurrently even though application is serialized.
  struct Request {
    OpKind kind;
    Blob obj;
    ObjectId id = 0;
    uint64_t key = 0;
    std::vector<double> phi;

    // Filled by the commit hook.
    Status status;
    bool found = false;  // deletes: whether the record existed

    // Queue bookkeeping (guarded by the queue mutex).
    bool done = false;
  };

  /// Commits one drained group: must set status (and found) on every
  /// request. Runs on the leader's thread with no queue lock held.
  using CommitFn = std::function<void(std::vector<Request*>&)>;
  using NeedsCompactFn = std::function<bool()>;
  using CompactFn = std::function<void()>;

  WriteQueue(CommitFn commit, size_t group_max);
  ~WriteQueue();

  WriteQueue(const WriteQueue&) = delete;
  WriteQueue& operator=(const WriteQueue&) = delete;

  /// Starts the background compaction worker. `needs` is polled after every
  /// commit round (and on explicit Poke); when it returns true the worker
  /// runs `compact`. Call at most once.
  void StartCompactor(NeedsCompactFn needs, CompactFn compact);

  /// Stops the compaction worker (joins the thread). Idempotent; also run
  /// by the destructor.
  void Stop();

  /// Enqueues one request and blocks until its group commits. Returns the
  /// request's commit status; `*found` (optional) reports delete match.
  Status Submit(Request req, bool* found = nullptr);

  /// Enqueues `reqs` as individual requests (they may commit across several
  /// groups, interleaved with other writers) and blocks until all have
  /// committed. Returns the first non-OK status, if any.
  Status SubmitBatch(std::vector<Request>* reqs);

  /// Wakes the compaction worker to re-check NeedsCompactFn.
  void Poke();

  void set_group_max(size_t n);
  size_t group_max() const;

  struct Stats {
    uint64_t ops = 0;          // requests committed
    uint64_t groups = 0;       // commit rounds
    uint64_t max_group = 0;    // largest group committed
    uint64_t compactions = 0;  // background compaction runs
  };
  Stats stats() const;

 private:
  /// Caller-side wait/lead loop shared by Submit and SubmitBatch: blocks
  /// until `req` is done, becoming leader whenever the slot is free.
  void DriveUntilDone(std::unique_lock<InstrumentedMutex>& lock,
                      Request* req);
  /// Leader body: drains groups until `own` is done (then steps down).
  void LeadLocked(std::unique_lock<InstrumentedMutex>& lock, Request* own);
  void CompactorLoop();

  CommitFn commit_;

  /// Instrumented ("write_queue.mu"): contention here is writers queueing
  /// behind the leader — expected by design; the wait histogram shows how
  /// long followers sit per group commit.
  mutable InstrumentedMutex mu_{"write_queue.mu"};
  std::condition_variable_any cv_;
  std::deque<Request*> pending_;
  bool leader_active_ = false;
  size_t group_max_;
  Stats stats_;

  // Compaction worker.
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  std::thread compactor_;
  NeedsCompactFn needs_compact_;
  CompactFn compact_;
  bool compact_wake_ = false;
  bool stop_ = false;
};

}  // namespace spb

#endif  // SPB_EXEC_WRITE_QUEUE_H_
