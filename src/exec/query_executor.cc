#include "exec/query_executor.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace spb {

namespace {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

IoStats IoDelta(const IoStats& after, const IoStats& before) {
  const auto delta = [](const StripedU64& a, const StripedU64& b) {
    return a.load(std::memory_order_relaxed) -
           b.load(std::memory_order_relaxed);
  };
  IoStats d;
  d.page_reads.store(delta(after.page_reads, before.page_reads));
  d.page_writes.store(delta(after.page_writes, before.page_writes));
  d.cache_hits.store(delta(after.cache_hits, before.cache_hits));
  d.physical_reads.store(delta(after.physical_reads, before.physical_reads));
  d.prefetch_issued.store(
      delta(after.prefetch_issued, before.prefetch_issued));
  d.prefetch_hits.store(delta(after.prefetch_hits, before.prefetch_hits));
  d.coalesced_pages.store(
      delta(after.coalesced_pages, before.coalesced_pages));
  return d;
}

}  // namespace

QueryExecutor::QueryExecutor(MetricIndex* index, size_t num_threads)
    : index_(index), arena_(std::max<size_t>(1, num_threads)) {}

Status QueryExecutor::FanOut(size_t n,
                             const std::function<Status(size_t)>& task,
                             BatchStats* stats) {
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->num_queries = n;
    stats->num_threads = arena_.num_threads();
  }
  if (n == 0) return Status::OK();

  busy_retries_.store(0, std::memory_order_relaxed);
  const QueryStats before = index_->cumulative_stats();
  const IoStats io_before = index_->io_stats();
  const auto start = std::chrono::steady_clock::now();

  std::vector<double> latencies(n, 0.0);
  std::mutex error_mu;
  Status first_error;
  const std::function<void(size_t)> wrapped = [&](size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    Status s = task(i);
    latencies[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = std::move(s);
    }
  };
  // help=false: the calling thread waits, exactly num_threads() workers run
  // the ops (the pre-PR 8 contract bench numbers are calibrated against).
  arena_.RunGroup(n, wrapped, /*help=*/false);

  if (stats != nullptr) {
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    stats->qps =
        stats->wall_seconds > 0.0 ? double(n) / stats->wall_seconds : 0.0;
    const QueryStats after = index_->cumulative_stats();
    stats->totals.page_accesses = after.page_accesses - before.page_accesses;
    stats->totals.distance_computations =
        after.distance_computations - before.distance_computations;
    stats->io_totals = IoDelta(index_->io_stats(), io_before);
    for (double l : latencies) stats->totals.elapsed_seconds += l;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    stats->p50_seconds = PercentileSorted(sorted, 0.50);
    stats->p99_seconds = PercentileSorted(sorted, 0.99);
    stats->busy_retries = busy_retries_.load(std::memory_order_relaxed);
  }
  return first_error;
}

Status QueryExecutor::RunRangeBatch(const std::vector<Blob>& queries,
                                    double r,
                                    std::vector<std::vector<ObjectId>>* results,
                                    BatchStats* stats) {
  results->assign(queries.size(), {});
  auto task = [&](size_t i) -> Status {
    SPB_RETURN_IF_ERROR(
        index_->RangeQuery(queries[i], r, &(*results)[i], nullptr));
    // RangeQuery reports ids in traversal order; sort so batch output is
    // deterministic and directly comparable across thread counts.
    std::sort((*results)[i].begin(), (*results)[i].end());
    return Status::OK();
  };
  return FanOut(queries.size(), task, stats);
}

Status QueryExecutor::RunKnnBatch(const std::vector<Blob>& queries, size_t k,
                                  std::vector<std::vector<Neighbor>>* results,
                                  BatchStats* stats) {
  results->assign(queries.size(), {});
  auto task = [&](size_t i) -> Status {
    return index_->KnnQuery(queries[i], k, &(*results)[i], nullptr);
  };
  return FanOut(queries.size(), task, stats);
}

Status QueryExecutor::ExecuteWrite(const std::function<Status()>& op) {
  if (index_->writer_concurrency() <= 1) {
    // Single-writer index: serialize batch siblings up front so its writer
    // try-lock never fails against one of our own ops.
    std::lock_guard<InstrumentedMutex> lock(write_mu_);
    return op();
  }
  // Multi-writer index (sharded): dispatch concurrently — writes to
  // different shards proceed in parallel — and absorb same-shard collisions
  // here. A Busy from inside a mixed batch is transient by construction
  // (the lock holder is a sibling op that will drain), so retry with capped
  // exponential backoff: a handful of free spins first (sibling ops are
  // usually microseconds), then sleeps doubling from 1us to a 1ms cap.
  // The retry budget is bounded — if the shard stays busy past the whole
  // schedule (~1s: an external writer or a manual Compact() is holding the
  // writer lock, which the batch contract forbids), kBusy is surfaced to
  // the caller instead of spinning forever.
  constexpr int kSpinRetries = 8;
  constexpr int kMaxRetries = 1024;
  constexpr auto kMaxSleep = std::chrono::microseconds(1000);
  std::chrono::microseconds sleep(1);
  Status s = op();
  for (int attempt = 0; s.code() == Status::Code::kBusy; ++attempt) {
    if (attempt >= kMaxRetries) return s;
    busy_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt < kSpinRetries) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(sleep);
      sleep = std::min(sleep * 2, kMaxSleep);
    }
    s = op();
  }
  return s;
}

BatchResult QueryExecutor::Submit(std::span<const Request> requests) {
  BatchResult batch;
  batch.results.assign(requests.size(), OpResult{});
  auto task = [&](size_t i) -> Status {
    const Request& op = requests[i];
    OpResult& out = batch.results[i];
    switch (op.kind) {
      case Request::Kind::kRange:
        out.status = index_->RangeQuery(op.obj, op.radius, &out.range_ids,
                                        nullptr);
        std::sort(out.range_ids.begin(), out.range_ids.end());
        break;
      case Request::Kind::kKnn:
        out.status = index_->KnnQuery(op.obj, op.k, &out.neighbors, nullptr);
        break;
      case Request::Kind::kInsert:
        out.status = ExecuteWrite(
            [&] { return index_->Insert(op.obj, op.id); });
        break;
      case Request::Kind::kDelete:
        out.status = ExecuteWrite(
            [&] { return index_->Delete(op.obj, op.id, &out.found); });
        break;
      default:
        // A kind outside the enum can only come from a hand-built Request
        // (the wire decoder rejects unknown kinds before they get here).
        out.status = Status::InvalidArgument("Submit: unknown request kind");
        break;
    }
    return out.status;
  };
  batch.first_error = FanOut(requests.size(), task, &batch.stats);
  return batch;
}

Status QueryExecutor::RunMixedBatch(const std::vector<MixedOp>& ops,
                                    std::vector<MixedResult>* results,
                                    BatchStats* stats) {
  BatchResult batch = Submit(std::span<const Request>(ops));
  *results = std::move(batch.results);
  if (stats != nullptr) *stats = batch.stats;
  return batch.first_error;
}

}  // namespace spb
