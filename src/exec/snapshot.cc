#include "exec/snapshot.h"

#include <algorithm>
#include <utility>

namespace spb {

using detail::kFreeState;
using detail::SnapshotState;

SnapshotManager::SnapshotManager(const IndexVersion& initial, RetireFn retire)
    : retire_(std::move(retire)) {
  all_states_.push_back(std::make_unique<SnapshotState>());
  SnapshotState* s = all_states_.back().get();
  s->version = initial;
  s->epoch = 0;
  // The manager's own pin on the current version. No reader can see the
  // node before the release store below.
  s->refs.store(1, std::memory_order_relaxed);
  current_.store(s, std::memory_order_release);
}

SnapshotManager::~SnapshotManager() {
  // Drop the manager's pin and drain while mu_ and the queue are still
  // alive: with no readers left (a reader snapshot outliving the manager is
  // a caller bug — the index must outlive its queries, same as the rest of
  // the library) every epoch is dead and every queued retirement fires.
  std::vector<RetireEntry> fire;
  {
    std::lock_guard<InstrumentedMutex> lock(mu_);
    SnapshotState* cur = current_.load(std::memory_order_relaxed);
    if (cur != nullptr) cur->refs.fetch_sub(1, std::memory_order_release);
    DrainLocked(&fire);
  }
  Fire(std::move(fire));
}

Snapshot SnapshotManager::Acquire() const {
  for (;;) {
    SnapshotState* s = current_.load(std::memory_order_seq_cst);
    // Optimistic pin. seq_cst pairs with the seq_cst current_ store in
    // Publish and the seq_cst refs load in DrainLocked (a Dekker-style
    // store/load crossing): if the validation below still sees `s` as
    // current, the writer's drain is guaranteed to observe this increment
    // and keep the epoch alive.
    s->refs.fetch_add(1, std::memory_order_seq_cst);
    if (current_.load(std::memory_order_seq_cst) == s) {
      return Snapshot(s);
    }
    // Lost a race with Publish — or dereferenced a recycled node (benign:
    // we only touched refs). Undo and retry with the fresh current. If the
    // node was re-published as current in between (ABA), the validation
    // simply succeeds above and we have pinned the *new* version, which is
    // exactly what Acquire promises.
    s->refs.fetch_sub(1, std::memory_order_release);
  }
}

void SnapshotManager::Publish(const IndexVersion& version,
                              std::vector<PageId> superseded) {
  std::vector<RetireEntry> fire;
  {
    std::lock_guard<InstrumentedMutex> lock(mu_);
    SnapshotState* s = ClaimFreeStateLocked();
    if (s == nullptr) {
      all_states_.push_back(std::make_unique<SnapshotState>());
      s = all_states_.back().get();
      s->refs.store(1, std::memory_order_relaxed);  // the manager's pin
    }
    const uint64_t e = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    s->version = version;
    s->epoch = e;
    if (!superseded.empty()) {
      // Pages of the version being replaced: readers pinning any epoch up
      // to (and including) the replaced one may still traverse them.
      retire_queue_.push_back(RetireEntry{e - 1, std::move(superseded)});
    }
    SnapshotState* old = current_.load(std::memory_order_relaxed);
    // seq_cst: see the Dekker pairing note in Acquire().
    current_.store(s, std::memory_order_seq_cst);
    // Move the manager's pin from the old current to the new one.
    old->refs.fetch_sub(1, std::memory_order_release);
    DrainLocked(&fire);
  }
  Fire(std::move(fire));
}

IndexVersion SnapshotManager::current_version() const {
  return Acquire().version();
}

uint64_t SnapshotManager::current_epoch() const {
  return epoch_.load(std::memory_order_relaxed);
}

size_t SnapshotManager::live_epochs() const {
  std::vector<RetireEntry> fire;
  size_t live = 0;
  {
    std::lock_guard<InstrumentedMutex> lock(mu_);
    live = DrainLocked(&fire);
  }
  Fire(std::move(fire));
  return live;
}

size_t SnapshotManager::pending_retirements() const {
  std::vector<RetireEntry> fire;
  size_t pending = 0;
  {
    std::lock_guard<InstrumentedMutex> lock(mu_);
    DrainLocked(&fire);
    pending = retire_queue_.size();
  }
  Fire(std::move(fire));
  return pending;
}

size_t SnapshotManager::DrainLocked(std::vector<RetireEntry>* out) const {
  size_t live = 0;
  uint64_t min_live = UINT64_MAX;
  for (const auto& up : all_states_) {
    SnapshotState* s = up.get();
    // seq_cst: pairs with the refs increment in Acquire — a reader whose
    // validation kept a pin is guaranteed visible here (see Acquire).
    const int64_t r = s->refs.load(std::memory_order_seq_cst);
    if (r < 0) continue;  // on the freelist (maybe with a transient stray +1)
    if (r > 0) {
      ++live;
      min_live = std::min(min_live, s->epoch);
      continue;
    }
    // r == 0: the epoch is dead. Run its one-time bookkeeping, then try to
    // recycle the node. The CAS can lose to a stray reader's transient
    // increment (load current_ / inc / validate-fails / undo); the node is
    // then simply picked up by a later drain — `retired` keeps the
    // bookkeeping idempotent across such bounces.
    if (!s->retired) {
      s->retired = true;
      // Releases the version payload, in particular the pinned RAF
      // generation a background compaction may be waiting to delete.
      s->version = IndexVersion{};
    }
    int64_t zero = 0;
    if (s->refs.compare_exchange_strong(zero, kFreeState,
                                        std::memory_order_seq_cst)) {
      free_list_.push_back(s);
    }
  }
  // min_live == UINT64_MAX (no pins — only possible mid-destructor) drains
  // everything, matching the teardown semantics of the old implementation.
  while (!retire_queue_.empty() &&
         retire_queue_.front().epoch_bound < min_live) {
    out->push_back(std::move(retire_queue_.front()));
    retire_queue_.pop_front();
  }
  return live;
}

SnapshotState* SnapshotManager::ClaimFreeStateLocked() {
  if (free_list_.empty()) return nullptr;
  SnapshotState* s = free_list_.back();
  for (int spin = 0; spin < 1024; ++spin) {
    int64_t expect = kFreeState;
    // Claim as "1 ref" — the manager's pin on what is about to become the
    // current version. The CAS can transiently fail while a stray reader
    // holds a +1 on the freelist node; the undo is a few instructions away.
    if (s->refs.compare_exchange_weak(expect, 1,
                                      std::memory_order_seq_cst)) {
      free_list_.pop_back();
      s->retired = false;
      return s;
    }
  }
  // Persistent stray traffic (should not happen) — leave the node parked
  // and let the caller allocate a fresh one.
  return nullptr;
}

void SnapshotManager::Fire(std::vector<RetireEntry> entries) const {
  // Run the callback outside mu_: it takes its own locks (buffer pool,
  // node cache, free list).
  if (!retire_) return;
  for (RetireEntry& e : entries) retire_(std::move(e.pages));
}

}  // namespace spb
