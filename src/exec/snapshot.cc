#include "exec/snapshot.h"

#include <utility>

namespace spb {

/// The refcounted body of a Snapshot. The destructor of the *last* reference
/// is the epoch-drain signal: it runs on whichever thread drops that
/// reference, so OnEpochReleased (and the retire callback behind it) must be
/// safe from any thread.
struct Snapshot::State {
  IndexVersion version;
  uint64_t epoch = 0;
  SnapshotManager* manager = nullptr;

  ~State() {
    if (manager != nullptr) manager->OnEpochReleased(epoch);
  }
};

const IndexVersion& Snapshot::version() const { return state_->version; }

uint64_t Snapshot::epoch() const { return state_->epoch; }

SnapshotManager::SnapshotManager(const IndexVersion& initial, RetireFn retire)
    : retire_(std::move(retire)) {
  auto state = std::make_shared<Snapshot::State>();
  state->version = initial;
  state->epoch = epoch_;
  state->manager = this;
  current_ = std::move(state);
  live_epochs_.insert(epoch_);
}

SnapshotManager::~SnapshotManager() {
  // Release the manager's own pin inside the destructor body, while mu_ and
  // the queue are still alive: if this is the last reference the epoch
  // drains here and the remaining retire entries run their callback. Any
  // *reader* snapshot outliving the manager is a caller bug (the index must
  // outlive its queries), same as the rest of the library.
  std::shared_ptr<const Snapshot::State> last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = std::move(current_);
  }
  last.reset();
}

Snapshot SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot(current_);
}

void SnapshotManager::Publish(const IndexVersion& version,
                              std::vector<PageId> superseded) {
  auto state = std::make_shared<Snapshot::State>();
  state->version = version;
  state->manager = this;

  std::shared_ptr<const Snapshot::State> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->epoch = ++epoch_;
    live_epochs_.insert(state->epoch);
    if (!superseded.empty()) {
      // Pages of the version being replaced: readers pinning any epoch up
      // to (and including) the replaced one may still traverse them.
      retire_queue_.push_back(RetireEntry{epoch_ - 1, std::move(superseded)});
    }
    old = std::move(current_);
    current_ = std::move(state);
  }
  // Drop the manager's pin on the replaced version outside mu_: if this was
  // the last reference, ~State runs OnEpochReleased, which re-locks mu_ and
  // may fire the retire callback.
  old.reset();
}

IndexVersion SnapshotManager::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->version;
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t SnapshotManager::live_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_epochs_.size();
}

size_t SnapshotManager::pending_retirements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retire_queue_.size();
}

std::vector<SnapshotManager::RetireEntry>
SnapshotManager::CollectRetirableLocked() {
  std::vector<RetireEntry> out;
  // live_epochs_ is only empty during manager teardown (the manager itself
  // pins the current version while alive) — then everything is retirable.
  const uint64_t min_live =
      live_epochs_.empty() ? UINT64_MAX : *live_epochs_.begin();
  while (!retire_queue_.empty() &&
         retire_queue_.front().epoch_bound < min_live) {
    out.push_back(std::move(retire_queue_.front()));
    retire_queue_.pop_front();
  }
  return out;
}

void SnapshotManager::OnEpochReleased(uint64_t epoch) {
  std::vector<RetireEntry> retirable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_epochs_.erase(epoch);
    retirable = CollectRetirableLocked();
  }
  // Run the callback outside mu_: it takes its own locks (buffer pool,
  // node cache, free list) and may be running on a reader thread.
  if (retire_) {
    for (RetireEntry& e : retirable) retire_(std::move(e.pages));
  }
}

}  // namespace spb
