#ifndef SPB_EXEC_QUERY_EXECUTOR_H_
#define SPB_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/blob.h"
#include "common/contention.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/metric_index.h"
#include "exec/request.h"
#include "exec/task_arena.h"

namespace spb {

/// Aggregate outcome of one batch run. Throughput and latency percentiles
/// come from per-query wall clocks measured inside the workers; PA and
/// compdists totals come from the index's cumulative counters (exact in
/// aggregate — per-query attribution is impossible once queries overlap,
/// see docs/ARCHITECTURE.md §"Cost accounting").
struct BatchStats {
  size_t num_queries = 0;
  size_t num_threads = 0;
  /// End-to-end wall time of the batch (submission to last completion).
  double wall_seconds = 0.0;
  /// num_queries / wall_seconds.
  double qps = 0.0;
  /// Per-query latency percentiles (seconds).
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Exact aggregate PA + compdists over the batch; elapsed_seconds is the
  /// sum of per-query latencies (i.e. total busy time across workers).
  QueryStats totals;
  /// Aggregate I/O counter delta over the batch (logical and physical reads,
  /// prefetch and coalescing stats) from MetricIndex::io_stats(). The
  /// logical/physical gap is what the I/O engine saved: single-flight
  /// sharing across these concurrent queries plus coalesced span reads.
  IoStats io_totals;
  /// Times a write op observed Status::Busy and was retried by the
  /// executor's backoff loop (multi-writer indexes only; 0 for read-only
  /// batches and for group-commit indexes, whose writers queue instead of
  /// colliding).
  uint64_t busy_retries = 0;
};

/// Deprecated names for the unified request/result shapes (exec/request.h).
/// PR 10 collapsed the RunBatch/RunMixedBatch/RunWrite entry points into
/// Submit(); these aliases keep pre-PR 10 call sites compiling for one PR.
using MixedOp = Request;
using MixedResult = OpResult;

/// Everything one Submit() call produced: per-op outcomes in submission
/// order, the first per-op error (Status::OK() when every op succeeded —
/// the remaining ops still ran either way), and the batch-level aggregates.
struct BatchResult {
  std::vector<OpResult> results;
  Status first_error;
  BatchStats stats;
};

/// Fans batches of operations over one MetricIndex, driving every MAM
/// purely through the MetricIndex interface (no downcasts — baselines that
/// lack an operation report Status::Unimplemented per op). Read-only
/// batches rely on the concurrent-reader guarantees of
/// SpbTree/BPlusTree/Raf/BufferPool; mixed batches additionally rely on the
/// index's epoch-based snapshot protocol (docs/ARCHITECTURE.md
/// §"Epoch-based snapshots"): queries pin a snapshot and never block, while
/// the executor's own writer mutex admits writers one at a time so the
/// index's single-writer try-lock (Status::Busy) never trips from inside a
/// batch.
///
/// Scheduling is delegated to an owned TaskArena (PR 8): each batch is one
/// task group, each op one task, and the arena's lock-free ticket ring +
/// per-worker parking replace the old mutex/condvar hand-off. Because the
/// arena is shared, a query task may itself fan out — ShardedSpbTree
/// dispatches per-shard subqueries onto TaskArena::Current(), i.e. this
/// same pool, with help-first waiting so batch tasks and subqueries
/// interleave deadlock-free at any pool size.
///
/// RunRangeBatch/RunKnnBatch block the calling thread until the batch
/// drains; the calling thread does not execute tasks (num_threads() worker
/// threads do the work, exactly as before PR 8). Workers claim op indices
/// from the group's atomic cursor, so skew between query costs
/// self-balances.
///
/// Each worker thread implicitly owns a per-thread query arena
/// (SpbTree::ThreadArena): all transient traversal state — FIFO/heap
/// buffers, decode scratch, the zero-copy BlobView — is reused across the
/// queries that worker runs, so a warm batch allocates nothing per query.
/// Arenas are thread-local, never shared, and a worker runs one query at a
/// time, which is exactly the contract the arena requires.
///
/// While a batch is in flight the executor assumes exclusive use of the
/// index's cumulative counters; interleaving other queries on the same
/// index from outside the executor corrupts the reported totals (not the
/// results).
class QueryExecutor {
 public:
  /// `index` must outlive the executor. `num_threads` is clamped to >= 1.
  QueryExecutor(MetricIndex* index, size_t num_threads);
  ~QueryExecutor() = default;

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// THE submission entry point (PR 10): runs any mix of read/write ops —
  /// the same tagged Request the wire protocol decodes — across the pool in
  /// an arbitrary interleaving, queries running concurrently against pinned
  /// snapshots. Writes adapt to index_->writer_concurrency(): against a
  /// single-writer index they serialize through the executor's writer
  /// mutex (so the index's try-lock never fails against a sibling op);
  /// against a multi-writer index (writer_concurrency() > 1, e.g. the
  /// sharded SPB-tree) they dispatch concurrently and retry on the
  /// transient per-shard Status::Busy, so writes to different shards
  /// overlap. The returned BatchResult holds one OpResult per request in
  /// submission order (per-op errors land in results[i].status as well as
  /// first_error). An op the index does not support fails with
  /// Status::Unimplemented; the rest of the batch still runs.
  BatchResult Submit(std::span<const Request> requests);

  /// Convenience wrapper: RQ(q, r) for every q in `queries`; slot i holds
  /// the ids for queries[i], sorted ascending so the output is
  /// deterministic regardless of thread interleaving. Returns the first
  /// query error, if any (remaining queries still run).
  Status RunRangeBatch(const std::vector<Blob>& queries, double r,
                       std::vector<std::vector<ObjectId>>* results,
                       BatchStats* stats = nullptr);

  /// Convenience wrapper: kNN(q, k) for every q in `queries`; slot i holds
  /// queries[i]'s neighbors sorted by ascending distance.
  Status RunKnnBatch(const std::vector<Blob>& queries, size_t k,
                     std::vector<std::vector<Neighbor>>* results,
                     BatchStats* stats = nullptr);

  /// Deprecated pre-PR 10 mixed-batch entry point; forwards to Submit().
  /// Will be removed next PR — new call sites use Submit().
  [[deprecated("use Submit()")]]
  Status RunMixedBatch(const std::vector<MixedOp>& ops,
                       std::vector<MixedResult>* results,
                       BatchStats* stats = nullptr);

  size_t num_threads() const { return arena_.num_threads(); }
  MetricIndex* index() { return index_; }
  /// The executor's scheduling pool. Exposed for observability
  /// (queue_stats() in bench JSON) and for tests that drive nested fan-out
  /// directly.
  TaskArena* arena() { return &arena_; }

 private:
  /// Fans `task(0..n-1)` over the pool, filling `stats` from the per-query
  /// latencies and the index counter delta.
  Status FanOut(size_t n, const std::function<Status(size_t)>& task,
                BatchStats* stats);
  /// One write op under the policy Submit documents: mutex when the index
  /// is single-writer; lock-free dispatch with BOUNDED retry-on-Busy
  /// (capped exponential backoff, kBusy surfaced if the budget drains) when
  /// it supports concurrent writers. Retries are tallied in busy_retries_.
  Status ExecuteWrite(const std::function<Status()>& op);

  MetricIndex* index_;
  TaskArena arena_;

  /// kBusy retries across the current batch (reset per RunBatch, reported
  /// as BatchStats::busy_retries).
  std::atomic<uint64_t> busy_retries_{0};

  /// Serializes write ops within mixed batches against single-writer
  /// indexes (writer_concurrency() == 1) so the index's try-lock never
  /// fails against a sibling op from the same batch. Unused for
  /// multi-writer indexes — see RunWrite().
  InstrumentedMutex write_mu_{"exec.write_mu"};
};

}  // namespace spb

#endif  // SPB_EXEC_QUERY_EXECUTOR_H_
