#ifndef SPB_EXEC_QUERY_EXECUTOR_H_
#define SPB_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/blob.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/metric_index.h"

namespace spb {

/// Aggregate outcome of one batch run. Throughput and latency percentiles
/// come from per-query wall clocks measured inside the workers; PA and
/// compdists totals come from the index's atomic cumulative counters
/// (exact in aggregate — per-query attribution is impossible once queries
/// overlap, see docs/ARCHITECTURE.md §"Cost accounting").
struct BatchStats {
  size_t num_queries = 0;
  size_t num_threads = 0;
  /// End-to-end wall time of the batch (submission to last completion).
  double wall_seconds = 0.0;
  /// num_queries / wall_seconds.
  double qps = 0.0;
  /// Per-query latency percentiles (seconds).
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Exact aggregate PA + compdists over the batch; elapsed_seconds is the
  /// sum of per-query latencies (i.e. total busy time across workers).
  QueryStats totals;
  /// Aggregate I/O counter delta over the batch (logical and physical reads,
  /// prefetch and coalescing stats) from MetricIndex::io_stats(). The
  /// logical/physical gap is what the I/O engine saved: single-flight
  /// sharing across these concurrent queries plus coalesced span reads.
  IoStats io_totals;
};

/// A fixed-size thread pool that fans batches of queries over one
/// MetricIndex. The index must be in its immutable (bulk-loaded, quiescent)
/// state for the lifetime of every batch: the executor relies on the
/// concurrent-reader guarantees of SpbTree/BPlusTree/Raf/BufferPool and
/// performs no locking of its own around index calls.
///
/// The executor owns `num_threads` worker threads for its whole lifetime
/// (created eagerly, joined in the destructor). Batches run one at a time;
/// RunRangeBatch/RunKnnBatch block the calling thread until the batch
/// drains. Workers pull query indices from a shared atomic cursor, so skew
/// between query costs self-balances.
///
/// Each worker thread implicitly owns a per-thread query arena
/// (SpbTree::ThreadArena): all transient traversal state — FIFO/heap
/// buffers, decode scratch, the zero-copy BlobView — is reused across the
/// queries that worker runs, so a warm batch allocates nothing per query.
/// Arenas are thread-local, never shared, and a worker runs one query at a
/// time, which is exactly the contract the arena requires.
///
/// While a batch is in flight the executor assumes exclusive use of the
/// index's cumulative counters; interleaving other queries on the same
/// index from outside the executor corrupts the reported totals (not the
/// results).
class QueryExecutor {
 public:
  /// `index` must outlive the executor. `num_threads` is clamped to >= 1.
  QueryExecutor(MetricIndex* index, size_t num_threads);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Runs RQ(q, r) for every q in `queries`. `results` is resized to
  /// queries.size(); slot i holds the ids for queries[i], sorted ascending
  /// so the output is deterministic regardless of thread interleaving.
  /// Returns the first query error, if any (remaining queries still run).
  Status RunRangeBatch(const std::vector<Blob>& queries, double r,
                       std::vector<std::vector<ObjectId>>* results,
                       BatchStats* stats = nullptr);

  /// Runs kNN(q, k) for every q in `queries`; slot i holds queries[i]'s
  /// neighbors sorted by ascending distance (the index's own order).
  Status RunKnnBatch(const std::vector<Blob>& queries, size_t k,
                     std::vector<std::vector<Neighbor>>* results,
                     BatchStats* stats = nullptr);

  size_t num_threads() const { return threads_.size(); }
  MetricIndex* index() { return index_; }

 private:
  struct Batch {
    const std::function<Status(size_t)>* task = nullptr;
    size_t total = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::vector<double> latencies;
    std::mutex error_mu;
    Status first_error;
  };

  /// Fans `task(0..n-1)` over the pool, filling `stats` from the per-query
  /// latencies and the index counter delta.
  Status RunBatch(size_t n, const std::function<Status(size_t)>& task,
                  BatchStats* stats);
  void WorkerLoop();

  MetricIndex* index_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_;
  uint64_t batch_seq_ = 0;
  bool stop_ = false;
};

}  // namespace spb

#endif  // SPB_EXEC_QUERY_EXECUTOR_H_
