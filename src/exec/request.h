#ifndef SPB_EXEC_REQUEST_H_
#define SPB_EXEC_REQUEST_H_

#include <cstdint>
#include <vector>

#include "common/blob.h"
#include "common/status.h"
#include "core/metric_index.h"

namespace spb {

/// One operation against a MetricIndex — the single request shape shared by
/// every submission path: QueryExecutor::Submit() consumes a span of these,
/// and the wire protocol (src/net/protocol.h) encodes/decodes exactly this
/// struct, so an op that arrived over TCP is *the same object* an in-process
/// batch would submit. Replaces the PR 5 MixedOp (now an alias).
///
/// Only the members matching `kind` are meaningful; the rest stay at their
/// defaults and are ignored (and encode as zeros on the wire).
struct Request {
  enum class Kind : uint8_t {
    kRange = 0,   ///< RQ(obj, radius) -> OpResult::range_ids
    kKnn = 1,     ///< kNN(obj, k)     -> OpResult::neighbors
    kInsert = 2,  ///< Insert(obj, id)
    kDelete = 3,  ///< Delete(obj, id) -> OpResult::found
  };
  Kind kind = Kind::kRange;
  /// Query object (kRange/kKnn) or record payload (kInsert/kDelete).
  Blob obj;
  double radius = 0.0;  ///< kRange
  uint64_t k = 0;       ///< kKnn
  ObjectId id = 0;      ///< kInsert / kDelete

  static Request Range(Blob q, double r) {
    Request req;
    req.kind = Kind::kRange;
    req.obj = std::move(q);
    req.radius = r;
    return req;
  }
  static Request Knn(Blob q, uint64_t k) {
    Request req;
    req.kind = Kind::kKnn;
    req.obj = std::move(q);
    req.k = k;
    return req;
  }
  static Request Insert(Blob o, ObjectId id) {
    Request req;
    req.kind = Kind::kInsert;
    req.obj = std::move(o);
    req.id = id;
    return req;
  }
  static Request Delete(Blob o, ObjectId id) {
    Request req;
    req.kind = Kind::kDelete;
    req.obj = std::move(o);
    req.id = id;
    return req;
  }
};

/// Per-op outcome. Only the member matching the request's kind is populated.
/// Range ids are sorted ascending (deterministic regardless of thread
/// interleaving); kNN neighbors come back in the index's own order
/// (ascending distance). Replaces the PR 5 MixedResult (now an alias).
struct OpResult {
  Status status;
  std::vector<ObjectId> range_ids;  ///< kRange, sorted ascending
  std::vector<Neighbor> neighbors;  ///< kKnn, ascending distance
  bool found = false;               ///< kDelete
};

}  // namespace spb

#endif  // SPB_EXEC_REQUEST_H_
