#ifndef SPB_COMMON_BLOB_H_
#define SPB_COMMON_BLOB_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace spb {

/// A metric-space object is an opaque, variable-length byte string. The index
/// never interprets object bytes; only the distance function does. This is
/// what lets one index implementation serve words (edit distance), feature
/// vectors (Lp-norms), signatures (Hamming), DNA reads (tri-gram cosine), ...
using Blob = std::vector<uint8_t>;

/// A non-owning view of an object's bytes. Distance functions take BlobRef
/// so the zero-copy read path (storage/raf.h BlobView) can hand a pointer
/// into a pinned buffer-pool frame straight to the metric without
/// materializing a Blob. Implicitly constructible from Blob, so call sites
/// holding owned objects are unaffected. The view does not keep the bytes
/// alive: the caller must hold the owning Blob / page pin for the duration
/// of the call.
class BlobRef {
 public:
  constexpr BlobRef() = default;
  BlobRef(const Blob& b) : data_(b.data()), size_(b.size()) {}
  constexpr BlobRef(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  Blob ToBlob() const { return Blob(data_, data_ + size_); }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Identifier assigned to an object when it enters an index.
using ObjectId = uint32_t;

/// Wraps a string's bytes as a Blob (for string metrics such as edit
/// distance).
inline Blob BlobFromString(std::string_view s) {
  return Blob(s.begin(), s.end());
}

/// Recovers the string view of a Blob produced by BlobFromString.
inline std::string BlobToString(BlobRef b) {
  return std::string(b.begin(), b.end());
}

/// Packs a float vector into a Blob, little-endian IEEE-754 (for vector
/// metrics such as the Lp-norms).
inline Blob BlobFromFloats(const std::vector<float>& v) {
  Blob b(v.size() * sizeof(float));
  if (!v.empty()) std::memcpy(b.data(), v.data(), b.size());
  return b;
}

/// Recovers the float vector packed by BlobFromFloats. The Blob length must
/// be a multiple of sizeof(float).
inline std::vector<float> BlobToFloats(BlobRef b) {
  std::vector<float> v(b.size() / sizeof(float));
  if (!v.empty()) std::memcpy(v.data(), b.data(), v.size() * sizeof(float));
  return v;
}

}  // namespace spb

#endif  // SPB_COMMON_BLOB_H_
