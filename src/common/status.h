#ifndef SPB_COMMON_STATUS_H_
#define SPB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace spb {

/// Outcome of a fallible operation. The library does not throw exceptions on
/// normal control paths; every operation that can fail returns a Status (or a
/// StatusOr-like pair). Modeled after the RocksDB/Arrow idiom.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kNotSupported,
    /// A second writer raced a single-writer entry point (Insert/Delete/
    /// ApplyTuning). The operation had no effect; retry after the current
    /// writer finishes. See docs/API.md §"Status taxonomy".
    kBusy,
    /// The index type does not implement this operation at all (e.g. Delete
    /// on the M-tree baseline). Unlike kNotSupported — which flags an
    /// unsatisfiable argument/configuration — retrying can never succeed.
    kUnimplemented,
  };

  /// Default status is success.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IOError: short read".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return Status.
#define SPB_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::spb::Status _spb_status = (expr);        \
    if (!_spb_status.ok()) return _spb_status; \
  } while (false)

}  // namespace spb

#endif  // SPB_COMMON_STATUS_H_
