#ifndef SPB_COMMON_STRIPED_H_
#define SPB_COMMON_STRIPED_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace spb {

/// Stable small integer id for the calling thread, assigned on first use.
/// Used to pick a stripe slot so hot counters touched by different threads
/// land on different cache lines. Ids are never recycled — a process that
/// churns threads wraps around the stripe count, which only costs some
/// sharing, never correctness.
inline uint32_t ThreadStripeId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// A monotonically updated uint64 counter striped over cache-line-padded
/// per-thread slots: writers fetch_add into their own slot (no line
/// bouncing between cores), readers sum all slots. The aggregation rule —
/// "writes hit the caller's slab, reads fold the slabs" — is the stats-slab
/// contract documented in docs/ARCHITECTURE.md §"Threading model".
///
/// The API mirrors std::atomic<uint64_t> (load / store / fetch_add with
/// optional memory orders) so call sites written against atomic counters
/// compile unchanged. Like those counters it carries no synchronization:
/// relaxed slot updates, totals exact only after the racing work is joined.
/// store() collapses the value into slot 0 and clears the rest — callers
/// only store under quiesced conditions (Reset, snapshot copies), same as
/// before.
class StripedU64 {
 public:
  static constexpr size_t kSlots = 8;

  StripedU64() = default;
  explicit StripedU64(uint64_t v) { store(v); }

  StripedU64(const StripedU64& other) { store(other.load()); }
  StripedU64& operator=(const StripedU64& other) {
    store(other.load());
    return *this;
  }

  // std::atomic-style conversions, so `uint64_t x = counter;` and
  // `counter = x;` keep working at call sites.
  operator uint64_t() const { return load(); }  // NOLINT(runtime/explicit)
  StripedU64& operator=(uint64_t v) {
    store(v);
    return *this;
  }

  void fetch_add(uint64_t v,
                 std::memory_order o = std::memory_order_relaxed) {
    slots_[ThreadStripeId() & (kSlots - 1)].v.fetch_add(v, o);
  }

  uint64_t load(std::memory_order o = std::memory_order_relaxed) const {
    uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(o);
    return sum;
  }

  void store(uint64_t v, std::memory_order o = std::memory_order_relaxed) {
    slots_[0].v.store(v, o);
    for (size_t i = 1; i < kSlots; ++i) slots_[i].v.store(0, o);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kSlots];
};

}  // namespace spb

#endif  // SPB_COMMON_STRIPED_H_
