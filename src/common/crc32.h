#ifndef SPB_COMMON_CRC32_H_
#define SPB_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace spb {

/// CRC-32 (reflected, polynomial 0xEDB88320), table-driven. Small and
/// dependency-free; shared by the WAL's record framing and the network
/// protocol's frame checksums (docs/PROTOCOL.md). Throughput is irrelevant
/// in both users — the WAL fsyncs after every group and the network frames
/// are dominated by the socket round-trip.
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline uint32_t Crc32(const uint8_t* data, size_t n) {
  const auto& table = Crc32Table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace spb

#endif  // SPB_COMMON_CRC32_H_
