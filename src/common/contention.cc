#include "common/contention.h"

#include <algorithm>
#include <chrono>

namespace spb {

ContentionRegistry& ContentionRegistry::Instance() {
  // Leaked singleton: counter sets must outlive every static-storage mutex
  // that might be destroyed after main() returns.
  static ContentionRegistry* r = new ContentionRegistry();
  return *r;
}

ContentionRegistry::Counters* ContentionRegistry::Register(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counters* c : locks_) {
    if (c->name == name) return c;
  }
  locks_.push_back(new Counters(name));  // leaked, see Instance()
  return locks_.back();
}

std::vector<LockStatsSnapshot> ContentionRegistry::Snapshot() const {
  std::vector<LockStatsSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(locks_.size());
    for (const Counters* c : locks_) {
      LockStatsSnapshot s;
      s.name = c->name;
      s.acquires = c->acquires.load();
      s.contended = c->contended.load();
      s.wait_ns = c->wait_ns.load();
      for (size_t b = 0; b < kContentionBuckets; ++b) {
        s.wait_hist[b] = c->wait_hist[b].load(std::memory_order_relaxed);
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LockStatsSnapshot& a, const LockStatsSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void ContentionRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counters* c : locks_) {
    c->acquires.store(0);
    c->contended.store(0);
    c->wait_ns.store(0);
    for (size_t b = 0; b < kContentionBuckets; ++b) {
      c->wait_hist[b].store(0, std::memory_order_relaxed);
    }
  }
}

void InstrumentedMutex::lock() {
  if (mu_.try_lock()) {
    c_->acquires.fetch_add(1);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  mu_.lock();
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  c_->acquires.fetch_add(1);
  c_->contended.fetch_add(1);
  c_->wait_ns.fetch_add(ns);
  // Bucket by waited microseconds: floor(log2(us)), clamped to the open
  // top bucket.
  const uint64_t us = ns / 1000;
  size_t b = 0;
  while (b + 1 < kContentionBuckets && (uint64_t(2) << b) <= us) ++b;
  c_->wait_hist[b].fetch_add(1, std::memory_order_relaxed);
}

bool InstrumentedMutex::try_lock() {
  const bool ok = mu_.try_lock();
  if (ok) c_->acquires.fetch_add(1);
  return ok;
}

}  // namespace spb
