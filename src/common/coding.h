#ifndef SPB_COMMON_CODING_H_
#define SPB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>

namespace spb {

// Little-endian fixed-width integer coding for on-disk structures. All index
// pages and RAF records use these so the files are byte-identical across
// platforms (we only target little-endian hosts; a static_assert guards it).

inline void EncodeFixed16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void EncodeDouble(uint8_t* dst, double v) { std::memcpy(dst, &v, 8); }
inline double DecodeDouble(const uint8_t* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace spb

#endif  // SPB_COMMON_CODING_H_
