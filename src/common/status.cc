#include "common/status.h"

namespace spb {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kBusy:
      name = "Busy";
      break;
    case Code::kUnimplemented:
      name = "Unimplemented";
      break;
  }
  std::string result = name;
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace spb
