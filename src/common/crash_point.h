#ifndef SPB_COMMON_CRASH_POINT_H_
#define SPB_COMMON_CRASH_POINT_H_

#include <cstdlib>
#include <cstring>
#include <unistd.h>

namespace spb {

/// Process exit code used by the fault-injection hook, chosen to be
/// distinguishable from assertion failures (134) and clean exits (0).
inline constexpr int kCrashExitCode = 42;

/// Fault-injection kill point. When the SPB_CRASH_POINT environment variable
/// names `point`, the process exits immediately with kCrashExitCode — no
/// destructors, no buffered-IO flush — simulating a crash at exactly that
/// instruction. Recovery tests (tests/wal_test.cc) spawn a child with the
/// variable set, assert the exit code, then reopen the child's files.
///
/// Points are compile-time string literals; grep for MaybeCrash( to list the
/// matrix. The env var is read once per process (first call).
inline void MaybeCrash(const char* point) {
  static const char* target = std::getenv("SPB_CRASH_POINT");
  if (target != nullptr && std::strcmp(target, point) == 0) {
    _exit(kCrashExitCode);
  }
}

}  // namespace spb

#endif  // SPB_COMMON_CRASH_POINT_H_
