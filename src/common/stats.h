#ifndef SPB_COMMON_STATS_H_
#define SPB_COMMON_STATS_H_

#include <cstdint>

namespace spb {

/// Page-access accounting shared by every disk-resident structure (B+-tree,
/// RAF, R-tree, M-tree, M-Index). A "page access" (PA in the paper) is a
/// 4 KB page fetched from the page file that was not served by the buffer
/// pool, matching the paper's I/O cost metric.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t cache_hits = 0;

  uint64_t page_accesses() const { return page_reads + page_writes; }

  void Reset() {
    page_reads = 0;
    page_writes = 0;
    cache_hits = 0;
  }

  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    cache_hits += other.cache_hits;
    return *this;
  }
};

/// Per-query (or per-operation) cost record in the paper's three metrics:
/// page accesses (PA), distance computations (compdists) and wall time.
struct QueryStats {
  uint64_t page_accesses = 0;
  uint64_t distance_computations = 0;
  double elapsed_seconds = 0.0;

  void Reset() {
    page_accesses = 0;
    distance_computations = 0;
    elapsed_seconds = 0.0;
  }

  QueryStats& operator+=(const QueryStats& other) {
    page_accesses += other.page_accesses;
    distance_computations += other.distance_computations;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }
};

}  // namespace spb

#endif  // SPB_COMMON_STATS_H_
