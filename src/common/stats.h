#ifndef SPB_COMMON_STATS_H_
#define SPB_COMMON_STATS_H_

#include <atomic>
#include <cstdint>

#include "common/striped.h"

namespace spb {

/// Page-access accounting shared by every disk-resident structure (B+-tree,
/// RAF, R-tree, M-tree, M-Index). A "page access" (PA in the paper) is a
/// 4 KB page fetched from the page file that was not served by the buffer
/// pool, matching the paper's I/O cost metric.
///
/// Accounting convention (documented in docs/ARCHITECTURE.md §"Cost
/// accounting"): PA == page_reads + page_writes. `cache_hits` (reads absorbed
/// by the buffer pool, including reads served from the RAF's pinned tail
/// page) are counted but deliberately excluded from page_accesses().
///
/// The counters are striped per-thread slabs (StripedU64, PR 8): concurrent
/// readers sharing one structure keep the totals exact without bouncing one
/// cache line between every core on every page touch — writes land on the
/// caller's slab, reads fold the slabs. Like the atomics they replace, the
/// counters carry no synchronization: they are read for reporting only,
/// after the racing work has been joined.
struct IoStats {
  StripedU64 page_reads;
  StripedU64 page_writes;
  StripedU64 cache_hits;
  /// Read operations actually issued to the PageFile. One coalesced span
  /// read counts once no matter how many pages it covers, and single-flight
  /// sharing collapses concurrent misses of one page to one physical read —
  /// so physical_reads <= page_reads always, and the gap measures what the
  /// I/O engine saved. Excluded from page_accesses(): the paper's PA metric
  /// is the logical count.
  StripedU64 physical_reads;
  /// Pages handed to the background fetcher by readahead scheduling.
  StripedU64 prefetch_issued;
  /// Logical page requests served from a readahead staging buffer instead
  /// of a blocking file read (each also counts one page_read).
  StripedU64 prefetch_hits;
  /// Pages fetched as part of multi-page span reads (runs of length >= 2).
  StripedU64 coalesced_pages;
  /// Bytes of RAF records orphaned by Delete (or superseded by an in-place
  /// re-insert of an existing id). The lazy-deletion design never reclaims
  /// RAF space in place (records are unlinked from the B+-tree only), so
  /// this counter is the compaction debt the background compactor recovers.
  /// It is *state*, not a measurement: Reset() leaves it alone (only a
  /// compaction zeroes it, and Save/Open persist it), unlike every other
  /// counter here. Excluded from page_accesses(); surfaced per shard and in
  /// aggregate by ShardedSpbTree::io_stats() and `spb_cli stats`.
  StripedU64 dead_bytes;

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    page_reads.store(other.page_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    page_writes.store(other.page_writes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    cache_hits.store(other.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    physical_reads.store(other.physical_reads.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    prefetch_issued.store(
        other.prefetch_issued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_hits.store(other.prefetch_hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    coalesced_pages.store(
        other.coalesced_pages.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    dead_bytes.store(other.dead_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  uint64_t page_accesses() const {
    return page_reads.load(std::memory_order_relaxed) +
           page_writes.load(std::memory_order_relaxed);
  }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    physical_reads.store(0, std::memory_order_relaxed);
    prefetch_issued.store(0, std::memory_order_relaxed);
    prefetch_hits.store(0, std::memory_order_relaxed);
    coalesced_pages.store(0, std::memory_order_relaxed);
    // dead_bytes deliberately NOT reset: it is compaction debt, not a
    // per-measurement counter.
  }

  IoStats& operator+=(const IoStats& other) {
    page_reads.fetch_add(other.page_reads.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    page_writes.fetch_add(other.page_writes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    cache_hits.fetch_add(other.cache_hits.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    physical_reads.fetch_add(
        other.physical_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_issued.fetch_add(
        other.prefetch_issued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_hits.fetch_add(
        other.prefetch_hits.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    coalesced_pages.fetch_add(
        other.coalesced_pages.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    dead_bytes.fetch_add(other.dead_bytes.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }
};

/// Per-query (or per-operation) cost record in the paper's three metrics:
/// page accesses (PA), distance computations (compdists) and wall time.
/// Plain (non-atomic) snapshot values: a QueryStats is always owned by one
/// thread. Under concurrent execution, per-query PA deltas are not
/// attributable (the shared counters interleave); QueryExecutor reports the
/// exact aggregate instead (see src/exec/query_executor.h).
struct QueryStats {
  uint64_t page_accesses = 0;
  uint64_t distance_computations = 0;
  double elapsed_seconds = 0.0;

  void Reset() {
    page_accesses = 0;
    distance_computations = 0;
    elapsed_seconds = 0.0;
  }

  QueryStats& operator+=(const QueryStats& other) {
    page_accesses += other.page_accesses;
    distance_computations += other.distance_computations;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }
};

}  // namespace spb

#endif  // SPB_COMMON_STATS_H_
