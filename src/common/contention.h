#ifndef SPB_COMMON_CONTENTION_H_
#define SPB_COMMON_CONTENTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/striped.h"

namespace spb {

/// Lightweight lock/queue contention observability (docs/OPERATIONS.md
/// §"Reading contention counters"). Every InstrumentedMutex registers under
/// a short dotted name ("snapshot.admin", "pool.shard", ...); all instances
/// sharing a name aggregate into one counter set, so per-shard locks report
/// as one line. Counters cost one striped relaxed increment on the
/// uncontended path and a steady_clock pair only when the lock was actually
/// contended, which is exactly the event worth measuring.
///
/// The registry is a process-wide singleton: bench JSON and `spb_cli stats`
/// snapshot it, tests Reset() it between phases, and the PR 8 stress tests
/// use it to assert a fast path acquires *zero* mutexes (an instrumented
/// lock that is never touched reports zero acquires — no sampling, no
/// perf-tool dependency).

/// Wait-time histogram: bucket b counts contended acquisitions that waited
/// in [2^b, 2^(b+1)) microseconds; bucket 0 is < 2 us, the last bucket is
/// open-ended. 16 buckets reach ~65 ms, past any wait this library should
/// ever see.
inline constexpr size_t kContentionBuckets = 16;

struct LockStatsSnapshot {
  std::string name;
  uint64_t acquires = 0;     // total lock() + successful try_lock()
  uint64_t contended = 0;    // lock() calls that had to wait
  uint64_t wait_ns = 0;      // total nanoseconds spent waiting
  uint64_t wait_hist[kContentionBuckets] = {0};
};

class ContentionRegistry {
 public:
  /// One named counter set. Instances are never destroyed (the registry
  /// leaks them at process exit), so InstrumentedMutex can hold a raw
  /// pointer with no lifetime protocol.
  struct Counters {
    explicit Counters(std::string n) : name(std::move(n)) {}
    const std::string name;
    StripedU64 acquires;
    StripedU64 contended;
    StripedU64 wait_ns;
    std::atomic<uint64_t> wait_hist[kContentionBuckets] = {};
  };

  static ContentionRegistry& Instance();

  /// Returns the counter set for `name`, creating it on first use. Takes
  /// the registry mutex — call from constructors, not hot paths.
  Counters* Register(const std::string& name);

  /// Snapshot of every registered lock, sorted by name.
  std::vector<LockStatsSnapshot> Snapshot() const;

  /// Zeroes every counter (names stay registered). Benches and tests call
  /// this between measured phases; counters are monotonically increasing
  /// otherwise.
  void Reset();

 private:
  ContentionRegistry() = default;

  mutable std::mutex mu_;
  std::vector<Counters*> locks_;
};

/// Drop-in instrumented std::mutex: BasicLockable + try_lock, so it works
/// with std::lock_guard, std::unique_lock and condition_variable_any.
/// Uncontended lock() = one try_lock + one striped increment; contended
/// lock() additionally records the wait time into the named histogram.
class InstrumentedMutex {
 public:
  explicit InstrumentedMutex(const char* name)
      : c_(ContentionRegistry::Instance().Register(name)) {}

  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock();
  void unlock() { mu_.unlock(); }
  bool try_lock();

 private:
  std::mutex mu_;
  ContentionRegistry::Counters* c_;
};

/// Convenience for reporting surfaces (bench JSON, spb_cli stats).
inline std::vector<LockStatsSnapshot> ContentionSnapshot() {
  return ContentionRegistry::Instance().Snapshot();
}
inline void ContentionReset() { ContentionRegistry::Instance().Reset(); }

}  // namespace spb

#endif  // SPB_COMMON_CONTENTION_H_
