#ifndef SPB_COMMON_RNG_H_
#define SPB_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace spb {

/// Deterministic random source used by pivot selection, bulk-load sampling
/// and the synthetic dataset generators. Seeded explicitly everywhere so
/// every experiment is reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Standard normal deviate.
  double NextGaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace spb

#endif  // SPB_COMMON_RNG_H_
