#include "storage/io_engine.h"

#include <algorithm>

namespace spb {

PageFetcher::PageFetcher(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PageFetcher::~PageFetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<PageFetcher::Ticket> PageFetcher::Submit(PageFile* file,
                                                         PageId first,
                                                         size_t count,
                                                         Page* dst) {
  auto ticket = std::make_shared<Ticket>();
  if (workers_.empty()) {
    ticket->status = file->ReadSpan(first, count, dst);
    ticket->done = true;
    return ticket;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(Job{file, first, count, dst, ticket});
  }
  cv_.notify_one();
  return ticket;
}

Status PageFetcher::Wait(Ticket& ticket) {
  std::unique_lock<std::mutex> lock(ticket.mu);
  ticket.cv.wait(lock, [&ticket] { return ticket.done; });
  return ticket.status;
}

void PageFetcher::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ with no work left
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const Status s = job.file->ReadSpan(job.first, job.count, job.dst);
    {
      std::lock_guard<std::mutex> lock(job.ticket->mu);
      job.ticket->status = s;
      job.ticket->done = true;
    }
    job.ticket->cv.notify_all();
  }
}

Readahead::Readahead(BufferPool* pool, PageFetcher* fetcher,
                     ReadaheadOptions options)
    : pool_(pool), fetcher_(fetcher), options_(options) {
  if (options_.max_pages == 0) options_.max_pages = 1;
}

Readahead::~Readahead() {
  // Background reads write into our staging buffers; every ticket must land
  // before the buffers die. Waiting also attributes the physical reads of
  // speculative runs that were never claimed — they did hit the file.
  for (auto& run : runs_) WaitRun(&run);
}

void Readahead::Schedule(const PageId* pages, size_t count) {
  if (count == 0 || fetcher_ == nullptr) return;
  const PageId num_pages = pool_->file()->num_pages();
  std::vector<PageId> want(pages, pages + count);
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());

  size_t i = 0;
  while (i < want.size()) {
    const PageId id = want[i];
    if (id >= num_pages || staged_.count(id) != 0 || pool_->Contains(id)) {
      ++i;
      continue;
    }
    // Grow a run of strictly consecutive, still-missing page ids.
    size_t j = i + 1;
    while (j < want.size() && j - i < options_.max_pages &&
           want[j] == want[j - 1] + 1 && want[j] < num_pages &&
           staged_.count(want[j]) == 0 && !pool_->Contains(want[j])) {
      ++j;
    }
    const size_t run_len = j - i;

    // Respect the in-flight budget before submitting more.
    while (inflight_pages_ + run_len > options_.max_pages &&
           oldest_unwaited_ < runs_.size()) {
      WaitRun(&runs_[oldest_unwaited_]);
    }

    runs_.emplace_back();
    Run& run = runs_.back();
    run.first = id;
    run.count = run_len;
    run.pages = std::make_unique<Page[]>(run_len);
    for (size_t k = 0; k < run_len; ++k) {
      staged_.emplace(id + static_cast<PageId>(k), std::make_pair(&run, k));
    }
    inflight_pages_ += run_len;
    pool_->stats().prefetch_issued.fetch_add(run_len,
                                             std::memory_order_relaxed);
    if (run_len >= 2) {
      pool_->stats().coalesced_pages.fetch_add(run_len,
                                               std::memory_order_relaxed);
    }
    run.ticket =
        fetcher_->Submit(pool_->file(), run.first, run.count, run.pages.get());
    i = j;
  }
}

void Readahead::WaitRun(Run* run) {
  if (run->waited) return;
  run->status = PageFetcher::Wait(*run->ticket);
  run->waited = true;
  inflight_pages_ -= run->count;
  while (oldest_unwaited_ < runs_.size() &&
         runs_[oldest_unwaited_].waited) {
    ++oldest_unwaited_;
  }
  if (run->status.ok()) {
    // One physical read per coalesced run, however many pages it covered.
    pool_->stats().physical_reads.fetch_add(1, std::memory_order_relaxed);
  }
}

Status Readahead::ReadInto(PageId id, size_t offset, size_t n,
                           uint8_t* dst) {
  auto it = staged_.find(id);
  if (it != staged_.end()) {
    Run* run = it->second.first;
    WaitRun(run);
    if (run->status.ok()) {
      return pool_->ReadIntoStaged(id, offset, n, dst,
                                   run->pages[it->second.second]);
    }
    // Failed span read: fall through to the demand path, which retries the
    // single page and reports its own error if the file is truly bad.
  }
  return pool_->ReadInto(id, offset, n, dst);
}

Status Readahead::ReadPinned(PageId id, BufferPool::PagePin* out) {
  auto it = staged_.find(id);
  if (it != staged_.end()) {
    Run* run = it->second.first;
    WaitRun(run);
    if (run->status.ok()) {
      return pool_->ReadPinnedStaged(id, run->pages[it->second.second], out);
    }
    // Failed span read: fall through to the demand path, which retries the
    // single page and reports its own error if the file is truly bad.
  }
  return pool_->ReadPinned(id, out);
}

Status Readahead::Touch(PageId id) {
  BufferPool::PagePin pin;
  return ReadPinned(id, &pin);
}

}  // namespace spb
