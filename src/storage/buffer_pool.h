#ifndef SPB_STORAGE_BUFFER_POOL_H_
#define SPB_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/contention.h"
#include "common/stats.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace spb {

/// An LRU page cache in front of one PageFile. All page traffic of an access
/// method flows through a BufferPool so that the paper's PA metric (page
/// accesses not absorbed by the cache) is counted uniformly for the SPB-tree
/// and every competitor.
///
/// Writes are write-through: the page is stored in the cache (so subsequent
/// reads hit) and written to the file immediately. A write counts as one page
/// access; a cached read counts as a hit, an uncached read as one page
/// access. `capacity == 0` disables caching entirely (the paper's "cache size
/// 0" configuration).
///
/// Thread safety: Read() and Write() are safe to call concurrently. The LRU
/// is striped — pages hash to one of up to kMaxShards independent shards,
/// each with its own mutex, list and map, so concurrent readers touching
/// different pages do not contend. IoStats counters are atomic, keeping the
/// PA totals exact under concurrency.
///
/// Misses are *single-flight*: each shard keeps a pending-fetch table, and
/// concurrent readers missing on the same page elect one leader that performs
/// the file read while the rest wait on the shared result. Every caller still
/// counts one logical page_read (the paper's PA is per-request, and the
/// cache-size-0 experiments depend on it), but only the leader counts a
/// physical_read — duplicate disk fetches of one page collapse to one. The
/// leader erases the pending entry and inserts the page into the cache under
/// one shard-lock hold, so there is no window where a page is in neither
/// table. A failed read is propagated to all waiters and the pending entry
/// is removed; the next request simply retries. Small pools (fewer than
/// 2 * kMinShardPages pages) collapse to a single shard so the eviction
/// order stays exactly the classic global-LRU order the unit tests and the
/// paper's small-cache experiments rely on. set_capacity() is NOT
/// thread-safe: it rebuilds the shard array (destroying the per-shard
/// mutexes out from under any reader), so the caller must externally exclude
/// it from *all* concurrent Read()/Write() calls. Flush() takes each shard
/// lock and is memory-safe, but treat both as single-writer operations
/// (reconfigure the pool only between query batches) — the same contract the
/// SPB-tree and RAF layers follow.
class BufferPool {
 public:
  /// Number of LRU shards used for large pools.
  static constexpr size_t kMaxShards = 8;
  /// Minimum pages per shard; below 2*this the pool is unsharded.
  static constexpr size_t kMinShardPages = 16;

  /// A pin on a cache frame: while the pin is held the pointed-to Page stays
  /// valid and immutable, even if the entry is evicted or overwritten (frames
  /// are shared_ptr-held; Write()/InsertLocked replace the pointer rather
  /// than mutating the frame in place, and eviction only drops the cache's
  /// reference). A pin does NOT keep the *cache entry* alive — it keeps the
  /// *bytes* alive. Holding pins does not block eviction or writes; a pinned
  /// frame can therefore be stale with respect to a concurrent Write() to
  /// the same page, which is fine under the repo's immutable-after-bulk-load
  /// reader contract (docs/ARCHITECTURE.md §"Threading model").
  using PagePin = std::shared_ptr<const Page>;

  /// `file` must outlive the pool. `capacity` is in pages (total across all
  /// shards).
  BufferPool(PageFile* file, size_t capacity) : file_(file) {
    Resize(capacity);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads page `id` (through the cache) into `*out`.
  Status Read(PageId id, Page* out);

  /// Copies `n` bytes starting at byte `offset` of page `id` into `dst`,
  /// through the cache, without materializing the full page in the caller —
  /// the RAF uses this to fetch an object record without a 4 KiB copy per
  /// access. Accounting is identical to Read(): a cached page counts one
  /// cache hit, an uncached page one page read (and the fetched page is
  /// inserted). Requires offset + n <= kPageSize.
  Status ReadInto(PageId id, size_t offset, size_t n, uint8_t* dst);

  /// Serves a read whose bytes were already fetched by a readahead session.
  /// If the page is cached this behaves exactly like ReadInto (one cache
  /// hit, LRU promoted, `staged` ignored); otherwise the pre-fetched copy in
  /// `staged` is inserted into the cache and counted as one logical
  /// page_read plus one prefetch_hit — no physical read happens here (the
  /// readahead session already counted the span read that produced
  /// `staged`). Serially this reproduces the demand path's exact PA,
  /// cache_hits and LRU evolution, which is what keeps paper-facing figures
  /// identical with prefetch on or off.
  Status ReadIntoStaged(PageId id, size_t offset, size_t n, uint8_t* dst,
                        const Page& staged);

  /// Zero-copy variant of Read(): returns a pin on the cache frame instead
  /// of copying the page out. Accounting is identical to Read() — a cached
  /// page counts one cache hit (LRU promoted), an uncached page one logical
  /// page read (single-flight; leader also counts the physical read) — so
  /// swapping Read() for ReadPinned() is invisible to the paper's PA
  /// figures. On a capacity-0 pool the fetched frame is returned pinned but
  /// not cached, preserving the "cache size 0" accounting.
  Status ReadPinned(PageId id, PagePin* out);

  /// Zero-copy variant of ReadIntoStaged (same claim-on-touch accounting:
  /// hit => cache_hit, miss => page_read + prefetch_hit + insert), returning
  /// a pin instead of copying bytes out.
  Status ReadPinnedStaged(PageId id, const Page& staged, PagePin* out);

  /// Runs the full demand read path for `id` — cache-hit bookkeeping and LRU
  /// promotion on a hit, a single-flight fetch + insert + page_read on a
  /// miss — without copying any bytes to the caller. The decoded-node cache
  /// calls this on a node-cache hit so the buffer pool's counters and LRU
  /// state evolve exactly as if the page had been re-read and re-decoded:
  /// that equivalence is the accounting-parity rule that keeps PA and
  /// cache_hits byte-identical with the node cache on or off.
  Status Touch(PageId id);

  /// True if page `id` is currently cached. Does not promote the entry or
  /// touch any counter — used by readahead scheduling to skip pages that
  /// would be cache hits anyway.
  bool Contains(PageId id);

  /// Writes page `id` through the cache to the file.
  Status Write(PageId id, const Page& page);

  /// Allocates a fresh page in the underlying file.
  Status Allocate(PageId* id) { return file_->Allocate(id); }

  /// Drops all cached pages (the paper flushes the cache before each query).
  void Flush();

  /// Drops the cached frames of retired pages (epoch reclamation: the ids
  /// were superseded by a COW write and the last snapshot that could reach
  /// them has drained). Uncached ids are ignored; outstanding PagePins keep
  /// their bytes alive as usual. Safe under concurrent readers (per-shard
  /// locks) and may run on any thread — the snapshot manager invokes it from
  /// whichever thread releases the last pinning snapshot.
  void Retire(const PageId* ids, size_t count);
  void Retire(const std::vector<PageId>& ids) { Retire(ids.data(), ids.size()); }

  /// Changes the cache capacity; drops contents.
  void set_capacity(size_t capacity) { Resize(capacity); }
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  PageFile* file() { return file_; }

 private:
  /// Frames are shared_ptr-held so ReadPinned can hand them out as PagePins:
  /// eviction and overwrite drop or replace the pointer, never mutate the
  /// pointed-to Page, so outstanding pins stay valid.
  struct Entry {
    PageId id;
    std::shared_ptr<const Page> page;
  };

  /// Shared state of one in-flight page fetch. The leader fills `page` and
  /// `status`, then flips `done` under `mu` and notifies; waiters block on
  /// `cv`. Held by shared_ptr so a waiter can keep it alive after the leader
  /// has erased the pending-table entry.
  struct PendingFetch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<Page> page;
  };

  /// One independent LRU slice. Most-recently-used at the front of `lru`.
  /// The stripe mutex is instrumented ("pool.shard"): its contended count is
  /// the direct measure of hot-page stripe collisions under concurrency.
  struct Shard {
    InstrumentedMutex mu{"pool.shard"};
    size_t capacity = 0;
    std::list<Entry> lru;
    std::unordered_map<PageId, std::list<Entry>::iterator> index;
    /// Misses currently being fetched from the file (single-flight table).
    std::unordered_map<PageId, std::shared_ptr<PendingFetch>> pending;

    void InsertLocked(PageId id, std::shared_ptr<const Page> page);
  };

  Shard& ShardFor(PageId id) {
    // Consecutive page ids round-robin across shards, so the sequential
    // leaf/RAF locality of one query spreads over all stripe mutexes.
    return *shards_[id % shards_.size()];
  }

  void Resize(size_t capacity);

  /// Common miss-capable read path: cache hit, join of an in-flight fetch,
  /// or leader fetch, copying bytes [offset, offset+n) of the page to `dst`.
  Status FetchShared(PageId id, size_t offset, size_t n, uint8_t* dst);

  PageFile* file_;
  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  IoStats stats_;
};

}  // namespace spb

#endif  // SPB_STORAGE_BUFFER_POOL_H_
