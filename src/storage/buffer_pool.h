#ifndef SPB_STORAGE_BUFFER_POOL_H_
#define SPB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/stats.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace spb {

/// An LRU page cache in front of one PageFile. All page traffic of an access
/// method flows through a BufferPool so that the paper's PA metric (page
/// accesses not absorbed by the cache) is counted uniformly for the SPB-tree
/// and every competitor.
///
/// Writes are write-through: the page is stored in the cache (so subsequent
/// reads hit) and written to the file immediately. A write counts as one page
/// access; a cached read counts as a hit, an uncached read as one page
/// access. `capacity == 0` disables caching entirely (the paper's "cache size
/// 0" configuration).
class BufferPool {
 public:
  /// `file` must outlive the pool. `capacity` is in pages.
  BufferPool(PageFile* file, size_t capacity)
      : file_(file), capacity_(capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads page `id` (through the cache) into `*out`.
  Status Read(PageId id, Page* out);

  /// Writes page `id` through the cache to the file.
  Status Write(PageId id, const Page& page);

  /// Allocates a fresh page in the underlying file.
  Status Allocate(PageId* id) { return file_->Allocate(id); }

  /// Drops all cached pages (the paper flushes the cache before each query).
  void Flush();

  /// Changes the cache capacity; drops contents.
  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    Flush();
  }
  size_t capacity() const { return capacity_; }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  PageFile* file() { return file_; }

 private:
  struct Entry {
    PageId id;
    Page page;
  };

  void Touch(std::list<Entry>::iterator it);
  void InsertIntoCache(PageId id, const Page& page);

  PageFile* file_;
  size_t capacity_;
  // Most-recently-used at the front.
  std::list<Entry> lru_;
  std::unordered_map<PageId, std::list<Entry>::iterator> index_;
  IoStats stats_;
};

}  // namespace spb

#endif  // SPB_STORAGE_BUFFER_POOL_H_
