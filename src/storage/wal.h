#ifndef SPB_STORAGE_WAL_H_
#define SPB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/status.h"

namespace spb {

/// Write-ahead log for the SPB-tree's group-commit write path.
///
/// The log is a single append-only file of *logical* records (insert id +
/// payload / delete id + payload), not physical page images: replay re-runs
/// each record through the normal mapped COW write path, so a recovered tree
/// is produced by exactly the code that produced the original. One WAL file
/// exists per tree (per shard under ShardedSpbTree); the group-commit leader
/// serializes a whole group of records into one buffer, appends it with one
/// write, and issues one fsync for the group.
///
/// File layout:
///   header (32 bytes): magic u64 | checkpoint_lsn u64 | reserved u64 x2
///   records, back to back:
///     crc u32 | payload_len u32 | lsn u64 | type u8 | id u32 | payload bytes
/// The crc (CRC-32, polynomial 0xEDB88320) covers everything after the crc
/// field, including the payload. Replay stops at the first record whose
/// header is short, whose payload is short, or whose crc mismatches — a torn
/// group-commit write therefore replays as a prefix of the group, which is
/// safe because records are independent (no multi-record transactions).
///
/// A checkpoint (SpbTree::Save) makes the tree files durable first, then
/// calls Checkpoint() here, which truncates the log back to the header and
/// advances checkpoint_lsn: everything below it is now captured by the tree
/// files. A crash between the tree sync and the truncate replays records
/// that were already applied; replay is idempotent because insert has upsert
/// semantics on (key, id) and delete of a missing record is a no-op.
///
/// Thread safety: AppendGroup/Checkpoint/ReadAll are called by one thread at
/// a time (the group-commit leader or the checkpointing writer, both under
/// the tree's writer protocol). Stats accessors are safe from any thread.
class Wal {
 public:
  enum class RecordType : uint8_t {
    kInsert = 1,
    kDelete = 2,
  };

  /// One logical record. For kInsert, `payload` is the object blob; for
  /// kDelete it is the payload the delete must match (the SPB-tree resolves
  /// deletes by (key, id, payload) equality).
  struct Record {
    RecordType type;
    ObjectId id;
    Blob payload;
    uint64_t lsn = 0;  // assigned by AppendGroup; filled in by ReadAll
  };

  /// Counters mirrored into the CLI `stats` output and the bench JSON.
  struct Stats {
    uint64_t segment_bytes = 0;    // log file size, header included
    uint64_t checkpoint_lsn = 0;   // first LSN NOT captured by a checkpoint
    uint64_t next_lsn = 0;         // LSN the next appended record receives
    uint64_t pending_records = 0;  // records appended since last checkpoint
    uint64_t groups = 0;           // AppendGroup calls this process
    uint64_t fsyncs = 0;           // fsync calls this process
    uint64_t replayed_records = 0; // records replayed by the last ReadAll
  };

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens `path`, creating an empty log (header only) if absent. An
  /// existing log is scanned to restore next_lsn/pending_records; a torn
  /// tail is tolerated (it is truncated away by the next AppendGroup).
  static Status Open(const std::string& path, std::unique_ptr<Wal>* out);

  /// Appends `n` records as one contiguous write, assigning consecutive
  /// LSNs starting at next_lsn, then fsyncs once when `fsync` is set. On
  /// return every record's lsn field is filled in. Kill points:
  /// wal_before_append, wal_mid_append (first half of the group buffer
  /// written), wal_before_fsync, wal_after_fsync.
  Status AppendGroup(Record* records, size_t n, bool fsync);

  /// Reads every well-formed record from the start of the log, stopping at
  /// the first torn/corrupt one. Sets stats().replayed_records.
  Status ReadAll(std::vector<Record>* out);

  /// Truncates the log to the bare header and advances checkpoint_lsn to
  /// next_lsn: the caller has made everything below durable elsewhere.
  /// Fsyncs the truncated header.
  Status Checkpoint();

  Stats stats() const;
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  Status WriteHeader();
  Status ScanExisting();

  std::string path_;
  int fd_ = -1;
  uint64_t file_bytes_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t pending_records_ = 0;
  uint64_t groups_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t replayed_ = 0;
  mutable std::mutex stats_mu_;
};

}  // namespace spb

#endif  // SPB_STORAGE_WAL_H_
