#include "storage/page_file.h"

#include <cstdio>
#include <cstring>

namespace spb {

namespace {

class MemoryPageFile final : public PageFile {
 public:
  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  Status Allocate(PageId* id) override {
    *id = static_cast<PageId>(pages_.size());
    pages_.emplace_back(new Page());
    return Status::OK();
  }

  Status Read(PageId id, Page* out) override {
    if (id >= pages_.size()) {
      return Status::InvalidArgument("page id out of range");
    }
    *out = *pages_[id];
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= pages_.size()) {
      return Status::InvalidArgument("page id out of range");
    }
    *pages_[id] = page;
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(std::FILE* file, PageId num_pages)
      : file_(file), num_pages_(num_pages) {}

  ~DiskPageFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  PageId num_pages() const override { return num_pages_; }

  Status Allocate(PageId* id) override {
    Page zero;
    if (std::fseek(file_, static_cast<long>(num_pages_) *
                              static_cast<long>(kPageSize),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failed in Allocate");
    }
    if (std::fwrite(zero.bytes(), 1, kPageSize, file_) != kPageSize) {
      return Status::IOError("short write in Allocate");
    }
    *id = num_pages_++;
    return Status::OK();
  }

  Status Read(PageId id, Page* out) override {
    if (id >= num_pages_) {
      return Status::InvalidArgument("page id out of range");
    }
    if (std::fseek(file_,
                   static_cast<long>(id) * static_cast<long>(kPageSize),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failed in Read");
    }
    if (std::fread(out->bytes(), 1, kPageSize, file_) != kPageSize) {
      return Status::IOError("short read");
    }
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= num_pages_) {
      return Status::InvalidArgument("page id out of range");
    }
    if (std::fseek(file_,
                   static_cast<long>(id) * static_cast<long>(kPageSize),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failed in Write");
    }
    if (std::fwrite(page.bytes(), 1, kPageSize, file_) != kPageSize) {
      return Status::IOError("short write");
    }
    return Status::OK();
  }

  Status Sync() override {
    if (std::fflush(file_) != 0) return Status::IOError("flush failed");
    return Status::OK();
  }

 private:
  std::FILE* file_;
  PageId num_pages_;
};

}  // namespace

std::unique_ptr<PageFile> PageFile::CreateInMemory() {
  return std::make_unique<MemoryPageFile>();
}

Status PageFile::CreateOnDisk(const std::string& path,
                              std::unique_ptr<PageFile>* out) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create page file: " + path);
  }
  *out = std::make_unique<DiskPageFile>(f, 0);
  return Status::OK();
}

Status PageFile::OpenOnDisk(const std::string& path,
                            std::unique_ptr<PageFile>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open page file: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed while sizing: " + path);
  }
  long size = std::ftell(f);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(f);
    return Status::Corruption("page file size is not page-aligned: " + path);
  }
  *out = std::make_unique<DiskPageFile>(
      f, static_cast<PageId>(static_cast<size_t>(size) / kPageSize));
  return Status::OK();
}

}  // namespace spb
