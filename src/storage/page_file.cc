#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace spb {

namespace {

class MemoryPageFile final : public PageFile {
 public:
  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  Status Allocate(PageId* id) override {
    *id = static_cast<PageId>(pages_.size());
    pages_.emplace_back(new Page());
    return Status::OK();
  }

  // Safe for concurrent readers: pages are heap-allocated and stable, and
  // the readers-only contract (see docs/ARCHITECTURE.md §"Threading model")
  // forbids a concurrent Allocate/Write.
  Status Read(PageId id, Page* out) override {
    if (id >= pages_.size()) {
      return Status::InvalidArgument("page id out of range");
    }
    *out = *pages_[id];
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= pages_.size()) {
      return Status::InvalidArgument("page id out of range");
    }
    *pages_[id] = page;
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

/// File-backed pages over a raw file descriptor. Reads and writes use
/// positional I/O (pread/pwrite), so concurrent readers never race on a
/// shared file offset — unlike FILE*-based stdio, whose fseek+fread pairs
/// are unusable from multiple threads.
class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(int fd, PageId num_pages) : fd_(fd), num_pages_(num_pages) {}

  ~DiskPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PageId num_pages() const override {
    return num_pages_.load(std::memory_order_relaxed);
  }

  Status Allocate(PageId* id) override {
    Page zero;
    const PageId next = num_pages_.load(std::memory_order_relaxed);
    if (!WriteFull(next, zero)) {
      return Status::IOError("short write in Allocate");
    }
    *id = next;
    num_pages_.store(next + 1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Read(PageId id, Page* out) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    size_t done = 0;
    while (done < kPageSize) {
      const ssize_t n =
          ::pread(fd_, out->bytes() + done, kPageSize - done,
                  static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                      static_cast<off_t>(done));
      if (n <= 0) return Status::IOError("short read");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    if (!WriteFull(id, page)) return Status::IOError("short write");
    return Status::OK();
  }

  Status Sync() override {
#if defined(__APPLE__)
    // macOS has no fdatasync; F_FULLFSYNC is the real durability barrier.
    if (::fcntl(fd_, F_FULLFSYNC) != 0 && ::fsync(fd_) != 0) {
      return Status::IOError("fsync failed");
    }
#elif defined(_POSIX_SYNCHRONIZED_IO) && _POSIX_SYNCHRONIZED_IO > 0
    if (::fdatasync(fd_) != 0) return Status::IOError("fdatasync failed");
#else
    if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
#endif
    return Status::OK();
  }

 private:
  bool WriteFull(PageId id, const Page& page) {
    size_t done = 0;
    while (done < kPageSize) {
      const ssize_t n =
          ::pwrite(fd_, page.bytes() + done, kPageSize - done,
                   static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                       static_cast<off_t>(done));
      if (n <= 0) return false;
      done += static_cast<size_t>(n);
    }
    return true;
  }

  int fd_;
  std::atomic<PageId> num_pages_;
};

}  // namespace

std::unique_ptr<PageFile> PageFile::CreateInMemory() {
  return std::make_unique<MemoryPageFile>();
}

Status PageFile::CreateOnDisk(const std::string& path,
                              std::unique_ptr<PageFile>* out) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create page file: " + path);
  }
  *out = std::make_unique<DiskPageFile>(fd, 0);
  return Status::OK();
}

Status PageFile::OpenOnDisk(const std::string& path,
                            std::unique_ptr<PageFile>* out) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("cannot open page file: " + path);
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("page file size is not page-aligned: " + path);
  }
  *out = std::make_unique<DiskPageFile>(
      fd, static_cast<PageId>(static_cast<size_t>(size) / kPageSize));
  return Status::OK();
}

}  // namespace spb
