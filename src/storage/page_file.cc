#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>

#ifdef SPB_HAVE_IOURING
#include <liburing.h>
#endif

namespace spb {

namespace {

// Safe for concurrent readers with one mutating thread (the epoch-based
// snapshot protocol's writer, docs/ARCHITECTURE.md §"Threading model"):
// `count_` is an atomic watermark released after the page exists, and the
// byte copies of Read/Write/Allocate run under `mu_` so a reader copying a
// page can never race the writer flushing the same page (the bytes a
// snapshot actually consumes are immutable, but the flush rewrites the
// whole page). The lock covers only a 4 KB memcpy; the warm path never
// gets here (buffer-pool and node-cache hits resolve above the file).
class MemoryPageFile final : public PageFile {
 public:
  PageId num_pages() const override {
    return count_.load(std::memory_order_acquire);
  }

  Status Allocate(PageId* id) override {
    std::lock_guard<std::mutex> lock(mu_);
    *id = static_cast<PageId>(pages_.size());
    pages_.emplace_back(new Page());
    count_.store(static_cast<PageId>(pages_.size()),
                 std::memory_order_release);
    return Status::OK();
  }

  Status Read(PageId id, Page* out) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    std::lock_guard<std::mutex> lock(mu_);
    *out = *pages_[id];
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    std::lock_guard<std::mutex> lock(mu_);
    *pages_[id] = page;
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::atomic<PageId> count_{0};
};

/// File-backed pages over a raw file descriptor. Reads and writes use
/// positional I/O (pread/pwrite), so concurrent readers never race on a
/// shared file offset — unlike FILE*-based stdio, whose fseek+fread pairs
/// are unusable from multiple threads.
class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(int fd, PageId num_pages) : fd_(fd), num_pages_(num_pages) {}

  ~DiskPageFile() override {
#ifdef SPB_HAVE_IOURING
    if (ring_state_ == RingState::kReady) io_uring_queue_exit(&ring_);
#endif
    if (fd_ >= 0) ::close(fd_);
  }

  PageId num_pages() const override {
    return num_pages_.load(std::memory_order_relaxed);
  }

  Status Allocate(PageId* id) override {
    Page zero;
    const PageId next = num_pages_.load(std::memory_order_relaxed);
    if (!WriteFull(next, zero)) {
      return Status::IOError("short write in Allocate");
    }
    *id = next;
    num_pages_.store(next + 1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Read(PageId id, Page* out) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    size_t done = 0;
    while (done < kPageSize) {
      const ssize_t n =
          ::pread(fd_, out->bytes() + done, kPageSize - done,
                  static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                      static_cast<off_t>(done));
      if (n <= 0) return Status::IOError("short read");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Write(PageId id, const Page& page) override {
    if (id >= num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
    if (!WriteFull(id, page)) return Status::IOError("short write");
    return Status::OK();
  }

  // One positional read for the whole span. Page is a bare 4 KB byte array,
  // so a Page[] is a contiguous byte range the kernel can fill directly.
  Status ReadSpan(PageId first, size_t count, Page* out) override {
    if (count == 0) return Status::OK();
    if (first >= num_pages() || count > num_pages() - first) {
      return Status::InvalidArgument("page span out of range");
    }
#ifdef SPB_HAVE_IOURING
    if (EnsureRing()) return ReadSpanUring(first, count, out);
#endif
    uint8_t* dst = reinterpret_cast<uint8_t*>(out);
    const size_t total = count * kPageSize;
    size_t done = 0;
    while (done < total) {
      const ssize_t n =
          ::pread(fd_, dst + done, total - done,
                  static_cast<off_t>(first) * static_cast<off_t>(kPageSize) +
                      static_cast<off_t>(done));
      if (n <= 0) return Status::IOError("short read in ReadSpan");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
#if defined(__APPLE__)
    // macOS has no fdatasync; F_FULLFSYNC is the real durability barrier.
    if (::fcntl(fd_, F_FULLFSYNC) != 0 && ::fsync(fd_) != 0) {
      return Status::IOError("fsync failed");
    }
#elif defined(_POSIX_SYNCHRONIZED_IO) && _POSIX_SYNCHRONIZED_IO > 0
    if (::fdatasync(fd_) != 0) return Status::IOError("fdatasync failed");
#else
    if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
#endif
    return Status::OK();
  }

 private:
  bool WriteFull(PageId id, const Page& page) {
    size_t done = 0;
    while (done < kPageSize) {
      const ssize_t n =
          ::pwrite(fd_, page.bytes() + done, kPageSize - done,
                   static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                       static_cast<off_t>(done));
      if (n <= 0) return false;
      done += static_cast<size_t>(n);
    }
    return true;
  }

#ifdef SPB_HAVE_IOURING
  // Lazily set up a small ring; on any setup failure (old kernel, seccomp,
  // RLIMIT_MEMLOCK) fall back to pread permanently for this file.
  bool EnsureRing() {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (ring_state_ == RingState::kUnavailable) return false;
    if (ring_state_ == RingState::kReady) return true;
    if (io_uring_queue_init(8, &ring_, 0) != 0) {
      ring_state_ = RingState::kUnavailable;
      return false;
    }
    ring_state_ = RingState::kReady;
    return true;
  }

  Status ReadSpanUring(PageId first, size_t count, Page* out) {
    std::lock_guard<std::mutex> lock(ring_mu_);
    uint8_t* dst = reinterpret_cast<uint8_t*>(out);
    size_t total = count * kPageSize;
    off_t off =
        static_cast<off_t>(first) * static_cast<off_t>(kPageSize);
    // A single queued read may complete short; loop like pread would.
    while (total > 0) {
      struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
      if (sqe == nullptr) return Status::IOError("io_uring sqe exhausted");
      io_uring_prep_read(sqe, fd_, dst, static_cast<unsigned>(total), off);
      if (io_uring_submit_and_wait(&ring_, 1) < 0) {
        return Status::IOError("io_uring submit failed");
      }
      struct io_uring_cqe* cqe = nullptr;
      if (io_uring_wait_cqe(&ring_, &cqe) != 0) {
        return Status::IOError("io_uring wait failed");
      }
      const int res = cqe->res;
      io_uring_cqe_seen(&ring_, cqe);
      if (res <= 0) return Status::IOError("short read in ReadSpan");
      dst += res;
      off += res;
      total -= static_cast<size_t>(res);
    }
    return Status::OK();
  }

  enum class RingState { kUninit, kReady, kUnavailable };
  std::mutex ring_mu_;
  RingState ring_state_ = RingState::kUninit;
  struct io_uring ring_ {};
#endif

  int fd_;
  std::atomic<PageId> num_pages_;
};

}  // namespace

Status PageFile::ReadSpan(PageId first, size_t count, Page* out) {
  for (size_t i = 0; i < count; ++i) {
    Status s = Read(first + static_cast<PageId>(i), &out[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::unique_ptr<PageFile> PageFile::CreateInMemory() {
  return std::make_unique<MemoryPageFile>();
}

Status PageFile::CreateOnDisk(const std::string& path,
                              std::unique_ptr<PageFile>* out) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create page file: " + path);
  }
  *out = std::make_unique<DiskPageFile>(fd, 0);
  return Status::OK();
}

Status PageFile::OpenOnDisk(const std::string& path,
                            std::unique_ptr<PageFile>* out) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("cannot open page file: " + path);
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("page file size is not page-aligned: " + path);
  }
  *out = std::make_unique<DiskPageFile>(
      fd, static_cast<PageId>(static_cast<size_t>(size) / kPageSize));
  return Status::OK();
}

}  // namespace spb
