#ifndef SPB_STORAGE_PAGE_FILE_H_
#define SPB_STORAGE_PAGE_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace spb {

/// A growable array of 4 KB pages. Two implementations: file-backed (the
/// normal disk-based mode the paper evaluates) and memory-backed (used by
/// unit tests and quick experiments). Raw reads/writes are not counted here;
/// the BufferPool layered on top does the PA accounting so that cache hits
/// are excluded, exactly as the paper measures I/O.
class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Number of pages currently in the file.
  virtual PageId num_pages() const = 0;

  /// Appends a zeroed page and returns its id.
  virtual Status Allocate(PageId* id) = 0;

  /// Reads page `id` into `*out`.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Reads `count` consecutive pages starting at `first` into the array
  /// `out[0..count)`. The I/O engine's readahead path uses this to turn a
  /// run of SFC-adjacent RAF pages into one large read. The default
  /// implementation loops over Read(); file-backed implementations issue a
  /// single positional read covering the whole span.
  virtual Status ReadSpan(PageId first, size_t count, Page* out);

  /// Overwrites page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Flushes buffered data to stable storage (no-op for memory files).
  virtual Status Sync() = 0;

  /// Creates a memory-backed page file.
  static std::unique_ptr<PageFile> CreateInMemory();

  /// Creates or truncates a file-backed page file at `path`.
  static Status CreateOnDisk(const std::string& path,
                             std::unique_ptr<PageFile>* out);

  /// Opens an existing file-backed page file at `path`.
  static Status OpenOnDisk(const std::string& path,
                           std::unique_ptr<PageFile>* out);

 protected:
  PageFile() = default;
};

}  // namespace spb

#endif  // SPB_STORAGE_PAGE_FILE_H_
