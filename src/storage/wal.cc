#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/crash_point.h"
#include "common/crc32.h"

namespace spb {

namespace {

constexpr uint64_t kWalMagic = 0x53504257414c3031ull;  // "SPBWAL01"
constexpr size_t kHeaderSize = 32;
// crc u32 | payload_len u32 | lsn u64 | type u8 | id u32
constexpr size_t kRecordHeaderSize = 4 + 4 + 8 + 1 + 4;

// CRC-32 comes from common/crc32.h (shared with the network protocol's
// frame checksums since PR 10); the record layout is unchanged.

Status PWriteFull(int fd, uint64_t offset, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal pwrite failed");
    }
    data += w;
    offset += static_cast<uint64_t>(w);
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status PReadFull(int fd, uint64_t offset, uint8_t* data, size_t n,
                 size_t* got) {
  *got = 0;
  while (n > 0) {
    ssize_t r = ::pread(fd, data, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal pread failed");
    }
    if (r == 0) break;  // EOF
    data += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Open(const std::string& path, std::unique_ptr<Wal>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open wal file: " + path);
  }
  std::unique_ptr<Wal> wal(new Wal(path, fd));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("wal fstat failed: " + path);
  }
  if (st.st_size == 0) {
    wal->file_bytes_ = kHeaderSize;
    Status s = wal->WriteHeader();
    if (!s.ok()) return s;
    if (::fsync(fd) != 0) return Status::IOError("wal fsync failed");
  } else {
    wal->file_bytes_ = static_cast<uint64_t>(st.st_size);
    Status s = wal->ScanExisting();
    if (!s.ok()) return s;
  }
  *out = std::move(wal);
  return Status::OK();
}

Status Wal::WriteHeader() {
  uint8_t header[kHeaderSize] = {0};
  EncodeFixed64(header, kWalMagic);
  EncodeFixed64(header + 8, checkpoint_lsn_);
  return PWriteFull(fd_, 0, header, kHeaderSize);
}

Status Wal::ScanExisting() {
  uint8_t header[kHeaderSize];
  size_t got = 0;
  Status s = PReadFull(fd_, 0, header, kHeaderSize, &got);
  if (!s.ok()) return s;
  if (got < kHeaderSize || DecodeFixed64(header) != kWalMagic) {
    return Status::Corruption("bad wal header: " + path_);
  }
  checkpoint_lsn_ = DecodeFixed64(header + 8);
  next_lsn_ = checkpoint_lsn_;
  pending_records_ = 0;
  // Walk the records to find next_lsn and the count of pending (replayable)
  // records. A torn tail simply stops the walk.
  uint64_t offset = kHeaderSize;
  uint8_t rec_header[kRecordHeaderSize];
  Blob payload;
  while (offset + kRecordHeaderSize <= file_bytes_) {
    s = PReadFull(fd_, offset, rec_header, kRecordHeaderSize, &got);
    if (!s.ok()) return s;
    if (got < kRecordHeaderSize) break;
    uint32_t crc = DecodeFixed32(rec_header);
    uint32_t len = DecodeFixed32(rec_header + 4);
    if (offset + kRecordHeaderSize + len > file_bytes_) break;
    payload.resize(len);
    if (len > 0) {
      s = PReadFull(fd_, offset + kRecordHeaderSize, payload.data(), len,
                    &got);
      if (!s.ok()) return s;
      if (got < len) break;
    }
    // Re-assemble the crc'd region contiguously to verify.
    Blob body(kRecordHeaderSize - 4 + len);
    std::memcpy(body.data(), rec_header + 4, kRecordHeaderSize - 4);
    if (len > 0) {
      std::memcpy(body.data() + kRecordHeaderSize - 4, payload.data(), len);
    }
    if (Crc32(body.data(), body.size()) != crc) break;
    uint64_t lsn = DecodeFixed64(rec_header + 8);
    next_lsn_ = lsn + 1;
    ++pending_records_;
    offset += kRecordHeaderSize + len;
  }
  // Anything past the last whole record is a torn tail; logically the file
  // ends here (the next append overwrites it).
  file_bytes_ = offset;
  return Status::OK();
}

Status Wal::AppendGroup(Record* records, size_t n, bool fsync) {
  if (n == 0) return Status::OK();
  MaybeCrash("wal_before_append");
  // Serialize the whole group into one buffer: one write, one fsync.
  Blob buf;
  {
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += kRecordHeaderSize + records[i].payload.size();
    }
    buf.reserve(total);
  }
  uint64_t lsn;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lsn = next_lsn_;
  }
  for (size_t i = 0; i < n; ++i) {
    Record& r = records[i];
    r.lsn = lsn++;
    const size_t base = buf.size();
    buf.resize(base + kRecordHeaderSize + r.payload.size());
    uint8_t* p = buf.data() + base;
    EncodeFixed32(p + 4, static_cast<uint32_t>(r.payload.size()));
    EncodeFixed64(p + 8, r.lsn);
    p[16] = static_cast<uint8_t>(r.type);
    EncodeFixed32(p + 17, r.id);
    if (!r.payload.empty()) {
      std::memcpy(p + kRecordHeaderSize, r.payload.data(), r.payload.size());
    }
    EncodeFixed32(p, Crc32(p + 4, kRecordHeaderSize - 4 + r.payload.size()));
  }
  // The mid-append kill point lands between the two halves of the group
  // buffer: recovery must replay the prefix of complete records and stop at
  // the torn one.
  const size_t half = buf.size() / 2;
  Status s = PWriteFull(fd_, file_bytes_, buf.data(), half);
  if (!s.ok()) return s;
  MaybeCrash("wal_mid_append");
  s = PWriteFull(fd_, file_bytes_ + half, buf.data() + half,
                 buf.size() - half);
  if (!s.ok()) return s;
  MaybeCrash("wal_before_fsync");
  if (fsync) {
    if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  }
  MaybeCrash("wal_after_fsync");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    file_bytes_ += buf.size();
    next_lsn_ = lsn;
    pending_records_ += n;
    ++groups_;
    if (fsync) ++fsyncs_;
  }
  return Status::OK();
}

Status Wal::ReadAll(std::vector<Record>* out) {
  out->clear();
  uint64_t offset = kHeaderSize;
  uint8_t rec_header[kRecordHeaderSize];
  size_t got = 0;
  while (offset + kRecordHeaderSize <= file_bytes_) {
    Status s = PReadFull(fd_, offset, rec_header, kRecordHeaderSize, &got);
    if (!s.ok()) return s;
    if (got < kRecordHeaderSize) break;
    uint32_t crc = DecodeFixed32(rec_header);
    uint32_t len = DecodeFixed32(rec_header + 4);
    if (offset + kRecordHeaderSize + len > file_bytes_) break;
    Record rec;
    rec.payload.resize(len);
    if (len > 0) {
      s = PReadFull(fd_, offset + kRecordHeaderSize, rec.payload.data(), len,
                    &got);
      if (!s.ok()) return s;
      if (got < len) break;
    }
    Blob body(kRecordHeaderSize - 4 + len);
    std::memcpy(body.data(), rec_header + 4, kRecordHeaderSize - 4);
    if (len > 0) {
      std::memcpy(body.data() + kRecordHeaderSize - 4, rec.payload.data(),
                  len);
    }
    if (Crc32(body.data(), body.size()) != crc) break;
    rec.lsn = DecodeFixed64(rec_header + 8);
    uint8_t type = rec_header[16];
    if (type != static_cast<uint8_t>(RecordType::kInsert) &&
        type != static_cast<uint8_t>(RecordType::kDelete)) {
      break;
    }
    rec.type = static_cast<RecordType>(type);
    rec.id = DecodeFixed32(rec_header + 17);
    out->push_back(std::move(rec));
    offset += kRecordHeaderSize + len;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  replayed_ = out->size();
  return Status::OK();
}

Status Wal::Checkpoint() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    checkpoint_lsn_ = next_lsn_;
  }
  Status s = WriteHeader();
  if (!s.ok()) return s;
  if (::ftruncate(fd_, kHeaderSize) != 0) {
    return Status::IOError("wal ftruncate failed");
  }
  if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  std::lock_guard<std::mutex> lock(stats_mu_);
  file_bytes_ = kHeaderSize;
  pending_records_ = 0;
  ++fsyncs_;
  return Status::OK();
}

Wal::Stats Wal::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats s;
  s.segment_bytes = file_bytes_;
  s.checkpoint_lsn = checkpoint_lsn_;
  s.next_lsn = next_lsn_;
  s.pending_records = pending_records_;
  s.groups = groups_;
  s.fsyncs = fsyncs_;
  s.replayed_records = replayed_;
  return s;
}

}  // namespace spb
