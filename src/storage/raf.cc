#include "storage/raf.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "storage/io_engine.h"

namespace spb {

namespace {
constexpr uint64_t kRafMagic = 0x5350425241463031ULL;  // "SPBRAF01"
}  // namespace

Status Raf::Create(std::unique_ptr<PageFile> file, size_t cache_pages,
                   std::unique_ptr<Raf>* out, uint64_t generation) {
  auto raf = std::unique_ptr<Raf>(new Raf(std::move(file), cache_pages));
  raf->generation_ = generation;
  PageId header_id;
  SPB_RETURN_IF_ERROR(raf->file_->Allocate(&header_id));
  if (header_id != 0) {
    return Status::InvalidArgument("RAF requires a fresh page file");
  }
  SPB_RETURN_IF_ERROR(raf->WriteHeader());
  *out = std::move(raf);
  return Status::OK();
}

Status Raf::Open(std::unique_ptr<PageFile> file, size_t cache_pages,
                 std::unique_ptr<Raf>* out) {
  auto raf = std::unique_ptr<Raf>(new Raf(std::move(file), cache_pages));
  if (raf->file_->num_pages() == 0) {
    return Status::Corruption("RAF file has no header page");
  }
  Page header;
  SPB_RETURN_IF_ERROR(raf->file_->Read(0, &header));
  if (DecodeFixed64(header.bytes()) != kRafMagic) {
    return Status::Corruption("bad RAF magic");
  }
  raf->end_offset_ = DecodeFixed64(header.bytes() + 8);
  raf->num_records_ = DecodeFixed64(header.bytes() + 16);
  raf->generation_ = DecodeFixed64(header.bytes() + 24);
  *out = std::move(raf);
  return Status::OK();
}

Status Raf::WriteHeader() {
  Page header;
  EncodeFixed64(header.bytes(), kRafMagic);
  EncodeFixed64(header.bytes() + 8, end_offset());
  EncodeFixed64(header.bytes() + 16, num_records());
  EncodeFixed64(header.bytes() + 24, generation_);
  return file_->Write(0, header);
}

Status Raf::EnsurePage(PageId id) {
  while (file_->num_pages() <= id) {
    PageId unused;
    SPB_RETURN_IF_ERROR(file_->Allocate(&unused));
  }
  return Status::OK();
}

Status Raf::WriteBytes(uint64_t offset, const uint8_t* src, size_t n) {
  // One lock hold for the whole byte run: readers probing the tail block
  // only while this append actually mutates it.
  std::lock_guard<std::mutex> lock(tail_mu_);
  while (n > 0) {
    const PageId page = static_cast<PageId>(offset / kPageSize);
    const size_t in_page = offset % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);

    if (page != tail_id_) {
      // Moving to a new tail page: flush the previous one if dirty. The
      // probe keeps pointing at the old page until the flush lands, so a
      // racing reader either blocks on tail_mu_ (then re-checks and falls
      // back to the pool, where the bytes now are) or was already past the
      // probe and copies from the still-locked buffer.
      if (tail_dirty_ && tail_id_ != kInvalidPageId) {
        SPB_RETURN_IF_ERROR(EnsurePage(tail_id_));
        SPB_RETURN_IF_ERROR(pool_.Write(tail_id_, tail_));
      }
      tail_id_ = page;
      tail_dirty_ = false;
      dirty_tail_id_.store(kInvalidPageId, std::memory_order_release);
      if (page < file_->num_pages()) {
        SPB_RETURN_IF_ERROR(file_->Read(page, &tail_));
      } else {
        tail_.Clear();
      }
    }
    std::memcpy(tail_.bytes() + in_page, src, chunk);
    tail_dirty_ = true;
    dirty_tail_id_.store(page, std::memory_order_release);
    offset += chunk;
    src += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status Raf::ReadBytes(uint64_t offset, uint8_t* dst, size_t n,
                      Readahead* ra) {
  while (n > 0) {
    const PageId page = static_cast<PageId>(offset / kPageSize);
    const size_t in_page = offset % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);

    bool served_from_tail = false;
    if (page == dirty_tail_id_.load(std::memory_order_acquire)) {
      // Probable dirty-tail read: confirm under the lock (the probe may be
      // stale — the appender could have flushed and moved on, in which case
      // the bytes are in the pool and the normal path below serves them).
      std::lock_guard<std::mutex> lock(tail_mu_);
      if (page == tail_id_ && tail_dirty_) {
        // The pinned tail buffer absorbs this read: a cache hit, not a PA
        // (docs/ARCHITECTURE.md §"Cost accounting"). Checked before any
        // readahead claim so stale staged bytes of a dirty tail page can
        // never be served.
        pool_.stats().cache_hits.fetch_add(1, std::memory_order_relaxed);
        std::memcpy(dst, tail_.bytes() + in_page, chunk);
        served_from_tail = true;
      }
    }
    if (!served_from_tail) {
      if (ra != nullptr) {
        SPB_RETURN_IF_ERROR(ra->ReadInto(page, in_page, chunk, dst));
      } else {
        SPB_RETURN_IF_ERROR(pool_.ReadInto(page, in_page, chunk, dst));
      }
    }
    offset += chunk;
    dst += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status Raf::ReadBytesRaw(uint64_t offset, uint8_t* dst, size_t n,
                         RawReadCache* cache) const {
  while (n > 0) {
    const PageId page = static_cast<PageId>(offset / kPageSize);
    const size_t in_page = offset % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);

    bool served = false;
    if (page == dirty_tail_id_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(tail_mu_);
      if (page == tail_id_ && tail_dirty_) {
        std::memcpy(dst, tail_.bytes() + in_page, chunk);
        served = true;
      }
    }
    if (!served) {
      if (cache != nullptr) {
        if (cache->id != page) {
          SPB_RETURN_IF_ERROR(file_->Read(page, &cache->page));
          cache->id = page;
        }
        std::memcpy(dst, cache->page.bytes() + in_page, chunk);
      } else {
        Page scratch;
        SPB_RETURN_IF_ERROR(file_->Read(page, &scratch));
        std::memcpy(dst, scratch.bytes() + in_page, chunk);
      }
    }
    offset += chunk;
    dst += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status Raf::GetRaw(uint64_t offset, ObjectId* id, Blob* obj,
                   RawReadCache* cache) const {
  const uint64_t end = end_offset();
  if (offset < kPageSize || offset + 8 > end) {
    return Status::InvalidArgument("RAF offset out of range");
  }
  uint8_t header[8];
  SPB_RETURN_IF_ERROR(ReadBytesRaw(offset, header, sizeof(header), cache));
  *id = DecodeFixed32(header);
  const uint32_t len = DecodeFixed32(header + 4);
  if (offset + 8 + len > end) {
    return Status::Corruption("RAF record extends past end of data");
  }
  obj->resize(len);
  if (len > 0) {
    SPB_RETURN_IF_ERROR(ReadBytesRaw(offset + 8, obj->data(), len, cache));
  }
  return Status::OK();
}

Status Raf::Append(ObjectId id, const Blob& obj, uint64_t* offset) {
  // Single appender (enforced by the owner's writer lock); the relaxed load
  // reads our own last store.
  const uint64_t start = end_offset_.load(std::memory_order_relaxed);
  *offset = start;
  uint8_t header[8];
  EncodeFixed32(header, id);
  EncodeFixed32(header + 4, static_cast<uint32_t>(obj.size()));
  SPB_RETURN_IF_ERROR(WriteBytes(start, header, sizeof(header)));
  if (!obj.empty()) {
    SPB_RETURN_IF_ERROR(
        WriteBytes(start + sizeof(header), obj.data(), obj.size()));
  }
  // Release: a reader that sees the new watermark also sees the bytes.
  end_offset_.store(start + sizeof(header) + obj.size(),
                    std::memory_order_release);
  num_records_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Raf::Get(uint64_t offset, ObjectId* id, Blob* obj, Readahead* ra) {
  const uint64_t end = end_offset();
  if (offset < kPageSize || offset + 8 > end) {
    return Status::InvalidArgument("RAF offset out of range");
  }
  uint8_t header[8];
  SPB_RETURN_IF_ERROR(ReadBytes(offset, header, sizeof(header), ra));
  *id = DecodeFixed32(header);
  const uint32_t len = DecodeFixed32(header + 4);
  if (offset + 8 + len > end) {
    return Status::Corruption("RAF record extends past end of data");
  }
  obj->resize(len);
  if (len > 0) {
    SPB_RETURN_IF_ERROR(ReadBytes(offset + 8, obj->data(), len, ra));
  }
  return Status::OK();
}

Status Raf::GetIntoOwned(uint64_t offset, ObjectId* id, BlobView* view,
                         Readahead* ra) {
  SPB_RETURN_IF_ERROR(Get(offset, id, &view->owned_, ra));
  view->SetOwned(view->owned_.size());
  return Status::OK();
}

Status Raf::GetView(uint64_t offset, ObjectId* id, BlobView* view,
                    Readahead* ra) {
  const uint64_t end = end_offset();
  if (offset < kPageSize || offset + 8 > end) {
    return Status::InvalidArgument("RAF offset out of range");
  }
  const PageId page = PageOf(offset);
  const size_t in_page = offset % kPageSize;
  // Header straddling a page boundary or (probably) living on the dirty
  // tail page: take Get's byte loop wholesale (identical accounting by
  // construction; ReadBytes re-confirms the tail probe under the lock).
  if (in_page + 8 > kPageSize ||
      page == dirty_tail_id_.load(std::memory_order_acquire)) {
    return GetIntoOwned(offset, id, view, ra);
  }
  // Pin the header's page: one pool access, exactly Get's header read.
  BufferPool::PagePin pin;
  if (ra != nullptr) {
    SPB_RETURN_IF_ERROR(ra->ReadPinned(page, &pin));
  } else {
    SPB_RETURN_IF_ERROR(pool_.ReadPinned(page, &pin));
  }
  const uint8_t* rec = pin->bytes() + in_page;
  *id = DecodeFixed32(rec);
  const uint32_t len = DecodeFixed32(rec + 4);
  if (offset + 8 + len > end) {
    return Status::Corruption("RAF record extends past end of data");
  }
  if (len == 0) {
    // Get does no payload read for empty records — neither do we.
    view->SetPinned(std::move(pin), rec + 8, 0);
    return Status::OK();
  }
  if (in_page + 8 + len <= kPageSize) {
    // Non-spanning record: Get's payload ReadBytes performs one more pool
    // access to this page; Touch performs the same access minus the copy.
    if (ra != nullptr) {
      SPB_RETURN_IF_ERROR(ra->Touch(page));
    } else {
      SPB_RETURN_IF_ERROR(pool_.Touch(page));
    }
    view->SetPinned(std::move(pin), rec + 8, len);
    return Status::OK();
  }
  // Page-spanning payload: copy fallback. The header access already
  // happened via the pin; read the payload exactly as Get would.
  view->owned_.resize(len);
  SPB_RETURN_IF_ERROR(ReadBytes(offset + 8, view->owned_.data(), len, ra));
  view->SetOwned(len);
  return Status::OK();
}

Status Raf::ScanAll(
    const std::function<void(uint64_t, ObjectId, const Blob&)>& fn,
    Readahead* ra) {
  uint64_t offset = kPageSize;
  Blob obj;
  // Window of data pages scheduled ahead of the scan cursor; the session
  // coalesces each window into span reads. The watermark is captured once:
  // records appended mid-scan are not visited.
  const uint64_t end = end_offset();
  constexpr PageId kScanWindow = 32;
  PageId scheduled_until = 1;
  std::vector<PageId> window;
  while (offset < end) {
    if (ra != nullptr) {
      const PageId page = PageOf(offset);
      if (page + 1 >= scheduled_until) {
        const PageId last = PageOf(end - 1);
        const PageId until =
            static_cast<PageId>(std::min<uint64_t>(
                static_cast<uint64_t>(last) + 1,
                static_cast<uint64_t>(page) + kScanWindow));
        window.clear();
        for (PageId p = std::max(scheduled_until, page); p < until; ++p) {
          window.push_back(p);
        }
        ra->Schedule(window);
        scheduled_until = until;
      }
    }
    ObjectId id;
    SPB_RETURN_IF_ERROR(Get(offset, &id, &obj, ra));
    fn(offset, id, obj);
    offset += 8 + obj.size();
  }
  return Status::OK();
}

Status Raf::Sync() {
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    if (tail_dirty_ && tail_id_ != kInvalidPageId) {
      SPB_RETURN_IF_ERROR(EnsurePage(tail_id_));
      SPB_RETURN_IF_ERROR(pool_.Write(tail_id_, tail_));
      tail_dirty_ = false;
      dirty_tail_id_.store(kInvalidPageId, std::memory_order_release);
    }
  }
  SPB_RETURN_IF_ERROR(WriteHeader());
  return file_->Sync();
}

}  // namespace spb
