#ifndef SPB_STORAGE_RAF_H_
#define SPB_STORAGE_RAF_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/blob.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace spb {

class Readahead;

/// The result of a zero-copy RAF read (Raf::GetView): a pointer/length pair
/// for the record's payload plus whatever keeps those bytes alive — a
/// BufferPool::PagePin into the cache frame when the record does not span
/// pages, or a reusable owned Blob that the copy fallback (page-spanning
/// records, dirty-tail reads) filled. Callers treat both cases uniformly
/// through data()/size()/ref(); reusing one BlobView across many GetView
/// calls makes the fallback allocation-free at steady state.
///
/// Lifetime: the view (and any BlobRef taken from it) is valid until the
/// next GetView into the same view or the view's destruction. The pin keeps
/// the frame's bytes valid even if the pool evicts or overwrites the entry
/// (see BufferPool::PagePin).
class BlobView {
 public:
  BlobView() = default;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  BlobRef ref() const { return BlobRef(data_, size_); }
  operator BlobRef() const { return ref(); }
  Blob ToBlob() const { return Blob(data_, data_ + size_); }
  /// True when the view points into a pinned cache frame (diagnostics).
  bool pinned() const { return pin_ != nullptr; }

 private:
  friend class Raf;

  void SetPinned(BufferPool::PagePin pin, const uint8_t* data, size_t size) {
    pin_ = std::move(pin);
    data_ = data;
    size_ = size;
  }
  void SetOwned(size_t size) {
    pin_.reset();
    data_ = owned_.data();
    size_ = size;
  }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  BufferPool::PagePin pin_;
  Blob owned_;
};

/// The paper's Random Access File: object payloads stored separately from the
/// index, in ascending SFC order at bulk-load time. Each record is
/// `(id: u32, len: u32, obj: len bytes)` and is addressed by the byte offset
/// of its first byte. Records may span page boundaries; a Get counts one page
/// access per distinct uncached page touched.
///
/// Page 0 is a header page (magic, end offset, record count); data starts at
/// byte offset kPageSize.
///
/// Thread safety: Get()/GetView()/ScanAll() are safe from any number of
/// reader threads *concurrently with one appender*, under the snapshot
/// protocol (docs/ARCHITECTURE.md §"Threading model"): a reader only
/// dereferences offsets below the `end_offset()` watermark its snapshot
/// captured, and every such byte is either in a fully flushed page (served
/// by the thread-safe buffer pool) or still inside the in-memory tail page,
/// whose buffer is guarded by `tail_mu_` — the appender only ever writes
/// tail bytes *at or above* any published watermark, so the bytes a reader
/// copies out are immutable. The lock-free `dirty_tail_id_` probe routes
/// readers to the tail path; it is release-published by the appender before
/// the writer's snapshot Publish(), and re-checked under the lock (a stale
/// hit falls back to the pool, where the flushed bytes already are).
/// Append()/Sync()/FlushCache()/SetCachePages() remain single-writer
/// (mutually excluded among themselves; SpbTree's writer lock provides
/// this); SetCachePages additionally requires quiesced readers, like
/// BufferPool::set_capacity. Reads served from the dirty in-memory tail
/// page count as cache hits (not page accesses): the tail is a pinned
/// buffer, so serving from it is a cache hit under the paper's PA
/// definition.
class Raf {
 public:
  /// Creates an empty RAF over a fresh page file. `cache_pages` sizes the LRU
  /// buffer pool used for reads. `generation` stamps the header: compaction
  /// writes its replacement file with the old generation + 1, and the index
  /// meta records which generation it was checkpointed against — a mismatch
  /// on open means a crash landed between the compaction swap and its
  /// checkpoint, and the B+-tree must be rebuilt from the RAF. Pre-existing
  /// files (header bytes 24..31 zero) read back as generation 0.
  static Status Create(std::unique_ptr<PageFile> file, size_t cache_pages,
                       std::unique_ptr<Raf>* out, uint64_t generation = 0);

  /// Opens an existing RAF (header page must be valid).
  static Status Open(std::unique_ptr<PageFile> file, size_t cache_pages,
                     std::unique_ptr<Raf>* out);

  /// Appends a record; returns its byte offset in `*offset`.
  Status Append(ObjectId id, const Blob& obj, uint64_t* offset);

  /// Reads the record at `offset`. If `ra` is non-null, pages this record
  /// covers are served from that readahead session's staged buffers when
  /// prefetched (identical accounting either way; see storage/io_engine.h).
  Status Get(uint64_t offset, ObjectId* id, Blob* obj,
             Readahead* ra = nullptr);

  /// Zero-copy variant of Get: serves a record that fits in one (clean)
  /// page directly from the pinned cache frame; falls back to an internal
  /// copy (into the view's reusable buffer) for page-spanning records,
  /// header reads that straddle a page boundary, and dirty-tail pages.
  ///
  /// Accounting is identical to Get in every case. Non-spanning records pay
  /// the same two pool touches Get's header + payload reads pay (pin +
  /// Touch; empty records only the header touch); the fallback runs Get's
  /// own byte loop. So PA, cache_hits and LRU state are byte-identical
  /// whether callers use Get or GetView — the invariant the warm A/B bench
  /// asserts.
  Status GetView(uint64_t offset, ObjectId* id, BlobView* view,
                 Readahead* ra = nullptr);

  /// Visits every record in file order. The callback receives
  /// (offset, id, obj). With a readahead session the scan schedules data
  /// pages in windows ahead of the cursor, so a cold scan runs on coalesced
  /// span reads instead of one fetch per page.
  Status ScanAll(
      const std::function<void(uint64_t, ObjectId, const Blob&)>& fn,
      Readahead* ra = nullptr);

  /// One-page cache a caller threads through consecutive GetRaw calls so a
  /// run of same-page records costs one file read, not one per record.
  struct RawReadCache {
    PageId id = kInvalidPageId;
    Page page;
  };

  /// Maintenance-path read of the record at `offset`: direct file I/O (plus
  /// the dirty-tail buffer), completely outside the buffer pool — no PA, no
  /// cache hits, no LRU perturbation. Compaction and crash recovery use
  /// this so their internal I/O never shows up in the paper's query-cost
  /// accounting. Single concurrent appender allowed (same tail protocol as
  /// Get); `cache` may be null.
  Status GetRaw(uint64_t offset, ObjectId* id, Blob* obj,
                RawReadCache* cache) const;

  /// Overwrites this RAF's IoStats with `other`'s, zeroing dead_bytes.
  /// Compaction calls this on the replacement RAF so the tree's cumulative
  /// counters continue seamlessly across the swap — compaction is invisible
  /// to PA accounting — while the dead-byte debt resets to zero (every
  /// surviving record is live). Requires quiesced stats readers (the
  /// compactor holds the writer lock; stats races are benign counters).
  void CarryStatsFrom(const Raf& other) {
    pool_.stats() = other.stats();
    pool_.stats().dead_bytes.store(0, std::memory_order_relaxed);
  }

  uint64_t generation() const { return generation_; }

  /// Page holding byte `offset` (records may span onto the next page too).
  static PageId PageOf(uint64_t offset) {
    return static_cast<PageId>(offset / kPageSize);
  }

  /// Flushes the partial tail page and the header to the page file.
  Status Sync();

  uint64_t num_records() const {
    return num_records_.load(std::memory_order_relaxed);
  }
  /// One past the last valid record byte — the snapshot watermark an index
  /// version captures at publish time. Release-published by Append().
  uint64_t end_offset() const {
    return end_offset_.load(std::memory_order_acquire);
  }
  /// Total bytes of record data written (excludes the header page).
  uint64_t data_bytes() const { return end_offset() - kPageSize; }
  /// Index storage footprint in bytes (whole pages, header included).
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(file_->num_pages()) * kPageSize;
  }

  BufferPool& pool() { return pool_; }
  const IoStats& stats() const { return pool_.stats(); }
  void ResetStats() { pool_.stats().Reset(); }
  /// Records `n` bytes of record data orphaned by a delete (the record
  /// header plus payload stay in the file until a rebuild/compaction).
  /// Called by the index's delete path under its writer lock; the counter
  /// itself is atomic, so readers may report it concurrently.
  void AddDeadBytes(uint64_t n) {
    pool_.stats().dead_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t dead_bytes() const {
    return stats().dead_bytes.load(std::memory_order_relaxed);
  }
  /// Drops the LRU cache. Never touches the tail, so it cannot lose data;
  /// Status-returning for uniformity with the other mutators (always OK
  /// today).
  Status FlushCache() {
    pool_.Flush();
    return Status::OK();
  }
  /// Resizes the LRU cache (drops contents). Requires quiesced readers —
  /// the pool's shard array is rebuilt.
  Status SetCachePages(size_t n) {
    pool_.set_capacity(n);
    return Status::OK();
  }
  /// Deprecated: use SetCachePages(). Thin wrapper kept for older callers.
  void set_cache_pages(size_t n) { SetCachePages(n); }

 private:
  Raf(std::unique_ptr<PageFile> file, size_t cache_pages)
      : owned_file_(std::move(file)),
        file_(owned_file_.get()),
        pool_(file_, cache_pages) {}

  Status WriteBytes(uint64_t offset, const uint8_t* src, size_t n);
  Status ReadBytes(uint64_t offset, uint8_t* dst, size_t n, Readahead* ra);
  Status ReadBytesRaw(uint64_t offset, uint8_t* dst, size_t n,
                      RawReadCache* cache) const;
  /// GetView's copy fallback: a plain Get into the view's owned buffer.
  Status GetIntoOwned(uint64_t offset, ObjectId* id, BlobView* view,
                      Readahead* ra);
  Status EnsurePage(PageId id);
  Status WriteHeader();

  std::unique_ptr<PageFile> owned_file_;
  PageFile* file_;
  BufferPool pool_;

  // Next free byte offset; starts at kPageSize (data begins after header).
  // Atomic: the appender release-stores after the record's bytes land, so a
  // reader that observes an offset also observes the bytes behind it.
  std::atomic<uint64_t> end_offset_{kPageSize};
  std::atomic<uint64_t> num_records_{0};
  uint64_t generation_ = 0;

  // In-memory tail page: the last, possibly partial, data page. Kept out of
  // the buffer pool until full so appends don't inflate write counts.
  // `tail_mu_` guards all three fields (appender mutations, reader copies);
  // `dirty_tail_id_` mirrors (tail_dirty_ ? tail_id_ : kInvalidPageId) so
  // readers probe "is this the dirty tail?" without taking the lock on the
  // overwhelmingly common non-tail page.
  mutable std::mutex tail_mu_;
  Page tail_;
  PageId tail_id_ = kInvalidPageId;
  bool tail_dirty_ = false;
  std::atomic<PageId> dirty_tail_id_{kInvalidPageId};
};

}  // namespace spb

#endif  // SPB_STORAGE_RAF_H_
