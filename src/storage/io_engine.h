#ifndef SPB_STORAGE_IO_ENGINE_H_
#define SPB_STORAGE_IO_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace spb {

/// A small pool of background I/O threads issuing multi-page span reads
/// (PageFile::ReadSpan). With zero threads every Submit() runs inline in the
/// caller — the coalescing benefit of span reads is kept, only the
/// compute/I/O overlap is lost — which is also the fallback used on
/// single-core machines. One fetcher is shared by all queries of an index;
/// Submit() and Wait() are thread-safe.
class PageFetcher {
 public:
  /// Completion handle for one submitted span read.
  struct Ticket {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
  };

  explicit PageFetcher(size_t num_threads);
  ~PageFetcher();

  PageFetcher(const PageFetcher&) = delete;
  PageFetcher& operator=(const PageFetcher&) = delete;

  /// Queues a read of pages [first, first+count) of `file` into
  /// dst[0..count). `dst` must stay alive until Wait() returns — the
  /// Readahead session that owns the buffers guarantees this by draining
  /// every ticket in its destructor. With zero worker threads the read runs
  /// before Submit returns.
  std::shared_ptr<Ticket> Submit(PageFile* file, PageId first, size_t count,
                                 Page* dst);

  /// Blocks until the ticket's read finished; returns its status.
  static Status Wait(Ticket& ticket);

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Job {
    PageFile* file;
    PageId first;
    size_t count;
    Page* dst;
    std::shared_ptr<Ticket> ticket;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

struct ReadaheadOptions {
  /// Upper bound on pages in flight (submitted, not yet waited on). Also
  /// caps the length of a single coalesced run. Scheduling past the budget
  /// blocks on the oldest outstanding run first.
  size_t max_pages = 64;
};

/// A query-local readahead session over one BufferPool. The query hands it
/// sorted candidate pages (the RAF keeps objects in ascending SFC order, so
/// the survivors of Lemma-1/2 pruning land on a sorted, heavily clustered
/// page list); the session merges consecutive ids into runs, reads each run
/// with one span read (through the PageFetcher), and parks the bytes in
/// private staging buffers — NOT in the buffer pool.
///
/// Pages enter the pool only when the query actually touches them, via
/// BufferPool::ReadIntoStaged, which claims the staged copy and performs the
/// exact insert the demand path would have performed. Consequences:
///  * logical PA, cache_hits and the LRU eviction sequence are identical
///    with readahead on or off (over-scheduled pages are never claimed and
///    never count);
///  * physical_reads counts one per run (at completion), so the
///    physical-vs-logical gap directly measures coalescing + sharing wins.
///
/// Not thread-safe: one session belongs to one query thread. Concurrent
/// queries each open their own session; the staging buffers are private, so
/// the only shared state they touch is the pool (thread-safe) and the
/// fetcher (thread-safe). The destructor drains all outstanding tickets, so
/// staging buffers never outlive an in-flight background read.
class Readahead {
 public:
  Readahead(BufferPool* pool, PageFetcher* fetcher,
            ReadaheadOptions options = {});
  ~Readahead();

  Readahead(const Readahead&) = delete;
  Readahead& operator=(const Readahead&) = delete;

  /// Schedules candidate pages for prefetch. Ids need not be sorted or
  /// unique and may point past the end of the file (records near the file
  /// tail schedule a speculative next page) — out-of-range, already-staged
  /// and already-cached ids are dropped. Cheap to call with pages that are
  /// never read afterwards: unclaimed staging costs memory, not stats.
  void Schedule(const PageId* pages, size_t count);
  void Schedule(const std::vector<PageId>& pages) {
    Schedule(pages.data(), pages.size());
  }

  /// Reads bytes [offset, offset+n) of page `id`: from the staged copy if
  /// this session prefetched it (waiting for the run to land if needed),
  /// otherwise through the pool's demand path. Accounting matches the
  /// demand path one-for-one; see ReadIntoStaged.
  Status ReadInto(PageId id, size_t offset, size_t n, uint8_t* dst);

  /// Zero-copy variant of ReadInto: pins the page's cache frame instead of
  /// copying bytes out. A staged page is claimed into the pool
  /// (BufferPool::ReadPinnedStaged) and the resulting frame pinned;
  /// otherwise the pool's demand path (ReadPinned) runs. Accounting matches
  /// ReadInto one-for-one.
  Status ReadPinned(PageId id, BufferPool::PagePin* out);

  /// Runs the full accounting path of a read of page `id` (staged claim or
  /// demand fetch) without handing out bytes — the readahead-aware
  /// counterpart of BufferPool::Touch, used by node-cache hits inside a
  /// readahead session.
  Status Touch(PageId id);

 private:
  struct Run {
    PageId first = 0;
    size_t count = 0;
    std::unique_ptr<Page[]> pages;
    std::shared_ptr<PageFetcher::Ticket> ticket;
    bool waited = false;
    Status status = Status::OK();
  };

  /// Blocks until `run` landed (idempotent); updates stats and the
  /// in-flight budget.
  void WaitRun(Run* run);

  BufferPool* pool_;
  PageFetcher* fetcher_;
  ReadaheadOptions options_;
  /// All runs of the session; deque keeps Run* stable for staged_.
  std::deque<Run> runs_;
  /// Page id -> (owning run, index within the run) for staged pages.
  std::unordered_map<PageId, std::pair<Run*, size_t>> staged_;
  /// Oldest run index not yet waited on (budget bookkeeping).
  size_t oldest_unwaited_ = 0;
  size_t inflight_pages_ = 0;
};

}  // namespace spb

#endif  // SPB_STORAGE_IO_ENGINE_H_
