#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace spb {

void BufferPool::Resize(size_t capacity) {
  capacity_ = capacity;
  size_t num_shards = 1;
  if (capacity >= 2 * kMinShardPages) {
    num_shards = std::min(kMaxShards, capacity / kMinShardPages);
  }
  shards_.clear();
  shards_.reserve(num_shards);
  const size_t base = capacity / num_shards;
  const size_t extra = capacity % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Status BufferPool::Read(PageId id, Page* out) {
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->page;
      return Status::OK();
    }
  }
  // Miss: fetch outside the lock so a slow page read does not serialize the
  // whole stripe. Two threads may race on the same cold page; each fetch is
  // a real file access, so each counts one page read (PA stays exact).
  SPB_RETURN_IF_ERROR(file_->Read(id, out));
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.InsertLocked(id, *out);
  }
  return Status::OK();
}

Status BufferPool::ReadInto(PageId id, size_t offset, size_t n,
                            uint8_t* dst) {
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      std::memcpy(dst, it->second->page.bytes() + offset, n);
      return Status::OK();
    }
  }
  // Miss: same fetch-outside-the-lock policy (and PA accounting) as Read().
  Page buf;
  SPB_RETURN_IF_ERROR(file_->Read(id, &buf));
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(dst, buf.bytes() + offset, n);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.InsertLocked(id, buf);
  }
  return Status::OK();
}

Status BufferPool::Write(PageId id, const Page& page) {
  SPB_RETURN_IF_ERROR(file_->Write(id, page));
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.InsertLocked(id, page);
  return Status::OK();
}

void BufferPool::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void BufferPool::Shard::InsertLocked(PageId id, const Page& page) {
  auto it = index.find(id);
  if (it != index.end()) {
    it->second->page = page;
    lru.splice(lru.begin(), lru, it->second);
    return;
  }
  if (capacity == 0) return;
  if (lru.size() >= capacity) {
    index.erase(lru.back().id);
    lru.pop_back();
  }
  lru.push_front(Entry{id, page});
  index[id] = lru.begin();
}

}  // namespace spb
