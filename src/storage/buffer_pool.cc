#include "storage/buffer_pool.h"

namespace spb {

Status BufferPool::Read(PageId id, Page* out) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.cache_hits;
    Touch(it->second);
    *out = it->second->page;
    return Status::OK();
  }
  SPB_RETURN_IF_ERROR(file_->Read(id, out));
  ++stats_.page_reads;
  InsertIntoCache(id, *out);
  return Status::OK();
}

Status BufferPool::Write(PageId id, const Page& page) {
  SPB_RETURN_IF_ERROR(file_->Write(id, page));
  ++stats_.page_writes;
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->page = page;
    Touch(it->second);
  } else {
    InsertIntoCache(id, page);
  }
  return Status::OK();
}

void BufferPool::Flush() {
  lru_.clear();
  index_.clear();
}

void BufferPool::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void BufferPool::InsertIntoCache(PageId id, const Page& page) {
  if (capacity_ == 0) return;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Entry{id, page});
  index_[id] = lru_.begin();
}

}  // namespace spb
