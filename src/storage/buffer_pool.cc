#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace spb {

void BufferPool::Resize(size_t capacity) {
  capacity_ = capacity;
  size_t num_shards = 1;
  if (capacity >= 2 * kMinShardPages) {
    num_shards = std::min(kMaxShards, capacity / kMinShardPages);
  }
  shards_.clear();
  shards_.reserve(num_shards);
  const size_t base = capacity / num_shards;
  const size_t extra = capacity % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Status BufferPool::Read(PageId id, Page* out) {
  return FetchShared(id, 0, kPageSize, out->bytes());
}

Status BufferPool::ReadInto(PageId id, size_t offset, size_t n,
                            uint8_t* dst) {
  return FetchShared(id, offset, n, dst);
}

Status BufferPool::FetchShared(PageId id, size_t offset, size_t n,
                               uint8_t* dst) {
  PagePin pin;
  SPB_RETURN_IF_ERROR(ReadPinned(id, &pin));
  std::memcpy(dst, pin->bytes() + offset, n);
  return Status::OK();
}

Status BufferPool::ReadPinned(PageId id, PagePin* out) {
  Shard& shard = ShardFor(id);
  std::shared_ptr<PendingFetch> fetch;
  bool leader = false;
  {
    std::lock_guard<InstrumentedMutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->page;
      return Status::OK();
    }
    auto pit = shard.pending.find(id);
    if (pit != shard.pending.end()) {
      fetch = pit->second;
    } else {
      fetch = std::make_shared<PendingFetch>();
      shard.pending.emplace(id, fetch);
      leader = true;
    }
  }
  if (leader) {
    // Fetch outside the shard lock so a slow read does not serialize the
    // stripe; followers for this page queue on the pending entry instead of
    // issuing their own file reads.
    fetch->page = std::make_shared<Page>();
    fetch->status = file_->Read(id, fetch->page.get());
    {
      std::lock_guard<InstrumentedMutex> lock(shard.mu);
      // Insert and un-pend atomically: a page is never in neither table.
      // The cache shares the frame with this request's pin — no copy.
      if (fetch->status.ok()) shard.InsertLocked(id, fetch->page);
      shard.pending.erase(id);
    }
    {
      std::lock_guard<std::mutex> lock(fetch->mu);
      fetch->done = true;
    }
    fetch->cv.notify_all();
    if (!fetch->status.ok()) return fetch->status;
    stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
    stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
    *out = fetch->page;
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(fetch->mu);
    fetch->cv.wait(lock, [&fetch] { return fetch->done; });
  }
  if (!fetch->status.ok()) return fetch->status;
  // A follower's request is a real page request (one logical PA, same as
  // the pre-single-flight behaviour) but costs no physical read.
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  *out = fetch->page;
  return Status::OK();
}

Status BufferPool::Touch(PageId id) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<InstrumentedMutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return Status::OK();
    }
  }
  // Miss: run the full single-flight demand fetch and drop the pin. The
  // hit path above avoids the pin's shared_ptr traffic entirely — Touch is
  // called once per record/node access on the warm path, where the page is
  // almost always the one just pinned.
  PagePin pin;
  return ReadPinned(id, &pin);
}

Status BufferPool::ReadIntoStaged(PageId id, size_t offset, size_t n,
                                  uint8_t* dst, const Page& staged) {
  PagePin pin;
  SPB_RETURN_IF_ERROR(ReadPinnedStaged(id, staged, &pin));
  std::memcpy(dst, pin->bytes() + offset, n);
  return Status::OK();
}

Status BufferPool::ReadPinnedStaged(PageId id, const Page& staged,
                                    PagePin* out) {
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->page;
    return Status::OK();
  }
  // The bytes are already here; claim them as this request's page read and
  // insert, exactly where the demand path would have inserted after its
  // fetch. An in-flight pending fetch for the same page (possible only with
  // concurrent queries) is left alone — it will insert identical bytes.
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  auto frame = std::make_shared<const Page>(staged);
  shard.InsertLocked(id, frame);
  *out = std::move(frame);
  return Status::OK();
}

bool BufferPool::Contains(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  return shard.index.find(id) != shard.index.end();
}

Status BufferPool::Write(PageId id, const Page& page) {
  SPB_RETURN_IF_ERROR(file_->Write(id, page));
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  shard.InsertLocked(id, std::make_shared<const Page>(page));
  return Status::OK();
}

void BufferPool::Retire(const PageId* ids, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    Shard& shard = ShardFor(ids[i]);
    std::lock_guard<InstrumentedMutex> lock(shard.mu);
    auto it = shard.index.find(ids[i]);
    if (it == shard.index.end()) continue;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void BufferPool::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<InstrumentedMutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void BufferPool::Shard::InsertLocked(PageId id,
                                     std::shared_ptr<const Page> page) {
  auto it = index.find(id);
  if (it != index.end()) {
    // Replace the frame pointer rather than mutating the frame in place:
    // outstanding PagePins keep the old bytes alive and unchanged.
    it->second->page = std::move(page);
    lru.splice(lru.begin(), lru, it->second);
    return;
  }
  if (capacity == 0) return;
  if (lru.size() >= capacity) {
    index.erase(lru.back().id);
    lru.pop_back();
  }
  lru.push_front(Entry{id, std::move(page)});
  index[id] = lru.begin();
}

}  // namespace spb
