#ifndef SPB_STORAGE_PAGE_H_
#define SPB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace spb {

/// Fixed disk page size used by every access method in this library, matching
/// the paper's experimental setup ("a fixed disk page size of 4KB").
inline constexpr size_t kPageSize = 4096;

/// Page number within a PageFile. Page 0 is conventionally a header/meta page.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// A raw 4 KB page buffer.
struct Page {
  std::array<uint8_t, kPageSize> data;

  Page() { data.fill(0); }

  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }

  void Clear() { data.fill(0); }
};

}  // namespace spb

#endif  // SPB_STORAGE_PAGE_H_
