#include "edindex/ed_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

namespace spb {

Status EdIndex::Build(const std::vector<Blob>& q_objects,
                      const std::vector<Blob>& o_objects,
                      const DistanceFunction* metric,
                      const EdIndexOptions& options,
                      std::unique_ptr<EdIndex>* out) {
  EdIndexOptions opts = options;
  if (opts.epsilon_build <= 0.0) {
    return Status::InvalidArgument("eD-index requires epsilon_build > 0");
  }
  if (opts.rho <= 0.0) opts.rho = opts.epsilon_build / 2.0;
  if (opts.epsilon_build > 2.0 * opts.rho) {
    return Status::InvalidArgument(
        "eD-index requires epsilon_build <= 2 * rho");
  }
  auto index = std::unique_ptr<EdIndex>(new EdIndex(metric, opts));
  Rng rng(opts.seed);

  // All payloads into one RAF (Q first, then O).
  SPB_RETURN_IF_ERROR(
      Raf::Create(PageFile::CreateInMemory(), opts.cache_pages, &index->raf_));
  struct Tagged {
    uint64_t offset;
    bool from_q;
    const Blob* obj;
  };
  std::vector<Tagged> all;
  all.reserve(q_objects.size() + o_objects.size());
  for (size_t i = 0; i < q_objects.size(); ++i) {
    uint64_t off;
    SPB_RETURN_IF_ERROR(index->raf_->Append(ObjectId(i), q_objects[i], &off));
    all.push_back(Tagged{off, true, &q_objects[i]});
  }
  for (size_t i = 0; i < o_objects.size(); ++i) {
    uint64_t off;
    SPB_RETURN_IF_ERROR(index->raf_->Append(ObjectId(i), o_objects[i], &off));
    all.push_back(Tagged{off, false, &o_objects[i]});
  }
  SPB_RETURN_IF_ERROR(index->raf_->Sync());
  if (all.empty()) {
    *out = std::move(index);
    return Status::OK();
  }

  // Pick pivots and median radii per level from random samples.
  const size_t m = std::max<size_t>(1, opts.pivots_per_level);
  index->levels_.resize(opts.num_levels);
  for (Level& level : index->levels_) {
    for (size_t i = 0; i < m; ++i) {
      level.pivots.push_back(*all[rng.Uniform(all.size())].obj);
    }
    level.medians.resize(m);
    const size_t sample_n = std::min<size_t>(128, all.size());
    for (size_t i = 0; i < m; ++i) {
      std::vector<double> dists;
      dists.reserve(sample_n);
      for (size_t s = 0; s < sample_n; ++s) {
        dists.push_back(index->counting_.Distance(
            level.pivots[i], *all[rng.Uniform(all.size())].obj));
      }
      std::nth_element(dists.begin(), dists.begin() + ptrdiff_t(sample_n / 2),
                       dists.end());
      level.medians[i] = dists[sample_n / 2];
    }
  }
  const Blob exclusion_pivot = index->levels_[0].pivots[0];

  // Cascade every object through the levels (with eps-overlap replication).
  const double rho = opts.rho;
  const double margin = rho + opts.epsilon_build;
  for (const Tagged& t : all) {
    bool settled = false;  // stopped cascading at some level
    for (Level& level : index->levels_) {
      uint32_t code = 0;
      bool separable = true;
      bool near_boundary = false;
      double dist0 = 0.0;
      for (size_t i = 0; i < level.pivots.size(); ++i) {
        const double d = index->counting_.Distance(*t.obj, level.pivots[i]);
        if (i == 0) dist0 = d;
        const double delta = d - level.medians[i];
        if (std::fabs(delta) <= rho) separable = false;
        if (std::fabs(delta) <= margin) near_boundary = true;
        code = (code << 1) | (delta > 0 ? 1u : 0u);
      }
      if (separable) {
        level.buckets[code].push_back(
            Entry{t.offset, float(dist0), t.from_q});
        if (!near_boundary) {
          settled = true;
          break;
        }
        // eps-overlap replication: a separable object near a boundary is
        // *also* cascaded down, so a pair split across the boundary still
        // meets in a later container.
      }
      // Non-separable (or replicated) objects continue to the next level.
    }
    if (!settled) {
      // Residue of the last level: the exclusion set.
      const double d = index->counting_.Distance(*t.obj, exclusion_pivot);
      index->exclusion_.push_back(Entry{t.offset, float(d), t.from_q});
    }
  }

  index->construction_stats_.page_accesses =
      index->raf_->stats().page_accesses();
  index->construction_stats_.distance_computations =
      index->counting_.count();
  index->raf_->ResetStats();
  index->counting_.Reset();
  *out = std::move(index);
  return Status::OK();
}

Status EdIndex::JoinContainer(std::vector<Entry> entries, double epsilon,
                              std::vector<JoinPair>* result) {
  // Sliding window over entries ordered by distance to the window pivot:
  // |d(x,p) - d(y,p)| > eps implies d(x,y) > eps (triangle inequality), so
  // only window-mates are verified.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.window_dist < b.window_dist;
            });
  ObjectId xid, yid;
  Blob xobj, yobj;
  for (size_t i = 0; i < entries.size(); ++i) {
    bool x_loaded = false;
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].window_dist - entries[i].window_dist > epsilon) break;
      if (entries[i].from_q == entries[j].from_q) continue;
      if (!x_loaded) {
        SPB_RETURN_IF_ERROR(raf_->Get(entries[i].offset, &xid, &xobj));
        x_loaded = true;
      }
      SPB_RETURN_IF_ERROR(raf_->Get(entries[j].offset, &yid, &yobj));
      if (counting_.Distance(xobj, yobj) <= epsilon) {
        result->push_back(entries[i].from_q ? JoinPair{xid, yid}
                                            : JoinPair{yid, xid});
      }
    }
  }
  return Status::OK();
}

Status EdIndex::SimilarityJoin(double epsilon, std::vector<JoinPair>* result,
                               QueryStats* stats) {
  result->clear();
  if (epsilon > std::min(2.0 * options_.rho, options_.epsilon_build)) {
    return Status::InvalidArgument(
        "eD-index was built for a smaller epsilon; rebuild required");
  }
  const auto start = std::chrono::steady_clock::now();
  if (raf_) raf_->FlushCache();  // cold-start the join, as the paper measures
  const uint64_t pa_before = raf_ ? raf_->stats().page_accesses() : 0;
  const uint64_t cd_before = counting_.count();

  for (Level& level : levels_) {
    for (auto& [code, bucket] : level.buckets) {
      SPB_RETURN_IF_ERROR(JoinContainer(bucket, epsilon, result));
    }
  }
  SPB_RETURN_IF_ERROR(JoinContainer(exclusion_, epsilon, result));

  // Replication can report a pair more than once; deduplicate.
  std::sort(result->begin(), result->end());
  result->erase(std::unique(result->begin(), result->end()), result->end());

  if (stats != nullptr) {
    stats->page_accesses =
        (raf_ ? raf_->stats().page_accesses() : 0) - pa_before;
    stats->distance_computations = counting_.count() - cd_before;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

uint64_t EdIndex::storage_bytes() const {
  uint64_t bytes = raf_ ? raf_->file_bytes() : 0;
  for (const Level& level : levels_) {
    for (const auto& [code, bucket] : level.buckets) {
      bytes += bucket.size() * sizeof(Entry);
    }
  }
  bytes += exclusion_.size() * sizeof(Entry);
  return bytes;
}

uint64_t EdIndex::total_entries() const {
  uint64_t n = exclusion_.size();
  for (const Level& level : levels_) {
    for (const auto& [code, bucket] : level.buckets) n += bucket.size();
  }
  return n;
}

}  // namespace spb
