#ifndef SPB_EDINDEX_ED_INDEX_H_
#define SPB_EDINDEX_ED_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/blob.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "join/join_common.h"
#include "metrics/distance.h"
#include "storage/raf.h"

namespace spb {

/// Configuration of an eD-index. The structure is built *for* a maximum join
/// threshold: joins are valid only for eps <= min(2*rho, epsilon_build) — the
/// limitation the paper calls out ("eD-index is only applicable for
/// similarity joins with smaller eps values, and the index has to be rebuilt
/// for larger eps values").
struct EdIndexOptions {
  /// rho-split boundary half-width (fraction of d+ when <= 1 is ambiguous —
  /// interpreted as an absolute distance).
  double rho = 0.0;  // default derived from epsilon_build when 0
  /// The join threshold the index is built for.
  double epsilon_build = 0.0;
  size_t num_levels = 4;
  size_t pivots_per_level = 2;
  size_t cache_pages = 32;
  uint64_t seed = 7;
};

/// eD-index (Dohnal, Gennaro, Zezula: "Similarity join in metric spaces
/// using eD-index") — a multilevel rho-split hashing structure with
/// eps-overlap replication, used as the index-based similarity-join
/// competitor (Fig. 17).
///
/// Each level hashes objects through `pivots_per_level` ball-partitioning
/// split functions: objects separable at distance rho from every boundary
/// land in one of 2^m buckets; the rest — plus *copies* of separable objects
/// within rho + eps of any boundary (the eps-overlap that makes the join
/// lossless) — fall through to the next level. The last level's residue is
/// the exclusion set. The join runs a sliding-window scan over every bucket
/// of every level plus the exclusion set; replication makes pairs appear in
/// at least one shared container, and results are deduplicated.
///
/// Object payloads are disk-resident (a shared RAF); bucket directories are
/// memory-resident. Page accesses count RAF fetches during build and join —
/// repeated fetches across levels are what gives the eD-index its high I/O
/// cost relative to SJA.
class EdIndex {
 public:
  /// Builds over tagged Q and O sets (R-S join support).
  static Status Build(const std::vector<Blob>& q_objects,
                      const std::vector<Blob>& o_objects,
                      const DistanceFunction* metric,
                      const EdIndexOptions& options,
                      std::unique_ptr<EdIndex>* out);

  /// SJ(Q, O, eps). Fails with InvalidArgument when eps exceeds the
  /// threshold the index was built for.
  Status SimilarityJoin(double epsilon, std::vector<JoinPair>* result,
                        QueryStats* stats = nullptr);

  /// Construction cost counters (page accesses + distance computations).
  QueryStats construction_stats() const { return construction_stats_; }
  uint64_t storage_bytes() const;
  /// Total entries across all containers (> |Q|+|O| due to replication).
  uint64_t total_entries() const;

 private:
  struct Entry {
    uint64_t offset;   // RAF offset of the object payload
    float window_dist;  // distance to the container's window pivot
    bool from_q;
  };

  struct Level {
    std::vector<Blob> pivots;
    std::vector<double> medians;
    std::unordered_map<uint32_t, std::vector<Entry>> buckets;
  };

  EdIndex(const DistanceFunction* metric, const EdIndexOptions& options)
      : options_(options), counting_(metric) {}

  Status JoinContainer(std::vector<Entry> entries, double epsilon,
                       std::vector<JoinPair>* result);

  EdIndexOptions options_;
  CountingDistance counting_;
  std::unique_ptr<Raf> raf_;
  std::vector<Level> levels_;
  std::vector<Entry> exclusion_;
  QueryStats construction_stats_;
};

}  // namespace spb

#endif  // SPB_EDINDEX_ED_INDEX_H_
