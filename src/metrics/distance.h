#ifndef SPB_METRICS_DISTANCE_H_
#define SPB_METRICS_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/blob.h"
#include "common/striped.h"

namespace spb {

/// A metric distance d() over opaque objects. Implementations must satisfy
/// the four metric axioms the paper relies on: symmetry, non-negativity,
/// identity and — crucially for every pruning lemma — the triangle
/// inequality. `tests/metrics_test.cc` property-checks all of them.
class DistanceFunction {
 public:
  virtual ~DistanceFunction() = default;

  /// The distance between two objects. Must be in [0, max_distance()].
  virtual double Distance(BlobRef a, BlobRef b) const = 0;

  /// Distance with early abandoning (docs/ARCHITECTURE.md §"Distance
  /// kernels"): whenever d(a, b) <= tau the return value is **exactly**
  /// Distance(a, b); when d(a, b) > tau the implementation may stop as soon
  /// as that is certain and return *any* value greater than tau (typically
  /// a partial sum — a lower bound of the true distance, but still > tau).
  /// Callers must therefore treat a result > tau purely as "pruned" and
  /// never store it as the object's distance. Query code passes its pruning
  /// threshold here: RQA the radius r, NNA the current k-th NN distance,
  /// SJA the join radius. The default runs the full computation, which
  /// trivially satisfies the contract.
  virtual double DistanceWithCutoff(BlobRef a, BlobRef b,
                                    double tau) const {
    (void)tau;
    return Distance(a, b);
  }

  /// d+ — an upper bound on any pairwise distance in the domain. Used to
  /// size the SFC grid and to express query radii as a percentage of d+.
  virtual double max_distance() const = 0;

  /// True when the range of d() is integers (e.g. edit or Hamming distance);
  /// such metrics skip delta-approximation (delta = 1, exact cells).
  virtual bool is_discrete() const = 0;

  virtual std::string name() const = 0;
};

/// Decorator counting every distance evaluation — the paper's compdists
/// metric. All index code computes distances through one of these so the
/// count is complete by construction. The counters are per-thread striped
/// slabs (StripedU64): one wrapper is shared by all threads querying an
/// index concurrently, every one of them bumps the counter on *every*
/// distance call — the single hottest counter in the system — and striping
/// keeps the aggregate exact without making each call a cross-core cache
/// miss (docs/ARCHITECTURE.md §"Threading model").
class CountingDistance final : public DistanceFunction {
 public:
  /// `base` must outlive this wrapper.
  explicit CountingDistance(const DistanceFunction* base) : base_(base) {}

  double Distance(BlobRef a, BlobRef b) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return base_->Distance(a, b);
  }

  /// An early-abandoned evaluation still counts as one compdist (the paper
  /// counts *calls*, and an abandoned call did real metric work); the
  /// cutoff counters additionally record how often the cutoff pruned.
  double DistanceWithCutoff(BlobRef a, BlobRef b,
                            double tau) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    cutoff_calls_.fetch_add(1, std::memory_order_relaxed);
    const double d = base_->DistanceWithCutoff(a, b, tau);
    if (d > tau) cutoff_hits_.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  double max_distance() const override { return base_->max_distance(); }
  bool is_discrete() const override { return base_->is_discrete(); }
  std::string name() const override { return base_->name(); }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Number of DistanceWithCutoff calls since the last Reset.
  uint64_t cutoff_calls() const {
    return cutoff_calls_.load(std::memory_order_relaxed);
  }
  /// How many of those returned > tau (i.e. the cutoff pruned the object —
  /// whether or not the metric actually abandoned early).
  uint64_t cutoff_hits() const {
    return cutoff_hits_.load(std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    cutoff_calls_.store(0, std::memory_order_relaxed);
    cutoff_hits_.store(0, std::memory_order_relaxed);
  }

 private:
  const DistanceFunction* base_;
  mutable StripedU64 count_;
  mutable StripedU64 cutoff_calls_;
  mutable StripedU64 cutoff_hits_;
};

}  // namespace spb

#endif  // SPB_METRICS_DISTANCE_H_
