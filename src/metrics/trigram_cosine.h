#ifndef SPB_METRICS_TRIGRAM_COSINE_H_
#define SPB_METRICS_TRIGRAM_COSINE_H_

#include <string>
#include <vector>

#include "metrics/distance.h"

namespace spb {

/// The paper's DNA metric: "cosine similarity under tri-gram counting
/// space". A sequence over the alphabet {A,C,G,T} is mapped to its 64-bin
/// tri-gram count vector; the distance between two sequences is the *angle*
/// between their count vectors, d = arccos(cos-similarity).
///
/// We use the angular form (rather than 1 - cos) because only the angle
/// satisfies the triangle inequality, which every pruning lemma in the paper
/// requires; with non-negative counts the angle lies in [0, pi/2], so
/// d+ = pi/2. This is the standard way metric-space work realizes "cosine
/// similarity" as a metric.
class TrigramCosine final : public DistanceFunction {
 public:
  TrigramCosine() = default;

  double Distance(BlobRef a, BlobRef b) const override;
  double max_distance() const override;
  bool is_discrete() const override { return false; }
  std::string name() const override { return "trigram-cosine"; }

  /// Exposed for tests: the 64-bin tri-gram count vector of a sequence.
  static std::vector<uint32_t> TrigramCounts(BlobRef seq);
};

}  // namespace spb

#endif  // SPB_METRICS_TRIGRAM_COSINE_H_
