#include "metrics/trigram_cosine.h"

#include <cmath>

namespace spb {

namespace {

// Maps an ACGT base (case-insensitive) to 0..3; other bytes map to 0 so the
// metric is total over arbitrary byte strings.
inline uint32_t BaseCode(uint8_t c) {
  switch (c) {
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return 0;
  }
}

}  // namespace

std::vector<uint32_t> TrigramCosine::TrigramCounts(BlobRef seq) {
  std::vector<uint32_t> counts(64, 0);
  if (seq.size() < 3) return counts;
  uint32_t code = BaseCode(seq[0]) * 4 + BaseCode(seq[1]);
  for (size_t i = 2; i < seq.size(); ++i) {
    code = ((code * 4) + BaseCode(seq[i])) & 63u;
    ++counts[code];
  }
  return counts;
}

double TrigramCosine::Distance(BlobRef a, BlobRef b) const {
  const std::vector<uint32_t> ca = TrigramCounts(a);
  const std::vector<uint32_t> cb = TrigramCounts(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < 64; ++i) {
    dot += static_cast<double>(ca[i]) * cb[i];
    na += static_cast<double>(ca[i]) * ca[i];
    nb += static_cast<double>(cb[i]) * cb[i];
  }
  if (na == 0.0 || nb == 0.0) {
    // An empty/short sequence is maximally dissimilar to anything non-empty
    // and identical to another empty one.
    return (na == nb) ? 0.0 : max_distance();
  }
  double cosine = dot / (std::sqrt(na) * std::sqrt(nb));
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < 0.0) cosine = 0.0;
  return std::acos(cosine);
}

double TrigramCosine::max_distance() const {
  return std::acos(0.0);  // pi/2: count vectors are non-negative.
}

}  // namespace spb
