#include "metrics/lp_norm.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "kernels/kernels.h"

namespace spb {

LpNorm::LpNorm(size_t dim, double p, double max_coord) : dim_(dim), p_(p) {
  if (p == kInfinity) {
    max_distance_ = max_coord;
    name_ = "Linf";
  } else {
    max_distance_ = std::pow(static_cast<double>(dim), 1.0 / p) * max_coord;
    // %g keeps integer orders terse ("L2") and fractional ones exact
    // enough to distinguish ("L0.5"), instead of truncating p to int.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%g", p);
    name_ = buf;
  }
}

double LpNorm::Distance(BlobRef a, BlobRef b) const {
  // Defensive: compare only the shared prefix if lengths ever differ.
  const size_t n = std::min(a.size(), b.size()) / sizeof(float);
  const float* fa = reinterpret_cast<const float*>(a.data());
  const float* fb = reinterpret_cast<const float*>(b.data());

  const kernels::KernelTable& k = kernels::Active();
  if (p_ == kInfinity) return k.linf(fa, fb, n);
  if (p_ == 2.0) return std::sqrt(k.l2_sq(fa, fb, n));
  if (p_ == 1.0) return k.l1(fa, fb, n);

  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::pow(std::fabs(static_cast<double>(fa[i]) - fb[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}

double LpNorm::DistanceWithCutoff(BlobRef a, BlobRef b,
                                  double tau) const {
  const size_t n = std::min(a.size(), b.size()) / sizeof(float);
  const float* fa = reinterpret_cast<const float*>(a.data());
  const float* fb = reinterpret_cast<const float*>(b.data());

  const kernels::KernelTable& k = kernels::Active();
  if (p_ == kInfinity) return k.linf_cutoff(fa, fb, n, tau);
  if (p_ == 2.0) {
    // The kernel abandons once sqrt(partial) > tau; either way the value it
    // returns is a partial (or full) squared sum whose sqrt is exact when
    // <= tau and > tau otherwise — exactly the cutoff contract.
    return std::sqrt(k.l2_sq_cutoff(fa, fb, n, tau));
  }
  if (p_ == 1.0) return k.l1_cutoff(fa, fb, n, tau);

  // General (possibly fractional) p: no early abandoning. libm pow is not
  // guaranteed correctly rounded, so a partial-sum comparison against
  // pow(tau, p) cannot *prove* the final distance exceeds tau — and the
  // cutoff contract demands proof, not likelihood. Full computation keeps
  // the result exact (and the contract trivially satisfied).
  return Distance(a, b);
}

}  // namespace spb
