#include "metrics/lp_norm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace spb {

LpNorm::LpNorm(size_t dim, double p, double max_coord) : dim_(dim), p_(p) {
  if (p == kInfinity) {
    max_distance_ = max_coord;
    name_ = "Linf";
  } else {
    max_distance_ = std::pow(static_cast<double>(dim), 1.0 / p) * max_coord;
    name_ = "L" + std::to_string(static_cast<int>(p));
  }
}

double LpNorm::Distance(const Blob& a, const Blob& b) const {
  // Defensive: compare only the shared prefix if lengths ever differ.
  const size_t n = std::min(a.size(), b.size()) / sizeof(float);
  const float* fa = reinterpret_cast<const float*>(a.data());
  const float* fb = reinterpret_cast<const float*>(b.data());

  if (p_ == kInfinity) {
    double best = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = std::fabs(static_cast<double>(fa[i]) - fb[i]);
      if (d > best) best = d;
    }
    return best;
  }
  if (p_ == 2.0) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(fa[i]) - fb[i];
      sum += d * d;
    }
    return std::sqrt(sum);
  }
  if (p_ == 1.0) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += std::fabs(static_cast<double>(fa[i]) - fb[i]);
    }
    return sum;
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::pow(std::fabs(static_cast<double>(fa[i]) - fb[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}

}  // namespace spb
