#ifndef SPB_METRICS_HAMMING_H_
#define SPB_METRICS_HAMMING_H_

#include <string>

#include "metrics/distance.h"

namespace spb {

/// Hamming distance over fixed-length symbol strings (the paper's Signature
/// metric: 64-symbol signatures). Discrete; d+ equals the signature length.
class Hamming final : public DistanceFunction {
 public:
  explicit Hamming(size_t length) : length_(length) {}

  double Distance(const Blob& a, const Blob& b) const override {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    size_t diff = (a.size() > b.size() ? a.size() : b.size()) - n;
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) ++diff;
    }
    return static_cast<double>(diff);
  }
  double max_distance() const override {
    return static_cast<double>(length_);
  }
  bool is_discrete() const override { return true; }
  std::string name() const override { return "hamming"; }

 private:
  size_t length_;
};

}  // namespace spb

#endif  // SPB_METRICS_HAMMING_H_
