#ifndef SPB_METRICS_HAMMING_H_
#define SPB_METRICS_HAMMING_H_

#include <cstdint>
#include <string>

#include "kernels/kernels.h"
#include "metrics/distance.h"

namespace spb {

/// Hamming distance over fixed-length symbol strings (the paper's Signature
/// metric: 64-symbol signatures). Discrete; d+ equals the signature length.
/// Mismatch counting runs on the dispatched popcount kernels
/// (src/kernels/); DistanceWithCutoff stops once the mismatch count alone
/// already exceeds tau.
class Hamming final : public DistanceFunction {
 public:
  explicit Hamming(size_t length) : length_(length) {}

  double Distance(BlobRef a, BlobRef b) const override {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    const uint64_t diff = (a.size() > b.size() ? a.size() : b.size()) - n;
    return static_cast<double>(diff +
                               kernels::Active().hamming(a.data(), b.data(), n));
  }
  double DistanceWithCutoff(BlobRef a, BlobRef b,
                            double tau) const override {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    const uint64_t diff = (a.size() > b.size() ? a.size() : b.size()) - n;
    // Length difference alone exceeding tau covers tau < 0 too (diff >= 0).
    if (static_cast<double>(diff) > tau) return static_cast<double>(diff);
    // Mismatch budget: the count may exceed tau once diff + count > tau,
    // i.e. count > tau - diff. The kernel abandons past `budget` mismatches
    // and returns a partial count, which keeps the total > tau as required.
    const double rem = tau - static_cast<double>(diff);
    const uint64_t budget =
        rem >= 9.0e18 ? UINT64_MAX : static_cast<uint64_t>(rem);
    return static_cast<double>(
        diff + kernels::Active().hamming_cutoff(a.data(), b.data(), n, budget));
  }
  double max_distance() const override {
    return static_cast<double>(length_);
  }
  bool is_discrete() const override { return true; }
  std::string name() const override { return "hamming"; }

 private:
  size_t length_;
};

}  // namespace spb

#endif  // SPB_METRICS_HAMMING_H_
