#ifndef SPB_METRICS_DISCRETIZER_H_
#define SPB_METRICS_DISCRETIZER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace spb {

/// The paper's delta-approximation (Section 3.1): partitions the continuous
/// distance range [0, d+] into integer cells 0 .. floor(d+/delta) so that a
/// mapped vector phi(o) can be fed to a space-filling curve. For metrics with
/// a discrete integer range (edit, Hamming) cells coincide exactly with
/// distance values and no approximation happens.
///
/// All pruning arithmetic is interval-based: cell g stands for the distance
/// interval [g*delta, (g+1)*delta) — or the exact point {g} for discrete
/// metrics — so lower/upper bounds derived here can never cause a false
/// dismissal (verified by property tests).
class Discretizer {
 public:
  /// For continuous metrics `delta` is the paper's delta parameter (default
  /// 0.005, interpreted as a fraction of d+ by callers that wish to); for
  /// discrete metrics pass delta = 1.
  Discretizer(double d_plus, bool discrete, double delta)
      : d_plus_(d_plus), discrete_(discrete), delta_(discrete ? 1.0 : delta) {
    max_cell_ = static_cast<uint32_t>(std::floor(d_plus_ / delta_ + 1e-9));
  }

  double delta() const { return delta_; }
  double d_plus() const { return d_plus_; }
  bool discrete() const { return discrete_; }

  /// Largest cell index; cells are 0..max_cell inclusive.
  uint32_t max_cell() const { return max_cell_; }
  /// Number of cells per dimension (the paper's d+/delta grid resolution).
  uint32_t num_cells() const { return max_cell_ + 1; }

  /// Cell containing distance d (clamped into range).
  uint32_t ToCell(double d) const {
    if (d <= 0.0) return 0;
    uint32_t g = static_cast<uint32_t>(std::floor(d / delta_ + 1e-9));
    return std::min(g, max_cell_);
  }

  /// Smallest distance a value in cell g can take.
  double CellLow(uint32_t g) const { return g * delta_; }

  /// Largest distance a value in cell g can take (for discrete metrics the
  /// cell is the exact value g).
  double CellHigh(uint32_t g) const {
    return discrete_ ? static_cast<double>(g) : (g + 1) * delta_;
  }

  /// The inclusive cell range [*gmin, *gmax] whose intervals intersect the
  /// distance interval [lo, hi]. Returns false when the intersection is
  /// empty (hi < 0 or lo > d+).
  bool CellRange(double lo, double hi, uint32_t* gmin, uint32_t* gmax) const {
    if (hi < 0.0 || lo > d_plus_ + delta_) return false;
    *gmax = ToCell(std::min(hi, d_plus_));
    if (lo <= 0.0) {
      *gmin = 0;
    } else if (discrete_) {
      *gmin = static_cast<uint32_t>(std::ceil(lo - 1e-9));
    } else {
      const double g = lo / delta_ - 1.0;
      *gmin = (g <= 0.0) ? 0 : static_cast<uint32_t>(std::ceil(g - 1e-9));
    }
    return *gmin <= *gmax;
  }

  /// Lower bound of |q - d(o,p)| given only that d(o,p) lies in cell g and
  /// that d(q,p) = q exactly. This is the per-pivot term of the mapped-space
  /// lower bound D(phi(q), phi(o)).
  double LowerBound(double q, uint32_t g) const {
    const double lo = CellLow(g);
    const double hi = CellHigh(g);
    if (q < lo) return lo - q;
    if (q > hi) return q - hi;
    return 0.0;
  }

  /// Upper bound of d(o,p) for an object whose cell is g (used by Lemma 2).
  double UpperBound(uint32_t g) const { return CellHigh(g); }

 private:
  double d_plus_;
  bool discrete_;
  double delta_;
  uint32_t max_cell_;
};

}  // namespace spb

#endif  // SPB_METRICS_DISCRETIZER_H_
