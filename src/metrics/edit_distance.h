#ifndef SPB_METRICS_EDIT_DISTANCE_H_
#define SPB_METRICS_EDIT_DISTANCE_H_

#include <string>

#include "metrics/distance.h"

namespace spb {

/// Levenshtein edit distance over byte strings (the paper's Words metric).
/// Discrete; d+ is the maximum string length in the domain (34 for the
/// paper's Words dataset).
///
/// Both entry points reuse per-thread DP rows instead of allocating per
/// call; DistanceWithCutoff additionally runs Ukkonen's banded DP with band
/// half-width floor(tau) and abandons once a whole DP row exceeds the band.
class EditDistance final : public DistanceFunction {
 public:
  /// `max_len` bounds the length of any string in the domain; it determines
  /// d+ (the distance between two strings cannot exceed the longer length).
  explicit EditDistance(size_t max_len) : max_len_(max_len) {}

  double Distance(BlobRef a, BlobRef b) const override;
  double DistanceWithCutoff(BlobRef a, BlobRef b,
                            double tau) const override;
  double max_distance() const override {
    return static_cast<double>(max_len_);
  }
  bool is_discrete() const override { return true; }
  std::string name() const override { return "edit"; }

 private:
  size_t max_len_;
};

}  // namespace spb

#endif  // SPB_METRICS_EDIT_DISTANCE_H_
