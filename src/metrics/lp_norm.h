#ifndef SPB_METRICS_LP_NORM_H_
#define SPB_METRICS_LP_NORM_H_

#include <limits>
#include <string>

#include "metrics/distance.h"

namespace spb {

/// Minkowski L_p norm over float vectors packed with BlobFromFloats.
/// p = 2 is the paper's Synthetic metric, p = 5 its Color metric; p may be
/// kInfinity for the L-inf norm (which is also the metric D() of the mapped
/// vector space). Continuous; d+ assumes coordinates in [0, max_coord].
///
/// p in {1, 2, inf} runs on the dispatched SIMD kernels (src/kernels/) and
/// supports early abandoning via DistanceWithCutoff; other p values use the
/// scalar pow loop and ignore the cutoff (see lp_norm.cc for why).
class LpNorm final : public DistanceFunction {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// `dim` vector dimensionality, `p` the norm order (>= 1 or kInfinity),
  /// `max_coord` the coordinate range upper bound used to derive d+.
  LpNorm(size_t dim, double p, double max_coord = 1.0);

  double Distance(BlobRef a, BlobRef b) const override;
  double DistanceWithCutoff(BlobRef a, BlobRef b,
                            double tau) const override;
  double max_distance() const override { return max_distance_; }
  bool is_discrete() const override { return false; }
  std::string name() const override { return name_; }

  double p() const { return p_; }
  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  double p_;
  double max_distance_;
  std::string name_;
};

}  // namespace spb

#endif  // SPB_METRICS_LP_NORM_H_
