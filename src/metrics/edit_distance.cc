#include "metrics/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace spb {

namespace {

// Per-thread DP rows, reused across calls: the two-row DP used to allocate
// two std::vectors per Distance() call, which dominated the cost for the
// short strings of the Words workload. Queries run concurrently (one tree,
// many threads), so the scratch is thread-local rather than a member.
struct EdScratch {
  std::vector<uint32_t> prev;
  std::vector<uint32_t> curr;
};

EdScratch& TlsScratch() {
  thread_local EdScratch scratch;
  return scratch;
}

// Off-band sentinel for the banded DP. Large enough to dominate every real
// distance, small enough that +1 never wraps.
constexpr uint32_t kBandInf = std::numeric_limits<uint32_t>::max() / 2;

}  // namespace

double EditDistance::Distance(BlobRef a, BlobRef b) const {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return static_cast<double>(n);
  if (n == 0) return static_cast<double>(m);

  // Two-row dynamic program; rows sized by the shorter string.
  const BlobRef shorter = (m <= n) ? a : b;
  const BlobRef longer = (m <= n) ? b : a;
  const size_t w = shorter.size();

  EdScratch& scratch = TlsScratch();
  std::vector<uint32_t>& prev = scratch.prev;
  std::vector<uint32_t>& curr = scratch.curr;
  prev.resize(w + 1);
  curr.resize(w + 1);
  for (size_t j = 0; j <= w; ++j) prev[j] = static_cast<uint32_t>(j);

  for (size_t i = 1; i <= longer.size(); ++i) {
    curr[0] = static_cast<uint32_t>(i);
    const uint8_t ci = longer[i - 1];
    for (size_t j = 1; j <= w; ++j) {
      const uint32_t subst = prev[j - 1] + (ci != shorter[j - 1] ? 1 : 0);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
    }
    std::swap(prev, curr);
  }
  return static_cast<double>(prev[w]);
}

double EditDistance::DistanceWithCutoff(BlobRef a, BlobRef b,
                                        double tau) const {
  const size_t m = a.size();
  const size_t n = b.size();
  const size_t longest = std::max(m, n);
  // tau at or above the longest string covers the whole DP table — the band
  // would be the full matrix, so run the plain DP (identical values, and it
  // handles tau = +inf without any float->int conversion hazards).
  if (!(tau < static_cast<double>(longest))) return Distance(a, b);
  if (tau < 0.0) {
    // Any distance (>= 0) exceeds tau; 0 is a valid "> tau" prune value.
    return 0.0;
  }

  // Ukkonen's banded DP with band half-width k = floor(tau): edit distance
  // is integral, so d <= tau iff d <= k, and the band-k DP computes d
  // exactly whenever d <= k. Everything off the |i - j| <= k diagonal band
  // costs more than k moves and is represented by kBandInf.
  const uint32_t k = static_cast<uint32_t>(tau);
  const size_t diff = (m > n) ? m - n : n - m;
  if (diff > k) return static_cast<double>(k + 1);  // d >= |m - n| > tau
  if (m == 0 || n == 0) return static_cast<double>(longest);  // <= k here

  const BlobRef shorter = (m <= n) ? a : b;
  const BlobRef longer = (m <= n) ? b : a;
  const size_t w = shorter.size();
  const size_t l = longer.size();

  EdScratch& scratch = TlsScratch();
  std::vector<uint32_t>& prev = scratch.prev;
  std::vector<uint32_t>& curr = scratch.curr;
  prev.assign(w + 1, kBandInf);
  curr.assign(w + 1, kBandInf);
  for (size_t j = 0; j <= std::min<size_t>(w, k); ++j) {
    prev[j] = static_cast<uint32_t>(j);
  }

  for (size_t i = 1; i <= l; ++i) {
    // Columns j with |i - j| <= k. Non-empty for every i: l <= w + k implies
    // i - k <= w, and i + k >= 1.
    const size_t jlo = (i > k) ? i - k : 1;
    const size_t jhi = std::min(w, i + k);
    curr[jlo - 1] = (i <= k) ? static_cast<uint32_t>(i) : kBandInf;
    uint32_t row_min = curr[jlo - 1];
    const uint8_t ci = longer[i - 1];
    for (size_t j = jlo; j <= jhi; ++j) {
      const uint32_t subst = prev[j - 1] + (ci != shorter[j - 1] ? 1 : 0);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
      row_min = std::min(row_min, curr[j]);
    }
    // DP values are non-decreasing along any path, so once the whole band
    // exceeds k the final distance must too: abandon.
    if (row_min > k) return static_cast<double>(k + 1);
    // The next row reads prev[jhi + 1] (its band extends one column further
    // right); mark it off-band before the swap.
    if (jhi + 1 <= w) curr[jhi + 1] = kBandInf;
    std::swap(prev, curr);
  }
  const uint32_t d = prev[w];
  return (d <= k) ? static_cast<double>(d) : static_cast<double>(k + 1);
}

}  // namespace spb
