#include "metrics/edit_distance.h"

#include <algorithm>
#include <vector>

namespace spb {

double EditDistance::Distance(const Blob& a, const Blob& b) const {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return static_cast<double>(n);
  if (n == 0) return static_cast<double>(m);

  // Two-row dynamic program; rows sized by the shorter string.
  const Blob& shorter = (m <= n) ? a : b;
  const Blob& longer = (m <= n) ? b : a;
  const size_t w = shorter.size();

  std::vector<uint32_t> prev(w + 1);
  std::vector<uint32_t> curr(w + 1);
  for (size_t j = 0; j <= w; ++j) prev[j] = static_cast<uint32_t>(j);

  for (size_t i = 1; i <= longer.size(); ++i) {
    curr[0] = static_cast<uint32_t>(i);
    const uint8_t ci = longer[i - 1];
    for (size_t j = 1; j <= w; ++j) {
      const uint32_t subst = prev[j - 1] + (ci != shorter[j - 1] ? 1 : 0);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
    }
    std::swap(prev, curr);
  }
  return static_cast<double>(prev[w]);
}

}  // namespace spb
