#include "net/protocol.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"

namespace spb {
namespace net {

namespace {

// Bounds-checked cursor over a received payload. Every Read* returns false
// when the declared structure runs past the buffer — the callers turn that
// into one uniform kCorruption ("truncated payload") because a frame that
// passed its CRC yet decodes short was built wrong, not damaged in flight.
struct Cursor {
  const uint8_t* data;
  size_t n;
  size_t pos;

  bool ReadU8(uint8_t* v) {
    if (pos + 1 > n) return false;
    *v = data[pos];
    pos += 1;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos + 4 > n) return false;
    *v = DecodeFixed32(data + pos);
    pos += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos + 8 > n) return false;
    *v = DecodeFixed64(data + pos);
    pos += 8;
    return true;
  }
  bool ReadF64(double* v) {
    if (pos + 8 > n) return false;
    *v = DecodeDouble(data + pos);
    pos += 8;
    return true;
  }
  bool ReadBytes(size_t len, const uint8_t** out) {
    if (len > n || pos + len > n) return false;
    *out = data + pos;
    pos += len;
    return true;
  }
};

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }
void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t buf[4];
  EncodeFixed32(buf, v);
  out->insert(out->end(), buf, buf + 4);
}
void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t buf[8];
  EncodeFixed64(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
void AppendF64(std::vector<uint8_t>* out, double v) {
  uint8_t buf[8];
  EncodeDouble(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
void AppendLenPrefixed(std::vector<uint8_t>* out, const uint8_t* data,
                       size_t n) {
  AppendU32(out, static_cast<uint32_t>(n));
  if (n > 0) out->insert(out->end(), data, data + n);
}

Status Truncated() { return Status::Corruption("truncated payload"); }

Status Overcount() {
  return Status::Corruption("declared element count exceeds payload size");
}

// Minimum encoded size of each repeated wire element. A decoder must never
// reserve/resize on a peer-declared count alone: a tiny, CRC-valid frame
// can declare count = 0xFFFFFFFF and turn one reserve() into a multi-GB
// allocation (bad_alloc on the serving thread). Every honest count is
// bounded by remaining_bytes / min_element_size; anything larger is a lie
// told by the length header and decodes as kCorruption. These are LOWER
// bounds (empty names/blobs), so growing an element never invalidates them.
constexpr size_t kMinEncodedRequest = 25;   // kind + id + radius + k + obj_len
constexpr size_t kMinEncodedOpResult = 6;   // status code + msg_len + kind
constexpr size_t kMinEncodedRangeId = 4;    // u32 id
constexpr size_t kMinEncodedNeighbor = 12;  // u32 id + f64 distance
constexpr size_t kMinStatsScalars = 330;    // empty name + every scalar field

bool CountFits(const Cursor& c, uint64_t count, size_t min_elem_bytes) {
  return count <= (c.n - c.pos) / min_elem_bytes;
}

bool KnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kPing:
    case FrameType::kStats:
    case FrameType::kRange:
    case FrameType::kKnn:
    case FrameType::kInsert:
    case FrameType::kDelete:
    case FrameType::kBatchInsert:
    case FrameType::kBatch:
    case FrameType::kReplyResults:
    case FrameType::kReplyPong:
    case FrameType::kReplyStats:
    case FrameType::kReplyError:
    case FrameType::kReplyBusy:
      return true;
  }
  return false;
}

/// Rebuilds a Status from its wire code via the public factories (the
/// (code, message) constructor is private by design).
Status MakeStatus(uint8_t code, std::string msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kBusy:
      return Status::Busy(std::move(msg));
    case Status::Code::kUnimplemented:
      return Status::Unimplemented(std::move(msg));
  }
  return Status::Corruption("unknown status code on wire");
}

/// Scalar section of a StatsSnapshot (everything but `shards`), shared by
/// the top-level snapshot and each per-shard entry.
void AppendStatsScalars(const StatsSnapshot& s, std::vector<uint8_t>* out) {
  AppendLenPrefixed(out, reinterpret_cast<const uint8_t*>(s.name.data()),
                    s.name.size());
  AppendU64(out, s.num_objects);
  AppendU64(out, s.storage_bytes);
  AppendU32(out, s.num_shards);
  AppendU64(out, s.page_accesses);
  AppendU64(out, s.distance_computations);
  AppendU64(out, s.page_reads);
  AppendU64(out, s.page_writes);
  AppendU64(out, s.cache_hits);
  AppendU64(out, s.physical_reads);
  AppendU64(out, s.prefetch_issued);
  AppendU64(out, s.prefetch_hits);
  AppendU64(out, s.coalesced_pages);
  AppendU64(out, s.dead_bytes);
  AppendU64(out, s.wal_segment_bytes);
  AppendU64(out, s.wal_checkpoint_lsn);
  AppendU64(out, s.wal_next_lsn);
  AppendU64(out, s.wal_pending_records);
  AppendU64(out, s.wal_groups);
  AppendU64(out, s.wal_fsyncs);
  AppendU64(out, s.wal_replayed_records);
  AppendU64(out, s.wq_ops);
  AppendU64(out, s.wq_groups);
  AppendU64(out, s.wq_max_group);
  AppendU64(out, s.wq_compactions);
  AppendU8(out, s.locator_model_present ? 1 : 0);
  AppendU8(out, s.locator_pla_ok ? 1 : 0);
  AppendU64(out, s.locator_epoch);
  AppendU64(out, s.locator_leaves);
  AppendU64(out, s.locator_internal_nodes);
  AppendU64(out, s.locator_segments);
  AppendU64(out, s.locator_epsilon);
  AppendU64(out, s.locator_hits);
  AppendU64(out, s.locator_fallbacks);
  AppendU64(out, s.locator_stale);
  AppendU64(out, s.locator_seek_misses);
  AppendU64(out, s.locator_rebuilds);
  AppendU64(out, s.planner_planned_range);
  AppendU64(out, s.planner_planned_knn);
  AppendU64(out, s.planner_routed_greedy);
  AppendU64(out, s.planner_routed_incremental);
  AppendU64(out, s.planner_cutoff_disabled);
  AppendF64(out, s.planner_calibration);
  AppendF64(out, s.planner_drift);
}

bool ReadStatsScalars(Cursor* c, StatsSnapshot* s) {
  uint32_t name_len = 0;
  if (!c->ReadU32(&name_len)) return false;
  const uint8_t* name = nullptr;
  if (!c->ReadBytes(name_len, &name)) return false;
  s->name.assign(reinterpret_cast<const char*>(name), name_len);
  uint8_t b = 0;
  bool ok = c->ReadU64(&s->num_objects) && c->ReadU64(&s->storage_bytes) &&
            c->ReadU32(&s->num_shards) && c->ReadU64(&s->page_accesses) &&
            c->ReadU64(&s->distance_computations) &&
            c->ReadU64(&s->page_reads) && c->ReadU64(&s->page_writes) &&
            c->ReadU64(&s->cache_hits) && c->ReadU64(&s->physical_reads) &&
            c->ReadU64(&s->prefetch_issued) &&
            c->ReadU64(&s->prefetch_hits) &&
            c->ReadU64(&s->coalesced_pages) && c->ReadU64(&s->dead_bytes) &&
            c->ReadU64(&s->wal_segment_bytes) &&
            c->ReadU64(&s->wal_checkpoint_lsn) &&
            c->ReadU64(&s->wal_next_lsn) &&
            c->ReadU64(&s->wal_pending_records) &&
            c->ReadU64(&s->wal_groups) && c->ReadU64(&s->wal_fsyncs) &&
            c->ReadU64(&s->wal_replayed_records) && c->ReadU64(&s->wq_ops) &&
            c->ReadU64(&s->wq_groups) && c->ReadU64(&s->wq_max_group) &&
            c->ReadU64(&s->wq_compactions);
  if (!ok) return false;
  if (!c->ReadU8(&b)) return false;
  s->locator_model_present = (b != 0);
  if (!c->ReadU8(&b)) return false;
  s->locator_pla_ok = (b != 0);
  return c->ReadU64(&s->locator_epoch) && c->ReadU64(&s->locator_leaves) &&
         c->ReadU64(&s->locator_internal_nodes) &&
         c->ReadU64(&s->locator_segments) &&
         c->ReadU64(&s->locator_epsilon) && c->ReadU64(&s->locator_hits) &&
         c->ReadU64(&s->locator_fallbacks) &&
         c->ReadU64(&s->locator_stale) &&
         c->ReadU64(&s->locator_seek_misses) &&
         c->ReadU64(&s->locator_rebuilds) &&
         c->ReadU64(&s->planner_planned_range) &&
         c->ReadU64(&s->planner_planned_knn) &&
         c->ReadU64(&s->planner_routed_greedy) &&
         c->ReadU64(&s->planner_routed_incremental) &&
         c->ReadU64(&s->planner_cutoff_disabled) &&
         c->ReadF64(&s->planner_calibration) &&
         c->ReadF64(&s->planner_drift);
}

}  // namespace

void AppendFrame(FrameType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out) {
  uint8_t header[kFrameHeaderSize] = {0};
  EncodeFixed32(header, kMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<uint8_t>(type);
  // header[6..7] reserved, zero.
  EncodeFixed32(header + 8, static_cast<uint32_t>(n));
  EncodeFixed32(header + 12, n > 0 ? Crc32(payload, n) : 0);
  out->insert(out->end(), header, header + kFrameHeaderSize);
  if (n > 0) out->insert(out->end(), payload, payload + n);
}

Status DecodeFrameHeader(const uint8_t* buf, FrameHeader* out) {
  if (DecodeFixed32(buf) != kMagic) {
    return Status::Corruption("bad frame magic");
  }
  out->version = buf[4];
  if (out->version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  if (!KnownFrameType(buf[5])) {
    return Status::Corruption("unknown frame type");
  }
  out->type = static_cast<FrameType>(buf[5]);
  if (DecodeFixed16(buf + 6) != 0) {
    return Status::Corruption("nonzero reserved frame bytes");
  }
  out->payload_len = DecodeFixed32(buf + 8);
  out->payload_crc = DecodeFixed32(buf + 12);
  return Status::OK();
}

Status VerifyPayload(const FrameHeader& header, const uint8_t* payload) {
  const uint32_t crc =
      header.payload_len > 0 ? Crc32(payload, header.payload_len) : 0;
  if (crc != header.payload_crc) {
    return Status::Corruption("frame payload crc mismatch");
  }
  return Status::OK();
}

Status FrameAssembler::Next(bool* have, FrameType* type,
                            std::vector<uint8_t>* payload) {
  *have = false;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kFrameHeaderSize) return Status::OK();
  FrameHeader header;
  SPB_RETURN_IF_ERROR(DecodeFrameHeader(buf_.data() + pos_, &header));
  if (header.payload_len > max_frame_bytes_) {
    return Status::InvalidArgument("frame payload exceeds size limit");
  }
  if (buf_.size() - pos_ < kFrameHeaderSize + header.payload_len) {
    return Status::OK();  // need more bytes
  }
  const uint8_t* body = buf_.data() + pos_ + kFrameHeaderSize;
  SPB_RETURN_IF_ERROR(VerifyPayload(header, body));
  payload->assign(body, body + header.payload_len);
  *type = header.type;
  pos_ += kFrameHeaderSize + header.payload_len;
  *have = true;
  return Status::OK();
}

void EncodeRequest(const Request& req, std::vector<uint8_t>* out) {
  AppendU8(out, static_cast<uint8_t>(req.kind));
  AppendU32(out, req.id);
  AppendF64(out, req.radius);
  AppendU64(out, req.k);
  AppendLenPrefixed(out, req.obj.data(), req.obj.size());
}

Status DecodeRequest(const uint8_t* data, size_t n, size_t* pos,
                     Request* out) {
  Cursor c{data, n, *pos};
  uint8_t kind = 0;
  uint32_t obj_len = 0;
  const uint8_t* obj = nullptr;
  if (!c.ReadU8(&kind) || !c.ReadU32(&out->id) || !c.ReadF64(&out->radius) ||
      !c.ReadU64(&out->k) || !c.ReadU32(&obj_len) ||
      !c.ReadBytes(obj_len, &obj)) {
    return Truncated();
  }
  if (kind > static_cast<uint8_t>(Request::Kind::kDelete)) {
    return Status::Corruption("unknown request kind on wire");
  }
  out->kind = static_cast<Request::Kind>(kind);
  out->obj.assign(obj, obj + obj_len);
  *pos = c.pos;
  return Status::OK();
}

void EncodeRequestsPayload(const std::vector<Request>& reqs,
                           std::vector<uint8_t>* out) {
  AppendU32(out, static_cast<uint32_t>(reqs.size()));
  for (const Request& req : reqs) EncodeRequest(req, out);
}

Status DecodeRequestsPayload(const uint8_t* data, size_t n,
                             std::vector<Request>* out) {
  out->clear();
  Cursor c{data, n, 0};
  uint32_t count = 0;
  if (!c.ReadU32(&count)) return Truncated();
  if (!CountFits(c, count, kMinEncodedRequest)) return Overcount();
  out->reserve(count);
  size_t pos = c.pos;
  for (uint32_t i = 0; i < count; ++i) {
    Request req;
    SPB_RETURN_IF_ERROR(DecodeRequest(data, n, &pos, &req));
    out->push_back(std::move(req));
  }
  if (pos != n) return Status::Corruption("trailing bytes after requests");
  return Status::OK();
}

void EncodeOpResult(const Request& req, const OpResult& result,
                    std::vector<uint8_t>* out) {
  AppendU8(out, static_cast<uint8_t>(result.status.code()));
  const std::string& msg = result.status.message();
  AppendLenPrefixed(out, reinterpret_cast<const uint8_t*>(msg.data()),
                    msg.size());
  AppendU8(out, static_cast<uint8_t>(req.kind));
  switch (req.kind) {
    case Request::Kind::kRange:
      AppendU32(out, static_cast<uint32_t>(result.range_ids.size()));
      for (ObjectId id : result.range_ids) AppendU32(out, id);
      break;
    case Request::Kind::kKnn:
      AppendU32(out, static_cast<uint32_t>(result.neighbors.size()));
      for (const Neighbor& nb : result.neighbors) {
        AppendU32(out, nb.id);
        AppendF64(out, nb.distance);
      }
      break;
    case Request::Kind::kInsert:
      break;
    case Request::Kind::kDelete:
      AppendU8(out, result.found ? 1 : 0);
      break;
  }
}

Status DecodeOpResult(const uint8_t* data, size_t n, size_t* pos,
                      OpResult* out) {
  Cursor c{data, n, *pos};
  uint8_t code = 0;
  uint32_t msg_len = 0;
  const uint8_t* msg = nullptr;
  uint8_t kind = 0;
  if (!c.ReadU8(&code) || !c.ReadU32(&msg_len) ||
      !c.ReadBytes(msg_len, &msg) || !c.ReadU8(&kind)) {
    return Truncated();
  }
  out->status =
      MakeStatus(code, std::string(reinterpret_cast<const char*>(msg),
                                   msg_len));
  out->range_ids.clear();
  out->neighbors.clear();
  out->found = false;
  switch (static_cast<Request::Kind>(kind)) {
    case Request::Kind::kRange: {
      uint32_t count = 0;
      if (!c.ReadU32(&count)) return Truncated();
      if (!CountFits(c, count, kMinEncodedRangeId)) return Overcount();
      out->range_ids.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t id = 0;
        if (!c.ReadU32(&id)) return Truncated();
        out->range_ids.push_back(id);
      }
      break;
    }
    case Request::Kind::kKnn: {
      uint32_t count = 0;
      if (!c.ReadU32(&count)) return Truncated();
      if (!CountFits(c, count, kMinEncodedNeighbor)) return Overcount();
      out->neighbors.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Neighbor nb;
        uint32_t id = 0;
        if (!c.ReadU32(&id) || !c.ReadF64(&nb.distance)) return Truncated();
        nb.id = id;
        out->neighbors.push_back(nb);
      }
      break;
    }
    case Request::Kind::kInsert:
      break;
    case Request::Kind::kDelete: {
      uint8_t found = 0;
      if (!c.ReadU8(&found)) return Truncated();
      out->found = (found != 0);
      break;
    }
    default:
      return Status::Corruption("unknown result kind on wire");
  }
  *pos = c.pos;
  return Status::OK();
}

void EncodeResultsPayload(const std::vector<Request>& reqs,
                          const std::vector<OpResult>& results,
                          const WireBatchStats& stats,
                          std::vector<uint8_t>* out) {
  AppendU32(out, static_cast<uint32_t>(results.size()));
  for (size_t i = 0; i < results.size(); ++i) {
    EncodeOpResult(reqs[i], results[i], out);
  }
  AppendU64(out, stats.page_accesses);
  AppendU64(out, stats.distance_computations);
  AppendU64(out, stats.busy_retries);
  AppendF64(out, stats.wall_seconds);
}

Status DecodeResultsPayload(const uint8_t* data, size_t n,
                            std::vector<OpResult>* results,
                            WireBatchStats* stats) {
  results->clear();
  Cursor c{data, n, 0};
  uint32_t count = 0;
  if (!c.ReadU32(&count)) return Truncated();
  if (!CountFits(c, count, kMinEncodedOpResult)) return Overcount();
  results->reserve(count);
  size_t pos = c.pos;
  for (uint32_t i = 0; i < count; ++i) {
    OpResult result;
    SPB_RETURN_IF_ERROR(DecodeOpResult(data, n, &pos, &result));
    results->push_back(std::move(result));
  }
  c.pos = pos;
  if (!c.ReadU64(&stats->page_accesses) ||
      !c.ReadU64(&stats->distance_computations) ||
      !c.ReadU64(&stats->busy_retries) || !c.ReadF64(&stats->wall_seconds)) {
    return Truncated();
  }
  if (c.pos != n) return Status::Corruption("trailing bytes after results");
  return Status::OK();
}

void EncodeStatsPayload(const StatsSnapshot& stats,
                        std::vector<uint8_t>* out) {
  AppendStatsScalars(stats, out);
  AppendU32(out, static_cast<uint32_t>(stats.shards.size()));
  for (const StatsSnapshot& shard : stats.shards) {
    AppendStatsScalars(shard, out);
  }
}

Status DecodeStatsPayload(const uint8_t* data, size_t n, StatsSnapshot* out) {
  *out = StatsSnapshot();
  Cursor c{data, n, 0};
  if (!ReadStatsScalars(&c, out)) return Truncated();
  uint32_t shard_count = 0;
  if (!c.ReadU32(&shard_count)) return Truncated();
  if (!CountFits(c, shard_count, kMinStatsScalars)) return Overcount();
  out->shards.resize(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (!ReadStatsScalars(&c, &out->shards[i])) return Truncated();
  }
  if (c.pos != n) return Status::Corruption("trailing bytes after stats");
  return Status::OK();
}

void EncodeErrorPayload(const Status& status, std::vector<uint8_t>* out) {
  AppendU8(out, static_cast<uint8_t>(status.code()));
  const std::string& msg = status.message();
  AppendLenPrefixed(out, reinterpret_cast<const uint8_t*>(msg.data()),
                    msg.size());
}

Status DecodeErrorPayload(const uint8_t* data, size_t n) {
  Cursor c{data, n, 0};
  uint8_t code = 0;
  uint32_t msg_len = 0;
  const uint8_t* msg = nullptr;
  if (!c.ReadU8(&code) || !c.ReadU32(&msg_len) ||
      !c.ReadBytes(msg_len, &msg)) {
    return Truncated();
  }
  return MakeStatus(code, std::string(reinterpret_cast<const char*>(msg),
                                      msg_len));
}

FrameType RequestFrameType(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kRange:
      return FrameType::kRange;
    case Request::Kind::kKnn:
      return FrameType::kKnn;
    case Request::Kind::kInsert:
      return FrameType::kInsert;
    case Request::Kind::kDelete:
      return FrameType::kDelete;
  }
  return FrameType::kBatch;
}

}  // namespace net
}  // namespace spb
