#ifndef SPB_NET_CLIENT_H_
#define SPB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/status.h"
#include "core/metric_index.h"
#include "core/stats_snapshot.h"
#include "net/protocol.h"

namespace spb {
namespace net {

/// Thin blocking client for the SPB1 protocol: one TCP connection, one
/// outstanding request at a time (write frame, read reply). Not thread-safe
/// — benches and examples open one Client per worker thread. The op methods
/// mirror MetricIndex's signatures on purpose: swapping an in-process index
/// call for a wire call is a one-line change, and the results are
/// byte-identical (tests/net_test.cc holds the gate).
///
/// A kReplyBusy from the server surfaces as Status::Busy — the same
/// transient-pushback contract as the in-process write path (PR 7): back
/// off and retry.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trips `token` through kPing / kReplyPong; fails on any mismatch.
  Status Ping(const std::string& token = "ping");

  Status Range(const Blob& query, double radius,
               std::vector<ObjectId>* ids);
  Status Knn(const Blob& query, uint64_t k, std::vector<Neighbor>* out);
  Status Insert(const Blob& obj, ObjectId id);
  Status Delete(const Blob& obj, ObjectId id, bool* found = nullptr);

  /// Any mix of ops in one kBatch frame — the wire twin of
  /// QueryExecutor::Submit(). `stats` (optional) receives the server-side
  /// batch aggregates (PA / compdists / busy retries / wall time).
  Status Submit(const std::vector<Request>& requests,
                std::vector<OpResult>* results,
                WireBatchStats* stats = nullptr);

  /// All-insert batch in one kBatchInsert frame.
  Status BatchInsert(const std::vector<Request>& inserts);

  /// Fetches the server index's full StatsSnapshot (per-shard drill-down
  /// included) via the STATS op.
  Status CollectStats(StatsSnapshot* out);

 private:
  /// Writes one frame, reads exactly one reply frame. Maps kReplyError /
  /// kReplyBusy payloads to their Status; otherwise checks the reply type
  /// and hands back the payload.
  Status Call(FrameType type, const std::vector<uint8_t>& payload,
              FrameType expected_reply, std::vector<uint8_t>* reply);
  Status WriteAll(const uint8_t* data, size_t n);
  Status ReadAll(uint8_t* data, size_t n);

  int fd_ = -1;
};

}  // namespace net
}  // namespace spb

#endif  // SPB_NET_CLIENT_H_
