#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spb {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl O_NONBLOCK failed");
  }
  return Status::OK();
}

}  // namespace

/// One client connection. The fd and all epoll state belong to the I/O
/// thread exclusively; dispatchers only touch the outbox (under mu) and the
/// atomics. The shared_ptr keeps the struct alive while a dispatcher still
/// holds a Work referencing it, even after the socket closed.
struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  FrameAssembler assembler;

  std::mutex mu;                 // guards outbox
  std::vector<uint8_t> outbox;   // encoded reply bytes not yet written
  size_t outbox_pos = 0;         // flushed prefix (I/O thread only)

  std::atomic<bool> closed{false};
  bool close_after_flush = false;  // I/O thread only
  std::atomic<size_t> queued_frames{0};
  // Encoded reply bytes the socket has not yet accepted (mirror of
  // outbox.size() - outbox_pos, refreshed under mu). Admission control
  // reads it lock-free: queued_frames alone cannot bound memory, because
  // it is released at dispatch time — before the reply is flushed — so a
  // peer that never reads replies would otherwise grow the outbox forever.
  std::atomic<size_t> outbox_unflushed{0};

  // Per-client stats.
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> ops_executed{0};
  std::atomic<uint64_t> busy_rejected{0};

  explicit Conn(size_t max_frame_bytes) : assembler(max_frame_bytes) {}
};

/// One dispatchable unit: either a batch of ops or a stats collection.
struct Server::Work {
  std::shared_ptr<Conn> conn;
  std::vector<Request> requests;
  bool stats = false;
};

Server::Server(QueryExecutor* exec, ServerOptions options)
    : exec_(exec), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind failed: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IOError("listen failed");
  }
  SPB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  // Recover the bound port (meaningful when options_.port == 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError("getsockname failed");
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::IOError("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(listen) failed");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(wake) failed");
  }

  stop_.store(false, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  const size_t n = options_.num_dispatchers > 0 ? options_.num_dispatchers : 1;
  dispatchers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_) {
    // Start() may have failed partway; release whatever it opened.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return;
  }
  stop_.store(true, std::memory_order_release);
  WakeIo();
  queue_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      conn->closed.store(true, std::memory_order_release);
      ::close(fd);
    }
    conns_.clear();
  }
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_ = false;
}

void Server::WakeIo() {
  uint64_t one = 1;
  // Best-effort: a full eventfd counter already guarantees a pending wake.
  [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

void Server::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    if (listen_paused_ &&
        std::chrono::steady_clock::now() >= listen_resume_at_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
        listen_paused_ = false;
      }
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — shutting down
    }
    bool flush_all = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        flush_all = true;  // dispatchers queued replies on some conns
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // already closed this wake
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ConnReadable(conn);
      if (events[i].events & EPOLLOUT) {
        if (!FlushConn(conn)) CloseConn(conn);
      }
    }
    if (flush_all) {
      // Snapshot then flush: FlushConn/CloseConn mutate conns_.
      std::vector<std::shared_ptr<Conn>> pending;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        pending.reserve(conns_.size());
        for (auto& [fd, conn] : conns_) pending.push_back(conn);
      }
      for (auto& conn : pending) {
        if (!FlushConn(conn)) CloseConn(conn);
      }
    }
  }
}

void Server::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion is not cured by retrying: the backlog stays
        // full, so with level-triggered epoll an immediate return would
        // make epoll_wait re-signal the listen fd instantly and spin this
        // thread at 100%. Stop polling the listen fd briefly; IoLoop
        // re-arms it once the pause elapses.
        epoll_event ev{};
        ev.events = 0;
        ev.data.fd = listen_fd_;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
          listen_paused_ = true;
          listen_resume_at_ = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(100);
        }
        return;
      }
      // EAGAIN: drained the backlog. Anything else: transient, retry on the
      // next readiness event.
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(fd, std::move(conn));
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ConnReadable(const std::shared_ptr<Conn>& conn) {
  uint8_t buf[16 * 1024];
  while (true) {
    ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->assembler.Append(buf, static_cast<size_t>(r));
      if (static_cast<size_t>(r) < sizeof(buf)) break;  // likely drained
      continue;
    }
    if (r == 0) {  // peer closed
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (!DrainFrames(conn)) {
    // A typed error reply may still be sitting in the outbox; flush what the
    // socket will take (FlushConn drops the connection once it drains, or
    // EPOLLOUT finishes the job later), then stop reading for good.
    conn->close_after_flush = true;
    if (!FlushConn(conn)) CloseConn(conn);
  }
}

bool Server::DrainFrames(const std::shared_ptr<Conn>& conn) {
  while (true) {
    bool have = false;
    FrameType type;
    std::vector<uint8_t> payload;
    Status s = conn->assembler.Next(&have, &type, &payload);
    if (!s.ok()) {
      // Framing violation: answer with the typed error (the peer may still
      // be listening) and signal the caller to drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> body;
      EncodeErrorPayload(s, &body);
      SendFrame(conn, FrameType::kReplyError, body);
      return false;
    }
    if (!have) return true;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    conn->frames_received.fetch_add(1, std::memory_order_relaxed);
    if (!HandleFrame(conn, type, std::move(payload))) return false;
  }
}

bool Server::HandleFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                         std::vector<uint8_t> payload) {
  auto protocol_error = [&](const Status& s) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> body;
    EncodeErrorPayload(s, &body);
    SendFrame(conn, FrameType::kReplyError, body);
    return false;
  };

  switch (type) {
    case FrameType::kPing:
      SendFrame(conn, FrameType::kReplyPong, payload);
      return true;

    case FrameType::kStats: {
      if (!payload.empty()) {
        return protocol_error(
            Status::InvalidArgument("stats request carries a payload"));
      }
      Work work;
      work.conn = conn;
      work.stats = true;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.push_back(std::move(work));
      }
      queue_cv_.notify_one();
      return true;
    }

    case FrameType::kRange:
    case FrameType::kKnn:
    case FrameType::kInsert:
    case FrameType::kDelete:
    case FrameType::kBatchInsert:
    case FrameType::kBatch: {
      std::vector<Request> reqs;
      if (type == FrameType::kBatch || type == FrameType::kBatchInsert) {
        Status s = DecodeRequestsPayload(payload.data(), payload.size(),
                                        &reqs);
        if (!s.ok()) return protocol_error(s);
        if (type == FrameType::kBatchInsert) {
          for (const Request& req : reqs) {
            if (req.kind != Request::Kind::kInsert) {
              return protocol_error(Status::InvalidArgument(
                  "non-insert op in BATCH_INSERT frame"));
            }
          }
        }
      } else {
        Request req;
        size_t pos = 0;
        Status s =
            DecodeRequest(payload.data(), payload.size(), &pos, &req);
        if (!s.ok()) return protocol_error(s);
        if (pos != payload.size()) {
          return protocol_error(
              Status::Corruption("trailing bytes after request"));
        }
        if (RequestFrameType(req.kind) != type) {
          return protocol_error(Status::InvalidArgument(
              "frame type does not match request kind"));
        }
        reqs.push_back(std::move(req));
      }

      // Admission control: immediate BUSY instead of unbounded queueing.
      // The client backs off and retries exactly as an in-process writer
      // does on Status::Busy (PR 7 taxonomy).
      const size_t batch = reqs.size();
      const size_t queued = conn->queued_frames.load(std::memory_order_relaxed);
      const size_t backlog =
          conn->outbox_unflushed.load(std::memory_order_relaxed);
      size_t inflight = inflight_ops_.load(std::memory_order_relaxed);
      bool admitted = queued < options_.max_conn_queue &&
                      backlog <= options_.max_conn_outbox_bytes;
      while (admitted) {
        if (inflight + batch > options_.max_inflight_ops) {
          admitted = false;
          break;
        }
        if (inflight_ops_.compare_exchange_weak(inflight, inflight + batch,
                                                std::memory_order_relaxed)) {
          break;
        }
      }
      if (!admitted) {
        ops_rejected_busy_.fetch_add(batch, std::memory_order_relaxed);
        conn->busy_rejected.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> body;
        EncodeErrorPayload(Status::Busy("server at capacity; back off"),
                           &body);
        SendFrame(conn, FrameType::kReplyBusy, body);
        return true;  // pushback, not a protocol error — keep the conn
      }

      conn->queued_frames.fetch_add(1, std::memory_order_relaxed);
      Work work;
      work.conn = conn;
      work.requests = std::move(reqs);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.push_back(std::move(work));
      }
      queue_cv_.notify_one();
      return true;
    }

    default:
      // A reply frame sent to the server is a peer bug.
      return protocol_error(
          Status::InvalidArgument("reply frame type sent to server"));
  }
}

void Server::DispatchLoop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
    }

    std::vector<uint8_t> body;
    FrameType reply_type;
    if (work.stats) {
      StatsSnapshot snapshot = exec_->index()->CollectStats();
      EncodeStatsPayload(snapshot, &body);
      reply_type = FrameType::kReplyStats;
    } else {
      BatchResult batch = exec_->Submit(work.requests);
      inflight_ops_.fetch_sub(work.requests.size(),
                              std::memory_order_relaxed);
      work.conn->queued_frames.fetch_sub(1, std::memory_order_relaxed);
      ops_executed_.fetch_add(work.requests.size(),
                              std::memory_order_relaxed);
      work.conn->ops_executed.fetch_add(work.requests.size(),
                                        std::memory_order_relaxed);
      WireBatchStats wire;
      wire.page_accesses = batch.stats.totals.page_accesses;
      wire.distance_computations = batch.stats.totals.distance_computations;
      wire.busy_retries = batch.stats.busy_retries;
      wire.wall_seconds = batch.stats.wall_seconds;
      EncodeResultsPayload(work.requests, batch.results, wire, &body);
      reply_type = FrameType::kReplyResults;
    }
    if (!work.conn->closed.load(std::memory_order_acquire)) {
      SendFrame(work.conn, reply_type, body);
    }
  }
}

void Server::SendFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                       const std::vector<uint8_t>& payload) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    AppendFrame(type, payload.data(), payload.size(), &conn->outbox);
    conn->outbox_unflushed.store(conn->outbox.size() - conn->outbox_pos,
                                 std::memory_order_relaxed);
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  conn->frames_sent.fetch_add(1, std::memory_order_relaxed);
  WakeIo();
}

bool Server::FlushConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return true;
  std::unique_lock<std::mutex> lock(conn->mu);
  while (conn->outbox_pos < conn->outbox.size()) {
    ssize_t w = ::write(conn->fd, conn->outbox.data() + conn->outbox_pos,
                        conn->outbox.size() - conn->outbox_pos);
    if (w > 0) {
      conn->outbox_pos += static_cast<size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const size_t backlog = conn->outbox.size() - conn->outbox_pos;
      conn->outbox_unflushed.store(backlog, std::memory_order_relaxed);
      if (backlog > options_.max_conn_outbox_bytes) {
        // The peer pipelines requests but is not reading replies; parking
        // its bytes indefinitely would let one connection exhaust server
        // memory. Drop it — a reply the peer never reads owes nothing.
        return false;
      }
      // Socket full: arm EPOLLOUT and resume on writability.
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      return true;
    }
    if (errno == EINTR) continue;
    return false;  // fatal (EPIPE etc.)
  }
  // Fully flushed: compact and disarm EPOLLOUT.
  conn->outbox.clear();
  conn->outbox_pos = 0;
  conn->outbox_unflushed.store(0, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  const bool drop = conn->close_after_flush;
  lock.unlock();
  if (drop) CloseConn(conn);
  return true;
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->fd);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    s.connections_active = conns_.size();
  }
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.ops_executed = ops_executed_.load(std::memory_order_relaxed);
  s.ops_rejected_busy = ops_rejected_busy_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

std::vector<ClientStats> Server::ClientStatsSnapshot() const {
  std::vector<ClientStats> out;
  std::lock_guard<std::mutex> lock(conns_mu_);
  out.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    ClientStats cs;
    cs.connection_id = conn->id;
    cs.frames_received = conn->frames_received.load(std::memory_order_relaxed);
    cs.frames_sent = conn->frames_sent.load(std::memory_order_relaxed);
    cs.ops_executed = conn->ops_executed.load(std::memory_order_relaxed);
    cs.busy_rejected = conn->busy_rejected.load(std::memory_order_relaxed);
    out.push_back(cs);
  }
  return out;
}

}  // namespace net
}  // namespace spb
