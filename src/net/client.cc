#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spb {
namespace net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect failed: " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WriteAll(const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd_, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::IOError("client write failed");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Client::ReadAll(uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd_, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::IOError("client read failed");
    }
    if (r == 0) {
      // The server drops the connection after a framing violation; a client
      // that kept the stream clean only sees this on server shutdown.
      Close();
      return Status::IOError("server closed connection");
    }
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Client::Call(FrameType type, const std::vector<uint8_t>& payload,
                    FrameType expected_reply, std::vector<uint8_t>* reply) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(type, payload.data(), payload.size(), &frame);
  SPB_RETURN_IF_ERROR(WriteAll(frame.data(), frame.size()));

  uint8_t header_buf[kFrameHeaderSize];
  SPB_RETURN_IF_ERROR(ReadAll(header_buf, kFrameHeaderSize));
  FrameHeader header;
  Status s = DecodeFrameHeader(header_buf, &header);
  if (!s.ok()) {
    Close();  // cannot resync a corrupt reply stream
    return s;
  }
  if (header.payload_len > kDefaultMaxFrameBytes) {
    Close();
    return Status::InvalidArgument("reply frame exceeds size limit");
  }
  reply->resize(header.payload_len);
  SPB_RETURN_IF_ERROR(ReadAll(reply->data(), header.payload_len));
  s = VerifyPayload(header, reply->data());
  if (!s.ok()) {
    Close();
    return s;
  }
  if (header.type == FrameType::kReplyError ||
      header.type == FrameType::kReplyBusy) {
    // Typed server-side status (kReplyBusy carries kBusy — transient
    // pushback, same taxonomy as the in-process write path).
    return DecodeErrorPayload(reply->data(), reply->size());
  }
  if (header.type != expected_reply) {
    Close();
    return Status::Corruption("unexpected reply frame type");
  }
  return Status::OK();
}

Status Client::Ping(const std::string& token) {
  std::vector<uint8_t> payload(token.begin(), token.end());
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kPing, payload, FrameType::kReplyPong, &reply));
  if (reply != payload) return Status::Corruption("pong payload mismatch");
  return Status::OK();
}

namespace {

/// Unpacks the single OpResult a single-op frame produced.
Status SingleResult(const std::vector<uint8_t>& reply, OpResult* out) {
  std::vector<OpResult> results;
  WireBatchStats stats;
  SPB_RETURN_IF_ERROR(
      DecodeResultsPayload(reply.data(), reply.size(), &results, &stats));
  if (results.size() != 1) {
    return Status::Corruption("expected exactly one result");
  }
  *out = std::move(results[0]);
  return Status::OK();
}

}  // namespace

Status Client::Range(const Blob& query, double radius,
                     std::vector<ObjectId>* ids) {
  std::vector<uint8_t> payload;
  EncodeRequest(Request::Range(query, radius), &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kRange, payload, FrameType::kReplyResults, &reply));
  OpResult result;
  SPB_RETURN_IF_ERROR(SingleResult(reply, &result));
  *ids = std::move(result.range_ids);
  return result.status;
}

Status Client::Knn(const Blob& query, uint64_t k,
                   std::vector<Neighbor>* out) {
  std::vector<uint8_t> payload;
  EncodeRequest(Request::Knn(query, k), &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kKnn, payload, FrameType::kReplyResults, &reply));
  OpResult result;
  SPB_RETURN_IF_ERROR(SingleResult(reply, &result));
  *out = std::move(result.neighbors);
  return result.status;
}

Status Client::Insert(const Blob& obj, ObjectId id) {
  std::vector<uint8_t> payload;
  EncodeRequest(Request::Insert(obj, id), &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kInsert, payload, FrameType::kReplyResults, &reply));
  OpResult result;
  SPB_RETURN_IF_ERROR(SingleResult(reply, &result));
  return result.status;
}

Status Client::Delete(const Blob& obj, ObjectId id, bool* found) {
  std::vector<uint8_t> payload;
  EncodeRequest(Request::Delete(obj, id), &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kDelete, payload, FrameType::kReplyResults, &reply));
  OpResult result;
  SPB_RETURN_IF_ERROR(SingleResult(reply, &result));
  if (found != nullptr) *found = result.found;
  return result.status;
}

Status Client::Submit(const std::vector<Request>& requests,
                      std::vector<OpResult>* results,
                      WireBatchStats* stats) {
  std::vector<uint8_t> payload;
  EncodeRequestsPayload(requests, &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kBatch, payload, FrameType::kReplyResults, &reply));
  WireBatchStats local;
  SPB_RETURN_IF_ERROR(DecodeResultsPayload(reply.data(), reply.size(),
                                           results, &local));
  if (results->size() != requests.size()) {
    return Status::Corruption("result count does not match request count");
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status Client::BatchInsert(const std::vector<Request>& inserts) {
  for (const Request& req : inserts) {
    if (req.kind != Request::Kind::kInsert) {
      return Status::InvalidArgument("BatchInsert takes only kInsert ops");
    }
  }
  std::vector<uint8_t> payload;
  EncodeRequestsPayload(inserts, &payload);
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(Call(FrameType::kBatchInsert, payload,
                           FrameType::kReplyResults, &reply));
  std::vector<OpResult> results;
  WireBatchStats stats;
  SPB_RETURN_IF_ERROR(
      DecodeResultsPayload(reply.data(), reply.size(), &results, &stats));
  for (const OpResult& result : results) {
    SPB_RETURN_IF_ERROR(result.status);
  }
  return Status::OK();
}

Status Client::CollectStats(StatsSnapshot* out) {
  std::vector<uint8_t> reply;
  SPB_RETURN_IF_ERROR(
      Call(FrameType::kStats, {}, FrameType::kReplyStats, &reply));
  return DecodeStatsPayload(reply.data(), reply.size(), out);
}

}  // namespace net
}  // namespace spb
