#ifndef SPB_NET_PROTOCOL_H_
#define SPB_NET_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/stats_snapshot.h"
#include "exec/request.h"

namespace spb {
namespace net {

// ---------------------------------------------------------------------------
// Frame layout (docs/PROTOCOL.md is the normative description).
//
// Every message — request or reply, either direction — is one frame:
//
//   offset  size  field
//   0       4     magic 0x31425053 ("SPB1" on the wire, little-endian)
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//   8       4     payload length in bytes
//   12      4     CRC-32 of the payload bytes (0 for an empty payload)
//   16      ...   payload
//
// All integers are little-endian fixed-width (common/coding.h), doubles are
// IEEE-754 bit patterns — the same conventions as the on-disk structures,
// and we only target little-endian hosts (static_assert'ed there).
//
// Versioning rule: the header is frozen forever. Payload layouts may only
// ever APPEND fields within a version; any removal/reorder bumps
// kProtocolVersion, and a server replies kReplyError(kInvalidArgument) to a
// version it does not speak — it never guesses.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kMagic = 0x31425053u;  // "SPB1"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;

/// Hard cap a peer may impose on payload size. A frame whose declared
/// length exceeds the receiver's cap is a protocol violation (the receiver
/// drops the connection — it cannot trust the stream enough to resync).
inline constexpr size_t kDefaultMaxFrameBytes = size_t(32) << 20;

enum class FrameType : uint8_t {
  // Requests (client -> server).
  kPing = 0x01,         ///< payload echoed back verbatim in kReplyPong
  kStats = 0x02,        ///< empty payload -> kReplyStats
  kRange = 0x03,        ///< one Request (kind must be kRange)
  kKnn = 0x04,          ///< one Request (kind must be kKnn)
  kInsert = 0x05,       ///< one Request (kind must be kInsert)
  kDelete = 0x06,       ///< one Request (kind must be kDelete)
  kBatchInsert = 0x07,  ///< u32 count | count x Request (all kInsert)
  kBatch = 0x08,        ///< u32 count | count x Request (any mix)

  // Replies (server -> client).
  kReplyResults = 0x81,  ///< results payload (EncodeResultsPayload)
  kReplyPong = 0x82,     ///< echoed kPing payload
  kReplyStats = 0x83,    ///< serialized StatsSnapshot
  kReplyError = 0x84,    ///< u8 status code | u32 len | message
  kReplyBusy = 0x85,     ///< admission control pushback; u32 len | message
};

/// Decoded frame header (magic/reserved validated away).
struct FrameHeader {
  uint8_t version = 0;
  FrameType type = FrameType::kPing;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Batch-level aggregates a kReplyResults frame carries after the per-op
/// results: the exact PA/compdists deltas and wall time the executor
/// measured for this submission. Under concurrent connections the counter
/// deltas interleave with other batches' work (same caveat as
/// BatchStats::totals — aggregates are exact only for a quiesced index),
/// but for a lone client they are exactly the in-process numbers, which is
/// what the wire-identity gate asserts.
struct WireBatchStats {
  uint64_t page_accesses = 0;
  uint64_t distance_computations = 0;
  uint64_t busy_retries = 0;
  double wall_seconds = 0.0;
};

// --- Frame assembly -------------------------------------------------------

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out);

/// Parses and validates 16 header bytes: magic, version, known frame type,
/// zero reserved bytes. Returns kCorruption (bad magic / reserved / type —
/// the stream is untrustworthy) or kInvalidArgument (right magic, wrong
/// version — a well-formed peer we do not speak to).
Status DecodeFrameHeader(const uint8_t* buf, FrameHeader* out);

/// CRC check of a received payload against its header.
Status VerifyPayload(const FrameHeader& header, const uint8_t* payload);

/// Incremental frame parser for a nonblocking byte stream: feed bytes as
/// they arrive, pull complete validated frames out. Owned by one reader
/// thread (no locking). A returned error is terminal for the stream — the
/// caller replies with a typed error where possible and drops the
/// connection (after a framing error there is no trustworthy resync point).
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Extracts the next complete frame. On success sets *have=true and fills
  /// type/payload; sets *have=false when more bytes are needed. Errors:
  /// see DecodeFrameHeader, plus kInvalidArgument for an oversized declared
  /// payload length and kCorruption for a CRC mismatch.
  Status Next(bool* have, FrameType* type, std::vector<uint8_t>* payload);

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
};

// --- Request / result payloads --------------------------------------------

/// One Request, encoded as
///   u8 kind | u32 id | f64 radius | u64 k | u32 obj_len | obj bytes
/// — every field always present (unused ones zero), so the decoder is
/// branch-free over kinds and the struct round-trips verbatim.
void EncodeRequest(const Request& req, std::vector<uint8_t>* out);

/// Decodes one Request starting at data[*pos]; advances *pos past it.
Status DecodeRequest(const uint8_t* data, size_t n, size_t* pos,
                     Request* out);

/// The payload of kBatch / kBatchInsert: u32 count | count x Request.
void EncodeRequestsPayload(const std::vector<Request>& reqs,
                           std::vector<uint8_t>* out);
Status DecodeRequestsPayload(const uint8_t* data, size_t n,
                             std::vector<Request>* out);

/// One OpResult, encoded as
///   u8 status code | u32 msg_len | msg | u8 kind | kind-specific body
///     kRange:  u32 n | n x u32 id
///     kKnn:    u32 n | n x (u32 id | f64 distance)
///     kInsert: (empty)
///     kDelete: u8 found
void EncodeOpResult(const Request& req, const OpResult& result,
                    std::vector<uint8_t>* out);
Status DecodeOpResult(const uint8_t* data, size_t n, size_t* pos,
                      OpResult* out);

/// The payload of kReplyResults:
///   u32 count | count x OpResult | WireBatchStats trailer
///     (u64 page_accesses | u64 distance_computations | u64 busy_retries |
///      f64 wall_seconds)
void EncodeResultsPayload(const std::vector<Request>& reqs,
                          const std::vector<OpResult>& results,
                          const WireBatchStats& stats,
                          std::vector<uint8_t>* out);
Status DecodeResultsPayload(const uint8_t* data, size_t n,
                            std::vector<OpResult>* results,
                            WireBatchStats* stats);

// --- Stats / error payloads -----------------------------------------------

/// StatsSnapshot, scalar fields in declaration order (name length-prefixed,
/// bools as u8, doubles as IEEE-754), then u32 shard_count and the shard
/// snapshots in the same layout (shards never nest further).
void EncodeStatsPayload(const StatsSnapshot& stats,
                        std::vector<uint8_t>* out);
Status DecodeStatsPayload(const uint8_t* data, size_t n, StatsSnapshot* out);

/// kReplyError payload: u8 Status::Code | u32 len | message. kReplyBusy
/// reuses the message part (its code is implicitly kBusy — the PR 7
/// taxonomy: transient, caller backs off and retries).
void EncodeErrorPayload(const Status& status, std::vector<uint8_t>* out);
/// Reconstructs the Status a kReplyError payload carries.
Status DecodeErrorPayload(const uint8_t* data, size_t n);

/// Frame type a single-op request of this kind travels as.
FrameType RequestFrameType(Request::Kind kind);

}  // namespace net
}  // namespace spb

#endif  // SPB_NET_PROTOCOL_H_
