#ifndef SPB_NET_SERVER_H_
#define SPB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/query_executor.h"
#include "net/protocol.h"

namespace spb {
namespace net {

struct ServerOptions {
  /// Address to bind. The tests and benches use loopback only.
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; Server::port() reports it.
  uint16_t port = 0;
  /// Threads bridging decoded frames onto the (blocking)
  /// QueryExecutor::Submit(). These threads only *wait* on the executor —
  /// the executor's own pool does the index work — so a handful suffices to
  /// keep the pool fed from many connections.
  size_t num_dispatchers = 2;
  /// Admission control, reusing the PR 7 backoff taxonomy: once this many
  /// ops are queued or running, further frames get an immediate kReplyBusy
  /// (transient — client backs off and retries) instead of queueing without
  /// bound.
  size_t max_inflight_ops = 4096;
  /// Per-connection cap on frames waiting for a dispatcher: one client
  /// cannot occupy the whole admission budget.
  size_t max_conn_queue = 64;
  /// Frames declaring a larger payload are a protocol violation.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection cap on encoded reply bytes not yet accepted by the
  /// socket. A peer that pipelines requests but never reads replies parks
  /// its results here; once the unflushed outbox exceeds this cap the
  /// connection is dropped (and new frames on it get kReplyBusy first), so
  /// one slow reader cannot grow server memory without bound.
  size_t max_conn_outbox_bytes = size_t(128) << 20;
};

/// Aggregate server counters (relaxed snapshots; exact once quiesced).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t ops_executed = 0;
  uint64_t ops_rejected_busy = 0;
  uint64_t protocol_errors = 0;
};

/// Per-client counters, keyed by connection id in ClientStatsSnapshot().
struct ClientStats {
  uint64_t connection_id = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t ops_executed = 0;
  uint64_t busy_rejected = 0;
};

/// Async TCP server speaking the SPB1 frame protocol (docs/PROTOCOL.md).
///
/// Threading model: ONE epoll I/O thread owns every socket — it accepts,
/// reads, parses frames (FrameAssembler per connection), answers kPing
/// inline, and flushes reply bytes; it never blocks on the index. Decoded
/// op frames go through admission control and onto a dispatcher pool, which
/// bridges to the blocking QueryExecutor::Submit() — so ops from every
/// connection are multiplexed onto the ONE executor pool the in-process
/// paths use, and a wire op is byte-identical to an in-process Submit() of
/// the same Request (the identity gate in tests/net_test.cc holds this).
/// Dispatchers append encoded replies to a per-connection outbox (mutex)
/// and wake the I/O thread via an eventfd; only the I/O thread ever touches
/// a socket fd, which removes every fd-lifetime race by construction.
///
/// Protocol violations (bad magic/version/CRC, oversized or malformed
/// frames) get a typed kReplyError where the stream still permits one, then
/// the connection is dropped — after a framing error there is no
/// trustworthy resync point.
class Server {
 public:
  /// `exec` must outlive the server. The server submits wire ops through it
  /// and serves kStats from exec->index()->CollectStats().
  Server(QueryExecutor* exec, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O + dispatcher threads.
  Status Start();
  /// Drains in-flight ops, closes every connection, joins the threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Bound port (the ephemeral one when options.port == 0). 0 before
  /// Start().
  uint16_t port() const { return port_; }

  ServerStats stats() const;
  /// Per-client drill-down for every currently-open connection.
  std::vector<ClientStats> ClientStatsSnapshot() const;

 private:
  struct Conn;
  struct Work;

  void IoLoop();
  void DispatchLoop();
  void AcceptReady();
  void ConnReadable(const std::shared_ptr<Conn>& conn);
  /// Parses every complete frame buffered on `conn`; returns false when the
  /// connection must be dropped (protocol error or fatal send failure).
  bool DrainFrames(const std::shared_ptr<Conn>& conn);
  /// Handles one validated frame; returns false to drop the connection.
  bool HandleFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                   std::vector<uint8_t> payload);
  /// Encodes a frame into the connection outbox and wakes the flusher.
  void SendFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                 const std::vector<uint8_t>& payload);
  /// Flushes as much of the outbox as the socket accepts (I/O thread only);
  /// returns false on a fatal socket error.
  bool FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void WakeIo();

  QueryExecutor* exec_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: dispatchers -> I/O thread
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::thread io_thread_;
  std::vector<std::thread> dispatchers_;

  // Accept backoff (I/O thread only): on fd exhaustion the listen fd leaves
  // the epoll interest set until the deadline, instead of letting the
  // level-triggered backlog re-signal — and spin — the I/O thread.
  bool listen_paused_ = false;
  std::chrono::steady_clock::time_point listen_resume_at_{};

  // Dispatch queue (dispatchers block here; the I/O thread only pushes).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;

  // Connection table. Only the I/O thread mutates it; stats readers take
  // the mutex for a consistent snapshot.
  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_conn_id_{1};

  // Admission control: ops queued or running across all connections.
  std::atomic<size_t> inflight_ops_{0};

  // Aggregate counters.
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> ops_executed_{0};
  std::atomic<uint64_t> ops_rejected_busy_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace net
}  // namespace spb

#endif  // SPB_NET_SERVER_H_
