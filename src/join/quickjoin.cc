#include "join/quickjoin.h"

#include <chrono>

namespace spb {

namespace {
// Maximum partition depth before falling back to nested loop: guards against
// degenerate partitions (many identical objects).
constexpr int kMaxDepth = 64;
}  // namespace

double Quickjoin::Distance(const Blob& a, const Blob& b) {
  ++compdists_;
  return metric_->Distance(a, b);
}

bool Quickjoin::WithinEps(const Blob& a, const Blob& b, double eps) {
  ++compdists_;
  return metric_->DistanceWithCutoff(a, b, eps) <= eps;
}

std::vector<JoinPair> Quickjoin::Join(const std::vector<Blob>& q_objects,
                                      const std::vector<Blob>& o_objects,
                                      double epsilon, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  compdists_ = 0;
  rng_state_ = seed_ * 0x9E3779B97F4A7C15ull + 1;

  std::vector<Item> items;
  items.reserve(q_objects.size() + o_objects.size());
  for (size_t i = 0; i < q_objects.size(); ++i) {
    items.push_back(Item{&q_objects[i], ObjectId(i), true, 0.0});
  }
  for (size_t i = 0; i < o_objects.size(); ++i) {
    items.push_back(Item{&o_objects[i], ObjectId(i), false, 0.0});
  }
  std::vector<JoinPair> out;
  Recurse(std::move(items), epsilon, &out, 0);

  if (stats != nullptr) {
    stats->distance_computations = compdists_;
    stats->page_accesses = 0;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return out;
}

void Quickjoin::BruteForce(const std::vector<Item>& items, double eps,
                           std::vector<JoinPair>* out) {
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      if (items[i].from_q == items[j].from_q) continue;
      if (WithinEps(*items[i].obj, *items[j].obj, eps)) {
        const Item& q = items[i].from_q ? items[i] : items[j];
        const Item& o = items[i].from_q ? items[j] : items[i];
        out->push_back(JoinPair{q.id, o.id});
      }
    }
  }
}

void Quickjoin::BruteForceCross(const std::vector<Item>& a,
                                const std::vector<Item>& b, double eps,
                                std::vector<JoinPair>* out) {
  for (const Item& x : a) {
    for (const Item& y : b) {
      if (x.from_q == y.from_q) continue;
      if (WithinEps(*x.obj, *y.obj, eps)) {
        const Item& q = x.from_q ? x : y;
        const Item& o = x.from_q ? y : x;
        out->push_back(JoinPair{q.id, o.id});
      }
    }
  }
}

void Quickjoin::Recurse(std::vector<Item> items, double eps,
                        std::vector<JoinPair>* out, int depth) {
  if (items.size() <= small_threshold_ || depth >= kMaxDepth) {
    BruteForce(items, eps, out);
    return;
  }
  // Random pivot and ball radius (distance to a second random object).
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const size_t pi = size_t(rng_state_ >> 33) % items.size();
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const size_t ri = size_t(rng_state_ >> 33) % items.size();
  const Blob& pivot = *items[pi].obj;
  const double r = Distance(pivot, *items[ri].obj);

  std::vector<Item> inner, outer, win_in, win_out;
  for (Item& it : items) {
    it.pivot_dist = Distance(*it.obj, pivot);
    if (it.pivot_dist < r) {
      if (it.pivot_dist >= r - eps) win_in.push_back(it);
      inner.push_back(std::move(it));
    } else {
      if (it.pivot_dist <= r + eps) win_out.push_back(it);
      outer.push_back(std::move(it));
    }
  }
  if (inner.empty() || outer.empty()) {
    // Degenerate split: all objects on one side. Retry deeper with a new
    // random pivot; the depth guard bottoms out into nested loop.
    Recurse(std::move(inner.empty() ? outer : inner), eps, out, depth + 1);
    return;
  }
  RecurseWindows(std::move(win_in), std::move(win_out), eps, out, depth + 1);
  Recurse(std::move(inner), eps, out, depth + 1);
  Recurse(std::move(outer), eps, out, depth + 1);
}

Status QuickjoinOverTrees(SpbTree& spb_q, SpbTree& spb_o, double epsilon,
                          std::vector<JoinPair>* result, QueryStats* stats,
                          size_t small_threshold, uint64_t seed) {
  result->clear();
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before_q = spb_q.cumulative_stats();
  const QueryStats before_o = spb_o.cumulative_stats();

  // Materialise both object sets. Each scan runs under its own readahead
  // session, so a cold RAF is pulled in with coalesced span reads. Quickjoin
  // identifies objects positionally, so remember the stored ids.
  auto load = [](SpbTree& tree, std::vector<Blob>* objs,
                 std::vector<ObjectId>* ids) -> Status {
    Readahead ra = tree.NewReadaheadSession();
    return tree.raf().ScanAll(
        [&](uint64_t, ObjectId id, const Blob& obj) {
          ids->push_back(id);
          objs->push_back(obj);
        },
        &ra);
  };
  std::vector<Blob> q_objs, o_objs;
  std::vector<ObjectId> q_ids, o_ids;
  SPB_RETURN_IF_ERROR(load(spb_q, &q_objs, &q_ids));
  SPB_RETURN_IF_ERROR(load(spb_o, &o_objs, &o_ids));

  Quickjoin qj(&spb_q.metric(), small_threshold, seed);
  QueryStats join_stats;
  const std::vector<JoinPair> raw =
      qj.Join(q_objs, o_objs, epsilon, &join_stats);
  result->reserve(raw.size());
  for (const JoinPair& p : raw) {
    result->push_back(
        JoinPair{q_ids[size_t(p.q_id)], o_ids[size_t(p.o_id)]});
  }

  if (stats != nullptr) {
    const QueryStats after_q = spb_q.cumulative_stats();
    const QueryStats after_o = spb_o.cumulative_stats();
    stats->page_accesses = (after_q.page_accesses - before_q.page_accesses) +
                           (after_o.page_accesses - before_o.page_accesses);
    stats->distance_computations = join_stats.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

void Quickjoin::RecurseWindows(std::vector<Item> a, std::vector<Item> b,
                               double eps, std::vector<JoinPair>* out,
                               int depth) {
  if (a.empty() || b.empty()) return;
  if (a.size() * b.size() <= small_threshold_ * small_threshold_ ||
      depth >= kMaxDepth) {
    BruteForceCross(a, b, eps, out);
    return;
  }
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const Blob& pivot = *a[size_t(rng_state_ >> 33) % a.size()].obj;
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const Blob& rref = *b[size_t(rng_state_ >> 33) % b.size()].obj;
  const double r = Distance(pivot, rref);

  auto split = [&](std::vector<Item>& src, std::vector<Item>* inner,
                   std::vector<Item>* outer, std::vector<Item>* wi,
                   std::vector<Item>* wo) {
    for (Item& it : src) {
      it.pivot_dist = Distance(*it.obj, pivot);
      if (it.pivot_dist < r) {
        if (it.pivot_dist >= r - eps) wi->push_back(it);
        inner->push_back(std::move(it));
      } else {
        if (it.pivot_dist <= r + eps) wo->push_back(it);
        outer->push_back(std::move(it));
      }
    }
  };
  std::vector<Item> a_in, a_out, a_wi, a_wo, b_in, b_out, b_wi, b_wo;
  split(a, &a_in, &a_out, &a_wi, &a_wo);
  split(b, &b_in, &b_out, &b_wi, &b_wo);
  if ((a_in.empty() && b_in.empty()) || (a_out.empty() && b_out.empty())) {
    BruteForceCross(a, b, eps, out);
    return;
  }
  RecurseWindows(std::move(a_in), std::move(b_in), eps, out, depth + 1);
  RecurseWindows(std::move(a_out), std::move(b_out), eps, out, depth + 1);
  RecurseWindows(std::move(a_wi), std::move(b_wo), eps, out, depth + 1);
  RecurseWindows(std::move(a_wo), std::move(b_wi), eps, out, depth + 1);
}

}  // namespace spb
