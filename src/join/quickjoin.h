#ifndef SPB_JOIN_QUICKJOIN_H_
#define SPB_JOIN_QUICKJOIN_H_

#include <vector>

#include "core/spb_tree.h"
#include "join/join_common.h"

namespace spb {

/// Quickjoin (Jacox & Samet, TODS 2008; improved variant of Fredriksson &
/// Braithwaite, SISAP 2013) — the in-memory divide-and-conquer similarity
/// join the paper compares against (QJA in Fig. 17). Extended here to R-S
/// joins by tagging each object with its source set and reporting only
/// cross-source pairs.
///
/// The set is recursively ball-partitioned around random pivots; objects
/// within eps of the partition boundary form "window" sets joined
/// recursively, so no qualifying pair is lost. No index is built in advance
/// — partitioning cost is paid per join, which is exactly the drawback the
/// paper highlights.
class Quickjoin {
 public:
  /// `small_threshold`: partitions at most this large are joined by nested
  /// loop (the paper's base case).
  explicit Quickjoin(const DistanceFunction* metric,
                     size_t small_threshold = 32, uint64_t seed = 42)
      : metric_(metric), small_threshold_(small_threshold), seed_(seed) {}

  /// Computes SJ(Q, O, eps). `stats` reports distance computations (the
  /// algorithm is memory-resident: no page accesses).
  std::vector<JoinPair> Join(const std::vector<Blob>& q_objects,
                             const std::vector<Blob>& o_objects,
                             double epsilon, QueryStats* stats = nullptr);

 private:
  struct Item {
    const Blob* obj;
    ObjectId id;
    bool from_q;
    double pivot_dist;  // scratch: distance to the current pivot
  };

  void Recurse(std::vector<Item> items, double eps,
               std::vector<JoinPair>* out, int depth);
  void RecurseWindows(std::vector<Item> a, std::vector<Item> b, double eps,
                      std::vector<JoinPair>* out, int depth);
  void BruteForce(const std::vector<Item>& items, double eps,
                  std::vector<JoinPair>* out);
  void BruteForceCross(const std::vector<Item>& a, const std::vector<Item>& b,
                       double eps, std::vector<JoinPair>* out);
  double Distance(const Blob& a, const Blob& b);
  // d(a, b) <= eps via the early-abandoning path; counts as one compdist.
  // Only for membership tests — partition distances need the exact value.
  bool WithinEps(const Blob& a, const Blob& b, double eps);

  const DistanceFunction* metric_;
  size_t small_threshold_;
  uint64_t seed_;
  uint64_t compdists_ = 0;
  uint64_t rng_state_ = 0;
};

/// Runs Quickjoin over the object sets stored in two SPB-trees (the QJA
/// configuration of Fig. 17: same disk-resident inputs as SJA, different
/// algorithm). Both RAFs are materialised with readahead-assisted full
/// scans — the dominant cold cost — so span reads replace per-page fetches;
/// the reported pairs carry the original ObjectIds stored in the RAFs.
///
/// `stats` reports the RAF page accesses of the two loading scans plus the
/// join's distance computations.
Status QuickjoinOverTrees(SpbTree& spb_q, SpbTree& spb_o, double epsilon,
                          std::vector<JoinPair>* result,
                          QueryStats* stats = nullptr,
                          size_t small_threshold = 32, uint64_t seed = 42);

}  // namespace spb

#endif  // SPB_JOIN_QUICKJOIN_H_
