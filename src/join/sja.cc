#include "join/sja.h"

#include <chrono>

namespace spb {

namespace {

// Forward scan over one SPB-tree's leaf level in ascending SFC order,
// against a pinned snapshot. Two drivers, same entry sequence:
//
//  - With a learned-locator model valid for the snapshot, the scan walks the
//    model's leaf directory flat — one counted GetNode per non-empty leaf,
//    zero inner-node reads (the cursor's parent-stack descent is elided
//    entirely; the directory skips empty leaves exactly like the cursor
//    does).
//  - Otherwise the B+-tree's parent-stack LeafCursor drives it (the leaf
//    sibling chain is not maintained under copy-on-write updates).
//
// Each time the scan enters a new leaf, the RAF pages of all its entries are
// handed to the tree's readahead session: leaf entries are SFC-sorted and
// the RAF stores objects in the same order, so the page ids form
// near-contiguous runs that coalesce into span reads.
class JoinLeafScan {
 public:
  JoinLeafScan(SpbTree* tree, const Snapshot& snap, Readahead* ra)
      : tree_(tree),
        model_(tree->LocatorForSnapshot(snap)),
        cur_(&tree->btree(), TreeVersion{snap.version().root,
                                         snap.version().height,
                                         snap.version().num_entries}),
        ra_(ra) {}

  Status Init() {
    if (model_ != nullptr) return LoadLeaf();
    SPB_RETURN_IF_ERROR(cur_.SeekFirst());
    if (cur_.valid()) ScheduleLeaf(cur_.leaf());
    return Status::OK();
  }

  bool done() const {
    return model_ != nullptr ? !leaf_valid_ : !cur_.valid();
  }
  const LeafEntry& current() const {
    return model_ != nullptr ? h_->node.leaf_entries[pos_] : cur_.entry();
  }

  Status Next() {
    if (model_ != nullptr) {
      if (++pos_ < h_->node.leaf_entries.size()) return Status::OK();
      ++rank_;
      return LoadLeaf();
    }
    const PageId before = cur_.leaf().id;
    SPB_RETURN_IF_ERROR(cur_.Next());
    if (cur_.valid() && cur_.leaf().id != before) ScheduleLeaf(cur_.leaf());
    return Status::OK();
  }

 private:
  // Directory mode: fetch the leaf at rank_ (every directory leaf is
  // non-empty by construction). Leaf reads stay counted — only the inner
  // descent differs from cursor mode.
  Status LoadLeaf() {
    leaf_valid_ = false;
    pos_ = 0;
    if (rank_ >= model_->num_leaves()) return Status::OK();
    SPB_RETURN_IF_ERROR(
        tree_->btree().GetNode(model_->leaf_id(rank_), &scratch_, &h_));
    leaf_valid_ = true;
    ScheduleLeaf(h_->node);
    return Status::OK();
  }

  void ScheduleLeaf(const BptNode& leaf) {
    if (ra_ == nullptr) return;
    pages_.clear();
    pages_.reserve(leaf.leaf_entries.size() * 2);
    for (const LeafEntry& e : leaf.leaf_entries) {
      const PageId p = Raf::PageOf(e.ptr);
      pages_.push_back(p);
      pages_.push_back(p + 1);  // records may straddle a page boundary
    }
    ra_->Schedule(pages_);
  }

  SpbTree* tree_;
  std::shared_ptr<const LeafModel> model_;
  BPlusTree::LeafCursor cur_;
  Readahead* ra_;
  std::vector<PageId> pages_;
  // Directory-mode state.
  size_t rank_ = 0;
  size_t pos_ = 0;
  bool leaf_valid_ = false;
  DecodedNode scratch_;
  NodeHandle h_;
};

// A visited object kept in one of SJA's two lists.
struct ListItem {
  ObjectId id;
  Blob obj;
  std::vector<uint32_t> cell;
  uint64_t sfc;
  uint64_t min_rr;  // Z-key of RR(x, eps)'s low corner (Lemma 6)
  uint64_t max_rr;  // Z-key of RR(x, eps)'s high corner
};

// Conservative cell-interval overlap test implementing Lemma 5 from cells
// only: can an object in cell `co` be within eps of an object in cell `cx`?
bool CellsMayQualify(const Discretizer& disc, const std::vector<uint32_t>& cx,
                     const std::vector<uint32_t>& co, double eps) {
  for (size_t i = 0; i < cx.size(); ++i) {
    const double x_lo = disc.CellLow(cx[i]) - eps;
    const double x_hi = disc.CellHigh(cx[i]) + eps;
    if (disc.CellHigh(co[i]) < x_lo || disc.CellLow(co[i]) > x_hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status SimilarityJoinSJA(SpbTree& spb_q, SpbTree& spb_o, double epsilon,
                         std::vector<JoinPair>* result, QueryStats* stats) {
  result->clear();
  // ---- Validate the shared-mapping preconditions.
  if (spb_q.space().curve().type() != CurveType::kZOrder ||
      spb_o.space().curve().type() != CurveType::kZOrder) {
    return Status::InvalidArgument(
        "SJA requires both SPB-trees to use the Z-order curve (Lemma 6)");
  }
  if (spb_q.space().pivots().Serialize() !=
      spb_o.space().pivots().Serialize()) {
    return Status::InvalidArgument(
        "SJA requires both SPB-trees to share one pivot table");
  }
  if (spb_q.space().curve().bits() != spb_o.space().curve().bits() ||
      spb_q.space().discretizer().delta() !=
          spb_o.space().discretizer().delta()) {
    return Status::InvalidArgument(
        "SJA requires both SPB-trees to share the same grid");
  }

  const auto start = std::chrono::steady_clock::now();
  const QueryStats before_q = spb_q.cumulative_stats();
  const QueryStats before_o = spb_o.cumulative_stats();

  const MappedSpace& space = spb_q.space();
  const Discretizer& disc = space.discretizer();
  const SpaceFillingCurve& curve = space.curve();
  const double d_plus = disc.d_plus();

  // Builds a ListItem (decode cells, fetch object, derive the Lemma 6
  // interval corners) for a leaf entry of `tree`. `ra` is that tree's
  // readahead session, fed by the LeafCursor.
  BlobView fetch_view;  // reused across all fetches (zero-copy path)
  auto make_item = [&](SpbTree& tree, const LeafEntry& e, Readahead* ra,
                       ListItem* item) -> Status {
    curve.Decode(e.key, &item->cell);
    item->sfc = e.key;
    if (tree.options().enable_zero_copy) {
      // The item outlives the pin (it joins a long-lived list), so copy out
      // of the view; the view itself is reused, and accounting matches Get.
      SPB_RETURN_IF_ERROR(tree.raf().GetView(e.ptr, &item->id, &fetch_view,
                                             ra));
      item->obj.assign(fetch_view.data(), fetch_view.data() + fetch_view.size());
    } else {
      SPB_RETURN_IF_ERROR(tree.raf().Get(e.ptr, &item->id, &item->obj, ra));
    }
    const size_t n = item->cell.size();
    std::vector<uint32_t> lo(n), hi(n);
    for (size_t i = 0; i < n; ++i) {
      const double low = disc.CellLow(item->cell[i]) - epsilon;
      const double high =
          std::min(d_plus, disc.CellHigh(item->cell[i]) + epsilon);
      lo[i] = disc.ToCell(std::max(0.0, low));
      hi[i] = disc.ToCell(high);
    }
    item->min_rr = curve.Encode(lo);
    item->max_rr = curve.Encode(hi);
    return Status::OK();
  };

  // Verify(x, L): probe the opposite list, evicting items whose maxRR lies
  // before x's SFC (no future partner can exist for them either). With the
  // cutoff enabled the join radius is the pruning threshold: d <= epsilon
  // decides membership either way, and the metric may abandon early for
  // non-qualifying pairs.
  const bool use_cutoff = spb_q.options().enable_cutoff;
  auto verify = [&](const ListItem& x, std::vector<ListItem>* list,
                    bool x_is_outer) {
    for (size_t idx = list->size(); idx-- > 0;) {
      const ListItem& o = (*list)[idx];
      if (o.max_rr < x.sfc) {  // Lemma 6 eviction
        list->erase(list->begin() + ptrdiff_t(idx));
        continue;
      }
      if (o.sfc >= x.min_rr && o.sfc <= x.max_rr &&  // Lemma 6
          CellsMayQualify(disc, x.cell, o.cell, epsilon)) {  // Lemma 5
        const double d =
            use_cutoff
                ? spb_q.metric().DistanceWithCutoff(x.obj, o.obj, epsilon)
                : spb_q.metric().Distance(x.obj, o.obj);
        if (d <= epsilon) {
          result->push_back(x_is_outer ? JoinPair{x.id, o.id}
                                       : JoinPair{o.id, x.id});
        }
      }
    }
  };

  // One pinned snapshot and one readahead session per tree: the snapshots
  // hold both versions stable for the whole merge, and each tree's leaf scan
  // visits its RAF in ascending offset order, so the scheduled pages
  // coalesce into span reads.
  const Snapshot snap_q = spb_q.AcquireSnapshot();
  const Snapshot snap_o = spb_o.AcquireSnapshot();
  Readahead ra_q = spb_q.NewReadaheadSession();
  Readahead ra_o = spb_o.NewReadaheadSession();
  JoinLeafScan cq(&spb_q, snap_q, &ra_q), co(&spb_o, snap_o, &ra_o);
  SPB_RETURN_IF_ERROR(cq.Init());
  SPB_RETURN_IF_ERROR(co.Init());
  std::vector<ListItem> list_q, list_o;
  ListItem item;

  while (!cq.done() || !co.done()) {
    const bool take_q =
        co.done() || (!cq.done() && cq.current().key <= co.current().key);
    if (take_q) {
      SPB_RETURN_IF_ERROR(make_item(spb_q, cq.current(), &ra_q, &item));
      verify(item, &list_o, /*x_is_outer=*/true);
      list_q.push_back(std::move(item));
      SPB_RETURN_IF_ERROR(cq.Next());
    } else {
      SPB_RETURN_IF_ERROR(make_item(spb_o, co.current(), &ra_o, &item));
      verify(item, &list_q, /*x_is_outer=*/false);
      list_o.push_back(std::move(item));
      SPB_RETURN_IF_ERROR(co.Next());
    }
  }

  if (stats != nullptr) {
    const QueryStats after_q = spb_q.cumulative_stats();
    const QueryStats after_o = spb_o.cumulative_stats();
    stats->page_accesses = (after_q.page_accesses - before_q.page_accesses) +
                           (after_o.page_accesses - before_o.page_accesses);
    stats->distance_computations =
        (after_q.distance_computations - before_q.distance_computations) +
        (after_o.distance_computations - before_o.distance_computations);
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

Status RangeJoin(const std::vector<Blob>& q_objects, SpbTree& spb_o,
                 double epsilon, std::vector<JoinPair>* result,
                 QueryStats* stats) {
  result->clear();
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = spb_o.cumulative_stats();
  std::vector<ObjectId> matches;
  for (size_t i = 0; i < q_objects.size(); ++i) {
    SPB_RETURN_IF_ERROR(spb_o.RangeQuery(q_objects[i], epsilon, &matches));
    for (ObjectId o_id : matches) {
      result->push_back(JoinPair{ObjectId(i), o_id});
    }
  }
  if (stats != nullptr) {
    const QueryStats after = spb_o.cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

}  // namespace spb
