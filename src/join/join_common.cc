#include "join/join_common.h"

#include <chrono>

namespace spb {

std::vector<JoinPair> NestedLoopJoin(const std::vector<Blob>& q_objects,
                                     const std::vector<Blob>& o_objects,
                                     const DistanceFunction& metric,
                                     double epsilon, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<JoinPair> result;
  uint64_t compdists = 0;
  for (size_t i = 0; i < q_objects.size(); ++i) {
    for (size_t j = 0; j < o_objects.size(); ++j) {
      ++compdists;
      if (metric.Distance(q_objects[i], o_objects[j]) <= epsilon) {
        result.push_back(JoinPair{ObjectId(i), ObjectId(j)});
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = compdists;
    stats->page_accesses = 0;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace spb
