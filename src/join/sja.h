#ifndef SPB_JOIN_SJA_H_
#define SPB_JOIN_SJA_H_

#include <vector>

#include "core/spb_tree.h"
#include "join/join_common.h"

namespace spb {

/// The paper's Similarity Join Algorithm (Algorithm 3, Section 5.2): a merge
/// join over the leaf levels of two SPB-trees in ascending Z-order SFC
/// value, with Lemma 5 (region) and Lemma 6 (minRR/maxRR interval) pruning
/// and list eviction. Each tree is scanned exactly once (Lemma 7: no missed
/// or duplicated pairs).
///
/// Requirements (validated): both trees were built with
/// CurveType::kZOrder — Lemma 6 is a Z-order monotonicity property — and
/// share the same pivot table and grid (build the operands with
/// SpbTree::BuildWithPivots over one shared PivotTable).
///
/// `stats` aggregates both trees' page accesses and distance computations.
Status SimilarityJoinSJA(SpbTree& spb_q, SpbTree& spb_o, double epsilon,
                         std::vector<JoinPair>* result,
                         QueryStats* stats = nullptr);

/// The naive index-based baseline the paper argues against in Section 5.2:
/// one range query RQ(q, O, eps) against `spb_o` per outer object. Scans the
/// inner tree |Q| times.
Status RangeJoin(const std::vector<Blob>& q_objects, SpbTree& spb_o,
                 double epsilon, std::vector<JoinPair>* result,
                 QueryStats* stats = nullptr);

}  // namespace spb

#endif  // SPB_JOIN_SJA_H_
