#ifndef SPB_JOIN_JOIN_COMMON_H_
#define SPB_JOIN_JOIN_COMMON_H_

#include <algorithm>
#include <vector>

#include "common/blob.h"
#include "common/stats.h"
#include "metrics/distance.h"

namespace spb {

/// One similarity-join result: ids refer to the outer (Q) and inner (O)
/// object sets respectively.
struct JoinPair {
  ObjectId q_id;
  ObjectId o_id;

  bool operator==(const JoinPair&) const = default;
  bool operator<(const JoinPair& other) const {
    return q_id < other.q_id ||
           (q_id == other.q_id && o_id < other.o_id);
  }
};

/// Reference nested-loop join: exact, O(|Q| * |O|) distance computations.
/// Used as the correctness oracle in tests and as the worst-case baseline.
std::vector<JoinPair> NestedLoopJoin(const std::vector<Blob>& q_objects,
                                     const std::vector<Blob>& o_objects,
                                     const DistanceFunction& metric,
                                     double epsilon,
                                     QueryStats* stats = nullptr);

}  // namespace spb

#endif  // SPB_JOIN_JOIN_COMMON_H_
