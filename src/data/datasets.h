#ifndef SPB_DATA_DATASETS_H_
#define SPB_DATA_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/blob.h"
#include "metrics/distance.h"

namespace spb {

/// A generated workload: objects plus the matching metric. These generators
/// are the synthetic stand-ins for the paper's datasets (Table 2); see
/// DESIGN.md Section 3 for the substitution rationale. Cardinalities are a
/// parameter so experiments can run at laptop scale or at paper scale.
struct Dataset {
  std::string name;
  std::vector<Blob> objects;
  std::shared_ptr<DistanceFunction> metric;
};

/// Words: English-like strings of length 1..34 under edit distance
/// (substitute for the paper's 611,756-word dictionary).
Dataset MakeWords(size_t n, uint64_t seed);

/// Color: 16-d feature vectors in [0,1] under the L5-norm (substitute for
/// the Corel color moments).
Dataset MakeColor(size_t n, uint64_t seed);

/// DNA: length-108 ACGT reads under tri-gram cosine (angular) distance.
Dataset MakeDna(size_t n, uint64_t seed);

/// Signature: 64-symbol signatures under Hamming distance.
Dataset MakeSignature(size_t n, uint64_t seed);

/// Synthetic: clustered 20-d vectors under the L2-norm — the paper's own
/// synthetic design.
Dataset MakeSynthetic(size_t n, uint64_t seed, size_t dim = 20,
                      size_t clusters = 10);

/// Dispatch by dataset name ("words", "color", "dna", "signature",
/// "synthetic"); returns an empty dataset for unknown names.
Dataset MakeDatasetByName(const std::string& name, size_t n, uint64_t seed);

}  // namespace spb

#endif  // SPB_DATA_DATASETS_H_
