#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metrics/edit_distance.h"
#include "metrics/hamming.h"
#include "metrics/lp_norm.h"
#include "metrics/trigram_cosine.h"

namespace spb {

namespace {

constexpr size_t kWordsMaxLen = 34;
constexpr size_t kDnaLen = 108;
constexpr size_t kSignatureLen = 64;
constexpr size_t kColorDim = 16;

// English-like word generator: alternating consonant/vowel clusters with a
// right-skewed length distribution (mean ~8, max 34), mimicking a dictionary
// under edit distance.
Blob RandomWord(Rng* rng) {
  static const char kVowels[] = "aeiouy";
  static const char kConsonants[] = "bcdfghjklmnpqrstvwxz";
  // Right-skewed length: 1 + sum of three small uniforms.
  size_t len = 1 + rng->Uniform(8) + rng->Uniform(6) + rng->Uniform(4);
  len = std::min(len, kWordsMaxLen);
  Blob word;
  word.reserve(len);
  bool vowel_turn = rng->Uniform(2) == 0;
  while (word.size() < len) {
    if (vowel_turn) {
      word.push_back(uint8_t(kVowels[rng->Uniform(sizeof(kVowels) - 1)]));
    } else {
      word.push_back(
          uint8_t(kConsonants[rng->Uniform(sizeof(kConsonants) - 1)]));
      // Occasional consonant cluster.
      if (word.size() < len && rng->Uniform(4) == 0) {
        word.push_back(
            uint8_t(kConsonants[rng->Uniform(sizeof(kConsonants) - 1)]));
      }
    }
    vowel_turn = !vowel_turn;
  }
  return word;
}

// Clustered vector: Gaussian around one of `centers`, clamped into [0,1].
Blob ClusteredVector(const std::vector<std::vector<float>>& centers,
                     double sigma, Rng* rng) {
  const auto& c = centers[rng->Uniform(centers.size())];
  std::vector<float> v(c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    double x = c[i] + sigma * rng->NextGaussian();
    v[i] = float(std::clamp(x, 0.0, 1.0));
  }
  return BlobFromFloats(v);
}

std::vector<std::vector<float>> RandomCenters(size_t count, size_t dim,
                                              Rng* rng) {
  std::vector<std::vector<float>> centers(count);
  for (auto& c : centers) {
    c.resize(dim);
    for (auto& x : c) x = float(0.15 + 0.7 * rng->NextDouble());
  }
  return centers;
}

}  // namespace

Dataset MakeWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "words";
  ds.metric = std::make_shared<EditDistance>(kWordsMaxLen);
  ds.objects.reserve(n);
  // A quarter of the words are mutated copies of earlier words, giving the
  // near-duplicate structure a real dictionary has (run/runs/running...).
  for (size_t i = 0; i < n; ++i) {
    if (i > 10 && rng.Uniform(4) == 0) {
      Blob w = ds.objects[rng.Uniform(i)];
      static const char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
      const uint64_t op = rng.Uniform(3);
      if (op == 0 && w.size() < kWordsMaxLen) {  // append suffix letter
        w.push_back(uint8_t(kLetters[rng.Uniform(26)]));
      } else if (op == 1 && !w.empty()) {  // substitute
        w[rng.Uniform(w.size())] = uint8_t(kLetters[rng.Uniform(26)]);
      } else if (op == 2 && w.size() > 1) {  // delete
        w.erase(w.begin() + ptrdiff_t(rng.Uniform(w.size())));
      }
      ds.objects.push_back(std::move(w));
    } else {
      ds.objects.push_back(RandomWord(&rng));
    }
  }
  return ds;
}

Dataset MakeColor(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "color";
  ds.metric = std::make_shared<LpNorm>(kColorDim, 5.0, 1.0);
  const auto centers = RandomCenters(8, kColorDim, &rng);
  ds.objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ds.objects.push_back(ClusteredVector(centers, 0.08, &rng));
  }
  return ds;
}

Dataset MakeDna(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "dna";
  ds.metric = std::make_shared<TrigramCosine>();
  static const char kBases[] = "ACGT";
  // Seed sequences; each read is a mutated copy of a seed, mimicking
  // overlapping genome substrings.
  const size_t num_seeds = std::max<size_t>(4, n / 200);
  std::vector<Blob> seeds(num_seeds);
  for (auto& s : seeds) {
    s.resize(kDnaLen);
    for (auto& b : s) b = uint8_t(kBases[rng.Uniform(4)]);
  }
  ds.objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Blob read = seeds[rng.Uniform(num_seeds)];
    const size_t mutations = rng.Uniform(kDnaLen / 4);
    for (size_t m = 0; m < mutations; ++m) {
      read[rng.Uniform(kDnaLen)] = uint8_t(kBases[rng.Uniform(4)]);
    }
    ds.objects.push_back(std::move(read));
  }
  return ds;
}

Dataset MakeSignature(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "signature";
  ds.metric = std::make_shared<Hamming>(kSignatureLen);
  const size_t num_seeds = std::max<size_t>(4, n / 100);
  std::vector<Blob> seeds(num_seeds);
  for (auto& s : seeds) {
    s.resize(kSignatureLen);
    for (auto& b : s) b = uint8_t(rng.Uniform(16));
  }
  ds.objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Blob sig = seeds[rng.Uniform(num_seeds)];
    const size_t mutations = rng.Uniform(kSignatureLen / 2);
    for (size_t m = 0; m < mutations; ++m) {
      sig[rng.Uniform(kSignatureLen)] = uint8_t(rng.Uniform(16));
    }
    ds.objects.push_back(std::move(sig));
  }
  return ds;
}

Dataset MakeSynthetic(size_t n, uint64_t seed, size_t dim, size_t clusters) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "synthetic";
  ds.metric = std::make_shared<LpNorm>(dim, 2.0, 1.0);
  const auto centers = RandomCenters(clusters, dim, &rng);
  ds.objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ds.objects.push_back(ClusteredVector(centers, 0.1, &rng));
  }
  return ds;
}

Dataset MakeDatasetByName(const std::string& name, size_t n, uint64_t seed) {
  if (name == "words") return MakeWords(n, seed);
  if (name == "color") return MakeColor(n, seed);
  if (name == "dna") return MakeDna(n, seed);
  if (name == "signature") return MakeSignature(n, seed);
  if (name == "synthetic") return MakeSynthetic(n, seed);
  return Dataset{};
}

}  // namespace spb
