#ifndef SPB_BPTREE_NODE_CACHE_H_
#define SPB_BPTREE_NODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bptree/node.h"
#include "common/status.h"
#include "common/contention.h"
#include "sfc/sfc.h"
#include "storage/page.h"

namespace spb {

/// A B+-tree node in fully decoded form: the parsed BptNode plus, for
/// internal nodes, every entry's MBB corners decoded from their SFC keys
/// into grid coordinates. Lemma 1/2 pruning consumes the corners directly
/// (MappedSpace box predicates over raw pointers), so a cached DecodedNode
/// saves both the page parse and the per-entry curve Decode that used to run
/// on every node visit.
///
/// Corner layout is entry-major: lo(i)/hi(i) point at the `dims` coordinates
/// of entry i's low/high corner.
struct DecodedNode {
  BptNode node;
  size_t dims = 0;
  std::vector<uint32_t> mbb_lo;
  std::vector<uint32_t> mbb_hi;

  const uint32_t* lo(size_t i) const { return mbb_lo.data() + i * dims; }
  const uint32_t* hi(size_t i) const { return mbb_hi.data() + i * dims; }

  /// Parses `page` and (for internal nodes) batch-decodes all entry MBB
  /// corners. Reusable: repeated Decode calls on one DecodedNode recycle the
  /// vectors, so an uncached traversal using a scratch DecodedNode does no
  /// steady-state allocation.
  Status Decode(const Page& page, PageId page_id,
                const SpaceFillingCurve& curve);

 private:
  // DecodeBatch staging (keys in, dim-major cells + tmp out), reused across
  // Decode calls.
  std::vector<uint64_t> key_scratch_;
  std::vector<uint32_t> cell_scratch_;
};

/// How traversal code holds a decoded node regardless of where it came from:
/// either a shared_ptr reference into the NodeCache (cache hit/fill) or a
/// borrowed pointer to caller-owned scratch (cache disabled). The handle
/// keeps a cached node alive across eviction/invalidation — same lifetime
/// rule as BufferPool::PagePin.
class NodeHandle {
 public:
  NodeHandle() = default;

  const DecodedNode* get() const { return ptr_; }
  const DecodedNode& operator*() const { return *ptr_; }
  const DecodedNode* operator->() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  /// Points the handle at caller-owned scratch (no ownership taken).
  void SetBorrowed(const DecodedNode* node) {
    ref_.reset();
    ptr_ = node;
  }
  /// Takes a shared reference to a cached node.
  void SetShared(std::shared_ptr<const DecodedNode> node) {
    ref_ = std::move(node);
    ptr_ = ref_.get();
  }

 private:
  const DecodedNode* ptr_ = nullptr;
  std::shared_ptr<const DecodedNode> ref_;
};

/// Sharded LRU cache of DecodedNodes keyed by PageId — the warm-path decode
/// engine's core. Entries are shared_ptr-held, so Lookup hands out pins that
/// stay valid when the entry is evicted or erased (invalidated) underneath.
///
/// The cache is deliberately *not* an accounting entity: it holds no
/// IoStats. A node-cache hit must still run the buffer pool's demand
/// bookkeeping for the node's page (BufferPool::Touch), so the paper's PA /
/// cache_hits counters and the pool's LRU state are byte-identical with the
/// node cache on or off — the accounting-parity rule
/// (docs/ARCHITECTURE.md §"Warm-path decode engine"). hits_/misses_ below
/// are diagnostics only and feed no paper-facing figure.
///
/// Thread safety: Lookup/Insert/Erase are safe under concurrent readers
/// (striped mutexes, like BufferPool). set_capacity()/Clear() follow the
/// same single-writer contract as BufferPool::set_capacity()/Flush().
class NodeCache {
 public:
  static constexpr size_t kMaxShards = 8;
  static constexpr size_t kMinShardEntries = 16;

  explicit NodeCache(size_t capacity) { Resize(capacity); }

  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  /// Returns the cached node (promoted to MRU) or nullptr.
  std::shared_ptr<const DecodedNode> Lookup(PageId id);

  /// Inserts (or replaces) the node for `id`, evicting the LRU entry of the
  /// shard when full. No-op when the cache is disabled.
  void Insert(PageId id, std::shared_ptr<const DecodedNode> node);

  /// Invalidation hook: drops `id` if cached. Outstanding NodeHandles keep
  /// the old node alive but the next Lookup misses and re-decodes.
  void Erase(PageId id);

  /// Drops every entry (bulk-load rebuild / FlushCaches).
  void Clear();

  /// NOT thread-safe (rebuilds shards); single-writer only, like
  /// BufferPool::set_capacity. Drops contents.
  void set_capacity(size_t capacity) { Resize(capacity); }
  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    PageId id;
    std::shared_ptr<const DecodedNode> node;
  };
  struct Shard {
    /// Instrumented ("node_cache.shard"): stripe collisions on the decoded-
    /// node LRU show up here before they show up in query latency.
    InstrumentedMutex mu{"node_cache.shard"};
    size_t capacity = 0;
    std::list<Entry> lru;
    std::unordered_map<PageId, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }
  void Resize(size_t capacity);

  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace spb

#endif  // SPB_BPTREE_NODE_CACHE_H_
