#ifndef SPB_BPTREE_BPTREE_H_
#define SPB_BPTREE_BPTREE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "bptree/node.h"
#include "bptree/node_cache.h"
#include "common/status.h"
#include "sfc/sfc.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace spb {

/// One immutable state of a B+-tree, as published to readers by the COW
/// write path: the root page id plus the height/count that traversal needs.
/// The pages reachable from `root` are never modified after publication
/// (copy-on-write replaces them with fresh page ids), so a traversal rooted
/// here is consistent no matter how many writes land concurrently.
struct TreeVersion {
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  uint64_t num_entries = 0;
};

/// Disk-based B+-tree over uint64 SFC keys with MBB-augmented non-leaf
/// entries (Section 3.3 of the paper). Supports bulk-loading, insertion and
/// deletion; duplicate keys are allowed (distinct `ptr` values disambiguate).
///
/// Design notes:
///  - Internal entries store the subtree MBB as two corner SFC values
///    (`mbb_min`, `mbb_max`), exactly as the paper describes; the curve
///    passed at construction decodes them back into cell-space boxes.
///  - Separator keys are exact subtree minima after bulk-load and insertion.
///    Deletion leaves separators and MBBs conservative (possibly stale-low /
///    oversized): searches then land at most one leaf early and walk forward
///    via the leaf chain, and pruning stays safe. Empty leaves remain
///    chained. This lazy-deletion scheme trades space for the simple,
///    low-cost updates the paper credits the B+-tree with.
///  - Query algorithms (RQA/NNA/SJA) walk nodes themselves via ReadNode so
///    they can manage their own heaps and pruning; page accesses are counted
///    by the shared BufferPool.
///  - Thread safety: ReadNode() and SeekLeaf() are safe for any number of
///    concurrent readers against an immutable tree (no Insert/Delete/
///    BulkLoad in flight) — traversal state lives entirely in caller-owned
///    BptNode buffers and the buffer pool is internally striped. Mutating
///    operations are single-writer and must be externally excluded from
///    reads (docs/ARCHITECTURE.md §"Threading model").
class BPlusTree {
 public:
  /// Creates an empty tree (a single empty root leaf) in a fresh page file.
  /// `curve` defines key <-> cell decoding for MBB maintenance and must
  /// outlive the tree.
  static Status Create(std::unique_ptr<PageFile> file, size_t cache_pages,
                       const SpaceFillingCurve* curve,
                       std::unique_ptr<BPlusTree>* out);

  /// Opens a previously created (and Sync'ed) tree.
  static Status Open(std::unique_ptr<PageFile> file, size_t cache_pages,
                     const SpaceFillingCurve* curve,
                     std::unique_ptr<BPlusTree>* out);

  /// Replaces the tree contents with `entries`, which must be sorted by
  /// (key, ptr). Builds full nodes bottom-up; the tree must be freshly
  /// created.
  Status BulkLoad(const std::vector<LeafEntry>& entries);

  /// Inserts one entry (duplicates allowed). In-place write path: mutates
  /// the existing pages, maintaining the leaf sibling chain. Requires all
  /// readers quiescent (no snapshot isolation) — the SPB-tree's online
  /// update engine uses InsertCow instead; this path remains for owners
  /// whose trees are updated only between query batches (e.g. the M-Index
  /// baseline) and for direct tests.
  Status Insert(uint64_t key, uint64_t ptr);

  /// Removes the entry matching both key and ptr. `*found` reports whether
  /// it existed. In-place write path; same quiescence contract as Insert.
  Status Delete(uint64_t key, uint64_t ptr, bool* found);

  /// Copy-on-write insert: builds a new tree version that shares every
  /// untouched page with the current one, writing modified nodes under
  /// *fresh* page ids (recycled from the free list when available). The
  /// tree's own published state (root()/height()/num_entries()) is NOT
  /// changed — the caller adopts the result with AdoptVersion() and
  /// publishes it to readers (via SnapshotManager) when ready, so
  /// concurrent traversals of the old version never observe a
  /// half-applied write.
  ///
  /// `*superseded` collects the page ids the COW walk replaced; they stay
  /// valid for readers of older versions and must be retired (and their ids
  /// recycled via AddFreePages) only after the last snapshot pinning them
  /// drains. Exact separator keys and MBBs are maintained along the path,
  /// same as the in-place path.
  ///
  /// The leaf sibling chain is NOT maintained across COW writes (a COW'd
  /// leaf's left sibling would also need rewriting, cascading to the whole
  /// leaf level) — next_leaf pointers are only meaningful on trees mutated
  /// exclusively in place. Chain-free iteration uses LeafCursor.
  Status InsertCow(uint64_t key, uint64_t ptr, TreeVersion* out,
                   std::vector<PageId>* superseded);

  /// Copy-on-write delete of the entry matching (key, ptr); lazy like the
  /// in-place Delete (no merging; ancestors keep conservative separators
  /// and MBBs, only child ids are rewritten). `*found` reports whether the
  /// entry existed; when false, no version is produced and `*out` is the
  /// current version.
  Status DeleteCow(uint64_t key, uint64_t ptr, bool* found, TreeVersion* out,
                   std::vector<PageId>* superseded);

  /// Writer-side adoption of a COW result: subsequent InsertCow/DeleteCow
  /// calls and version() reflect `v`. Does not touch storage.
  void AdoptVersion(const TreeVersion& v);

  /// Collects every page id reachable from `version` (root and all
  /// descendants) via raw, *uncounted* file reads — no buffer-pool traffic,
  /// no IoStats. Compaction uses this to retire a whole superseded version
  /// through the snapshot protocol.
  Status CollectVersionPages(const TreeVersion& version,
                             std::vector<PageId>* pages);

  /// Collects the live leaf entries of `version` in ascending (key, ptr)
  /// order via raw, uncounted file reads. Maintenance-path counterpart of
  /// LeafCursor: identical output, zero accounting footprint.
  Status CollectLeafEntriesRaw(const TreeVersion& version,
                               std::vector<LeafEntry>* out);

  /// Builds a complete fresh tree version from sorted `entries` (by
  /// (key, ptr)) bottom-up — full nodes, exact separators and MBBs, like
  /// BulkLoad — but on COW-allocated page ids (recycled when available) and
  /// through raw, uncounted node writes, leaving the published state
  /// untouched. The caller adopts and publishes `*out` like any COW result,
  /// retiring the old version's pages (CollectVersionPages) once readers
  /// drain. Empty input yields a version with one empty leaf. The rebuilt
  /// version does not use the leaf sibling chain (LeafCursor semantics,
  /// same as every COW-produced version).
  Status BulkLoadCow(const std::vector<LeafEntry>& entries, TreeVersion* out);

  /// The current version (writer-side view; readers get theirs from a
  /// Snapshot).
  TreeVersion version() const {
    return TreeVersion{root_, height_, num_entries_};
  }

  /// Returns retired page ids to the allocator: the next COW writes reuse
  /// them instead of growing the file. Call only after the pages are
  /// unreachable from every live snapshot (the snapshot manager's retire
  /// callback). Thread-safe (any thread may run the retire callback).
  void AddFreePages(const std::vector<PageId>& ids);
  /// Free-listed page ids not yet reused. Test hook.
  size_t free_pages() const;

  /// Forward iterator over the leaf entries of one TreeVersion in ascending
  /// (key, ptr) order, maintained as a root-to-leaf stack of parent
  /// positions instead of next_leaf links — the chain-free replacement that
  /// works on COW-written trees (and, unlike the chain, never leaks
  /// post-snapshot data into an old version). Node reads go through
  /// GetNode, so accounting matches a chain walk's warm path one-for-one on
  /// leaves; ancestor nodes are read once each as the cursor crosses them.
  ///
  /// Invalidation: the cursor borrows `tree` and must not outlive it; the
  /// version's pages must stay un-retired while the cursor lives (hold the
  /// Snapshot that produced the version, or be the writer).
  class LeafCursor {
   public:
    LeafCursor(BPlusTree* tree, const TreeVersion& version)
        : tree_(tree), version_(version) {}

    /// Positions at the first entry of the version (invalid if empty).
    Status SeekFirst();
    /// Positions at the first entry with entry.key >= key.
    Status Seek(uint64_t key);
    /// Advances one entry, crossing leaves (and skipping empty ones).
    Status Next();

    bool valid() const { return valid_; }
    const BptNode& leaf() const { return frames_.back().handle->node; }
    size_t pos() const { return frames_.back().idx; }
    const LeafEntry& entry() const { return leaf().leaf_entries[pos()]; }

   private:
    friend class BPlusTree;
    struct Frame {
      NodeHandle handle;
      size_t idx = 0;
      // Per-frame decode target for the cache-off path: handles at
      // different levels are live simultaneously, so they cannot share one
      // scratch node.
      std::unique_ptr<DecodedNode> scratch;
    };

    Status LoadFrame(size_t level, PageId id);
    /// Descends leftmost from frames_[level]'s current child down to a leaf.
    Status DescendLeftmost(size_t level);
    /// Moves to the next non-empty leaf, or invalidates at the end.
    Status AdvanceLeaf();

    BPlusTree* tree_;
    TreeVersion version_;
    std::vector<Frame> frames_;
    bool valid_ = false;
  };

  /// Positions `*leaf`/`*pos` at the first entry with entry.key >= key,
  /// walking the leaf chain past empty/early leaves. Sets `*pos` ==
  /// leaf->size() with an invalid leaf id when no such entry exists.
  Status SeekLeaf(uint64_t key, BptNode* leaf, size_t* pos);

  /// Reads any node by page id (through the buffer pool, so PA-counted).
  Status ReadNode(PageId id, BptNode* node);

  /// Warm-path node read: hands out a decoded node (parsed entries + decoded
  /// internal MBB corners) via the decoded-node cache when it is enabled,
  /// decoding into caller-owned `scratch` otherwise. `scratch` must outlive
  /// `*out` (the handle borrows it on the uncached path) and must not be
  /// shared between simultaneously live handles.
  ///
  /// Accounting parity with ReadNode is exact by construction: a node-cache
  /// hit runs BufferPool::Touch (the full demand path minus the copy), a
  /// miss runs ReadPinned + decode + Insert — either way the pool sees
  /// exactly one read request for the page, so PA, cache_hits and the pool's
  /// LRU evolve byte-identically whether the node cache is on, off, hit or
  /// missed. Readers only; writers use ReadNode/WriteNode (WriteNode
  /// invalidates the cached node).
  Status GetNode(PageId id, DecodedNode* scratch, NodeHandle* out);

  /// Raw, *uncounted* decode of any node: direct file read (no buffer pool,
  /// no IoStats, no node cache) into `out`, internal MBB corners included.
  /// Maintenance-path sibling of GetNode, same zero-footprint contract as
  /// CollectVersionPages — the learned leaf locator builds its per-version
  /// model image through this, so model construction never perturbs the
  /// paper's PA/cache_hits accounting. Safe concurrently with readers (the
  /// pool is write-through, so every published page's bytes are in the
  /// file); callers must only decode pages reachable from a live version.
  Status DecodeNodeUncounted(PageId id, DecodedNode* out);

  /// Resizes the decoded-node cache (0 disables it). Single-writer only,
  /// like BufferPool::set_capacity; drops contents.
  Status SetNodeCacheEntries(size_t entries) {
    node_cache_.set_capacity(entries);
    return Status::OK();
  }
  NodeCache& node_cache() { return node_cache_; }

  /// True until the first COW write: the leaf sibling chain is globally
  /// consistent only on trees never touched by InsertCow/DeleteCow.
  bool leaf_chain_valid() const { return leaf_chain_valid_; }

  /// Persists meta (root, height, count) and flushes the file.
  Status Sync();

  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  PageId first_leaf() const { return first_leaf_; }
  const SpaceFillingCurve* curve() const { return curve_; }

  /// Decodes an internal entry's MBB into inclusive per-dimension cell
  /// bounds.
  void DecodeBox(uint64_t mbb_min, uint64_t mbb_max,
                 std::vector<uint32_t>* lo, std::vector<uint32_t>* hi) const {
    curve_->Decode(mbb_min, lo);
    curve_->Decode(mbb_max, hi);
  }

  BufferPool& pool() { return pool_; }
  const IoStats& stats() const { return pool_.stats(); }
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(owned_file_->num_pages()) * kPageSize;
  }

  /// Verifies structural invariants (sorted keys, exact-or-conservative
  /// separators, MBB containment, leaf chain consistency). Test hook.
  Status CheckInvariants();

 private:
  BPlusTree(std::unique_ptr<PageFile> file, size_t cache_pages,
            const SpaceFillingCurve* curve)
      : owned_file_(std::move(file)),
        pool_(owned_file_.get(), cache_pages),
        curve_(curve) {}

  struct ChildUpdate {
    uint64_t min_key;
    uint64_t mbb_min;
    uint64_t mbb_max;
    bool split = false;
    uint64_t split_key = 0;
    PageId split_child = kInvalidPageId;
    uint64_t split_mbb_min = 0;
    uint64_t split_mbb_max = 0;
  };

  Status WriteNode(const BptNode& node);
  /// Raw sibling of ReadNode/WriteNode: direct file I/O, no pool, no stats.
  /// Safe because the pool is write-through (every published page's bytes
  /// are in the file) and callers only write pages unreachable from every
  /// live version (fresh or retired-and-purged ids).
  Status ReadNodeRaw(PageId id, BptNode* node);
  Status WriteNodeRaw(const BptNode& node);
  Status AllocateNode(bool is_leaf, BptNode* node);
  /// COW page allocation: recycles a retired id when available, else grows
  /// the file.
  Status AllocateCowPage(PageId* id);
  Status WriteMeta();
  Status ReadMeta();

  // Computes a node's MBB corners from its contents.
  void ComputeLeafBox(const BptNode& node, uint64_t* mbb_min,
                      uint64_t* mbb_max) const;
  void ComputeInternalBox(const BptNode& node, uint64_t* mbb_min,
                          uint64_t* mbb_max) const;

  Status InsertRec(PageId node_id, uint64_t key, uint64_t ptr,
                   ChildUpdate* up);

  /// ChildUpdate for the COW path: the child's id changes on every write,
  /// so the parent must relink as well as refresh key/MBB.
  struct CowUpdate {
    PageId new_child = kInvalidPageId;
    uint64_t min_key = 0;
    uint64_t mbb_min = 0;
    uint64_t mbb_max = 0;
    bool split = false;
    uint64_t split_key = 0;
    PageId split_child = kInvalidPageId;
    uint64_t split_mbb_min = 0;
    uint64_t split_mbb_max = 0;
  };

  Status InsertCowRec(PageId node_id, uint64_t key, uint64_t ptr,
                      CowUpdate* up, std::vector<PageId>* superseded);

  Status CheckInvariantsRec(PageId node_id, bool is_root, uint64_t* min_key,
                            std::vector<uint32_t>* lo,
                            std::vector<uint32_t>* hi, uint32_t* depth);

  std::unique_ptr<PageFile> owned_file_;
  BufferPool pool_;
  const SpaceFillingCurve* curve_;
  /// Decoded-node cache; disabled (capacity 0) until the owner opts in via
  /// set_node_cache_entries — the SPB-tree wires SpbTreeOptions through.
  NodeCache node_cache_{0};

  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t num_entries_ = 0;
  bool leaf_chain_valid_ = true;

  /// Retired page ids available for COW reuse. Pushed by the snapshot
  /// manager's retire callback (any thread), popped by the single writer.
  mutable std::mutex free_mu_;
  std::vector<PageId> free_pages_;
};

}  // namespace spb

#endif  // SPB_BPTREE_BPTREE_H_
