#ifndef SPB_BPTREE_BPTREE_H_
#define SPB_BPTREE_BPTREE_H_

#include <memory>
#include <vector>

#include "bptree/node.h"
#include "bptree/node_cache.h"
#include "common/status.h"
#include "sfc/sfc.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace spb {

/// Disk-based B+-tree over uint64 SFC keys with MBB-augmented non-leaf
/// entries (Section 3.3 of the paper). Supports bulk-loading, insertion and
/// deletion; duplicate keys are allowed (distinct `ptr` values disambiguate).
///
/// Design notes:
///  - Internal entries store the subtree MBB as two corner SFC values
///    (`mbb_min`, `mbb_max`), exactly as the paper describes; the curve
///    passed at construction decodes them back into cell-space boxes.
///  - Separator keys are exact subtree minima after bulk-load and insertion.
///    Deletion leaves separators and MBBs conservative (possibly stale-low /
///    oversized): searches then land at most one leaf early and walk forward
///    via the leaf chain, and pruning stays safe. Empty leaves remain
///    chained. This lazy-deletion scheme trades space for the simple,
///    low-cost updates the paper credits the B+-tree with.
///  - Query algorithms (RQA/NNA/SJA) walk nodes themselves via ReadNode so
///    they can manage their own heaps and pruning; page accesses are counted
///    by the shared BufferPool.
///  - Thread safety: ReadNode() and SeekLeaf() are safe for any number of
///    concurrent readers against an immutable tree (no Insert/Delete/
///    BulkLoad in flight) — traversal state lives entirely in caller-owned
///    BptNode buffers and the buffer pool is internally striped. Mutating
///    operations are single-writer and must be externally excluded from
///    reads (docs/ARCHITECTURE.md §"Threading model").
class BPlusTree {
 public:
  /// Creates an empty tree (a single empty root leaf) in a fresh page file.
  /// `curve` defines key <-> cell decoding for MBB maintenance and must
  /// outlive the tree.
  static Status Create(std::unique_ptr<PageFile> file, size_t cache_pages,
                       const SpaceFillingCurve* curve,
                       std::unique_ptr<BPlusTree>* out);

  /// Opens a previously created (and Sync'ed) tree.
  static Status Open(std::unique_ptr<PageFile> file, size_t cache_pages,
                     const SpaceFillingCurve* curve,
                     std::unique_ptr<BPlusTree>* out);

  /// Replaces the tree contents with `entries`, which must be sorted by
  /// (key, ptr). Builds full nodes bottom-up; the tree must be freshly
  /// created.
  Status BulkLoad(const std::vector<LeafEntry>& entries);

  /// Inserts one entry (duplicates allowed).
  Status Insert(uint64_t key, uint64_t ptr);

  /// Removes the entry matching both key and ptr. `*found` reports whether
  /// it existed.
  Status Delete(uint64_t key, uint64_t ptr, bool* found);

  /// Positions `*leaf`/`*pos` at the first entry with entry.key >= key,
  /// walking the leaf chain past empty/early leaves. Sets `*pos` ==
  /// leaf->size() with an invalid leaf id when no such entry exists.
  Status SeekLeaf(uint64_t key, BptNode* leaf, size_t* pos);

  /// Reads any node by page id (through the buffer pool, so PA-counted).
  Status ReadNode(PageId id, BptNode* node);

  /// Warm-path node read: hands out a decoded node (parsed entries + decoded
  /// internal MBB corners) via the decoded-node cache when it is enabled,
  /// decoding into caller-owned `scratch` otherwise. `scratch` must outlive
  /// `*out` (the handle borrows it on the uncached path) and must not be
  /// shared between simultaneously live handles.
  ///
  /// Accounting parity with ReadNode is exact by construction: a node-cache
  /// hit runs BufferPool::Touch (the full demand path minus the copy), a
  /// miss runs ReadPinned + decode + Insert — either way the pool sees
  /// exactly one read request for the page, so PA, cache_hits and the pool's
  /// LRU evolve byte-identically whether the node cache is on, off, hit or
  /// missed. Readers only; writers use ReadNode/WriteNode (WriteNode
  /// invalidates the cached node).
  Status GetNode(PageId id, DecodedNode* scratch, NodeHandle* out);

  /// Resizes the decoded-node cache (0 disables it). Single-writer only,
  /// like BufferPool::set_capacity; drops contents.
  void set_node_cache_entries(size_t entries) {
    node_cache_.set_capacity(entries);
  }
  NodeCache& node_cache() { return node_cache_; }

  /// Persists meta (root, height, count) and flushes the file.
  Status Sync();

  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  PageId first_leaf() const { return first_leaf_; }
  const SpaceFillingCurve* curve() const { return curve_; }

  /// Decodes an internal entry's MBB into inclusive per-dimension cell
  /// bounds.
  void DecodeBox(uint64_t mbb_min, uint64_t mbb_max,
                 std::vector<uint32_t>* lo, std::vector<uint32_t>* hi) const {
    curve_->Decode(mbb_min, lo);
    curve_->Decode(mbb_max, hi);
  }

  BufferPool& pool() { return pool_; }
  const IoStats& stats() const { return pool_.stats(); }
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(owned_file_->num_pages()) * kPageSize;
  }

  /// Verifies structural invariants (sorted keys, exact-or-conservative
  /// separators, MBB containment, leaf chain consistency). Test hook.
  Status CheckInvariants();

 private:
  BPlusTree(std::unique_ptr<PageFile> file, size_t cache_pages,
            const SpaceFillingCurve* curve)
      : owned_file_(std::move(file)),
        pool_(owned_file_.get(), cache_pages),
        curve_(curve) {}

  struct ChildUpdate {
    uint64_t min_key;
    uint64_t mbb_min;
    uint64_t mbb_max;
    bool split = false;
    uint64_t split_key = 0;
    PageId split_child = kInvalidPageId;
    uint64_t split_mbb_min = 0;
    uint64_t split_mbb_max = 0;
  };

  Status WriteNode(const BptNode& node);
  Status AllocateNode(bool is_leaf, BptNode* node);
  Status WriteMeta();
  Status ReadMeta();

  // Computes a node's MBB corners from its contents.
  void ComputeLeafBox(const BptNode& node, uint64_t* mbb_min,
                      uint64_t* mbb_max) const;
  void ComputeInternalBox(const BptNode& node, uint64_t* mbb_min,
                          uint64_t* mbb_max) const;

  Status InsertRec(PageId node_id, uint64_t key, uint64_t ptr,
                   ChildUpdate* up);

  Status CheckInvariantsRec(PageId node_id, bool is_root, uint64_t* min_key,
                            std::vector<uint32_t>* lo,
                            std::vector<uint32_t>* hi, uint32_t* depth);

  std::unique_ptr<PageFile> owned_file_;
  BufferPool pool_;
  const SpaceFillingCurve* curve_;
  /// Decoded-node cache; disabled (capacity 0) until the owner opts in via
  /// set_node_cache_entries — the SPB-tree wires SpbTreeOptions through.
  NodeCache node_cache_{0};

  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace spb

#endif  // SPB_BPTREE_BPTREE_H_
