#include "bptree/bptree.h"

#include <algorithm>

#include "common/coding.h"

namespace spb {

namespace {
constexpr uint64_t kBptMagic = 0x5350424250543031ULL;  // "SPBBPT01"
constexpr PageId kMetaPage = 0;
}  // namespace

Status BPlusTree::Create(std::unique_ptr<PageFile> file, size_t cache_pages,
                         const SpaceFillingCurve* curve,
                         std::unique_ptr<BPlusTree>* out) {
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(std::move(file), cache_pages, curve));
  PageId meta_id;
  SPB_RETURN_IF_ERROR(tree->owned_file_->Allocate(&meta_id));
  if (meta_id != kMetaPage) {
    return Status::InvalidArgument("B+-tree requires a fresh page file");
  }
  BptNode root;
  SPB_RETURN_IF_ERROR(tree->AllocateNode(/*is_leaf=*/true, &root));
  SPB_RETURN_IF_ERROR(tree->WriteNode(root));
  tree->root_ = root.id;
  tree->first_leaf_ = root.id;
  tree->height_ = 1;
  tree->num_entries_ = 0;
  SPB_RETURN_IF_ERROR(tree->WriteMeta());
  *out = std::move(tree);
  return Status::OK();
}

Status BPlusTree::Open(std::unique_ptr<PageFile> file, size_t cache_pages,
                       const SpaceFillingCurve* curve,
                       std::unique_ptr<BPlusTree>* out) {
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(std::move(file), cache_pages, curve));
  SPB_RETURN_IF_ERROR(tree->ReadMeta());
  *out = std::move(tree);
  return Status::OK();
}

Status BPlusTree::WriteMeta() {
  Page meta;
  EncodeFixed64(meta.bytes(), kBptMagic);
  EncodeFixed32(meta.bytes() + 8, root_);
  EncodeFixed32(meta.bytes() + 12, height_);
  EncodeFixed64(meta.bytes() + 16, num_entries_);
  EncodeFixed32(meta.bytes() + 24, first_leaf_);
  // The chain-validity flag must survive a save/reopen: COW writes and
  // compaction leave first_leaf_ stale by design, and a reopened tree must
  // not mistake the stale chain for a checkable one.
  EncodeFixed32(meta.bytes() + 28, leaf_chain_valid_ ? 1 : 0);
  return owned_file_->Write(kMetaPage, meta);
}

Status BPlusTree::ReadMeta() {
  Page meta;
  // Through the pool (not owned_file_) so the meta-page read shows up in
  // IoStats like every other page access.
  SPB_RETURN_IF_ERROR(pool_.Read(kMetaPage, &meta));
  if (DecodeFixed64(meta.bytes()) != kBptMagic) {
    return Status::Corruption("bad B+-tree magic");
  }
  root_ = DecodeFixed32(meta.bytes() + 8);
  height_ = DecodeFixed32(meta.bytes() + 12);
  num_entries_ = DecodeFixed64(meta.bytes() + 16);
  first_leaf_ = DecodeFixed32(meta.bytes() + 24);
  leaf_chain_valid_ = DecodeFixed32(meta.bytes() + 28) != 0;
  return Status::OK();
}

Status BPlusTree::ReadNode(PageId id, BptNode* node) {
  Page page;
  SPB_RETURN_IF_ERROR(pool_.Read(id, &page));
  return node->DeserializeFrom(page, id);
}

Status BPlusTree::WriteNode(const BptNode& node) {
  Page page;
  node.SerializeTo(&page);
  // Invalidate before the write lands so no reader can re-cache the stale
  // decode between the write and the erase.
  node_cache_.Erase(node.id);
  return pool_.Write(node.id, page);
}

Status BPlusTree::GetNode(PageId id, DecodedNode* scratch, NodeHandle* out) {
  if (node_cache_.enabled()) {
    if (auto cached = node_cache_.Lookup(id)) {
      // Accounting parity: charge the buffer pool exactly as a re-read
      // would (hit bookkeeping + LRU promotion, or a demand fetch if the
      // page was evicted).
      SPB_RETURN_IF_ERROR(pool_.Touch(id));
      out->SetShared(std::move(cached));
      return Status::OK();
    }
    BufferPool::PagePin pin;
    SPB_RETURN_IF_ERROR(pool_.ReadPinned(id, &pin));
    auto decoded = std::make_shared<DecodedNode>();
    SPB_RETURN_IF_ERROR(decoded->Decode(*pin, id, *curve_));
    node_cache_.Insert(id, decoded);
    out->SetShared(std::move(decoded));
    return Status::OK();
  }
  BufferPool::PagePin pin;
  SPB_RETURN_IF_ERROR(pool_.ReadPinned(id, &pin));
  SPB_RETURN_IF_ERROR(scratch->Decode(*pin, id, *curve_));
  out->SetBorrowed(scratch);
  return Status::OK();
}

Status BPlusTree::AllocateNode(bool is_leaf, BptNode* node) {
  PageId id;
  SPB_RETURN_IF_ERROR(pool_.Allocate(&id));
  node->id = id;
  node->is_leaf = is_leaf;
  node->next_leaf = kInvalidPageId;
  node->leaf_entries.clear();
  node->internal_entries.clear();
  return Status::OK();
}

Status BPlusTree::AllocateCowPage(PageId* id) {
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_pages_.empty()) {
      *id = free_pages_.back();
      free_pages_.pop_back();
      return Status::OK();
    }
  }
  return pool_.Allocate(id);
}

void BPlusTree::AddFreePages(const std::vector<PageId>& ids) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_pages_.insert(free_pages_.end(), ids.begin(), ids.end());
}

size_t BPlusTree::free_pages() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return free_pages_.size();
}

void BPlusTree::AdoptVersion(const TreeVersion& v) {
  root_ = v.root;
  height_ = v.height;
  num_entries_ = v.num_entries;
}

Status BPlusTree::ReadNodeRaw(PageId id, BptNode* node) {
  Page page;
  SPB_RETURN_IF_ERROR(owned_file_->Read(id, &page));
  return node->DeserializeFrom(page, id);
}

Status BPlusTree::DecodeNodeUncounted(PageId id, DecodedNode* out) {
  Page page;
  SPB_RETURN_IF_ERROR(owned_file_->Read(id, &page));
  return out->Decode(page, id, *curve_);
}

Status BPlusTree::WriteNodeRaw(const BptNode& node) {
  Page page;
  node.SerializeTo(&page);
  node_cache_.Erase(node.id);
  return owned_file_->Write(node.id, page);
}

Status BPlusTree::CollectVersionPages(const TreeVersion& version,
                                      std::vector<PageId>* pages) {
  pages->clear();
  if (version.root == kInvalidPageId) return Status::OK();
  std::vector<PageId> frontier{version.root};
  while (!frontier.empty()) {
    PageId id = frontier.back();
    frontier.pop_back();
    pages->push_back(id);
    BptNode node;
    SPB_RETURN_IF_ERROR(ReadNodeRaw(id, &node));
    if (!node.is_leaf) {
      for (const InternalEntry& e : node.internal_entries) {
        frontier.push_back(e.child);
      }
    }
  }
  return Status::OK();
}

Status BPlusTree::CollectLeafEntriesRaw(const TreeVersion& version,
                                        std::vector<LeafEntry>* out) {
  out->clear();
  out->reserve(version.num_entries);
  if (version.root == kInvalidPageId) return Status::OK();
  // Explicit DFS stack, children pushed right-to-left so leaves emit in
  // ascending key order.
  std::vector<PageId> stack{version.root};
  BptNode node;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    SPB_RETURN_IF_ERROR(ReadNodeRaw(id, &node));
    if (node.is_leaf) {
      out->insert(out->end(), node.leaf_entries.begin(),
                  node.leaf_entries.end());
    } else {
      for (auto it = node.internal_entries.rbegin();
           it != node.internal_entries.rend(); ++it) {
        stack.push_back(it->child);
      }
    }
  }
  return Status::OK();
}

Status BPlusTree::BulkLoadCow(const std::vector<LeafEntry>& entries,
                              TreeVersion* out) {
  if (!std::is_sorted(entries.begin(), entries.end(),
                      [](const LeafEntry& a, const LeafEntry& b) {
                        return a.key < b.key ||
                               (a.key == b.key && a.ptr < b.ptr);
                      })) {
    return Status::InvalidArgument("BulkLoadCow input must be sorted");
  }

  // ---- Leaf level on fresh/recycled ids. No next_leaf chain: COW-produced
  // versions are iterated with LeafCursor only.
  const size_t num_leaves =
      entries.empty()
          ? 1
          : (entries.size() + BptNode::kLeafCapacity - 1) /
                BptNode::kLeafCapacity;
  std::vector<InternalEntry> level;
  level.reserve(num_leaves);
  size_t pos = 0;
  for (size_t i = 0; i < num_leaves; ++i) {
    BptNode leaf;
    SPB_RETURN_IF_ERROR(AllocateCowPage(&leaf.id));
    leaf.is_leaf = true;
    leaf.next_leaf = kInvalidPageId;
    const size_t take = std::min(BptNode::kLeafCapacity, entries.size() - pos);
    leaf.leaf_entries.assign(entries.begin() + ptrdiff_t(pos),
                             entries.begin() + ptrdiff_t(pos + take));
    pos += take;
    SPB_RETURN_IF_ERROR(WriteNodeRaw(leaf));
    uint64_t mbb_min, mbb_max;
    ComputeLeafBox(leaf, &mbb_min, &mbb_max);
    const uint64_t min_key =
        leaf.leaf_entries.empty() ? 0 : leaf.min_key();
    level.push_back(InternalEntry{min_key, leaf.id, mbb_min, mbb_max});
  }

  // ---- Internal levels, bottom-up.
  uint32_t height = 1;
  while (level.size() > 1) {
    std::vector<InternalEntry> next_level;
    const size_t num_nodes = (level.size() + BptNode::kInternalCapacity - 1) /
                             BptNode::kInternalCapacity;
    next_level.reserve(num_nodes);
    size_t lpos = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
      BptNode node;
      SPB_RETURN_IF_ERROR(AllocateCowPage(&node.id));
      node.is_leaf = false;
      node.next_leaf = kInvalidPageId;
      const size_t take =
          std::min(BptNode::kInternalCapacity, level.size() - lpos);
      node.internal_entries.assign(level.begin() + ptrdiff_t(lpos),
                                   level.begin() + ptrdiff_t(lpos + take));
      lpos += take;
      SPB_RETURN_IF_ERROR(WriteNodeRaw(node));
      uint64_t mbb_min, mbb_max;
      ComputeInternalBox(node, &mbb_min, &mbb_max);
      next_level.push_back(
          InternalEntry{node.min_key(), node.id, mbb_min, mbb_max});
    }
    level = std::move(next_level);
    ++height;
  }
  leaf_chain_valid_ = false;
  out->root = level[0].child;
  out->height = height;
  out->num_entries = entries.size();
  return Status::OK();
}

namespace {

// Batch-decodes `keys` and widens [lo, hi] to cover every decoded cell.
// DecodeBatch writes a dim-major matrix, so the min/max sweep runs along
// contiguous rows — one decode pass per node instead of one per entry.
void WidenBoxFromKeys(const SpaceFillingCurve& curve,
                      const std::vector<uint64_t>& keys,
                      std::vector<uint32_t>* lo, std::vector<uint32_t>* hi) {
  const size_t dims = curve.dims();
  const size_t n = keys.size();
  std::vector<uint32_t> cells(dims * n + n);
  uint32_t* mat = cells.data();
  curve.DecodeBatch(keys.data(), n, mat, cells.data() + dims * n);
  for (size_t d = 0; d < dims; ++d) {
    const uint32_t* row = mat + d * n;
    uint32_t mn = (*lo)[d], mx = (*hi)[d];
    for (size_t i = 0; i < n; ++i) {
      mn = std::min(mn, row[i]);
      mx = std::max(mx, row[i]);
    }
    (*lo)[d] = mn;
    (*hi)[d] = mx;
  }
}

}  // namespace

void BPlusTree::ComputeLeafBox(const BptNode& node, uint64_t* mbb_min,
                               uint64_t* mbb_max) const {
  if (node.leaf_entries.empty()) {
    *mbb_min = 0;
    *mbb_max = 0;
    return;
  }
  const size_t dims = curve_->dims();
  std::vector<uint32_t> lo(dims, UINT32_MAX), hi(dims, 0);
  std::vector<uint64_t> keys(node.leaf_entries.size());
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = node.leaf_entries[i].key;
  WidenBoxFromKeys(*curve_, keys, &lo, &hi);
  *mbb_min = curve_->Encode(lo);
  *mbb_max = curve_->Encode(hi);
}

void BPlusTree::ComputeInternalBox(const BptNode& node, uint64_t* mbb_min,
                                   uint64_t* mbb_max) const {
  if (node.internal_entries.empty()) {
    *mbb_min = 0;
    *mbb_max = 0;
    return;
  }
  const size_t dims = curve_->dims();
  std::vector<uint32_t> lo(dims, UINT32_MAX), hi(dims, 0);
  std::vector<uint64_t> keys(node.internal_entries.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = node.internal_entries[i].mbb_min;
  }
  WidenBoxFromKeys(*curve_, keys, &lo, &hi);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = node.internal_entries[i].mbb_max;
  }
  WidenBoxFromKeys(*curve_, keys, &lo, &hi);
  *mbb_min = curve_->Encode(lo);
  *mbb_max = curve_->Encode(hi);
}

Status BPlusTree::BulkLoad(const std::vector<LeafEntry>& entries) {
  if (num_entries_ != 0 || height_ != 1) {
    return Status::InvalidArgument("BulkLoad requires a fresh tree");
  }
  // Every page the rebuild writes is invalidated by WriteNode, but a full
  // rebuild warrants a full drop: stale decodes must not outlive it.
  node_cache_.Clear();
  if (!std::is_sorted(entries.begin(), entries.end(),
                      [](const LeafEntry& a, const LeafEntry& b) {
                        return a.key < b.key ||
                               (a.key == b.key && a.ptr < b.ptr);
                      })) {
    return Status::InvalidArgument("BulkLoad input must be sorted");
  }
  if (entries.empty()) return Status::OK();

  // ---- Leaf level. The existing (empty) root page becomes the first leaf.
  const size_t num_leaves =
      (entries.size() + BptNode::kLeafCapacity - 1) / BptNode::kLeafCapacity;
  std::vector<PageId> leaf_ids(num_leaves);
  leaf_ids[0] = root_;
  for (size_t i = 1; i < num_leaves; ++i) {
    SPB_RETURN_IF_ERROR(pool_.Allocate(&leaf_ids[i]));
  }

  std::vector<InternalEntry> level;
  level.reserve(num_leaves);
  size_t pos = 0;
  for (size_t i = 0; i < num_leaves; ++i) {
    BptNode leaf;
    leaf.id = leaf_ids[i];
    leaf.is_leaf = true;
    leaf.next_leaf = (i + 1 < num_leaves) ? leaf_ids[i + 1] : kInvalidPageId;
    const size_t take =
        std::min(BptNode::kLeafCapacity, entries.size() - pos);
    leaf.leaf_entries.assign(entries.begin() + ptrdiff_t(pos),
                             entries.begin() + ptrdiff_t(pos + take));
    pos += take;
    SPB_RETURN_IF_ERROR(WriteNode(leaf));
    uint64_t mbb_min, mbb_max;
    ComputeLeafBox(leaf, &mbb_min, &mbb_max);
    level.push_back(
        InternalEntry{leaf.min_key(), leaf.id, mbb_min, mbb_max});
  }
  first_leaf_ = leaf_ids[0];
  height_ = 1;

  // ---- Internal levels, bottom-up.
  while (level.size() > 1) {
    std::vector<InternalEntry> next_level;
    const size_t num_nodes = (level.size() + BptNode::kInternalCapacity - 1) /
                             BptNode::kInternalCapacity;
    next_level.reserve(num_nodes);
    size_t lpos = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
      BptNode node;
      SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &node));
      const size_t take =
          std::min(BptNode::kInternalCapacity, level.size() - lpos);
      node.internal_entries.assign(level.begin() + ptrdiff_t(lpos),
                                   level.begin() + ptrdiff_t(lpos + take));
      lpos += take;
      SPB_RETURN_IF_ERROR(WriteNode(node));
      uint64_t mbb_min, mbb_max;
      ComputeInternalBox(node, &mbb_min, &mbb_max);
      next_level.push_back(
          InternalEntry{node.min_key(), node.id, mbb_min, mbb_max});
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level[0].child;
  num_entries_ = entries.size();
  return WriteMeta();
}

Status BPlusTree::InsertRec(PageId node_id, uint64_t key, uint64_t ptr,
                            ChildUpdate* up) {
  BptNode node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));

  if (node.is_leaf) {
    auto it = std::upper_bound(
        node.leaf_entries.begin(), node.leaf_entries.end(), key,
        [](uint64_t k, const LeafEntry& e) { return k < e.key; });
    node.leaf_entries.insert(it, LeafEntry{key, ptr});

    if (node.leaf_entries.size() <= BptNode::kLeafCapacity) {
      SPB_RETURN_IF_ERROR(WriteNode(node));
      up->split = false;
      up->min_key = node.min_key();
      ComputeLeafBox(node, &up->mbb_min, &up->mbb_max);
      return Status::OK();
    }
    // Split: left keeps the first half, right gets the rest.
    BptNode right;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/true, &right));
    const size_t mid = node.leaf_entries.size() / 2;
    right.leaf_entries.assign(node.leaf_entries.begin() + ptrdiff_t(mid),
                              node.leaf_entries.end());
    node.leaf_entries.resize(mid);
    right.next_leaf = node.next_leaf;
    node.next_leaf = right.id;
    SPB_RETURN_IF_ERROR(WriteNode(node));
    SPB_RETURN_IF_ERROR(WriteNode(right));
    up->split = true;
    up->min_key = node.min_key();
    ComputeLeafBox(node, &up->mbb_min, &up->mbb_max);
    up->split_key = right.min_key();
    up->split_child = right.id;
    ComputeLeafBox(right, &up->split_mbb_min, &up->split_mbb_max);
    return Status::OK();
  }

  // Internal: descend into the last child whose separator key <= key.
  size_t i = 0;
  for (size_t j = 1; j < node.internal_entries.size(); ++j) {
    if (node.internal_entries[j].key <= key) i = j;
  }
  ChildUpdate child_up;
  SPB_RETURN_IF_ERROR(
      InsertRec(node.internal_entries[i].child, key, ptr, &child_up));
  node.internal_entries[i].key = child_up.min_key;
  node.internal_entries[i].mbb_min = child_up.mbb_min;
  node.internal_entries[i].mbb_max = child_up.mbb_max;
  if (child_up.split) {
    node.internal_entries.insert(
        node.internal_entries.begin() + ptrdiff_t(i + 1),
        InternalEntry{child_up.split_key, child_up.split_child,
                      child_up.split_mbb_min, child_up.split_mbb_max});
  }

  if (node.internal_entries.size() <= BptNode::kInternalCapacity) {
    SPB_RETURN_IF_ERROR(WriteNode(node));
    up->split = false;
    up->min_key = node.min_key();
    ComputeInternalBox(node, &up->mbb_min, &up->mbb_max);
    return Status::OK();
  }
  BptNode right;
  SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &right));
  const size_t mid = node.internal_entries.size() / 2;
  right.internal_entries.assign(
      node.internal_entries.begin() + ptrdiff_t(mid),
      node.internal_entries.end());
  node.internal_entries.resize(mid);
  SPB_RETURN_IF_ERROR(WriteNode(node));
  SPB_RETURN_IF_ERROR(WriteNode(right));
  up->split = true;
  up->min_key = node.min_key();
  ComputeInternalBox(node, &up->mbb_min, &up->mbb_max);
  up->split_key = right.min_key();
  up->split_child = right.id;
  ComputeInternalBox(right, &up->split_mbb_min, &up->split_mbb_max);
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, uint64_t ptr) {
  ChildUpdate up;
  SPB_RETURN_IF_ERROR(InsertRec(root_, key, ptr, &up));
  if (up.split) {
    BptNode new_root;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &new_root));
    new_root.internal_entries.push_back(
        InternalEntry{up.min_key, root_, up.mbb_min, up.mbb_max});
    new_root.internal_entries.push_back(
        InternalEntry{up.split_key, up.split_child, up.split_mbb_min,
                      up.split_mbb_max});
    SPB_RETURN_IF_ERROR(WriteNode(new_root));
    root_ = new_root.id;
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Status BPlusTree::InsertCowRec(PageId node_id, uint64_t key, uint64_t ptr,
                               CowUpdate* up, std::vector<PageId>* superseded) {
  BptNode node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  // This node is modified on every path through here, so its current page is
  // superseded unconditionally; the copy gets a fresh id.
  superseded->push_back(node_id);
  PageId new_id;
  SPB_RETURN_IF_ERROR(AllocateCowPage(&new_id));

  if (node.is_leaf) {
    node.id = new_id;
    auto it = std::upper_bound(
        node.leaf_entries.begin(), node.leaf_entries.end(), key,
        [](uint64_t k, const LeafEntry& e) { return k < e.key; });
    node.leaf_entries.insert(it, LeafEntry{key, ptr});

    if (node.leaf_entries.size() <= BptNode::kLeafCapacity) {
      SPB_RETURN_IF_ERROR(WriteNode(node));
      up->split = false;
      up->new_child = node.id;
      up->min_key = node.min_key();
      ComputeLeafBox(node, &up->mbb_min, &up->mbb_max);
      return Status::OK();
    }
    BptNode right;
    right.is_leaf = true;
    SPB_RETURN_IF_ERROR(AllocateCowPage(&right.id));
    const size_t mid = node.leaf_entries.size() / 2;
    right.leaf_entries.assign(node.leaf_entries.begin() + ptrdiff_t(mid),
                              node.leaf_entries.end());
    node.leaf_entries.resize(mid);
    // Best-effort local links only: the global chain is already declared
    // invalid (leaf_chain_valid_), since the left sibling of `node` still
    // points at the superseded page.
    right.next_leaf = node.next_leaf;
    node.next_leaf = right.id;
    SPB_RETURN_IF_ERROR(WriteNode(node));
    SPB_RETURN_IF_ERROR(WriteNode(right));
    up->split = true;
    up->new_child = node.id;
    up->min_key = node.min_key();
    ComputeLeafBox(node, &up->mbb_min, &up->mbb_max);
    up->split_key = right.min_key();
    up->split_child = right.id;
    ComputeLeafBox(right, &up->split_mbb_min, &up->split_mbb_max);
    return Status::OK();
  }

  size_t i = 0;
  for (size_t j = 1; j < node.internal_entries.size(); ++j) {
    if (node.internal_entries[j].key <= key) i = j;
  }
  CowUpdate child_up;
  SPB_RETURN_IF_ERROR(InsertCowRec(node.internal_entries[i].child, key, ptr,
                                   &child_up, superseded));
  node.id = new_id;
  node.internal_entries[i].key = child_up.min_key;
  node.internal_entries[i].child = child_up.new_child;
  node.internal_entries[i].mbb_min = child_up.mbb_min;
  node.internal_entries[i].mbb_max = child_up.mbb_max;
  if (child_up.split) {
    node.internal_entries.insert(
        node.internal_entries.begin() + ptrdiff_t(i + 1),
        InternalEntry{child_up.split_key, child_up.split_child,
                      child_up.split_mbb_min, child_up.split_mbb_max});
  }

  if (node.internal_entries.size() <= BptNode::kInternalCapacity) {
    SPB_RETURN_IF_ERROR(WriteNode(node));
    up->split = false;
    up->new_child = node.id;
    up->min_key = node.min_key();
    ComputeInternalBox(node, &up->mbb_min, &up->mbb_max);
    return Status::OK();
  }
  BptNode right;
  right.is_leaf = false;
  SPB_RETURN_IF_ERROR(AllocateCowPage(&right.id));
  const size_t mid = node.internal_entries.size() / 2;
  right.internal_entries.assign(node.internal_entries.begin() + ptrdiff_t(mid),
                                node.internal_entries.end());
  node.internal_entries.resize(mid);
  SPB_RETURN_IF_ERROR(WriteNode(node));
  SPB_RETURN_IF_ERROR(WriteNode(right));
  up->split = true;
  up->new_child = node.id;
  up->min_key = node.min_key();
  ComputeInternalBox(node, &up->mbb_min, &up->mbb_max);
  up->split_key = right.min_key();
  up->split_child = right.id;
  ComputeInternalBox(right, &up->split_mbb_min, &up->split_mbb_max);
  return Status::OK();
}

Status BPlusTree::InsertCow(uint64_t key, uint64_t ptr, TreeVersion* out,
                            std::vector<PageId>* superseded) {
  leaf_chain_valid_ = false;
  CowUpdate up;
  SPB_RETURN_IF_ERROR(InsertCowRec(root_, key, ptr, &up, superseded));
  PageId new_root = up.new_child;
  uint32_t new_height = height_;
  if (up.split) {
    BptNode root;
    root.is_leaf = false;
    root.next_leaf = kInvalidPageId;
    SPB_RETURN_IF_ERROR(AllocateCowPage(&root.id));
    root.internal_entries.push_back(
        InternalEntry{up.min_key, up.new_child, up.mbb_min, up.mbb_max});
    root.internal_entries.push_back(
        InternalEntry{up.split_key, up.split_child, up.split_mbb_min,
                      up.split_mbb_max});
    SPB_RETURN_IF_ERROR(WriteNode(root));
    new_root = root.id;
    ++new_height;
  }
  out->root = new_root;
  out->height = new_height;
  out->num_entries = num_entries_ + 1;
  return Status::OK();
}

Status BPlusTree::DeleteCow(uint64_t key, uint64_t ptr, bool* found,
                            TreeVersion* out,
                            std::vector<PageId>* superseded) {
  *found = false;
  *out = version();
  LeafCursor cur(this, version());
  SPB_RETURN_IF_ERROR(cur.Seek(key));
  while (cur.valid() && cur.entry().key == key) {
    if (cur.entry().ptr == ptr) {
      *found = true;
      break;
    }
    SPB_RETURN_IF_ERROR(cur.Next());
  }
  if (!*found) return Status::OK();

  leaf_chain_valid_ = false;
  // Rewrite the cursor's root-to-leaf path bottom-up under fresh ids. Only
  // child links (and the direct parent's MBB, which can only shrink) are
  // refreshed — separators and ancestor MBBs stay conservative, mirroring
  // the lazy in-place Delete.
  BptNode leaf_copy = cur.leaf();
  leaf_copy.leaf_entries.erase(leaf_copy.leaf_entries.begin() +
                               ptrdiff_t(cur.pos()));
  superseded->push_back(leaf_copy.id);
  SPB_RETURN_IF_ERROR(AllocateCowPage(&leaf_copy.id));
  SPB_RETURN_IF_ERROR(WriteNode(leaf_copy));
  uint64_t leaf_mbb_min, leaf_mbb_max;
  ComputeLeafBox(leaf_copy, &leaf_mbb_min, &leaf_mbb_max);

  PageId child_id = leaf_copy.id;
  for (size_t level = cur.frames_.size() - 1; level-- > 0;) {
    BptNode copy = cur.frames_[level].handle->node;
    const size_t idx = cur.frames_[level].idx;
    copy.internal_entries[idx].child = child_id;
    if (level + 2 == cur.frames_.size()) {
      // Direct parent of the leaf: its entry's MBB can be tightened to the
      // recomputed (smaller or equal) leaf box. For an emptied leaf the
      // {0,0} box is fine — the invariant checker skips empty children.
      copy.internal_entries[idx].mbb_min = leaf_mbb_min;
      copy.internal_entries[idx].mbb_max = leaf_mbb_max;
    }
    superseded->push_back(copy.id);
    SPB_RETURN_IF_ERROR(AllocateCowPage(&copy.id));
    SPB_RETURN_IF_ERROR(WriteNode(copy));
    child_id = copy.id;
  }
  out->root = child_id;
  out->height = height_;
  out->num_entries = num_entries_ - 1;
  return Status::OK();
}

Status BPlusTree::LeafCursor::LoadFrame(size_t level, PageId id) {
  if (frames_.size() <= level) frames_.resize(level + 1);
  Frame& f = frames_[level];
  if (!f.scratch) f.scratch = std::make_unique<DecodedNode>();
  f.idx = 0;
  return tree_->GetNode(id, f.scratch.get(), &f.handle);
}

Status BPlusTree::LeafCursor::DescendLeftmost(size_t level) {
  while (true) {
    const BptNode& node = frames_[level].handle->node;
    if (node.is_leaf) {
      frames_.resize(level + 1);
      return Status::OK();
    }
    const PageId child = node.internal_entries[frames_[level].idx].child;
    SPB_RETURN_IF_ERROR(LoadFrame(level + 1, child));
    ++level;
  }
}

Status BPlusTree::LeafCursor::AdvanceLeaf() {
  while (true) {
    // Deepest ancestor frame with an unvisited sibling subtree.
    ptrdiff_t l = ptrdiff_t(frames_.size()) - 2;
    for (; l >= 0; --l) {
      const Frame& f = frames_[size_t(l)];
      if (f.idx + 1 < f.handle->node.internal_entries.size()) break;
    }
    if (l < 0) {
      valid_ = false;
      return Status::OK();
    }
    Frame& f = frames_[size_t(l)];
    ++f.idx;
    SPB_RETURN_IF_ERROR(
        LoadFrame(size_t(l) + 1, f.handle->node.internal_entries[f.idx].child));
    SPB_RETURN_IF_ERROR(DescendLeftmost(size_t(l) + 1));
    if (!frames_.back().handle->node.leaf_entries.empty()) {
      frames_.back().idx = 0;
      valid_ = true;
      return Status::OK();
    }
    // Lazily-deleted-empty leaf: keep advancing.
  }
}

Status BPlusTree::LeafCursor::SeekFirst() {
  valid_ = false;
  frames_.clear();
  if (version_.root == kInvalidPageId) return Status::OK();
  SPB_RETURN_IF_ERROR(LoadFrame(0, version_.root));
  SPB_RETURN_IF_ERROR(DescendLeftmost(0));
  if (!frames_.back().handle->node.leaf_entries.empty()) {
    frames_.back().idx = 0;
    valid_ = true;
    return Status::OK();
  }
  return AdvanceLeaf();
}

Status BPlusTree::LeafCursor::Seek(uint64_t key) {
  valid_ = false;
  frames_.clear();
  if (version_.root == kInvalidPageId) return Status::OK();
  SPB_RETURN_IF_ERROR(LoadFrame(0, version_.root));
  size_t level = 0;
  while (!frames_[level].handle->node.is_leaf) {
    const auto& entries = frames_[level].handle->node.internal_entries;
    // Same descent rule as SeekLeaf: the first entry >= key can only live in
    // (or after) the last child whose separator is strictly below key.
    size_t i = 0;
    for (size_t j = 1; j < entries.size(); ++j) {
      if (entries[j].key < key) i = j;
    }
    frames_[level].idx = i;
    SPB_RETURN_IF_ERROR(LoadFrame(level + 1, entries[i].child));
    ++level;
  }
  frames_.resize(level + 1);
  const auto& leaf_entries = frames_[level].handle->node.leaf_entries;
  auto it = std::lower_bound(
      leaf_entries.begin(), leaf_entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  frames_[level].idx = size_t(it - leaf_entries.begin());
  if (frames_[level].idx < leaf_entries.size()) {
    valid_ = true;
    return Status::OK();
  }
  // Landed past the end of this leaf (stale-low separators can do that):
  // walk forward to the next non-empty leaf.
  return AdvanceLeaf();
}

Status BPlusTree::LeafCursor::Next() {
  if (!valid_) return Status::OK();
  Frame& f = frames_.back();
  ++f.idx;
  if (f.idx < f.handle->node.leaf_entries.size()) return Status::OK();
  return AdvanceLeaf();
}

Status BPlusTree::SeekLeaf(uint64_t key, BptNode* leaf, size_t* pos) {
  PageId id = root_;
  BptNode node;
  for (uint32_t level = height_; level > 1; --level) {
    SPB_RETURN_IF_ERROR(ReadNode(id, &node));
    if (node.is_leaf) break;
    // First entry >= key can only live in (or after) the last child whose
    // separator is strictly below key.
    size_t i = 0;
    for (size_t j = 1; j < node.internal_entries.size(); ++j) {
      if (node.internal_entries[j].key < key) i = j;
    }
    id = node.internal_entries[i].child;
  }
  SPB_RETURN_IF_ERROR(ReadNode(id, leaf));
  while (true) {
    auto it = std::lower_bound(
        leaf->leaf_entries.begin(), leaf->leaf_entries.end(), key,
        [](const LeafEntry& e, uint64_t k) { return e.key < k; });
    if (it != leaf->leaf_entries.end()) {
      *pos = size_t(it - leaf->leaf_entries.begin());
      return Status::OK();
    }
    if (leaf->next_leaf == kInvalidPageId) {
      *pos = leaf->leaf_entries.size();
      leaf->id = kInvalidPageId;
      return Status::OK();
    }
    SPB_RETURN_IF_ERROR(ReadNode(leaf->next_leaf, leaf));
  }
}

Status BPlusTree::Delete(uint64_t key, uint64_t ptr, bool* found) {
  *found = false;
  BptNode leaf;
  size_t pos;
  SPB_RETURN_IF_ERROR(SeekLeaf(key, &leaf, &pos));
  while (leaf.id != kInvalidPageId) {
    for (; pos < leaf.leaf_entries.size(); ++pos) {
      const LeafEntry& e = leaf.leaf_entries[pos];
      if (e.key != key) return Status::OK();  // past all duplicates
      if (e.ptr == ptr) {
        leaf.leaf_entries.erase(leaf.leaf_entries.begin() + ptrdiff_t(pos));
        SPB_RETURN_IF_ERROR(WriteNode(leaf));
        --num_entries_;
        *found = true;
        return Status::OK();
      }
    }
    if (leaf.next_leaf == kInvalidPageId) return Status::OK();
    SPB_RETURN_IF_ERROR(ReadNode(leaf.next_leaf, &leaf));
    pos = 0;
  }
  return Status::OK();
}

Status BPlusTree::Sync() {
  SPB_RETURN_IF_ERROR(WriteMeta());
  return owned_file_->Sync();
}

Status BPlusTree::CheckInvariantsRec(PageId node_id, bool is_root,
                                     uint64_t* min_key,
                                     std::vector<uint32_t>* lo,
                                     std::vector<uint32_t>* hi,
                                     uint32_t* depth) {
  BptNode node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  const size_t dims = curve_->dims();
  lo->assign(dims, UINT32_MAX);
  hi->assign(dims, 0);

  if (node.is_leaf) {
    *depth = 1;
    if (node.leaf_entries.empty()) {
      if (!is_root) {
        // Lazily-deleted-empty leaves are allowed; report a box that is
        // contained in anything.
        *min_key = UINT64_MAX;
        return Status::OK();
      }
      *min_key = UINT64_MAX;
      return Status::OK();
    }
    std::vector<uint32_t> cell;
    uint64_t prev = 0;
    bool first = true;
    for (const LeafEntry& e : node.leaf_entries) {
      if (!first && e.key < prev) {
        return Status::Corruption("leaf keys out of order");
      }
      prev = e.key;
      first = false;
      curve_->Decode(e.key, &cell);
      for (size_t i = 0; i < dims; ++i) {
        (*lo)[i] = std::min((*lo)[i], cell[i]);
        (*hi)[i] = std::max((*hi)[i], cell[i]);
      }
    }
    *min_key = node.leaf_entries.front().key;
    return Status::OK();
  }

  if (node.internal_entries.empty()) {
    return Status::Corruption("empty internal node");
  }
  *min_key = UINT64_MAX;
  uint32_t child_depth = 0;
  for (size_t i = 0; i < node.internal_entries.size(); ++i) {
    const InternalEntry& e = node.internal_entries[i];
    if (i > 0 && e.key < node.internal_entries[i - 1].key) {
      return Status::Corruption("internal keys out of order");
    }
    uint64_t child_min;
    std::vector<uint32_t> clo, chi;
    uint32_t d;
    SPB_RETURN_IF_ERROR(
        CheckInvariantsRec(e.child, false, &child_min, &clo, &chi, &d));
    if (i == 0) {
      child_depth = d;
    } else if (d != child_depth) {
      return Status::Corruption("unbalanced subtree depths");
    }
    if (child_min != UINT64_MAX) {
      // Separator must be a (possibly stale-low) lower bound of the subtree.
      if (e.key > child_min) {
        return Status::Corruption("separator exceeds subtree min");
      }
      *min_key = std::min(*min_key, child_min);
      // Entry MBB must contain the subtree's actual box.
      std::vector<uint32_t> elo, ehi;
      DecodeBox(e.mbb_min, e.mbb_max, &elo, &ehi);
      for (size_t k = 0; k < dims; ++k) {
        if (clo[k] < elo[k] || chi[k] > ehi[k]) {
          return Status::Corruption("MBB does not contain subtree");
        }
        (*lo)[k] = std::min((*lo)[k], clo[k]);
        (*hi)[k] = std::max((*hi)[k], chi[k]);
      }
    }
  }
  *depth = child_depth + 1;
  return Status::OK();
}

Status BPlusTree::CheckInvariants() {
  uint64_t min_key;
  std::vector<uint32_t> lo, hi;
  uint32_t depth;
  SPB_RETURN_IF_ERROR(
      CheckInvariantsRec(root_, true, &min_key, &lo, &hi, &depth));
  if (depth != height_) return Status::Corruption("height mismatch");

  // Leaf chain: globally sorted, covers exactly num_entries_ entries, and
  // starts at first_leaf_. Only checkable on trees never touched by a COW
  // write — COW leaves the chain stale by design.
  if (leaf_chain_valid_) {
    BptNode leaf;
    SPB_RETURN_IF_ERROR(ReadNode(first_leaf_, &leaf));
    uint64_t count = 0;
    uint64_t prev = 0;
    bool first = true;
    while (true) {
      for (const LeafEntry& e : leaf.leaf_entries) {
        if (!first && e.key < prev) {
          return Status::Corruption("leaf chain out of order");
        }
        prev = e.key;
        first = false;
        ++count;
      }
      if (leaf.next_leaf == kInvalidPageId) break;
      SPB_RETURN_IF_ERROR(ReadNode(leaf.next_leaf, &leaf));
    }
    if (count != num_entries_) {
      return Status::Corruption("leaf chain entry count mismatch");
    }
  }

  // Chain-free global order + count via the parent-stack cursor: the same
  // guarantee the chain walk gave, valid on COW'd trees too.
  LeafCursor cur(this, version());
  SPB_RETURN_IF_ERROR(cur.SeekFirst());
  uint64_t cur_count = 0;
  uint64_t cur_prev = 0;
  bool cur_first = true;
  while (cur.valid()) {
    if (!cur_first && cur.entry().key < cur_prev) {
      return Status::Corruption("cursor scan out of order");
    }
    cur_prev = cur.entry().key;
    cur_first = false;
    ++cur_count;
    SPB_RETURN_IF_ERROR(cur.Next());
  }
  if (cur_count != num_entries_) {
    return Status::Corruption("cursor scan entry count mismatch");
  }
  return Status::OK();
}

}  // namespace spb
