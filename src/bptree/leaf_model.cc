#include "bptree/leaf_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spb {

namespace {

// Probe window half-width around the PLA prediction. ε bounds the error on
// *trained* keys (the directory's max keys); a query key between two trained
// keys lands between their predictions (slope >= 0), so +2 covers the
// off-grid drift. The lookup guard below makes correctness independent of
// this constant anyway — it only sizes the fast window.
size_t ProbeWindow(size_t epsilon) { return epsilon + 2; }

}  // namespace

Status LeafModel::Build(BPlusTree* tree, const TreeVersion& version,
                        size_t epsilon, uint64_t epoch,
                        std::shared_ptr<const LeafModel>* out) {
  auto model = std::shared_ptr<LeafModel>(new LeafModel());
  model->epoch_ = epoch;
  model->epsilon_ = epsilon;
  if (version.root == kInvalidPageId) {
    *out = std::move(model);
    return Status::OK();
  }

  // Level-order walk, children in entry order: every level — and therefore
  // the leaf directory — comes out in global key order. Internal levels are
  // decoded straight into the image map (stable addresses; NodeHandle
  // borrows them during traversal); the leaf level only feeds the directory.
  std::vector<PageId> frontier{version.root};
  std::vector<PageId> next;
  DecodedNode probe;
  while (!frontier.empty()) {
    SPB_RETURN_IF_ERROR(tree->DecodeNodeUncounted(frontier[0], &probe));
    if (probe.node.is_leaf) break;
    next.clear();
    for (PageId id : frontier) {
      DecodedNode& dn = model->internal_[id];
      SPB_RETURN_IF_ERROR(tree->DecodeNodeUncounted(id, &dn));
      if (dn.node.is_leaf) {
        return Status::Corruption("LeafModel: mixed-level B+-tree");
      }
      for (const InternalEntry& e : dn.node.internal_entries) {
        next.push_back(e.child);
      }
    }
    frontier.swap(next);
  }
  model->leaf_ids_.reserve(frontier.size());
  model->min_keys_.reserve(frontier.size());
  model->max_keys_.reserve(frontier.size());
  for (PageId id : frontier) {
    SPB_RETURN_IF_ERROR(tree->DecodeNodeUncounted(id, &probe));
    const BptNode& n = probe.node;
    if (!n.is_leaf) {
      return Status::Corruption("LeafModel: mixed-level B+-tree");
    }
    if (n.leaf_entries.empty()) continue;  // lazy deletion leaves these
    model->leaf_ids_.push_back(id);
    model->min_keys_.push_back(n.leaf_entries.front().key);
    model->max_keys_.push_back(n.leaf_entries.back().key);
  }
  // The directory must be sorted for SeekRank; a violation would mean the
  // tree broke its cross-leaf ordering invariant.
  if (!std::is_sorted(model->max_keys_.begin(), model->max_keys_.end()) ||
      !std::is_sorted(model->min_keys_.begin(), model->min_keys_.end())) {
    return Status::Corruption("LeafModel: leaf level out of key order");
  }

  model->TrainSegments();
  *out = std::move(model);
  return Status::OK();
}

void LeafModel::TrainSegments() {
  segments_.clear();
  pla_ok_ = false;
  const size_t n = max_keys_.size();
  if (n == 0) return;

  // Greedy shrinking-cone PLA over the points (max_keys_[i], i), in long
  // double over (key - segment base): a 64-bit SFC key does not fit double's
  // mantissa, but the per-segment delta almost always does, and the
  // verification pass below catches any case where it does not.
  const long double eps = static_cast<long double>(epsilon_);
  const long double inf = std::numeric_limits<long double>::infinity();
  size_t start = 0;
  while (start < n) {
    const uint64_t base = max_keys_[start];
    long double slope_lo = -inf, slope_hi = inf;
    size_t end = start + 1;
    for (; end < n; ++end) {
      const uint64_t dx_u = max_keys_[end] - base;
      const long double dy = static_cast<long double>(end - start);
      if (dx_u == 0) {
        // Duplicate max keys (a duplicate run spanning leaves): the segment
        // can absorb at most ε of them at the same x.
        if (dy > eps) break;
        continue;
      }
      const long double dx = static_cast<long double>(dx_u);
      slope_lo = std::max(slope_lo, (dy - eps) / dx);
      slope_hi = std::min(slope_hi, (dy + eps) / dx);
      if (slope_lo > slope_hi) break;
    }
    long double slope;
    if (slope_hi == inf) {
      slope = 0.0L;  // single-point / duplicate-only segment
    } else if (slope_lo == -inf) {
      slope = slope_hi;
    } else {
      slope = (slope_lo + slope_hi) / 2.0L;
    }
    if (slope < 0.0L) slope = 0.0L;  // ranks are nondecreasing in key
    segments_.push_back(Segment{base, static_cast<uint32_t>(start),
                                static_cast<double>(slope)});
    start = end;
  }

  // Exact verification of every trained key: the prediction must land within
  // the probe window of the key's true rank (the FIRST directory entry with
  // that max key — lower_bound semantics, which is what SeekRank returns).
  // Any violation disables the PLA: SeekRank then binary-searches the whole
  // directory, so correctness never rests on floating point.
  const size_t w = ProbeWindow(epsilon_);
  for (size_t i = 0; i < n; ++i) {
    const size_t truth =
        static_cast<size_t>(std::lower_bound(max_keys_.begin(),
                                             max_keys_.end(), max_keys_[i]) -
                            max_keys_.begin());
    const size_t pred = PredictRank(max_keys_[i]);
    const size_t delta = pred > truth ? pred - truth : truth - pred;
    if (delta > w) return;  // pla_ok_ stays false
  }
  pla_ok_ = true;
}

size_t LeafModel::PredictRank(uint64_t key) const {
  // Last segment with base_key <= key. Segments are few (each covers many
  // leaves), so this binary search is over a tiny array — the point is
  // eliding *page* accesses, not this in-memory search.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](uint64_t k, const Segment& s) { return k < s.base_key; });
  if (it == segments_.begin()) return 0;
  const Segment& s = *(it - 1);
  const long double dx = static_cast<long double>(key - s.base_key);
  long double p = static_cast<long double>(s.base_rank) +
                  static_cast<long double>(s.slope) * dx;
  const long double max_rank =
      static_cast<long double>(max_keys_.size() - 1);
  if (!(p > 0.0L)) p = 0.0L;
  if (p > max_rank) p = max_rank;
  return static_cast<size_t>(p);
}

size_t LeafModel::SeekRank(uint64_t key, bool* pla_miss) const {
  if (pla_miss != nullptr) *pla_miss = false;
  const size_t n = max_keys_.size();
  if (n == 0) return 0;
  size_t lo = 0, hi = n;
  if (pla_ok_) {
    const size_t pred = PredictRank(key);
    const size_t w = ProbeWindow(epsilon_);
    lo = pred > w ? pred - w : 0;
    hi = std::min(n, pred + w + 1);
  }
  size_t r = static_cast<size_t>(
      std::lower_bound(max_keys_.begin() + static_cast<ptrdiff_t>(lo),
                       max_keys_.begin() + static_cast<ptrdiff_t>(hi), key) -
      max_keys_.begin());
  // Exactness guard: the window result must be the GLOBAL lower bound. When
  // the true rank lies outside the probe window, r sits pinned at a window
  // edge whose neighbors contradict lower-bound-ness — re-search the whole
  // directory (exact, still zero page accesses).
  const bool exact = (r == 0 || max_keys_[r - 1] < key) &&
                     (r == n || max_keys_[r] >= key);
  if (exact) return r;
  if (pla_miss != nullptr) *pla_miss = true;
  return static_cast<size_t>(
      std::lower_bound(max_keys_.begin(), max_keys_.end(), key) -
      max_keys_.begin());
}

}  // namespace spb
