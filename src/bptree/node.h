#ifndef SPB_BPTREE_NODE_H_
#define SPB_BPTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace spb {

/// Leaf entry of the B+-tree: the SFC value of an object and the byte offset
/// of the object's record in the RAF (Fig. 4 of the paper: (key, ptr)).
struct LeafEntry {
  uint64_t key;
  uint64_t ptr;

  bool operator==(const LeafEntry&) const = default;
};

/// Non-leaf entry: minimum key of the subtree, child page pointer, and the
/// subtree's MBB encoded as the SFC values of its low and high corners
/// (Fig. 4: (key, ptr, min, max)).
struct InternalEntry {
  uint64_t key;
  PageId child;
  uint64_t mbb_min;
  uint64_t mbb_max;
};

/// In-memory image of one B+-tree node page.
///
/// On-disk layout (4 KB page):
///   [0]     u8   is_leaf
///   [1]     u8   reserved
///   [2..3]  u16  entry count
///   [4..7]  u32  next_leaf page id (leaves only; kInvalidPageId otherwise)
///   [8..]   entries (16 B leaf entries / 28 B internal entries)
struct BptNode {
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kLeafEntrySize = 16;
  static constexpr size_t kInternalEntrySize = 28;
  /// Fan-out limits imposed by the 4 KB page.
  static constexpr size_t kLeafCapacity =
      (kPageSize - kHeaderSize) / kLeafEntrySize;  // 255
  static constexpr size_t kInternalCapacity =
      (kPageSize - kHeaderSize) / kInternalEntrySize;  // 146

  PageId id = kInvalidPageId;
  bool is_leaf = true;
  PageId next_leaf = kInvalidPageId;
  std::vector<LeafEntry> leaf_entries;
  std::vector<InternalEntry> internal_entries;

  size_t size() const {
    return is_leaf ? leaf_entries.size() : internal_entries.size();
  }
  size_t capacity() const {
    return is_leaf ? kLeafCapacity : kInternalCapacity;
  }

  /// Minimum key in this node (node must be non-empty).
  uint64_t min_key() const {
    return is_leaf ? leaf_entries.front().key : internal_entries.front().key;
  }

  void SerializeTo(Page* page) const;
  Status DeserializeFrom(const Page& page, PageId page_id);
};

}  // namespace spb

#endif  // SPB_BPTREE_NODE_H_
