#include "bptree/node.h"

#include "common/coding.h"

namespace spb {

void BptNode::SerializeTo(Page* page) const {
  page->Clear();
  uint8_t* dst = page->bytes();
  dst[0] = is_leaf ? 1 : 0;
  dst[1] = 0;
  EncodeFixed16(dst + 2, static_cast<uint16_t>(size()));
  EncodeFixed32(dst + 4, next_leaf);
  dst += kHeaderSize;
  if (is_leaf) {
    for (const LeafEntry& e : leaf_entries) {
      EncodeFixed64(dst, e.key);
      EncodeFixed64(dst + 8, e.ptr);
      dst += kLeafEntrySize;
    }
  } else {
    for (const InternalEntry& e : internal_entries) {
      EncodeFixed64(dst, e.key);
      EncodeFixed32(dst + 8, e.child);
      EncodeFixed64(dst + 12, e.mbb_min);
      EncodeFixed64(dst + 20, e.mbb_max);
      dst += kInternalEntrySize;
    }
  }
}

Status BptNode::DeserializeFrom(const Page& page, PageId page_id) {
  const uint8_t* src = page.bytes();
  id = page_id;
  is_leaf = src[0] != 0;
  const uint16_t count = DecodeFixed16(src + 2);
  next_leaf = DecodeFixed32(src + 4);
  src += kHeaderSize;
  leaf_entries.clear();
  internal_entries.clear();
  if (is_leaf) {
    if (count > kLeafCapacity) return Status::Corruption("leaf overfull");
    leaf_entries.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      leaf_entries.push_back(
          LeafEntry{DecodeFixed64(src), DecodeFixed64(src + 8)});
      src += kLeafEntrySize;
    }
  } else {
    if (count > kInternalCapacity) {
      return Status::Corruption("internal node overfull");
    }
    internal_entries.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      internal_entries.push_back(InternalEntry{
          DecodeFixed64(src), DecodeFixed32(src + 8), DecodeFixed64(src + 12),
          DecodeFixed64(src + 20)});
      src += kInternalEntrySize;
    }
  }
  return Status::OK();
}

}  // namespace spb
