#include "bptree/node_cache.h"

#include <algorithm>

namespace spb {

Status DecodedNode::Decode(const Page& page, PageId page_id,
                          const SpaceFillingCurve& curve) {
  SPB_RETURN_IF_ERROR(node.DeserializeFrom(page, page_id));
  dims = curve.dims();
  if (node.is_leaf) {
    mbb_lo.clear();
    mbb_hi.clear();
    return Status::OK();
  }
  const size_t n = node.internal_entries.size();
  mbb_lo.resize(n * dims);
  mbb_hi.resize(n * dims);
  if (n == 0) return Status::OK();
  key_scratch_.resize(n);
  // One dim-major matrix (dims * n) plus DecodeBatch's n-word tmp.
  cell_scratch_.resize(dims * n + n);
  uint32_t* mat = cell_scratch_.data();
  uint32_t* tmp = cell_scratch_.data() + dims * n;

  // Two passes (low corners, high corners): batch-decode into the dim-major
  // matrix, then transpose to the entry-major layout lo(i)/hi(i) expose.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<uint32_t>& out = (pass == 0) ? mbb_lo : mbb_hi;
    for (size_t i = 0; i < n; ++i) {
      key_scratch_[i] = (pass == 0) ? node.internal_entries[i].mbb_min
                                    : node.internal_entries[i].mbb_max;
    }
    curve.DecodeBatch(key_scratch_.data(), n, mat, tmp);
    for (size_t d = 0; d < dims; ++d) {
      const uint32_t* row = mat + d * n;
      for (size_t i = 0; i < n; ++i) out[i * dims + d] = row[i];
    }
  }
  return Status::OK();
}

void NodeCache::Resize(size_t capacity) {
  capacity_ = capacity;
  size_t num_shards = 1;
  if (capacity >= 2 * kMinShardEntries) {
    num_shards = std::min(kMaxShards, capacity / kMinShardEntries);
  }
  shards_.clear();
  shards_.reserve(num_shards);
  const size_t base = capacity / num_shards;
  const size_t extra = capacity % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const DecodedNode> NodeCache::Lookup(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->node;
}

void NodeCache::Insert(PageId id, std::shared_ptr<const DecodedNode> node) {
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->node = std::move(node);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.capacity == 0) return;
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().id);
    shard.lru.pop_back();
  }
  shard.lru.push_front(Entry{id, std::move(node)});
  shard.index[id] = shard.lru.begin();
}

void NodeCache::Erase(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<InstrumentedMutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void NodeCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<InstrumentedMutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace spb
