#ifndef SPB_BPTREE_LEAF_MODEL_H_
#define SPB_BPTREE_LEAF_MODEL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bptree/bptree.h"
#include "bptree/node_cache.h"
#include "common/status.h"

namespace spb {

/// Learned leaf-location layer over ONE immutable TreeVersion (the SPB-tree's
/// PGM-style locator, docs/ARCHITECTURE.md §"Learned locator + planner").
///
/// The mapped keys are one-dimensional SFC integers and the leaf level of a
/// bulk-loaded B+-tree is a sorted array of (key, ptr) runs, which is exactly
/// the regime where a piecewise-linear key→position model replaces the inner
/// node descent (the LIMS observation, PAPERS.md). A LeafModel holds three
/// things, all derived from one raw (uncounted) pass over the version:
///
///  1. A *leaf directory*: the page ids of every non-empty leaf in key order,
///     with each leaf's min/max key. Ranks into this directory are exact.
///  2. An *internal-node image*: every internal node of the version, fully
///     decoded (parsed entries + MBB corners). Traversals serve inner-node
///     reads from this image instead of the buffer pool — the image covers
///     ALL internal pages of the version, so an image miss proves the page is
///     a leaf and falls through to the counted demand path. Inner-node page
///     accesses drop to zero while the visit *sequence* stays untouched,
///     which is what keeps results and compdists byte-identical.
///  3. ε-bounded piecewise-linear segments over the directory's max keys
///     (greedy shrinking-cone PLA): SeekRank predicts the rank of the leaf
///     owning a key and verifies it inside a ±(ε+2) probe window. Every
///     trained key is verified at build time; lookups additionally guard the
///     window result against the directory, so a floating-point surprise
///     degrades to a full binary search over the directory — never to a
///     wrong leaf.
///
/// Immutable after Build and safe to share across reader threads (lookups
/// are const and touch no mutable state). Validity is tagged, not checked:
/// the owner stamps the snapshot epoch the model was built at, readers use
/// it only when their snapshot's epoch matches, and the writer invalidates
/// its copy on the first COW mutation. A stale model is therefore never
/// consulted — fallback to classic descent is the failure mode, by
/// construction.
class LeafModel {
 public:
  /// One PLA segment: predicted rank = base_rank + slope * (key - base_key),
  /// valid from base_key up to the next segment's base_key.
  struct Segment {
    uint64_t base_key;
    uint32_t base_rank;
    double slope;
  };

  /// Builds the model of `version` with error bound `epsilon`, stamped with
  /// the snapshot `epoch` the version is published under. One raw pass:
  /// level-order walk decoding internal nodes into the image, then the leaf
  /// level into the directory (children are visited in entry order, so the
  /// directory comes out in global key order). Zero accounting footprint
  /// (BPlusTree::DecodeNodeUncounted).
  static Status Build(BPlusTree* tree, const TreeVersion& version,
                      size_t epsilon, uint64_t epoch,
                      std::shared_ptr<const LeafModel>* out);

  /// Rank of the first non-empty leaf whose max key >= `key` — the leaf that
  /// owns `key` — or num_leaves() when every key is smaller. Exact for any
  /// key. `*pla_miss` (optional) reports that the PLA probe window did not
  /// contain the answer and a full directory binary search ran instead
  /// (diagnostic; the result is exact either way).
  size_t SeekRank(uint64_t key, bool* pla_miss = nullptr) const;

  /// The decoded internal node for `id`, or nullptr when `id` is not an
  /// internal page of this version (i.e. it is a leaf).
  const DecodedNode* FindInternal(PageId id) const {
    auto it = internal_.find(id);
    return it == internal_.end() ? nullptr : &it->second;
  }

  uint64_t epoch() const { return epoch_; }
  size_t epsilon() const { return epsilon_; }
  size_t num_leaves() const { return leaf_ids_.size(); }
  size_t num_segments() const { return segments_.size(); }
  size_t num_internal_nodes() const { return internal_.size(); }
  /// True when the PLA trained within ε on every directory key; false means
  /// SeekRank always binary-searches the directory (still exact, still
  /// O(log leaves) with zero page accesses).
  bool pla_ok() const { return pla_ok_; }

  PageId leaf_id(size_t rank) const { return leaf_ids_[rank]; }
  uint64_t min_key(size_t rank) const { return min_keys_[rank]; }
  uint64_t max_key(size_t rank) const { return max_keys_[rank]; }

 private:
  LeafModel() = default;

  void TrainSegments();
  /// PLA-predicted rank for `key`, clamped to [0, num_leaves()-1].
  size_t PredictRank(uint64_t key) const;

  uint64_t epoch_ = 0;
  size_t epsilon_ = 0;
  bool pla_ok_ = false;

  // Leaf directory, global key order. max_keys_ is nondecreasing (the leaf
  // level is globally sorted), which is what makes rank = lower_bound(max
  // keys, key) the owning leaf.
  std::vector<PageId> leaf_ids_;
  std::vector<uint64_t> min_keys_;
  std::vector<uint64_t> max_keys_;

  std::vector<Segment> segments_;

  // node-based map: DecodedNode addresses stay stable, so NodeHandle can
  // borrow straight into the image.
  std::unordered_map<PageId, DecodedNode> internal_;
};

}  // namespace spb

#endif  // SPB_BPTREE_LEAF_MODEL_H_
