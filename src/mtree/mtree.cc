#include "mtree/mtree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "common/coding.h"

namespace spb {

namespace {
constexpr size_t kNodeHeader = 4;
constexpr size_t kLeafOverhead = 16;      // id + len + parent_dist
constexpr size_t kRoutingOverhead = 24;   // child + len + radius + parent_dist
constexpr size_t kMaxBulkFanout = 64;
}  // namespace

size_t MTree::Node::ByteSize() const {
  size_t bytes = kNodeHeader;
  if (is_leaf) {
    for (const LeafEntry& e : leaves) bytes += kLeafOverhead + e.obj.size();
  } else {
    for (const RoutingEntry& e : routes) {
      bytes += kRoutingOverhead + e.obj.size();
    }
  }
  return bytes;
}

void MTree::Node::SerializeTo(Page* page) const {
  page->Clear();
  uint8_t* dst = page->bytes();
  dst[0] = is_leaf ? 1 : 0;
  EncodeFixed16(dst + 2, uint16_t(is_leaf ? leaves.size() : routes.size()));
  dst += kNodeHeader;
  if (is_leaf) {
    for (const LeafEntry& e : leaves) {
      EncodeFixed32(dst, e.id);
      EncodeFixed32(dst + 4, uint32_t(e.obj.size()));
      EncodeDouble(dst + 8, e.parent_dist);
      std::memcpy(dst + 16, e.obj.data(), e.obj.size());
      dst += kLeafOverhead + e.obj.size();
    }
  } else {
    for (const RoutingEntry& e : routes) {
      EncodeFixed32(dst, e.child);
      EncodeFixed32(dst + 4, uint32_t(e.obj.size()));
      EncodeDouble(dst + 8, e.radius);
      EncodeDouble(dst + 16, e.parent_dist);
      std::memcpy(dst + 24, e.obj.data(), e.obj.size());
      dst += kRoutingOverhead + e.obj.size();
    }
  }
}

Status MTree::Node::DeserializeFrom(const Page& page, PageId page_id) {
  const uint8_t* src = page.bytes();
  id = page_id;
  is_leaf = src[0] != 0;
  const uint16_t count = DecodeFixed16(src + 2);
  src += kNodeHeader;
  leaves.clear();
  routes.clear();
  if (is_leaf) {
    leaves.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      LeafEntry e;
      e.id = DecodeFixed32(src);
      const uint32_t len = DecodeFixed32(src + 4);
      e.parent_dist = DecodeDouble(src + 8);
      e.obj.assign(src + 16, src + 16 + len);
      src += kLeafOverhead + len;
      leaves.push_back(std::move(e));
    }
  } else {
    routes.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      RoutingEntry e;
      e.child = DecodeFixed32(src);
      const uint32_t len = DecodeFixed32(src + 4);
      e.radius = DecodeDouble(src + 8);
      e.parent_dist = DecodeDouble(src + 16);
      e.obj.assign(src + 24, src + 24 + len);
      src += kRoutingOverhead + len;
      routes.push_back(std::move(e));
    }
  }
  return Status::OK();
}

Status MTree::ReadNode(PageId id, Node* node) {
  Page page;
  SPB_RETURN_IF_ERROR(pool_.Read(id, &page));
  return node->DeserializeFrom(page, id);
}

Status MTree::WriteNode(const Node& node) {
  Page page;
  node.SerializeTo(&page);
  return pool_.Write(node.id, page);
}

Status MTree::AllocateNode(bool is_leaf, Node* node) {
  PageId id;
  SPB_RETURN_IF_ERROR(pool_.Allocate(&id));
  node->id = id;
  node->is_leaf = is_leaf;
  node->leaves.clear();
  node->routes.clear();
  return Status::OK();
}

Status MTree::CreateEmpty(const DistanceFunction* metric,
                          const MtreeOptions& options,
                          std::unique_ptr<MTree>* out) {
  auto tree = std::unique_ptr<MTree>(new MTree(metric, options));
  Node root;
  SPB_RETURN_IF_ERROR(tree->AllocateNode(/*is_leaf=*/true, &root));
  SPB_RETURN_IF_ERROR(tree->WriteNode(root));
  tree->root_ = root.id;
  *out = std::move(tree);
  return Status::OK();
}

// --------------------------------------------------------------- bulk load

Status MTree::BulkRec(std::vector<Item> items, SubtreeSummary* out) {
  // Leaf case: everything fits in one page.
  size_t leaf_bytes = kNodeHeader;
  for (const Item& it : items) leaf_bytes += kLeafOverhead + it.obj->size();
  if (leaf_bytes <= kPageSize) {
    Node leaf;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/true, &leaf));
    const Blob& routing = *items[rng_.Uniform(items.size())].obj;
    double radius = 0.0;
    for (const Item& it : items) {
      const double d = Distance(*it.obj, routing);
      radius = std::max(radius, d);
      leaf.leaves.push_back(LeafEntry{it.id, d, *it.obj});
    }
    SPB_RETURN_IF_ERROR(WriteNode(leaf));
    *out = SubtreeSummary{leaf.id, routing, radius};
    return Status::OK();
  }

  // Sample seeds and assign every item to its nearest seed.
  size_t avg = 0;
  for (const Item& it : items) avg += it.obj->size();
  avg = avg / items.size() + 1;
  const size_t est_leaf_items =
      std::max<size_t>(1, (kPageSize - kNodeHeader) / (kLeafOverhead + avg));
  const size_t k = std::clamp<size_t>(
      (items.size() + est_leaf_items - 1) / est_leaf_items, 2, kMaxBulkFanout);

  std::vector<const Blob*> seeds;
  for (size_t i = 0; i < k; ++i) {
    seeds.push_back(items[rng_.Uniform(items.size())].obj);
  }
  std::vector<std::vector<Item>> clusters(k);
  for (const Item& it : items) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < k; ++s) {
      const double d = Distance(*it.obj, *seeds[s]);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    clusters[best].push_back(it);
  }
  size_t non_empty = 0;
  for (const auto& c : clusters) {
    if (!c.empty()) ++non_empty;
  }
  if (non_empty < 2) {
    // Degenerate clustering (duplicates): split round-robin instead.
    for (auto& c : clusters) c.clear();
    for (size_t i = 0; i < items.size(); ++i) {
      clusters[i % k].push_back(items[i]);
    }
  }

  std::vector<SubtreeSummary> summaries;
  for (auto& cluster : clusters) {
    if (cluster.empty()) continue;
    SubtreeSummary s;
    SPB_RETURN_IF_ERROR(BulkRec(std::move(cluster), &s));
    summaries.push_back(std::move(s));
  }
  return BuildOverSummaries(std::move(summaries), out);
}

Status MTree::BuildOverSummaries(std::vector<SubtreeSummary> summaries,
                                 SubtreeSummary* out) {
  if (summaries.size() == 1) {
    *out = std::move(summaries[0]);
    return Status::OK();
  }
  size_t bytes = kNodeHeader;
  for (const SubtreeSummary& s : summaries) {
    bytes += kRoutingOverhead + s.routing_obj.size();
  }
  if (bytes <= kPageSize) {
    Node node;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &node));
    const Blob routing = summaries[0].routing_obj;
    double radius = 0.0;
    for (SubtreeSummary& s : summaries) {
      const double d = Distance(s.routing_obj, routing);
      radius = std::max(radius, d + s.radius);
      node.routes.push_back(
          RoutingEntry{s.page, s.radius, d, std::move(s.routing_obj)});
    }
    SPB_RETURN_IF_ERROR(WriteNode(node));
    *out = SubtreeSummary{node.id, routing, radius};
    return Status::OK();
  }
  // Too many children for one page: group them by nearest sampled seed and
  // recurse.
  const size_t g = std::clamp<size_t>((bytes + kPageSize - 1) / kPageSize, 2,
                                      summaries.size());
  // Snapshot the seed objects: the assignment loop moves summaries out, so
  // referencing them through indices would read moved-from blobs.
  std::vector<Blob> seed_objs;
  for (size_t i = 0; i < g; ++i) {
    seed_objs.push_back(summaries[rng_.Uniform(summaries.size())].routing_obj);
  }
  std::vector<std::vector<SubtreeSummary>> groups(g);
  for (size_t i = 0; i < summaries.size(); ++i) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < g; ++s) {
      const double d = Distance(summaries[i].routing_obj, seed_objs[s]);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    groups[best].push_back(std::move(summaries[i]));
  }
  size_t non_empty = 0;
  for (const auto& grp : groups) {
    if (!grp.empty()) ++non_empty;
  }
  if (non_empty < 2) {
    // Degenerate clustering (all summaries at one seed): split round-robin
    // so recursion always makes progress.
    std::vector<SubtreeSummary> all;
    for (auto& grp : groups) {
      for (auto& s : grp) all.push_back(std::move(s));
    }
    std::vector<std::vector<SubtreeSummary>> rr(g);
    for (size_t i = 0; i < all.size(); ++i) {
      rr[i % g].push_back(std::move(all[i]));
    }
    groups = std::move(rr);
  }
  std::vector<SubtreeSummary> upper;
  for (auto& grp : groups) {
    if (grp.empty()) continue;
    SubtreeSummary s;
    SPB_RETURN_IF_ERROR(BuildOverSummaries(std::move(grp), &s));
    upper.push_back(std::move(s));
  }
  return BuildOverSummaries(std::move(upper), out);
}

Status MTree::Build(const std::vector<Blob>& objects,
                    const DistanceFunction* metric,
                    const MtreeOptions& options, std::unique_ptr<MTree>* out) {
  SPB_RETURN_IF_ERROR(CreateEmpty(metric, options, out));
  if (objects.empty()) return Status::OK();
  MTree* tree = out->get();
  std::vector<Item> items;
  items.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    items.push_back(Item{ObjectId(i), &objects[i]});
  }
  SubtreeSummary summary;
  SPB_RETURN_IF_ERROR(tree->BulkRec(std::move(items), &summary));
  tree->root_ = summary.page;
  tree->num_objects_ = objects.size();
  return Status::OK();
}

// ------------------------------------------------------------------ insert

Status MTree::SplitLeaf(Node* node, const Blob* routing,
                        SplitResult* result) {
  auto& entries = node->leaves;
  const size_t n = entries.size();
  // Sampled mM_RAD promotion: pick the candidate pair minimizing the larger
  // covering radius of the generalized-hyperplane partition.
  size_t best_a = 0, best_b = 1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t trial = 0; trial < options_.promotion_samples; ++trial) {
    const size_t a = rng_.Uniform(n);
    size_t b = rng_.Uniform(n);
    if (a == b) b = (b + 1) % n;
    double ra = 0.0, rb = 0.0;
    for (const LeafEntry& e : entries) {
      const double da = Distance(e.obj, entries[a].obj);
      const double db = Distance(e.obj, entries[b].obj);
      if (da <= db) {
        ra = std::max(ra, da);
      } else {
        rb = std::max(rb, db);
      }
    }
    const double cost = std::max(ra, rb);
    if (cost < best_cost) {
      best_cost = cost;
      best_a = a;
      best_b = b;
    }
  }

  const Blob pa = entries[best_a].obj;
  const Blob pb = entries[best_b].obj;
  Node right;
  SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/true, &right));
  std::vector<LeafEntry> left_entries;
  double ra = 0.0, rb = 0.0;
  for (LeafEntry& e : entries) {
    const double da = Distance(e.obj, pa);
    const double db = Distance(e.obj, pb);
    if (da <= db) {
      e.parent_dist = da;
      ra = std::max(ra, da);
      left_entries.push_back(std::move(e));
    } else {
      e.parent_dist = db;
      rb = std::max(rb, db);
      right.leaves.push_back(std::move(e));
    }
  }
  node->leaves = std::move(left_entries);
  SPB_RETURN_IF_ERROR(WriteNode(*node));
  SPB_RETURN_IF_ERROR(WriteNode(right));
  result->split = true;
  result->left = RoutingEntry{node->id, ra,
                              routing ? Distance(pa, *routing) : 0.0, pa};
  result->right = RoutingEntry{right.id, rb,
                               routing ? Distance(pb, *routing) : 0.0, pb};
  return Status::OK();
}

Status MTree::SplitInternal(Node* node, const Blob* routing,
                            SplitResult* result) {
  auto& entries = node->routes;
  const size_t n = entries.size();
  size_t best_a = 0, best_b = 1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t trial = 0; trial < options_.promotion_samples; ++trial) {
    const size_t a = rng_.Uniform(n);
    size_t b = rng_.Uniform(n);
    if (a == b) b = (b + 1) % n;
    double ra = 0.0, rb = 0.0;
    for (const RoutingEntry& e : entries) {
      const double da = Distance(e.obj, entries[a].obj);
      const double db = Distance(e.obj, entries[b].obj);
      if (da <= db) {
        ra = std::max(ra, da + e.radius);
      } else {
        rb = std::max(rb, db + e.radius);
      }
    }
    const double cost = std::max(ra, rb);
    if (cost < best_cost) {
      best_cost = cost;
      best_a = a;
      best_b = b;
    }
  }
  const Blob pa = entries[best_a].obj;
  const Blob pb = entries[best_b].obj;
  Node right;
  SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &right));
  std::vector<RoutingEntry> left_entries;
  double ra = 0.0, rb = 0.0;
  for (RoutingEntry& e : entries) {
    const double da = Distance(e.obj, pa);
    const double db = Distance(e.obj, pb);
    if (da <= db) {
      e.parent_dist = da;
      ra = std::max(ra, da + e.radius);
      left_entries.push_back(std::move(e));
    } else {
      e.parent_dist = db;
      rb = std::max(rb, db + e.radius);
      right.routes.push_back(std::move(e));
    }
  }
  node->routes = std::move(left_entries);
  SPB_RETURN_IF_ERROR(WriteNode(*node));
  SPB_RETURN_IF_ERROR(WriteNode(right));
  result->split = true;
  result->left = RoutingEntry{node->id, ra,
                              routing ? Distance(pa, *routing) : 0.0, pa};
  result->right = RoutingEntry{right.id, rb,
                               routing ? Distance(pb, *routing) : 0.0, pb};
  return Status::OK();
}

Status MTree::InsertRec(PageId node_id, const Blob& obj, ObjectId id,
                        double dist_to_routing, const Blob* routing,
                        SplitResult* result) {
  result->split = false;
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));

  if (node.is_leaf) {
    node.leaves.push_back(LeafEntry{id, dist_to_routing, obj});
    if (node.ByteSize() <= kPageSize) return WriteNode(node);
    return SplitLeaf(&node, routing, result);
  }

  // Choose the subtree: minimum distance among covering entries, else
  // minimum radius enlargement.
  size_t best = 0;
  double best_d = 0.0;
  double best_covered = std::numeric_limits<double>::infinity();
  double best_enlarge = std::numeric_limits<double>::infinity();
  bool covered_found = false;
  std::vector<double> dists(node.routes.size());
  for (size_t i = 0; i < node.routes.size(); ++i) {
    dists[i] = Distance(obj, node.routes[i].obj);
    if (dists[i] <= node.routes[i].radius) {
      if (!covered_found || dists[i] < best_covered) {
        covered_found = true;
        best_covered = dists[i];
        best = i;
        best_d = dists[i];
      }
    } else if (!covered_found) {
      const double enlarge = dists[i] - node.routes[i].radius;
      if (enlarge < best_enlarge) {
        best_enlarge = enlarge;
        best = i;
        best_d = dists[i];
      }
    }
  }
  RoutingEntry& chosen = node.routes[best];
  chosen.radius = std::max(chosen.radius, best_d);

  SplitResult child_split;
  SPB_RETURN_IF_ERROR(
      InsertRec(chosen.child, obj, id, best_d, &chosen.obj, &child_split));
  if (child_split.split) {
    node.routes[best] = std::move(child_split.left);
    node.routes.push_back(std::move(child_split.right));
    if (node.ByteSize() > kPageSize) {
      return SplitInternal(&node, routing, result);
    }
  }
  return WriteNode(node);
}

Status MTree::Insert(const Blob& obj, ObjectId id) {
  SplitResult split;
  SPB_RETURN_IF_ERROR(InsertRec(root_, obj, id, 0.0, nullptr, &split));
  if (split.split) {
    Node new_root;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &new_root));
    new_root.routes.push_back(std::move(split.left));
    new_root.routes.push_back(std::move(split.right));
    SPB_RETURN_IF_ERROR(WriteNode(new_root));
    root_ = new_root.id;
  }
  ++num_objects_;
  return Status::OK();
}

// ------------------------------------------------------------------ search

Status MTree::RangeRec(PageId node_id, const Blob& q, double r,
                       double d_q_parent, std::vector<ObjectId>* result) {
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.is_leaf) {
    for (const LeafEntry& e : node.leaves) {
      if (d_q_parent >= 0.0 &&
          std::fabs(d_q_parent - e.parent_dist) > r) {
        continue;  // parent-distance test: skip without computing d(q, o)
      }
      if (Distance(q, e.obj) <= r) result->push_back(e.id);
    }
    return Status::OK();
  }
  for (const RoutingEntry& e : node.routes) {
    if (d_q_parent >= 0.0 &&
        std::fabs(d_q_parent - e.parent_dist) > r + e.radius) {
      continue;
    }
    const double d = Distance(q, e.obj);
    if (d <= r + e.radius) {
      SPB_RETURN_IF_ERROR(RangeRec(e.child, q, r, d, result));
    }
  }
  return Status::OK();
}

Status MTree::RangeQuery(const Blob& q, double r,
                         std::vector<ObjectId>* result, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  SPB_RETURN_IF_ERROR(RangeRec(root_, q, r, -1.0, result));
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

Status MTree::KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                       QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ == 0 || k == 0) return Status::OK();

  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      decltype([](const Neighbor& a, const Neighbor& b) {
                        return a.distance < b.distance;
                      })>
      best;
  auto cur_ndk = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().distance;
  };
  auto offer = [&](ObjectId id, double d) {
    if (best.size() < k) {
      best.push(Neighbor{id, d});
    } else if (d < best.top().distance) {
      best.pop();
      best.push(Neighbor{id, d});
    }
  };

  struct HeapItem {
    double dmin;
    PageId node;
    double d_q_parent;  // d(q, routing object of node); -1 for the root
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    return a.dmin > b.dmin;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);
  heap.push(HeapItem{0.0, root_, -1.0});

  Node node;
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    if (item.dmin >= cur_ndk()) break;
    SPB_RETURN_IF_ERROR(ReadNode(item.node, &node));
    if (node.is_leaf) {
      for (const LeafEntry& e : node.leaves) {
        if (item.d_q_parent >= 0.0 &&
            std::fabs(item.d_q_parent - e.parent_dist) >= cur_ndk()) {
          continue;
        }
        offer(e.id, Distance(q, e.obj));
      }
      continue;
    }
    for (const RoutingEntry& e : node.routes) {
      if (item.d_q_parent >= 0.0 &&
          std::fabs(item.d_q_parent - e.parent_dist) - e.radius >=
              cur_ndk()) {
        continue;
      }
      const double d = Distance(q, e.obj);
      const double dmin = std::max(0.0, d - e.radius);
      if (dmin < cur_ndk()) heap.push(HeapItem{dmin, e.child, d});
    }
  }
  result->resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    (*result)[i] = best.top();
    best.pop();
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

QueryStats MTree::cumulative_stats() const {
  QueryStats s;
  s.page_accesses = pool_.stats().page_accesses();
  s.distance_computations = counting_.count();
  return s;
}

void MTree::ResetCounters() {
  pool_.stats().Reset();
  counting_.Reset();
}

Status MTree::CheckRec(PageId node_id, const Blob* routing, double radius,
                       double parent_dist_expected, bool has_parent) {
  // The M-tree invariant is object containment: every object stored below a
  // routing entry lies within the entry's covering radius of its routing
  // object (balls of siblings may overlap and need not nest). Verified here
  // by collecting the subtree's objects.
  (void)parent_dist_expected;
  std::vector<Blob> objects;
  SPB_RETURN_IF_ERROR(CollectObjects(node_id, routing, has_parent, &objects));
  if (has_parent) {
    for (const Blob& o : objects) {
      if (Distance(o, *routing) > radius + 1e-6) {
        return Status::Corruption("object outside covering radius");
      }
    }
  }
  return Status::OK();
}

Status MTree::CollectObjects(PageId node_id, const Blob* routing,
                             bool has_parent, std::vector<Blob>* out) {
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.is_leaf) {
    for (const LeafEntry& e : node.leaves) {
      if (has_parent &&
          std::fabs(Distance(e.obj, *routing) - e.parent_dist) > 1e-6) {
        return Status::Corruption("leaf parent_dist incorrect");
      }
      out->push_back(e.obj);
    }
    return Status::OK();
  }
  for (const RoutingEntry& e : node.routes) {
    if (has_parent &&
        std::fabs(Distance(e.obj, *routing) - e.parent_dist) > 1e-6) {
      return Status::Corruption("routing parent_dist incorrect");
    }
    // Check the child subtree's own radius invariant...
    SPB_RETURN_IF_ERROR(CheckRec(e.child, &e.obj, e.radius, 0.0, true));
    // ...and fold its objects into the parent collection.
    SPB_RETURN_IF_ERROR(CollectObjects(e.child, &e.obj, true, out));
  }
  return Status::OK();
}

Status MTree::CheckInvariants() {
  return CheckRec(root_, nullptr, 0.0, 0.0, false);
}

}  // namespace spb
