#ifndef SPB_MTREE_MTREE_H_
#define SPB_MTREE_MTREE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/metric_index.h"
#include "metrics/distance.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace spb {

struct MtreeOptions {
  size_t cache_pages = 32;
  /// Candidate promotion pairs sampled at split time (mM_RAD approximation).
  size_t promotion_samples = 8;
  uint64_t seed = 20150415;
};

/// Disk-based M-tree (Ciaccia, Patella, Zezula, VLDB 1997) — the classic
/// compact-partitioning competitor. Routing entries carry a covering radius
/// and a distance to the parent routing object; both the radius test and the
/// parent-distance test are used to avoid distance computations during
/// search. Objects are stored *inside* the nodes (unlike the SPB-tree's
/// separate RAF), which is what drives the M-tree's larger storage and I/O
/// in the paper's Table 6 / Figs. 12-13.
///
/// Build() bulk-loads via the sampling-based recursive clustering of
/// Ciaccia & Patella ("Bulk loading the M-tree"): seeds are sampled, objects
/// are assigned to the nearest seed, and clusters are loaded recursively.
/// Insert() uses the classic descend-and-split algorithm with sampled
/// mM_RAD promotion and generalized-hyperplane partitioning.
class MTree final : public MetricIndex {
 public:
  /// Bulk-loads the tree over `objects` (ids = positions).
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const MtreeOptions& options,
                      std::unique_ptr<MTree>* out);

  /// Creates an empty tree (insert-only construction).
  static Status CreateEmpty(const DistanceFunction* metric,
                            const MtreeOptions& options,
                            std::unique_ptr<MTree>* out);

  Status Insert(const Blob& obj, ObjectId id) override;
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats) override;
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats) override;

  uint64_t storage_bytes() const override {
    return uint64_t(file_->num_pages()) * kPageSize;
  }
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;
  void FlushCaches() override { pool_.Flush(); }
  std::string name() const override { return "M-tree"; }

  uint64_t size() const { return num_objects_; }
  /// Structural self-check: covering radii and parent distances are
  /// consistent with the actual subtree contents. Test hook.
  Status CheckInvariants();

 private:
  struct LeafEntry {
    ObjectId id;
    double parent_dist;
    Blob obj;
  };
  struct RoutingEntry {
    PageId child;
    double radius;
    double parent_dist;
    Blob obj;
  };
  struct Node {
    PageId id = kInvalidPageId;
    bool is_leaf = true;
    std::vector<LeafEntry> leaves;
    std::vector<RoutingEntry> routes;

    size_t ByteSize() const;
    void SerializeTo(Page* page) const;
    Status DeserializeFrom(const Page& page, PageId page_id);
  };
  struct SplitResult {
    bool split = false;
    RoutingEntry left;   // replaces the old child entry
    RoutingEntry right;  // new sibling
  };
  struct SubtreeSummary {
    PageId page;
    Blob routing_obj;
    double radius;
  };

  MTree(const DistanceFunction* metric, const MtreeOptions& options)
      : options_(options),
        counting_(metric),
        file_(PageFile::CreateInMemory()),
        pool_(file_.get(), options.cache_pages),
        rng_(options.seed) {}

  double Distance(const Blob& a, const Blob& b) {
    return counting_.Distance(a, b);
  }
  Status ReadNode(PageId id, Node* node);
  Status WriteNode(const Node& node);
  Status AllocateNode(bool is_leaf, Node* node);

  Status InsertRec(PageId node_id, const Blob& obj, ObjectId id,
                   double dist_to_routing, const Blob* routing,
                   SplitResult* result);
  Status SplitLeaf(Node* node, const Blob* routing, SplitResult* result);
  Status SplitInternal(Node* node, const Blob* routing, SplitResult* result);

  Status RangeRec(PageId node_id, const Blob& q, double r, double d_q_parent,
                  std::vector<ObjectId>* result);

  struct Item {
    ObjectId id;
    const Blob* obj;
  };
  Status BulkRec(std::vector<Item> items, SubtreeSummary* out);
  Status BuildOverSummaries(std::vector<SubtreeSummary> summaries,
                            SubtreeSummary* out);

  Status CheckRec(PageId node_id, const Blob* routing, double radius,
                  double parent_dist_expected, bool has_parent);
  Status CollectObjects(PageId node_id, const Blob* routing, bool has_parent,
                        std::vector<Blob>* out);

  MtreeOptions options_;
  CountingDistance counting_;
  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  Rng rng_;
  PageId root_ = kInvalidPageId;
  uint64_t num_objects_ = 0;
};

}  // namespace spb

#endif  // SPB_MTREE_MTREE_H_
