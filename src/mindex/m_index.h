#ifndef SPB_MINDEX_M_INDEX_H_
#define SPB_MINDEX_M_INDEX_H_

#include <memory>
#include <vector>

#include "bptree/bptree.h"
#include "core/metric_index.h"
#include "metrics/distance.h"
#include "pivots/pivot_table.h"
#include "storage/raf.h"

namespace spb {

struct MIndexOptions {
  /// The paper configures the M-Index with 20 randomly chosen pivots.
  size_t num_pivots = 20;
  size_t cache_pages = 32;
  uint64_t seed = 20150415;
  /// kNN search starts from this fraction of d+ and doubles until k results
  /// are confirmed.
  double knn_initial_radius_frac = 0.01;
};

/// M-Index (Novak, Batko, Zezula, Inf. Syst. 2011): the iDistance
/// generalization for metric spaces. Every object is assigned to its
/// *nearest* pivot's cluster and keyed `cluster * C + d(o, p_cluster)` in a
/// B+-tree; all |P| pre-computed pivot distances are stored with the object
/// for filtering. Storing the full distance vector per object is what blows
/// up the M-Index's storage (Table 6: an order of magnitude over the
/// SPB-tree on string data).
///
/// Range queries scan, per cluster, the key interval
/// [d(q,p_i) - r, d(q,p_i) + r] (clipped by the cluster's radius bounds) and
/// filter candidates with the stored pivot distances before computing real
/// distances. kNN runs range queries with an iteratively doubled radius.
class MIndex final : public MetricIndex {
 public:
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const MIndexOptions& options,
                      std::unique_ptr<MIndex>* out);

  Status Insert(const Blob& obj, ObjectId id) override;
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats) override;
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats) override;

  uint64_t storage_bytes() const override;
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;
  void FlushCaches() override;
  std::string name() const override { return "M-Index"; }

  uint64_t size() const { return num_objects_; }

 private:
  // Key layout: cluster index in the high bits, the quantized distance to
  // the cluster pivot in the low kCellBits bits.
  static constexpr int kCellBits = 24;

  MIndex(const DistanceFunction* metric, const MIndexOptions& options)
      : options_(options), counting_(metric) {}

  uint32_t QuantizeDistance(double d) const;
  uint64_t MakeKey(size_t cluster, double d) const {
    return (uint64_t(cluster) << kCellBits) | QuantizeDistance(d);
  }

  // RAF payload: object bytes followed by |P| pivot distances.
  Blob EncodeRecord(const Blob& obj, const std::vector<double>& dists) const;
  Status DecodeRecord(const Blob& record, Blob* obj,
                      std::vector<double>* dists) const;

  Status RangeWithDistances(const Blob& q, double r,
                            std::vector<Neighbor>* result);

  MIndexOptions options_;
  CountingDistance counting_;
  PivotTable pivots_;
  std::unique_ptr<SpaceFillingCurve> key_curve_;  // 1-d identity keys
  std::unique_ptr<BPlusTree> btree_;
  std::unique_ptr<Raf> raf_;
  std::vector<double> cluster_rmin_, cluster_rmax_;
  double d_plus_ = 1.0;
  uint64_t num_objects_ = 0;
};

}  // namespace spb

#endif  // SPB_MINDEX_M_INDEX_H_
