#include "mindex/m_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/coding.h"
#include "common/rng.h"
#include "pivots/selection.h"

namespace spb {

uint32_t MIndex::QuantizeDistance(double d) const {
  const double scaled =
      std::clamp(d / d_plus_, 0.0, 1.0) * double((1u << kCellBits) - 1);
  return uint32_t(scaled);
}

Blob MIndex::EncodeRecord(const Blob& obj,
                          const std::vector<double>& dists) const {
  Blob record(4 + obj.size() + dists.size() * 8);
  EncodeFixed32(record.data(), uint32_t(obj.size()));
  if (!obj.empty()) std::memcpy(record.data() + 4, obj.data(), obj.size());
  uint8_t* dst = record.data() + 4 + obj.size();
  for (double d : dists) {
    EncodeDouble(dst, d);
    dst += 8;
  }
  return record;
}

Status MIndex::DecodeRecord(const Blob& record, Blob* obj,
                            std::vector<double>* dists) const {
  if (record.size() < 4) return Status::Corruption("short M-Index record");
  const uint32_t len = DecodeFixed32(record.data());
  if (record.size() < 4 + len) {
    return Status::Corruption("truncated M-Index record");
  }
  obj->assign(record.begin() + 4, record.begin() + 4 + len);
  const size_t n = (record.size() - 4 - len) / 8;
  dists->resize(n);
  const uint8_t* src = record.data() + 4 + len;
  for (size_t i = 0; i < n; ++i) {
    (*dists)[i] = DecodeDouble(src);
    src += 8;
  }
  return Status::OK();
}

Status MIndex::Build(const std::vector<Blob>& objects,
                     const DistanceFunction* metric,
                     const MIndexOptions& options,
                     std::unique_ptr<MIndex>* out) {
  if (options.num_pivots == 0 || options.num_pivots > 63) {
    return Status::InvalidArgument("M-Index supports 1..63 pivots");
  }
  auto index = std::unique_ptr<MIndex>(new MIndex(metric, options));
  index->d_plus_ = metric->max_distance();

  PivotSelectionOptions popts;
  popts.num_pivots = options.num_pivots;
  popts.seed = options.seed;
  index->pivots_ = PivotTable(SelectPivots(PivotSelectorType::kRandom,
                                           objects, index->counting_, popts));
  index->cluster_rmin_.assign(options.num_pivots,
                              std::numeric_limits<double>::infinity());
  index->cluster_rmax_.assign(options.num_pivots, 0.0);

  index->key_curve_ = SpaceFillingCurve::Create(CurveType::kZOrder, 1, 30);
  std::unique_ptr<PageFile> btree_file = PageFile::CreateInMemory();
  SPB_RETURN_IF_ERROR(BPlusTree::Create(std::move(btree_file),
                                        options.cache_pages,
                                        index->key_curve_.get(),
                                        &index->btree_));
  SPB_RETURN_IF_ERROR(Raf::Create(PageFile::CreateInMemory(),
                                  options.cache_pages, &index->raf_));

  struct Mapped {
    uint64_t key;
    ObjectId id;
    std::vector<double> dists;
  };
  std::vector<Mapped> mapped;
  mapped.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    std::vector<double> dists =
        index->pivots_.Map(objects[i], index->counting_);
    size_t nearest = 0;
    for (size_t p = 1; p < dists.size(); ++p) {
      if (dists[p] < dists[nearest]) nearest = p;
    }
    index->cluster_rmin_[nearest] =
        std::min(index->cluster_rmin_[nearest], dists[nearest]);
    index->cluster_rmax_[nearest] =
        std::max(index->cluster_rmax_[nearest], dists[nearest]);
    mapped.push_back(Mapped{index->MakeKey(nearest, dists[nearest]),
                            ObjectId(i), std::move(dists)});
  }
  std::sort(mapped.begin(), mapped.end(),
            [](const Mapped& a, const Mapped& b) {
              return a.key < b.key || (a.key == b.key && a.id < b.id);
            });

  std::vector<LeafEntry> entries;
  entries.reserve(mapped.size());
  for (const Mapped& m : mapped) {
    uint64_t offset;
    SPB_RETURN_IF_ERROR(index->raf_->Append(
        m.id, index->EncodeRecord(objects[m.id], m.dists), &offset));
    entries.push_back(LeafEntry{m.key, offset});
  }
  SPB_RETURN_IF_ERROR(index->raf_->Sync());
  if (!entries.empty()) {
    SPB_RETURN_IF_ERROR(index->btree_->BulkLoad(entries));
  }
  SPB_RETURN_IF_ERROR(index->btree_->Sync());
  index->num_objects_ = objects.size();
  *out = std::move(index);
  return Status::OK();
}

Status MIndex::Insert(const Blob& obj, ObjectId id) {
  std::vector<double> dists = pivots_.Map(obj, counting_);
  size_t nearest = 0;
  for (size_t p = 1; p < dists.size(); ++p) {
    if (dists[p] < dists[nearest]) nearest = p;
  }
  cluster_rmin_[nearest] = std::min(cluster_rmin_[nearest], dists[nearest]);
  cluster_rmax_[nearest] = std::max(cluster_rmax_[nearest], dists[nearest]);
  uint64_t offset;
  SPB_RETURN_IF_ERROR(raf_->Append(id, EncodeRecord(obj, dists), &offset));
  SPB_RETURN_IF_ERROR(btree_->Insert(MakeKey(nearest, dists[nearest]),
                                     offset));
  ++num_objects_;
  return Status::OK();
}

Status MIndex::RangeWithDistances(const Blob& q, double r,
                                  std::vector<Neighbor>* result) {
  result->clear();
  if (num_objects_ == 0) return Status::OK();
  const std::vector<double> phi_q = pivots_.Map(q, counting_);

  Blob record, obj;
  std::vector<double> dists;
  for (size_t c = 0; c < pivots_.size(); ++c) {
    if (cluster_rmax_[c] < cluster_rmin_[c]) continue;  // empty cluster
    const double lb = std::max(0.0, phi_q[c] - r);
    const double ub = phi_q[c] + r;
    if (lb > cluster_rmax_[c] || ub < cluster_rmin_[c]) continue;
    const uint64_t key_lo = MakeKey(c, lb);
    const uint64_t key_hi = MakeKey(c, std::min(ub, d_plus_));

    BptNode leaf;
    size_t pos;
    SPB_RETURN_IF_ERROR(btree_->SeekLeaf(key_lo, &leaf, &pos));
    bool done = false;
    while (!done && leaf.id != kInvalidPageId) {
      for (; pos < leaf.leaf_entries.size(); ++pos) {
        const LeafEntry& e = leaf.leaf_entries[pos];
        if (e.key > key_hi) {
          done = true;
          break;
        }
        ObjectId id;
        SPB_RETURN_IF_ERROR(raf_->Get(e.ptr, &id, &record));
        SPB_RETURN_IF_ERROR(DecodeRecord(record, &obj, &dists));
        // Pivot filtering with the stored distance vector.
        bool pruned = false;
        for (size_t p = 0; p < dists.size() && !pruned; ++p) {
          pruned = std::fabs(phi_q[p] - dists[p]) > r;
        }
        if (pruned) continue;
        const double d = counting_.Distance(q, obj);
        if (d <= r) result->push_back(Neighbor{id, d});
      }
      if (done || leaf.next_leaf == kInvalidPageId) break;
      SPB_RETURN_IF_ERROR(btree_->ReadNode(leaf.next_leaf, &leaf));
      pos = 0;
    }
  }
  return Status::OK();
}

Status MIndex::RangeQuery(const Blob& q, double r,
                          std::vector<ObjectId>* result, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  std::vector<Neighbor> with_dist;
  SPB_RETURN_IF_ERROR(RangeWithDistances(q, r, &with_dist));
  result->clear();
  result->reserve(with_dist.size());
  for (const Neighbor& n : with_dist) result->push_back(n.id);
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

Status MIndex::KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                        QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ > 0 && k > 0) {
    double r = std::max(1e-9, options_.knn_initial_radius_frac * d_plus_);
    std::vector<Neighbor> found;
    while (true) {
      SPB_RETURN_IF_ERROR(RangeWithDistances(q, r, &found));
      if (found.size() >= k) {
        std::sort(found.begin(), found.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.distance < b.distance;
                  });
        if (found[k - 1].distance <= r) {
          found.resize(k);
          *result = std::move(found);
          break;
        }
      }
      if (r >= d_plus_) {
        std::sort(found.begin(), found.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.distance < b.distance;
                  });
        if (found.size() > k) found.resize(k);
        *result = std::move(found);
        break;
      }
      r = std::min(d_plus_, r * 2.0);
    }
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

uint64_t MIndex::storage_bytes() const {
  return btree_->file_bytes() + raf_->file_bytes() +
         pivots_.Serialize().size();
}

QueryStats MIndex::cumulative_stats() const {
  QueryStats s;
  s.page_accesses =
      btree_->stats().page_accesses() + raf_->stats().page_accesses();
  s.distance_computations = counting_.count();
  return s;
}

void MIndex::ResetCounters() {
  btree_->pool().stats().Reset();
  raf_->ResetStats();
  counting_.Reset();
}

void MIndex::FlushCaches() {
  btree_->pool().Flush();
  raf_->FlushCache();
}

}  // namespace spb
