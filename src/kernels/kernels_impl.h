#ifndef SPB_KERNELS_KERNELS_IMPL_H_
#define SPB_KERNELS_KERNELS_IMPL_H_

// Shared skeletons for every kernel implementation. Each architecture TU
// (scalar, SSE2, AVX2, NEON) instantiates these templates with a policy
// supplying only the 4-element accumulate step and the lane reduce; the
// loop structure, tail handling and cutoff-check positions live here,
// once. This is what makes the dispatch-parity guarantee hold by
// construction: two tables can only differ in per-lane arithmetic — which
// is identical, correctly-rounded IEEE ops everywhere — never in
// association order or abandon points.
//
// Accumulation discipline (all float kernels):
//  - 4 double lanes; element i contributes to lane i % 4;
//  - lanes combine as (l0 + l2) + (l1 + l3)  [the natural order of a
//    128-bit horizontal add of a split 256-bit register];
//  - the scalar tail (n % 4 elements) is added to lanes 0.. in order,
//    after the vector body, before the combine;
//  - cutoff kernels re-combine (without disturbing the lanes) after every
//    kCutoffStride processed elements, but only while elements remain.
//
// Every TU including this header must be compiled with -ffp-contract=off
// (src/CMakeLists.txt does this) so `d * d` then `+` can never fuse into
// an FMA on targets where FMA is baseline — fusion rounds once instead of
// twice and would break cross-ISA bit parity.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace spb {
namespace kernels {
namespace detail {

/// Elements between cutoff re-checks in the float kernels.
inline constexpr size_t kCutoffStride = 32;
/// Bytes between cutoff re-checks in the Hamming kernels.
inline constexpr size_t kHammingStride = 64;

enum class Op { kSquare, kAbs };

template <Op op>
inline double ScalarTerm(double d) {
  if constexpr (op == Op::kSquare) {
    return d * d;
  } else {
    return std::fabs(d);
  }
}

// Policy contract:
//   struct P {
//     struct Acc;                                  // 4 double lanes
//     static void Zero(Acc* acc);
//     static void Step(Acc* acc, const float* a, const float* b);
//                        // op-specific: lanes[j] (+)= term(a[j] - b[j])
//     static double ReduceSum(const Acc& acc);     // (l0+l2)+(l1+l3)
//     static double ReduceMax(const Acc& acc);     // max(max(l0,l2),max(l1,l3))
//     static void Spill(const Acc& acc, double lanes[4]);
//   };
// Sum policies expose StepSq/StepAbs; the max policy exposes StepMax.

template <class P, Op op>
double SumImpl(const float* a, const float* b, size_t n) {
  typename P::Acc acc;
  P::Zero(&acc);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    if constexpr (op == Op::kSquare) {
      P::StepSq(&acc, a + i, b + i);
    } else {
      P::StepAbs(&acc, a + i, b + i);
    }
  }
  double lanes[4];
  P::Spill(acc, lanes);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i - n4] += ScalarTerm<op>(d);
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

template <class P, Op op>
double SumCutoffImpl(const float* a, const float* b, size_t n, double tau) {
  typename P::Acc acc;
  P::Zero(&acc);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  while (i < n4) {
    const size_t stop = std::min(n4, i + kCutoffStride);
    for (; i < stop; i += 4) {
      if constexpr (op == Op::kSquare) {
        P::StepSq(&acc, a + i, b + i);
      } else {
        P::StepAbs(&acc, a + i, b + i);
      }
    }
    if (i < n) {  // elements remain: abandoning still saves work
      const double partial = P::ReduceSum(acc);
      if constexpr (op == Op::kSquare) {
        // The caller's cutoff is in distance units; the accumulator holds
        // squared distance. sqrt is monotone and correctly rounded, so
        // fl(sqrt(partial)) > tau implies the true (and the fully summed)
        // distance exceeds tau as well — abandoning can never change a
        // <=-tau decision.
        if (std::sqrt(partial) > tau) return partial;
      } else {
        if (partial > tau) return partial;
      }
    }
  }
  double lanes[4];
  P::Spill(acc, lanes);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i - n4] += ScalarTerm<op>(d);
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

template <class P>
double MaxImpl(const float* a, const float* b, size_t n) {
  typename P::Acc acc;
  P::Zero(&acc);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) P::StepMax(&acc, a + i, b + i);
  double lanes[4];
  P::Spill(acc, lanes);
  for (; i < n; ++i) {
    const double d =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > lanes[i - n4]) lanes[i - n4] = d;
  }
  return std::max(std::max(lanes[0], lanes[2]), std::max(lanes[1], lanes[3]));
}

template <class P>
double MaxCutoffImpl(const float* a, const float* b, size_t n, double tau) {
  typename P::Acc acc;
  P::Zero(&acc);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  while (i < n4) {
    const size_t stop = std::min(n4, i + kCutoffStride);
    for (; i < stop; i += 4) P::StepMax(&acc, a + i, b + i);
    if (i < n) {
      const double partial = P::ReduceMax(acc);
      if (partial > tau) return partial;
    }
  }
  double lanes[4];
  P::Spill(acc, lanes);
  for (; i < n; ++i) {
    const double d =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > lanes[i - n4]) lanes[i - n4] = d;
  }
  return std::max(std::max(lanes[0], lanes[2]), std::max(lanes[1], lanes[3]));
}

// Hamming policy contract:
//   struct P {
//     static uint64_t Count64(const uint8_t* a, const uint8_t* b);
//                                   // mismatches in one 64-byte block
//     static uint64_t CountTail(const uint8_t* a, const uint8_t* b, size_t n);
//                                   // mismatches in n < 64 bytes
//   };

template <class P>
uint64_t HammingImpl(const uint8_t* a, const uint8_t* b, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  const size_t n64 = n & ~size_t{63};
  for (; i < n64; i += 64) count += P::Count64(a + i, b + i);
  return count + P::CountTail(a + i, b + i, n - i);
}

template <class P>
uint64_t HammingCutoffImpl(const uint8_t* a, const uint8_t* b, size_t n,
                           uint64_t max_mismatches) {
  uint64_t count = 0;
  size_t i = 0;
  const size_t n64 = n & ~size_t{63};
  while (i < n64) {
    count += P::Count64(a + i, b + i);
    i += 64;
    // Counts are exact integers at every block boundary, so the partial
    // count is a lower bound of the total; once it exceeds the budget the
    // total does too.
    if (i < n && count > max_mismatches) return count;
  }
  return count + P::CountTail(a + i, b + i, n - i);
}

/// Shared scalar tail for the SIMD Hamming policies.
inline uint64_t HammingBytes(const uint8_t* a, const uint8_t* b, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (a[i] != b[i]) ? 1 : 0;
  return count;
}

}  // namespace detail
}  // namespace kernels
}  // namespace spb

#endif  // SPB_KERNELS_KERNELS_IMPL_H_
