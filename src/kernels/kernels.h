#ifndef SPB_KERNELS_KERNELS_H_
#define SPB_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spb {
namespace kernels {

/// One set of distance kernels: the low-level inner loops behind the Lp,
/// Hamming and (via scratch reuse) edit metrics. Implementations exist for
/// scalar, SSE2, AVX2 and NEON; all of them follow the *same* fixed
/// accumulation discipline (4 double lanes striped by element index, lanes
/// combined as (l0+l2)+(l1+l3), cutoff checks at the same element
/// boundaries), so every implementation returns **bit-identical doubles**
/// for identical inputs. That exact-match parity is what lets the runtime
/// pick any table without changing query results; tests/kernels_test.cc
/// property-checks it.
///
/// Cutoff contract (shared with DistanceFunction::DistanceWithCutoff): a
/// `*_cutoff` kernel returns the exact full result whenever that result is
/// <= tau; once the running partial provably exceeds tau it may stop and
/// return the partial instead. Because all terms are non-negative the
/// partial both lower-bounds the full result and already exceeds tau, so
/// callers can use "> tau" as a sound prune signal and "<= tau" as exact.
struct KernelTable {
  const char* name;

  /// Sum of squared differences over n floats, accumulated in double
  /// (L2 distance is sqrt of this). `l2_sq_cutoff` abandons once
  /// sqrt(partial) > tau (tau in distance units, not squared).
  double (*l2_sq)(const float* a, const float* b, size_t n);
  double (*l2_sq_cutoff)(const float* a, const float* b, size_t n,
                         double tau);

  /// Sum of absolute differences (L1 distance).
  double (*l1)(const float* a, const float* b, size_t n);
  double (*l1_cutoff)(const float* a, const float* b, size_t n, double tau);

  /// Max absolute difference (L-infinity distance).
  double (*linf)(const float* a, const float* b, size_t n);
  double (*linf_cutoff)(const float* a, const float* b, size_t n, double tau);

  /// Count of differing bytes. `hamming_cutoff` may stop once the count
  /// exceeds `max_mismatches`; the returned count is then still greater
  /// than `max_mismatches` (and a lower bound of the true count).
  uint64_t (*hamming)(const uint8_t* a, const uint8_t* b, size_t n);
  uint64_t (*hamming_cutoff)(const uint8_t* a, const uint8_t* b, size_t n,
                             uint64_t max_mismatches);
};

/// The portable reference implementation (always available).
const KernelTable& Scalar();

/// The table selected for this process: best SIMD level the CPU supports
/// (AVX2 > SSE2 on x86, NEON on aarch64), or Scalar() when the binary was
/// built portable (-DSPB_SIMD=OFF) or the environment variable
/// SPB_DISABLE_SIMD is set to anything but "0". Decided once, on first use.
const KernelTable& Active();

/// Every table runnable on this host (Scalar first). Parity tests and the
/// kernel micro-bench iterate this to compare implementations.
std::vector<const KernelTable*> AvailableTables();

/// Bit gather/scatter kernels used by the SFC codecs (src/sfc/).
/// `Pext()(x, mask)` packs the bits of `x` selected by `mask` into the low
/// bits of the result (x86 PEXT); `Pdep()(x, mask)` is the inverse scatter
/// (PDEP). Dispatched once per process to BMI2 hardware when present,
/// otherwise to the portable ScalarPext/ScalarPdep loops. These are exact
/// integer operations — every implementation returns identical values — and
/// SPB_DISABLE_SIMD forces the portable versions, mirroring the KernelTable
/// dispatch.
using BitGatherFn = uint64_t (*)(uint64_t x, uint64_t mask);
using BitScatterFn = uint64_t (*)(uint64_t x, uint64_t mask);
BitGatherFn Pext();
BitScatterFn Pdep();

/// Portable reference implementations of PEXT/PDEP (always available).
uint64_t ScalarPext(uint64_t x, uint64_t mask);
uint64_t ScalarPdep(uint64_t x, uint64_t mask);

}  // namespace kernels
}  // namespace spb

#endif  // SPB_KERNELS_KERNELS_H_
