// NEON kernel table for aarch64 (NEON is baseline there — no extra compile
// flags needed). Two 2-wide double registers form the 4-lane discipline of
// kernels_impl.h. Plain mul+add (not vfmaq): FMA's single rounding would
// break bit parity with the x86 and scalar tables.
#include "kernels/kernels.h"
#include "kernels/kernels_impl.h"

#if !defined(SPB_NO_SIMD_TU) && defined(__aarch64__)

#include <arm_neon.h>

namespace spb {
namespace kernels {
namespace {

using detail::Op;

struct NeonPolicy {
  struct Acc {
    float64x2_t v01;  // lanes 0, 1
    float64x2_t v23;  // lanes 2, 3
  };
  static void Zero(Acc* acc) {
    acc->v01 = vdupq_n_f64(0.0);
    acc->v23 = vdupq_n_f64(0.0);
  }
  static void Diffs(const float* a, const float* b, float64x2_t* d01,
                    float64x2_t* d23) {
    const float32x4_t fa = vld1q_f32(a);
    const float32x4_t fb = vld1q_f32(b);
    *d01 = vsubq_f64(vcvt_f64_f32(vget_low_f32(fa)),
                     vcvt_f64_f32(vget_low_f32(fb)));
    *d23 = vsubq_f64(vcvt_high_f64_f32(fa), vcvt_high_f64_f32(fb));
  }
  static void StepSq(Acc* acc, const float* a, const float* b) {
    float64x2_t d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = vaddq_f64(acc->v01, vmulq_f64(d01, d01));
    acc->v23 = vaddq_f64(acc->v23, vmulq_f64(d23, d23));
  }
  static void StepAbs(Acc* acc, const float* a, const float* b) {
    float64x2_t d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = vaddq_f64(acc->v01, vabsq_f64(d01));
    acc->v23 = vaddq_f64(acc->v23, vabsq_f64(d23));
  }
  static void StepMax(Acc* acc, const float* a, const float* b) {
    float64x2_t d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = vmaxq_f64(acc->v01, vabsq_f64(d01));
    acc->v23 = vmaxq_f64(acc->v23, vabsq_f64(d23));
  }
  static double ReduceSum(const Acc& acc) {
    const float64x2_t s = vaddq_f64(acc.v01, acc.v23);  // (l0+l2, l1+l3)
    return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
  }
  static double ReduceMax(const Acc& acc) {
    const float64x2_t m = vmaxq_f64(acc.v01, acc.v23);
    const double lo = vgetq_lane_f64(m, 0);
    const double hi = vgetq_lane_f64(m, 1);
    return lo > hi ? lo : hi;
  }
  static void Spill(const Acc& acc, double lanes[4]) {
    vst1q_f64(lanes, acc.v01);
    vst1q_f64(lanes + 2, acc.v23);
  }
};

struct NeonHammingPolicy {
  static uint64_t Count16(const uint8_t* a, const uint8_t* b) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(a), vld1q_u8(b));
    // Mismatching bytes are 0x00 in eq; shift the inverted mask down to one
    // bit per byte and sum across the vector.
    const uint8x16_t ones = vshrq_n_u8(vmvnq_u8(eq), 7);
    return vaddvq_u8(ones);
  }
  static uint64_t Count64(const uint8_t* a, const uint8_t* b) {
    return Count16(a, b) + Count16(a + 16, b + 16) + Count16(a + 32, b + 32) +
           Count16(a + 48, b + 48);
  }
  static uint64_t CountTail(const uint8_t* a, const uint8_t* b, size_t n) {
    uint64_t count = 0;
    size_t i = 0;
    for (; i + 16 <= n; i += 16) count += Count16(a + i, b + i);
    return count + detail::HammingBytes(a + i, b + i, n - i);
  }
};

double NeonL2Sq(const float* a, const float* b, size_t n) {
  return detail::SumImpl<NeonPolicy, Op::kSquare>(a, b, n);
}
double NeonL2SqCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<NeonPolicy, Op::kSquare>(a, b, n, tau);
}
double NeonL1(const float* a, const float* b, size_t n) {
  return detail::SumImpl<NeonPolicy, Op::kAbs>(a, b, n);
}
double NeonL1Cutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<NeonPolicy, Op::kAbs>(a, b, n, tau);
}
double NeonLinf(const float* a, const float* b, size_t n) {
  return detail::MaxImpl<NeonPolicy>(a, b, n);
}
double NeonLinfCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::MaxCutoffImpl<NeonPolicy>(a, b, n, tau);
}
uint64_t NeonHamming(const uint8_t* a, const uint8_t* b, size_t n) {
  return detail::HammingImpl<NeonHammingPolicy>(a, b, n);
}
uint64_t NeonHammingCutoff(const uint8_t* a, const uint8_t* b, size_t n,
                           uint64_t max_mismatches) {
  return detail::HammingCutoffImpl<NeonHammingPolicy>(a, b, n,
                                                      max_mismatches);
}

constexpr KernelTable kNeonTable = {
    "neon",        NeonL2Sq, NeonL2SqCutoff, NeonL1,
    NeonL1Cutoff,  NeonLinf, NeonLinfCutoff, NeonHamming,
    NeonHammingCutoff,
};

}  // namespace

const KernelTable* GetNeonTable() { return &kNeonTable; }

}  // namespace kernels
}  // namespace spb

#else  // portable build or non-aarch64 target

namespace spb {
namespace kernels {
const KernelTable* GetNeonTable() { return nullptr; }
}  // namespace kernels
}  // namespace spb

#endif
