// SSE2 kernel table — the x86-64 baseline ISA, so this table is always
// usable on x86 hosts. 2-wide double lanes, paired to match the 4-lane
// discipline of kernels_impl.h bit-for-bit.
#include "kernels/kernels.h"
#include "kernels/kernels_impl.h"

#if !defined(SPB_NO_SIMD_TU) && \
    (defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__)))

#include <emmintrin.h>

namespace spb {
namespace kernels {
namespace {

using detail::Op;

inline __m128d AbsPd(__m128d x) {
  return _mm_andnot_pd(_mm_set1_pd(-0.0), x);
}

struct Sse2Policy {
  struct Acc {
    __m128d v01;  // lanes 0, 1 (elements i % 4 == 0, 1)
    __m128d v23;  // lanes 2, 3
  };
  static void Zero(Acc* acc) {
    acc->v01 = _mm_setzero_pd();
    acc->v23 = _mm_setzero_pd();
  }
  static void Diffs(const float* a, const float* b, __m128d* d01,
                    __m128d* d23) {
    const __m128 fa = _mm_loadu_ps(a);
    const __m128 fb = _mm_loadu_ps(b);
    *d01 = _mm_sub_pd(_mm_cvtps_pd(fa), _mm_cvtps_pd(fb));
    *d23 = _mm_sub_pd(_mm_cvtps_pd(_mm_movehl_ps(fa, fa)),
                      _mm_cvtps_pd(_mm_movehl_ps(fb, fb)));
  }
  static void StepSq(Acc* acc, const float* a, const float* b) {
    __m128d d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = _mm_add_pd(acc->v01, _mm_mul_pd(d01, d01));
    acc->v23 = _mm_add_pd(acc->v23, _mm_mul_pd(d23, d23));
  }
  static void StepAbs(Acc* acc, const float* a, const float* b) {
    __m128d d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = _mm_add_pd(acc->v01, AbsPd(d01));
    acc->v23 = _mm_add_pd(acc->v23, AbsPd(d23));
  }
  static void StepMax(Acc* acc, const float* a, const float* b) {
    __m128d d01, d23;
    Diffs(a, b, &d01, &d23);
    acc->v01 = _mm_max_pd(acc->v01, AbsPd(d01));
    acc->v23 = _mm_max_pd(acc->v23, AbsPd(d23));
  }
  static double ReduceSum(const Acc& acc) {
    const __m128d s = _mm_add_pd(acc.v01, acc.v23);  // (l0+l2, l1+l3)
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
  static double ReduceMax(const Acc& acc) {
    const __m128d m = _mm_max_pd(acc.v01, acc.v23);
    const double lo = _mm_cvtsd_f64(m);
    const double hi = _mm_cvtsd_f64(_mm_unpackhi_pd(m, m));
    return lo > hi ? lo : hi;
  }
  static void Spill(const Acc& acc, double lanes[4]) {
    _mm_storeu_pd(lanes, acc.v01);
    _mm_storeu_pd(lanes + 2, acc.v23);
  }
};

struct Sse2HammingPolicy {
  static uint64_t Count16(const uint8_t* a, const uint8_t* b) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    const int eq_mask = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb));
    return 16u - static_cast<unsigned>(__builtin_popcount(eq_mask));
  }
  static uint64_t Count64(const uint8_t* a, const uint8_t* b) {
    return Count16(a, b) + Count16(a + 16, b + 16) + Count16(a + 32, b + 32) +
           Count16(a + 48, b + 48);
  }
  static uint64_t CountTail(const uint8_t* a, const uint8_t* b, size_t n) {
    uint64_t count = 0;
    size_t i = 0;
    for (; i + 16 <= n; i += 16) count += Count16(a + i, b + i);
    return count + detail::HammingBytes(a + i, b + i, n - i);
  }
};

double Sse2L2Sq(const float* a, const float* b, size_t n) {
  return detail::SumImpl<Sse2Policy, Op::kSquare>(a, b, n);
}
double Sse2L2SqCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<Sse2Policy, Op::kSquare>(a, b, n, tau);
}
double Sse2L1(const float* a, const float* b, size_t n) {
  return detail::SumImpl<Sse2Policy, Op::kAbs>(a, b, n);
}
double Sse2L1Cutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<Sse2Policy, Op::kAbs>(a, b, n, tau);
}
double Sse2Linf(const float* a, const float* b, size_t n) {
  return detail::MaxImpl<Sse2Policy>(a, b, n);
}
double Sse2LinfCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::MaxCutoffImpl<Sse2Policy>(a, b, n, tau);
}
uint64_t Sse2Hamming(const uint8_t* a, const uint8_t* b, size_t n) {
  return detail::HammingImpl<Sse2HammingPolicy>(a, b, n);
}
uint64_t Sse2HammingCutoff(const uint8_t* a, const uint8_t* b, size_t n,
                           uint64_t max_mismatches) {
  return detail::HammingCutoffImpl<Sse2HammingPolicy>(a, b, n,
                                                      max_mismatches);
}

constexpr KernelTable kSse2Table = {
    "sse2",        Sse2L2Sq, Sse2L2SqCutoff, Sse2L1,
    Sse2L1Cutoff,  Sse2Linf, Sse2LinfCutoff, Sse2Hamming,
    Sse2HammingCutoff,
};

}  // namespace

const KernelTable* GetSse2Table() { return &kSse2Table; }

}  // namespace kernels
}  // namespace spb

#else  // portable build or non-x86 target

namespace spb {
namespace kernels {
const KernelTable* GetSse2Table() { return nullptr; }
}  // namespace kernels
}  // namespace spb

#endif
