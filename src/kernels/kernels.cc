#include "kernels/kernels.h"

#include <cstdlib>
#include <cstring>

#include "kernels/kernels_impl.h"

namespace spb {
namespace kernels {

// Defined in the per-architecture TUs; each returns nullptr when its ISA is
// unavailable at compile time (wrong target, or a portable -DSPB_SIMD=OFF
// build). Runtime capability is checked here, at dispatch.
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
const KernelTable* GetNeonTable();
BitGatherFn GetBmi2Pext();
BitScatterFn GetBmi2Pdep();

namespace {

using detail::Op;

/// The reference implementation: plain C++, but following the exact lane
/// discipline of kernels_impl.h so SIMD tables are bit-compatible with it.
struct ScalarPolicy {
  struct Acc {
    double lanes[4];
  };
  static void Zero(Acc* acc) {
    for (double& l : acc->lanes) l = 0.0;
  }
  static void StepSq(Acc* acc, const float* a, const float* b) {
    for (int j = 0; j < 4; ++j) {
      const double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
      acc->lanes[j] += d * d;
    }
  }
  static void StepAbs(Acc* acc, const float* a, const float* b) {
    for (int j = 0; j < 4; ++j) {
      const double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
      acc->lanes[j] += std::fabs(d);
    }
  }
  static void StepMax(Acc* acc, const float* a, const float* b) {
    for (int j = 0; j < 4; ++j) {
      const double d =
          std::fabs(static_cast<double>(a[j]) - static_cast<double>(b[j]));
      if (d > acc->lanes[j]) acc->lanes[j] = d;
    }
  }
  static double ReduceSum(const Acc& acc) {
    return (acc.lanes[0] + acc.lanes[2]) + (acc.lanes[1] + acc.lanes[3]);
  }
  static double ReduceMax(const Acc& acc) {
    return std::max(std::max(acc.lanes[0], acc.lanes[2]),
                    std::max(acc.lanes[1], acc.lanes[3]));
  }
  static void Spill(const Acc& acc, double lanes[4]) {
    for (int j = 0; j < 4; ++j) lanes[j] = acc.lanes[j];
  }
};

struct ScalarHammingPolicy {
  static uint64_t Count64(const uint8_t* a, const uint8_t* b) {
    return detail::HammingBytes(a, b, 64);
  }
  static uint64_t CountTail(const uint8_t* a, const uint8_t* b, size_t n) {
    return detail::HammingBytes(a, b, n);
  }
};

double ScalarL2Sq(const float* a, const float* b, size_t n) {
  return detail::SumImpl<ScalarPolicy, Op::kSquare>(a, b, n);
}
double ScalarL2SqCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<ScalarPolicy, Op::kSquare>(a, b, n, tau);
}
double ScalarL1(const float* a, const float* b, size_t n) {
  return detail::SumImpl<ScalarPolicy, Op::kAbs>(a, b, n);
}
double ScalarL1Cutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<ScalarPolicy, Op::kAbs>(a, b, n, tau);
}
double ScalarLinf(const float* a, const float* b, size_t n) {
  return detail::MaxImpl<ScalarPolicy>(a, b, n);
}
double ScalarLinfCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::MaxCutoffImpl<ScalarPolicy>(a, b, n, tau);
}
uint64_t ScalarHamming(const uint8_t* a, const uint8_t* b, size_t n) {
  return detail::HammingImpl<ScalarHammingPolicy>(a, b, n);
}
uint64_t ScalarHammingCutoff(const uint8_t* a, const uint8_t* b, size_t n,
                             uint64_t max_mismatches) {
  return detail::HammingCutoffImpl<ScalarHammingPolicy>(a, b, n,
                                                        max_mismatches);
}

constexpr KernelTable kScalarTable = {
    "scalar",        ScalarL2Sq, ScalarL2SqCutoff, ScalarL1,
    ScalarL1Cutoff,  ScalarLinf, ScalarLinfCutoff, ScalarHamming,
    ScalarHammingCutoff,
};

bool SimdDisabledByEnv() {
  const char* v = std::getenv("SPB_DISABLE_SIMD");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

const KernelTable* PickActive() {
  if (SimdDisabledByEnv()) return &kScalarTable;
#if defined(__x86_64__) || defined(__i386__)
  if (const KernelTable* t = GetAvx2Table();
      t != nullptr && __builtin_cpu_supports("avx2")) {
    return t;
  }
  if (const KernelTable* t = GetSse2Table();
      t != nullptr && __builtin_cpu_supports("sse2")) {
    return t;
  }
#endif
  if (const KernelTable* t = GetNeonTable(); t != nullptr) return t;
  return &kScalarTable;
}

}  // namespace

const KernelTable& Scalar() { return kScalarTable; }

const KernelTable& Active() {
  static const KernelTable* table = PickActive();
  return *table;
}

uint64_t ScalarPext(uint64_t x, uint64_t mask) {
  uint64_t out = 0;
  for (uint64_t bit = 1; mask != 0; bit <<= 1) {
    if (x & (mask & (0 - mask))) out |= bit;
    mask &= mask - 1;
  }
  return out;
}

uint64_t ScalarPdep(uint64_t x, uint64_t mask) {
  uint64_t out = 0;
  for (uint64_t bit = 1; mask != 0; bit <<= 1) {
    if (x & bit) out |= mask & (0 - mask);
    mask &= mask - 1;
  }
  return out;
}

BitGatherFn Pext() {
  static const BitGatherFn fn = [] {
#if defined(__x86_64__)
    if (BitGatherFn f = GetBmi2Pext();
        f != nullptr && !SimdDisabledByEnv() &&
        __builtin_cpu_supports("bmi2")) {
      return f;
    }
#endif
    return &ScalarPext;
  }();
  return fn;
}

BitScatterFn Pdep() {
  static const BitScatterFn fn = [] {
#if defined(__x86_64__)
    if (BitScatterFn f = GetBmi2Pdep();
        f != nullptr && !SimdDisabledByEnv() &&
        __builtin_cpu_supports("bmi2")) {
      return f;
    }
#endif
    return &ScalarPdep;
  }();
  return fn;
}

std::vector<const KernelTable*> AvailableTables() {
  std::vector<const KernelTable*> tables = {&kScalarTable};
#if defined(__x86_64__) || defined(__i386__)
  if (const KernelTable* t = GetSse2Table();
      t != nullptr && __builtin_cpu_supports("sse2")) {
    tables.push_back(t);
  }
  if (const KernelTable* t = GetAvx2Table();
      t != nullptr && __builtin_cpu_supports("avx2")) {
    tables.push_back(t);
  }
#else
  if (const KernelTable* t = GetNeonTable(); t != nullptr) tables.push_back(t);
#endif
  return tables;
}

}  // namespace kernels
}  // namespace spb
