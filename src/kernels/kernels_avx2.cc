// AVX2 kernel table. This TU is compiled with -mavx2 (per-file flag, see
// src/CMakeLists.txt); its functions are only ever called after the
// dispatcher in kernels.cc has confirmed AVX2 via __builtin_cpu_supports,
// so the flag never leaks AVX2 code into unconditionally-executed paths.
// One 4-wide double register is exactly the 4-lane discipline of
// kernels_impl.h; no FMA (-mavx2 does not imply -mfma, and fused rounding
// would break bit parity with the other tables).
#include "kernels/kernels.h"
#include "kernels/kernels_impl.h"

#if !defined(SPB_NO_SIMD_TU) && defined(__AVX2__)

#include <immintrin.h>

namespace spb {
namespace kernels {
namespace {

using detail::Op;

inline __m256d AbsPd(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

inline __m256d Diffs(const float* a, const float* b) {
  return _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a)),
                       _mm256_cvtps_pd(_mm_loadu_ps(b)));
}

struct Avx2Policy {
  struct Acc {
    __m256d v;  // lane j accumulates elements i % 4 == j
  };
  static void Zero(Acc* acc) { acc->v = _mm256_setzero_pd(); }
  static void StepSq(Acc* acc, const float* a, const float* b) {
    const __m256d d = Diffs(a, b);
    acc->v = _mm256_add_pd(acc->v, _mm256_mul_pd(d, d));
  }
  static void StepAbs(Acc* acc, const float* a, const float* b) {
    acc->v = _mm256_add_pd(acc->v, AbsPd(Diffs(a, b)));
  }
  static void StepMax(Acc* acc, const float* a, const float* b) {
    acc->v = _mm256_max_pd(acc->v, AbsPd(Diffs(a, b)));
  }
  static double ReduceSum(const Acc& acc) {
    const __m128d lo = _mm256_castpd256_pd128(acc.v);       // (l0, l1)
    const __m128d hi = _mm256_extractf128_pd(acc.v, 1);     // (l2, l3)
    const __m128d s = _mm_add_pd(lo, hi);                   // (l0+l2, l1+l3)
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
  static double ReduceMax(const Acc& acc) {
    const __m128d lo = _mm256_castpd256_pd128(acc.v);
    const __m128d hi = _mm256_extractf128_pd(acc.v, 1);
    const __m128d m = _mm_max_pd(lo, hi);
    const double a = _mm_cvtsd_f64(m);
    const double b = _mm_cvtsd_f64(_mm_unpackhi_pd(m, m));
    return a > b ? a : b;
  }
  static void Spill(const Acc& acc, double lanes[4]) {
    _mm256_storeu_pd(lanes, acc.v);
  }
};

struct Avx2HammingPolicy {
  static uint64_t Count32(const uint8_t* a, const uint8_t* b) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const unsigned eq_mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    return 32u - static_cast<unsigned>(__builtin_popcount(eq_mask));
  }
  static uint64_t Count64(const uint8_t* a, const uint8_t* b) {
    return Count32(a, b) + Count32(a + 32, b + 32);
  }
  static uint64_t CountTail(const uint8_t* a, const uint8_t* b, size_t n) {
    uint64_t count = 0;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) count += Count32(a + i, b + i);
    return count + detail::HammingBytes(a + i, b + i, n - i);
  }
};

double Avx2L2Sq(const float* a, const float* b, size_t n) {
  return detail::SumImpl<Avx2Policy, Op::kSquare>(a, b, n);
}
double Avx2L2SqCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<Avx2Policy, Op::kSquare>(a, b, n, tau);
}
double Avx2L1(const float* a, const float* b, size_t n) {
  return detail::SumImpl<Avx2Policy, Op::kAbs>(a, b, n);
}
double Avx2L1Cutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::SumCutoffImpl<Avx2Policy, Op::kAbs>(a, b, n, tau);
}
double Avx2Linf(const float* a, const float* b, size_t n) {
  return detail::MaxImpl<Avx2Policy>(a, b, n);
}
double Avx2LinfCutoff(const float* a, const float* b, size_t n, double tau) {
  return detail::MaxCutoffImpl<Avx2Policy>(a, b, n, tau);
}
uint64_t Avx2Hamming(const uint8_t* a, const uint8_t* b, size_t n) {
  return detail::HammingImpl<Avx2HammingPolicy>(a, b, n);
}
uint64_t Avx2HammingCutoff(const uint8_t* a, const uint8_t* b, size_t n,
                           uint64_t max_mismatches) {
  return detail::HammingCutoffImpl<Avx2HammingPolicy>(a, b, n,
                                                      max_mismatches);
}

constexpr KernelTable kAvx2Table = {
    "avx2",        Avx2L2Sq, Avx2L2SqCutoff, Avx2L1,
    Avx2L1Cutoff,  Avx2Linf, Avx2LinfCutoff, Avx2Hamming,
    Avx2HammingCutoff,
};

}  // namespace

const KernelTable* GetAvx2Table() { return &kAvx2Table; }

}  // namespace kernels
}  // namespace spb

#else  // portable build, non-x86 target, or no -mavx2 for this TU

namespace spb {
namespace kernels {
const KernelTable* GetAvx2Table() { return nullptr; }
}  // namespace kernels
}  // namespace spb

#endif
