// BMI2 bit gather/scatter: hardware PEXT/PDEP behind the Pext()/Pdep()
// dispatch in kernels.cc. This TU is the only one compiled with -mbmi2 (see
// src/CMakeLists.txt), so the instructions cannot leak into code that runs
// before the runtime __builtin_cpu_supports("bmi2") check. PEXT/PDEP are
// exact bit permutations, so the hardware path returns values identical to
// ScalarPext/ScalarPdep by construction.
#include "kernels/kernels.h"

#if !defined(SPB_NO_SIMD_TU) && defined(__x86_64__) && defined(__BMI2__)

#include <immintrin.h>

namespace spb {
namespace kernels {
namespace {

uint64_t Bmi2Pext(uint64_t x, uint64_t mask) { return _pext_u64(x, mask); }
uint64_t Bmi2Pdep(uint64_t x, uint64_t mask) { return _pdep_u64(x, mask); }

}  // namespace

BitGatherFn GetBmi2Pext() { return &Bmi2Pext; }
BitScatterFn GetBmi2Pdep() { return &Bmi2Pdep; }

}  // namespace kernels
}  // namespace spb

#else  // portable build or non-x86_64 target

namespace spb {
namespace kernels {

BitGatherFn GetBmi2Pext() { return nullptr; }
BitScatterFn GetBmi2Pdep() { return nullptr; }

}  // namespace kernels
}  // namespace spb

#endif
