#include "omni/omni_rtree.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <cmath>
#include <limits>
#include <queue>

#include "common/coding.h"
#include "pivots/selection.h"

namespace spb {

namespace {

// L-inf distance from a point to a rectangle (0 inside). This is MIND in the
// mapped space: a lower bound on the metric distance to any object whose
// omni-coordinates fall inside the rectangle.
double MinDistToRect(const std::vector<double>& p,
                     const std::vector<double>& lo,
                     const std::vector<double>& hi) {
  double best = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = lo[i] - p[i];
    } else if (p[i] > hi[i]) {
      d = p[i] - hi[i];
    }
    best = std::max(best, d);
  }
  return best;
}

double MinDistToPoint(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

}  // namespace

void OmniRTree::Node::SerializeTo(Page* page, size_t dims) const {
  page->Clear();
  uint8_t* dst = page->bytes();
  dst[0] = is_leaf ? 1 : 0;
  EncodeFixed16(dst + 2, uint16_t(is_leaf ? leaves.size() : children.size()));
  dst += 4;
  if (is_leaf) {
    for (const LeafEntry& e : leaves) {
      EncodeFixed64(dst, e.raf_ptr);
      dst += 8;
      for (size_t i = 0; i < dims; ++i) {
        EncodeDouble(dst, e.point[i]);
        dst += 8;
      }
    }
  } else {
    for (const InternalEntry& e : children) {
      EncodeFixed32(dst, e.child);
      dst += 4;
      for (size_t i = 0; i < dims; ++i) {
        EncodeDouble(dst, e.lo[i]);
        dst += 8;
      }
      for (size_t i = 0; i < dims; ++i) {
        EncodeDouble(dst, e.hi[i]);
        dst += 8;
      }
    }
  }
}

Status OmniRTree::Node::DeserializeFrom(const Page& page, PageId page_id,
                                        size_t dims) {
  const uint8_t* src = page.bytes();
  id = page_id;
  is_leaf = src[0] != 0;
  const uint16_t count = DecodeFixed16(src + 2);
  src += 4;
  leaves.clear();
  children.clear();
  if (is_leaf) {
    leaves.resize(count);
    for (auto& e : leaves) {
      e.raf_ptr = DecodeFixed64(src);
      src += 8;
      e.point.resize(dims);
      for (size_t i = 0; i < dims; ++i) {
        e.point[i] = DecodeDouble(src);
        src += 8;
      }
    }
  } else {
    children.resize(count);
    for (auto& e : children) {
      e.child = DecodeFixed32(src);
      src += 4;
      e.lo.resize(dims);
      e.hi.resize(dims);
      for (size_t i = 0; i < dims; ++i) {
        e.lo[i] = DecodeDouble(src);
        src += 8;
      }
      for (size_t i = 0; i < dims; ++i) {
        e.hi[i] = DecodeDouble(src);
        src += 8;
      }
    }
  }
  return Status::OK();
}

Status OmniRTree::ReadNode(PageId id, Node* node) {
  Page page;
  SPB_RETURN_IF_ERROR(pool_.Read(id, &page));
  return node->DeserializeFrom(page, id, dims());
}

Status OmniRTree::WriteNode(const Node& node) {
  Page page;
  node.SerializeTo(&page, dims());
  return pool_.Write(node.id, page);
}

Status OmniRTree::AllocateNode(bool is_leaf, Node* node) {
  PageId id;
  SPB_RETURN_IF_ERROR(pool_.Allocate(&id));
  node->id = id;
  node->is_leaf = is_leaf;
  node->leaves.clear();
  node->children.clear();
  return Status::OK();
}

void OmniRTree::ComputeMbr(const Node& node, std::vector<double>* lo,
                           std::vector<double>* hi) {
  const size_t d = node.is_leaf
                       ? (node.leaves.empty() ? 0 : node.leaves[0].point.size())
                       : (node.children.empty() ? 0 : node.children[0].lo.size());
  lo->assign(d, std::numeric_limits<double>::infinity());
  hi->assign(d, -std::numeric_limits<double>::infinity());
  if (node.is_leaf) {
    for (const LeafEntry& e : node.leaves) {
      for (size_t i = 0; i < d; ++i) {
        (*lo)[i] = std::min((*lo)[i], e.point[i]);
        (*hi)[i] = std::max((*hi)[i], e.point[i]);
      }
    }
  } else {
    for (const InternalEntry& e : node.children) {
      for (size_t i = 0; i < d; ++i) {
        (*lo)[i] = std::min((*lo)[i], e.lo[i]);
        (*hi)[i] = std::max((*hi)[i], e.hi[i]);
      }
    }
  }
}

Status OmniRTree::Build(const std::vector<Blob>& objects,
                        const DistanceFunction* metric,
                        const OmniOptions& options,
                        std::unique_ptr<OmniRTree>* out) {
  auto tree = std::unique_ptr<OmniRTree>(new OmniRTree(metric, options));
  PivotSelectionOptions popts;
  popts.num_pivots = options.num_pivots;
  popts.seed = options.seed;
  tree->pivots_ = PivotTable(
      SelectPivots(PivotSelectorType::kHf, objects, tree->counting_, popts));
  SPB_RETURN_IF_ERROR(Raf::Create(PageFile::CreateInMemory(),
                                  options.cache_pages, &tree->raf_));

  // Map everything to omni-coordinates.
  struct Mapped {
    std::vector<double> point;
    ObjectId id;
  };
  std::vector<Mapped> mapped(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    mapped[i] = Mapped{tree->MapObject(objects[i]), ObjectId(i)};
  }

  if (objects.empty()) {
    Node root;
    SPB_RETURN_IF_ERROR(tree->AllocateNode(true, &root));
    SPB_RETURN_IF_ERROR(tree->WriteNode(root));
    tree->root_ = root.id;
    *out = std::move(tree);
    return Status::OK();
  }

  // Sort-Tile-Recursive ordering.
  const size_t d = tree->dims();
  const size_t cap = tree->leaf_capacity();
  std::function<void(size_t, size_t, size_t)> str =
      [&](size_t begin, size_t end, size_t dim) {
        const size_t n = end - begin;
        if (n <= cap || dim >= d) return;
        std::sort(mapped.begin() + ptrdiff_t(begin),
                  mapped.begin() + ptrdiff_t(end),
                  [dim](const Mapped& a, const Mapped& b) {
                    return a.point[dim] < b.point[dim];
                  });
        const double pages = std::ceil(double(n) / double(cap));
        const size_t slabs = std::max<size_t>(
            1, size_t(std::ceil(std::pow(pages, 1.0 / double(d - dim)))));
        const size_t per_slab = (n + slabs - 1) / slabs;
        for (size_t s = begin; s < end; s += per_slab) {
          str(s, std::min(end, s + per_slab), dim + 1);
        }
      };
  str(0, mapped.size(), 0);

  // RAF in STR order; pack leaves; build internal levels over consecutive
  // summaries (STR order keeps neighbors spatially close).
  std::vector<InternalEntry> level;
  size_t pos = 0;
  while (pos < mapped.size()) {
    Node leaf;
    SPB_RETURN_IF_ERROR(tree->AllocateNode(true, &leaf));
    const size_t take = std::min(cap, mapped.size() - pos);
    for (size_t i = 0; i < take; ++i) {
      uint64_t offset;
      SPB_RETURN_IF_ERROR(tree->raf_->Append(
          mapped[pos + i].id, objects[mapped[pos + i].id], &offset));
      leaf.leaves.push_back(LeafEntry{offset, mapped[pos + i].point});
    }
    pos += take;
    SPB_RETURN_IF_ERROR(tree->WriteNode(leaf));
    InternalEntry e;
    e.child = leaf.id;
    ComputeMbr(leaf, &e.lo, &e.hi);
    level.push_back(std::move(e));
  }
  SPB_RETURN_IF_ERROR(tree->raf_->Sync());

  const size_t icap = tree->internal_capacity();
  while (level.size() > 1) {
    std::vector<InternalEntry> next;
    size_t lpos = 0;
    while (lpos < level.size()) {
      Node node;
      SPB_RETURN_IF_ERROR(tree->AllocateNode(false, &node));
      const size_t take = std::min(icap, level.size() - lpos);
      node.children.assign(level.begin() + ptrdiff_t(lpos),
                           level.begin() + ptrdiff_t(lpos + take));
      lpos += take;
      SPB_RETURN_IF_ERROR(tree->WriteNode(node));
      InternalEntry e;
      e.child = node.id;
      ComputeMbr(node, &e.lo, &e.hi);
      next.push_back(std::move(e));
    }
    level = std::move(next);
  }
  tree->root_ = level[0].child;
  tree->num_objects_ = objects.size();
  *out = std::move(tree);
  return Status::OK();
}

Status OmniRTree::InsertRec(PageId node_id, const LeafEntry& entry,
                            SplitResult* result) {
  result->split = false;
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));

  auto finish = [&](Node* n) -> Status {
    const size_t cap = n->is_leaf ? leaf_capacity() : internal_capacity();
    if ((n->is_leaf ? n->leaves.size() : n->children.size()) <= cap) {
      SPB_RETURN_IF_ERROR(WriteNode(*n));
      return Status::OK();
    }
    // Split along the dimension with the largest center spread.
    Node right;
    SPB_RETURN_IF_ERROR(AllocateNode(n->is_leaf, &right));
    size_t split_dim = 0;
    double best_spread = -1.0;
    const size_t d = dims();
    for (size_t i = 0; i < d; ++i) {
      double mn = std::numeric_limits<double>::infinity(), mx = -mn;
      auto consider = [&](double v) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      };
      if (n->is_leaf) {
        for (const LeafEntry& e : n->leaves) consider(e.point[i]);
      } else {
        for (const InternalEntry& e : n->children) {
          consider((e.lo[i] + e.hi[i]) / 2);
        }
      }
      if (mx - mn > best_spread) {
        best_spread = mx - mn;
        split_dim = i;
      }
    }
    if (n->is_leaf) {
      std::sort(n->leaves.begin(), n->leaves.end(),
                [split_dim](const LeafEntry& a, const LeafEntry& b) {
                  return a.point[split_dim] < b.point[split_dim];
                });
      const size_t mid = n->leaves.size() / 2;
      right.leaves.assign(n->leaves.begin() + ptrdiff_t(mid),
                          n->leaves.end());
      n->leaves.resize(mid);
    } else {
      std::sort(n->children.begin(), n->children.end(),
                [split_dim](const InternalEntry& a, const InternalEntry& b) {
                  return a.lo[split_dim] + a.hi[split_dim] <
                         b.lo[split_dim] + b.hi[split_dim];
                });
      const size_t mid = n->children.size() / 2;
      right.children.assign(n->children.begin() + ptrdiff_t(mid),
                            n->children.end());
      n->children.resize(mid);
    }
    SPB_RETURN_IF_ERROR(WriteNode(*n));
    SPB_RETURN_IF_ERROR(WriteNode(right));
    result->split = true;
    result->left.child = n->id;
    ComputeMbr(*n, &result->left.lo, &result->left.hi);
    result->right.child = right.id;
    ComputeMbr(right, &result->right.lo, &result->right.hi);
    return Status::OK();
  };

  if (node.is_leaf) {
    node.leaves.push_back(entry);
    return finish(&node);
  }

  // Least L1 enlargement.
  size_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.children.size(); ++i) {
    double enlarge = 0.0;
    for (size_t j = 0; j < dims(); ++j) {
      enlarge += std::max(0.0, node.children[i].lo[j] - entry.point[j]);
      enlarge += std::max(0.0, entry.point[j] - node.children[i].hi[j]);
    }
    if (enlarge < best_enlarge) {
      best_enlarge = enlarge;
      best = i;
    }
  }
  for (size_t j = 0; j < dims(); ++j) {
    node.children[best].lo[j] =
        std::min(node.children[best].lo[j], entry.point[j]);
    node.children[best].hi[j] =
        std::max(node.children[best].hi[j], entry.point[j]);
  }
  SplitResult child_split;
  SPB_RETURN_IF_ERROR(
      InsertRec(node.children[best].child, entry, &child_split));
  if (child_split.split) {
    node.children[best] = std::move(child_split.left);
    node.children.push_back(std::move(child_split.right));
  }
  return finish(&node);
}

Status OmniRTree::Insert(const Blob& obj, ObjectId id) {
  LeafEntry entry;
  entry.point = MapObject(obj);
  SPB_RETURN_IF_ERROR(raf_->Append(id, obj, &entry.raf_ptr));
  SplitResult split;
  SPB_RETURN_IF_ERROR(InsertRec(root_, entry, &split));
  if (split.split) {
    Node new_root;
    SPB_RETURN_IF_ERROR(AllocateNode(false, &new_root));
    new_root.children.push_back(std::move(split.left));
    new_root.children.push_back(std::move(split.right));
    SPB_RETURN_IF_ERROR(WriteNode(new_root));
    root_ = new_root.id;
  }
  ++num_objects_;
  return Status::OK();
}

Status OmniRTree::RangeQuery(const Blob& q, double r,
                             std::vector<ObjectId>* result,
                             QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ > 0) {
    const std::vector<double> phi_q = MapObject(q);
    std::queue<PageId> todo;
    todo.push(root_);
    Node node;
    while (!todo.empty()) {
      const PageId id = todo.front();
      todo.pop();
      SPB_RETURN_IF_ERROR(ReadNode(id, &node));
      if (!node.is_leaf) {
        for (const InternalEntry& e : node.children) {
          if (MinDistToRect(phi_q, e.lo, e.hi) <= r) todo.push(e.child);
        }
        continue;
      }
      for (const LeafEntry& e : node.leaves) {
        if (MinDistToPoint(phi_q, e.point) > r) continue;  // lower bound
        ObjectId oid;
        Blob obj;
        SPB_RETURN_IF_ERROR(raf_->Get(e.raf_ptr, &oid, &obj));
        // Omni upper-bound test: some focus close enough to guarantee a hit.
        bool guaranteed = false;
        for (size_t i = 0; i < phi_q.size() && !guaranteed; ++i) {
          guaranteed = e.point[i] <= r - phi_q[i];
        }
        if (guaranteed || counting_.Distance(q, obj) <= r) {
          result->push_back(oid);
        }
      }
    }
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

Status OmniRTree::KnnQuery(const Blob& q, size_t k,
                           std::vector<Neighbor>* result, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ > 0 && k > 0) {
    const std::vector<double> phi_q = MapObject(q);
    std::priority_queue<Neighbor, std::vector<Neighbor>,
                        decltype([](const Neighbor& a, const Neighbor& b) {
                          return a.distance < b.distance;
                        })>
        best;
    auto cur_ndk = [&]() {
      return best.size() < k ? std::numeric_limits<double>::infinity()
                             : best.top().distance;
    };
    struct HeapItem {
      double mind;
      bool is_entry;
      PageId node;
      uint64_t raf_ptr;
    };
    auto cmp = [](const HeapItem& a, const HeapItem& b) {
      return a.mind > b.mind;
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
        cmp);
    heap.push(HeapItem{0.0, false, root_, 0});
    Node node;
    while (!heap.empty()) {
      const HeapItem item = heap.top();
      heap.pop();
      if (item.mind >= cur_ndk()) break;
      if (item.is_entry) {
        ObjectId oid;
        Blob obj;
        SPB_RETURN_IF_ERROR(raf_->Get(item.raf_ptr, &oid, &obj));
        const double d = counting_.Distance(q, obj);
        if (best.size() < k) {
          best.push(Neighbor{oid, d});
        } else if (d < best.top().distance) {
          best.pop();
          best.push(Neighbor{oid, d});
        }
        continue;
      }
      SPB_RETURN_IF_ERROR(ReadNode(item.node, &node));
      if (node.is_leaf) {
        for (const LeafEntry& e : node.leaves) {
          const double mind = MinDistToPoint(phi_q, e.point);
          if (mind < cur_ndk()) {
            heap.push(HeapItem{mind, true, kInvalidPageId, e.raf_ptr});
          }
        }
      } else {
        for (const InternalEntry& e : node.children) {
          const double mind = MinDistToRect(phi_q, e.lo, e.hi);
          if (mind < cur_ndk()) {
            heap.push(HeapItem{mind, false, e.child, 0});
          }
        }
      }
    }
    result->resize(best.size());
    for (size_t i = best.size(); i-- > 0;) {
      (*result)[i] = best.top();
      best.pop();
    }
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

uint64_t OmniRTree::storage_bytes() const {
  return uint64_t(file_->num_pages()) * kPageSize + raf_->file_bytes() +
         pivots_.Serialize().size();
}

QueryStats OmniRTree::cumulative_stats() const {
  QueryStats s;
  s.page_accesses =
      pool_.stats().page_accesses() + raf_->stats().page_accesses();
  s.distance_computations = counting_.count();
  return s;
}

void OmniRTree::ResetCounters() {
  pool_.stats().Reset();
  raf_->ResetStats();
  counting_.Reset();
}

}  // namespace spb
