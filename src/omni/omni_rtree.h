#ifndef SPB_OMNI_OMNI_RTREE_H_
#define SPB_OMNI_OMNI_RTREE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/metric_index.h"
#include "metrics/distance.h"
#include "pivots/pivot_table.h"
#include "storage/buffer_pool.h"
#include "storage/raf.h"

namespace spb {

struct OmniOptions {
  /// Number of foci. The paper configures the OmniR-tree with
  /// (intrinsic dimensionality + 1) HF-selected foci.
  size_t num_pivots = 5;
  size_t cache_pages = 32;
  uint64_t seed = 20150415;
};

/// OmniR-tree (Traina et al., "The Omni-family of all-purpose access
/// methods"): the pivot-based competitor. Objects are mapped to their
/// omni-coordinates — exact distances to a set of HF-selected foci — and an
/// R-tree indexes those coordinate points; payloads live in a separate RAF.
/// Storing full double-precision coordinates (points in leaves, MBRs in
/// internal nodes) is what makes the Omni approach's index larger than the
/// SPB-tree's one-dimensional SFC keys (Table 6).
///
/// Build() bulk-loads with Sort-Tile-Recursive packing; Insert() uses
/// least-enlargement descent with a spread-based split.
class OmniRTree final : public MetricIndex {
 public:
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const OmniOptions& options,
                      std::unique_ptr<OmniRTree>* out);

  Status Insert(const Blob& obj, ObjectId id) override;
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats) override;
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats) override;

  uint64_t storage_bytes() const override;
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;
  void FlushCaches() override {
    pool_.Flush();
    raf_->FlushCache();
  }
  std::string name() const override { return "OmniR-tree"; }

  uint64_t size() const { return num_objects_; }
  const PivotTable& pivots() const { return pivots_; }

 private:
  struct LeafEntry {
    uint64_t raf_ptr;
    std::vector<double> point;
  };
  struct InternalEntry {
    PageId child;
    std::vector<double> lo, hi;
  };
  struct Node {
    PageId id = kInvalidPageId;
    bool is_leaf = true;
    std::vector<LeafEntry> leaves;
    std::vector<InternalEntry> children;

    void SerializeTo(Page* page, size_t dims) const;
    Status DeserializeFrom(const Page& page, PageId page_id, size_t dims);
  };
  struct SplitResult {
    bool split = false;
    InternalEntry left, right;
  };

  OmniRTree(const DistanceFunction* metric, const OmniOptions& options)
      : options_(options),
        counting_(metric),
        file_(PageFile::CreateInMemory()),
        pool_(file_.get(), options.cache_pages) {}

  size_t dims() const { return pivots_.size(); }
  size_t leaf_capacity() const { return (kPageSize - 4) / (8 + 8 * dims()); }
  size_t internal_capacity() const {
    return (kPageSize - 4) / (4 + 16 * dims());
  }

  std::vector<double> MapObject(const Blob& obj) const {
    return pivots_.Map(obj, counting_);
  }

  Status ReadNode(PageId id, Node* node);
  Status WriteNode(const Node& node);
  Status AllocateNode(bool is_leaf, Node* node);

  Status InsertRec(PageId node_id, const LeafEntry& entry,
                   SplitResult* result);
  static void ComputeMbr(const Node& node, std::vector<double>* lo,
                         std::vector<double>* hi);

  OmniOptions options_;
  CountingDistance counting_;
  PivotTable pivots_;
  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  std::unique_ptr<Raf> raf_;
  PageId root_ = kInvalidPageId;
  uint64_t num_objects_ = 0;
};

}  // namespace spb

#endif  // SPB_OMNI_OMNI_RTREE_H_
