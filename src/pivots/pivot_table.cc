#include "pivots/pivot_table.h"

#include "common/coding.h"

namespace spb {

void PivotTable::MapBatch(const Blob* objects, size_t count,
                          const DistanceFunction& metric, double* out) const {
  const size_t dims = pivots_.size();
  for (size_t i = 0; i < count; ++i) {
    double* row = out + i * dims;
    for (size_t j = 0; j < dims; ++j) {
      row[j] = metric.Distance(objects[i], pivots_[j]);
    }
  }
}

Blob PivotTable::Serialize() const {
  size_t total = 4;
  for (const Blob& p : pivots_) total += 4 + p.size();
  Blob out(total);
  uint8_t* dst = out.data();
  EncodeFixed32(dst, static_cast<uint32_t>(pivots_.size()));
  dst += 4;
  for (const Blob& p : pivots_) {
    EncodeFixed32(dst, static_cast<uint32_t>(p.size()));
    dst += 4;
    if (!p.empty()) {
      std::memcpy(dst, p.data(), p.size());
      dst += p.size();
    }
  }
  return out;
}

Status PivotTable::Deserialize(const Blob& data, PivotTable* out) {
  if (data.size() < 4) return Status::Corruption("pivot table too short");
  const uint8_t* src = data.data();
  const uint8_t* end = src + data.size();
  const uint32_t count = DecodeFixed32(src);
  src += 4;
  std::vector<Blob> pivots;
  pivots.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (src + 4 > end) return Status::Corruption("truncated pivot length");
    const uint32_t len = DecodeFixed32(src);
    src += 4;
    if (src + len > end) return Status::Corruption("truncated pivot payload");
    pivots.emplace_back(src, src + len);
    src += len;
  }
  *out = PivotTable(std::move(pivots));
  return Status::OK();
}

}  // namespace spb
