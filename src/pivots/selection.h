#ifndef SPB_PIVOTS_SELECTION_H_
#define SPB_PIVOTS_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/blob.h"
#include "metrics/distance.h"
#include "pivots/pivot_table.h"

namespace spb {

/// Pivot selection algorithms evaluated by the paper (Fig. 9). HFI is the
/// paper's contribution; the others are the baselines it compares against.
enum class PivotSelectorType : uint8_t {
  kRandom = 0,   // uniform sample (the M-Index's default policy)
  kFft = 1,      // farthest-first traversal [30]
  kHf = 2,       // Omni-family "Hull of Foci" [6]
  kSpacing = 3,  // minimum-correlation vantage objects [36]
  kPca = 4,      // PCA-style dimension-reduction selection [37]
  kHfi = 5,      // the paper's HF-based Incremental selection (Sec. 3.2)
  kSss = 6,      // Sparse Spatial Selection [31], [32]
};

const char* PivotSelectorName(PivotSelectorType type);

struct PivotSelectionOptions {
  /// |P| — how many pivots to select.
  size_t num_pivots = 5;
  /// |CP| for HFI — size of the HF candidate (outlier) pool. The paper fixes
  /// it at 40.
  size_t num_candidates = 40;
  /// Objects sampled for quality evaluation (precision, correlation,
  /// variance criteria).
  size_t sample_size = 500;
  /// Object pairs sampled when evaluating precision(P).
  size_t num_pairs = 500;
  /// SSS density parameter: a candidate becomes a pivot when its distance to
  /// every chosen pivot exceeds alpha * d+.
  double sss_alpha = 0.35;
  uint64_t seed = 20150415;
};

/// Selects `options.num_pivots` pivots from `objects` using `type`.
/// Distances are evaluated through `metric` (wrap it in a CountingDistance
/// to measure selection cost).
std::vector<Blob> SelectPivots(PivotSelectorType type,
                               const std::vector<Blob>& objects,
                               const DistanceFunction& metric,
                               const PivotSelectionOptions& options);

/// The paper's Definition 1: the average ratio between mapped-space and
/// metric-space distances over sampled object pairs, in [0, 1]. Higher is
/// better (1 = the mapping preserves all distances).
double PivotSetPrecision(const PivotTable& pivots,
                         const std::vector<Blob>& objects,
                         const DistanceFunction& metric, size_t num_pairs,
                         uint64_t seed);

/// rho = mu^2 / (2 sigma^2) over sampled pairwise distances — the intrinsic
/// dimensionality estimate of Chavez et al. the paper uses to choose |P|.
double IntrinsicDimensionality(const std::vector<Blob>& objects,
                               const DistanceFunction& metric,
                               size_t num_pairs, uint64_t seed);

}  // namespace spb

#endif  // SPB_PIVOTS_SELECTION_H_
