#include "pivots/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "common/rng.h"

namespace spb {

namespace {

// Uniform sample of `n` distinct indices from [0, size).
std::vector<size_t> SampleIndices(size_t size, size_t n, Rng* rng) {
  n = std::min(n, size);
  if (n * 3 >= size) {
    std::vector<size_t> all(size);
    std::iota(all.begin(), all.end(), size_t{0});
    std::shuffle(all.begin(), all.end(), rng->engine());
    all.resize(n);
    return all;
  }
  std::set<size_t> picked;
  while (picked.size() < n) picked.insert(rng->Uniform(size));
  return std::vector<size_t>(picked.begin(), picked.end());
}

std::vector<Blob> TakeByIndex(const std::vector<Blob>& objects,
                              const std::vector<size_t>& idx) {
  std::vector<Blob> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(objects[i]);
  return out;
}

std::vector<Blob> SelectRandom(const std::vector<Blob>& objects, size_t k,
                               Rng* rng) {
  return TakeByIndex(objects, SampleIndices(objects.size(), k, rng));
}

// Farthest-first traversal: each new pivot maximizes the minimum distance to
// the already-selected ones. Works on a sample to bound cost.
std::vector<Blob> SelectFft(const std::vector<Blob>& objects,
                            const DistanceFunction& metric, size_t k,
                            size_t sample_size, Rng* rng) {
  const std::vector<Blob> sample =
      TakeByIndex(objects, SampleIndices(objects.size(),
                                         std::max(sample_size, k * 4), rng));
  std::vector<Blob> pivots;
  if (sample.empty()) return pivots;
  pivots.push_back(sample[rng->Uniform(sample.size())]);
  std::vector<double> min_dist(sample.size(),
                               std::numeric_limits<double>::infinity());
  while (pivots.size() < k) {
    size_t best = 0;
    double best_dist = -1.0;
    for (size_t i = 0; i < sample.size(); ++i) {
      min_dist[i] =
          std::min(min_dist[i], metric.Distance(sample[i], pivots.back()));
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    if (best_dist <= 0.0) break;  // no more distinct objects
    pivots.push_back(sample[best]);
  }
  return pivots;
}

// Omni-family HF ("Hull of Foci"): f1 = farthest from a random seed, f2 =
// farthest from f1; each further focus minimizes the error of being at
// distance `edge` (= d(f1,f2)) from all chosen foci. Runs on a sample.
std::vector<Blob> SelectHf(const std::vector<Blob>& objects,
                           const DistanceFunction& metric, size_t k,
                           size_t sample_size, Rng* rng) {
  const std::vector<Blob> sample = TakeByIndex(
      objects, SampleIndices(objects.size(), std::max<size_t>(sample_size, 64),
                             rng));
  std::vector<Blob> foci;
  if (sample.empty() || k == 0) return foci;

  const Blob& seed = sample[rng->Uniform(sample.size())];
  auto farthest_from = [&](const Blob& from) -> size_t {
    size_t best = 0;
    double best_dist = -1.0;
    for (size_t i = 0; i < sample.size(); ++i) {
      const double d = metric.Distance(sample[i], from);
      if (d > best_dist) {
        best_dist = d;
        best = i;
      }
    }
    return best;
  };

  const size_t f1 = farthest_from(seed);
  foci.push_back(sample[f1]);
  if (k == 1) return foci;
  const size_t f2 = farthest_from(sample[f1]);
  const double edge = metric.Distance(sample[f1], sample[f2]);
  if (edge <= 0.0) return foci;
  foci.push_back(sample[f2]);

  std::set<size_t> used = {f1, f2};
  // err[i] accumulates sum_f |d(sample_i, f) - edge| over chosen foci, so
  // each added focus costs one distance per sample object (HF stays O(|O|)).
  std::vector<double> err(sample.size(), 0.0);
  for (size_t i = 0; i < sample.size(); ++i) {
    err[i] = std::fabs(metric.Distance(sample[i], sample[f1]) - edge) +
             std::fabs(metric.Distance(sample[i], sample[f2]) - edge);
  }
  while (foci.size() < k) {
    size_t best = SIZE_MAX;
    double best_err = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < sample.size(); ++i) {
      if (used.count(i)) continue;
      if (err[i] < best_err) {
        best_err = err[i];
        best = i;
      }
    }
    if (best == SIZE_MAX) break;
    used.insert(best);
    foci.push_back(sample[best]);
    for (size_t i = 0; i < sample.size(); ++i) {
      err[i] += std::fabs(metric.Distance(sample[i], sample[best]) - edge);
    }
  }
  return foci;
}

// Distance matrix: rows = candidates, cols = sample objects.
std::vector<std::vector<double>> DistanceMatrix(
    const std::vector<Blob>& candidates, const std::vector<Blob>& sample,
    const DistanceFunction& metric) {
  std::vector<std::vector<double>> m(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    m[i].resize(sample.size());
    for (size_t j = 0; j < sample.size(); ++j) {
      m[i][j] = metric.Distance(candidates[i], sample[j]);
    }
  }
  return m;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 1.0;  // constant vector: maximally bad
  return cov / std::sqrt(va * vb);
}

// Leuken & Veltkamp spacing/vantage selection: greedily pick candidates with
// minimum absolute correlation against already-selected pivots' distance
// vectors, so objects spread evenly in the mapped space.
std::vector<Blob> SelectSpacing(const std::vector<Blob>& objects,
                                const DistanceFunction& metric, size_t k,
                                const PivotSelectionOptions& options,
                                Rng* rng) {
  const auto cand_idx =
      SampleIndices(objects.size(), options.num_candidates, rng);
  const auto sample_idx =
      SampleIndices(objects.size(), options.sample_size, rng);
  const std::vector<Blob> candidates = TakeByIndex(objects, cand_idx);
  const std::vector<Blob> sample = TakeByIndex(objects, sample_idx);
  const auto dist = DistanceMatrix(candidates, sample, metric);

  std::vector<size_t> chosen;
  std::vector<bool> used(candidates.size(), false);
  // First pivot: largest variance of its distance vector.
  size_t first = 0;
  double best_var = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double mean =
        std::accumulate(dist[i].begin(), dist[i].end(), 0.0) / sample.size();
    double var = 0.0;
    for (double d : dist[i]) var += (d - mean) * (d - mean);
    if (var > best_var) {
      best_var = var;
      first = i;
    }
  }
  chosen.push_back(first);
  used[first] = true;

  while (chosen.size() < k && chosen.size() < candidates.size()) {
    size_t best = SIZE_MAX;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      double max_corr = 0.0;
      for (size_t c : chosen) {
        max_corr =
            std::max(max_corr, std::fabs(PearsonCorrelation(dist[i], dist[c])));
      }
      if (max_corr < best_score) {
        best_score = max_corr;
        best = i;
      }
    }
    if (best == SIZE_MAX) break;
    used[best] = true;
    chosen.push_back(best);
  }
  return TakeByIndex(candidates, chosen);
}

// PCA-style selection (Mao et al.): greedily pick the candidate whose
// distance vector retains the largest variance after Gram-Schmidt
// orthogonalization against the already-selected pivots' vectors — i.e. the
// pivot axes approximate the principal components of the pivot space.
std::vector<Blob> SelectPca(const std::vector<Blob>& objects,
                            const DistanceFunction& metric, size_t k,
                            const PivotSelectionOptions& options, Rng* rng) {
  const auto cand_idx =
      SampleIndices(objects.size(), options.num_candidates, rng);
  const auto sample_idx =
      SampleIndices(objects.size(), options.sample_size, rng);
  const std::vector<Blob> candidates = TakeByIndex(objects, cand_idx);
  const std::vector<Blob> sample = TakeByIndex(objects, sample_idx);
  auto dist = DistanceMatrix(candidates, sample, metric);
  const size_t n = sample.size();
  if (n == 0 || candidates.empty()) return {};

  // Center each row.
  for (auto& row : dist) {
    const double mean = std::accumulate(row.begin(), row.end(), 0.0) / n;
    for (double& d : row) d -= mean;
  }
  auto dot = [n](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  };

  std::vector<size_t> chosen;
  std::vector<bool> used(candidates.size(), false);
  std::vector<std::vector<double>> basis;  // orthonormal residual directions
  while (chosen.size() < k && chosen.size() < candidates.size()) {
    size_t best = SIZE_MAX;
    double best_var = -1.0;
    std::vector<double> best_residual;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      std::vector<double> r = dist[i];
      for (const auto& b : basis) {
        const double proj = dot(r, b);
        for (size_t j = 0; j < n; ++j) r[j] -= proj * b[j];
      }
      const double var = dot(r, r);
      if (var > best_var) {
        best_var = var;
        best = i;
        best_residual = std::move(r);
      }
    }
    if (best == SIZE_MAX || best_var <= 1e-12) break;
    const double norm = std::sqrt(best_var);
    for (double& x : best_residual) x /= norm;
    basis.push_back(std::move(best_residual));
    used[best] = true;
    chosen.push_back(best);
  }
  return TakeByIndex(candidates, chosen);
}

// The paper's HFI (Section 3.2): HF produces |CP| outlier candidates; pivots
// are then selected incrementally from CP, each step adding the candidate
// that maximizes precision(P) over sampled object pairs.
std::vector<Blob> SelectHfi(const std::vector<Blob>& objects,
                            const DistanceFunction& metric, size_t k,
                            const PivotSelectionOptions& options, Rng* rng) {
  std::vector<Blob> candidates =
      SelectHf(objects, metric, options.num_candidates, options.sample_size,
               rng);
  if (candidates.empty()) return candidates;

  // Sample object pairs and their true distances.
  const auto sample_idx =
      SampleIndices(objects.size(),
                    std::min(objects.size(), options.sample_size), rng);
  const std::vector<Blob> sample = TakeByIndex(objects, sample_idx);
  struct Pair {
    size_t i, j;
    double d;
  };
  std::vector<Pair> pairs;
  pairs.reserve(options.num_pairs);
  for (size_t t = 0; t < options.num_pairs && sample.size() >= 2; ++t) {
    size_t i = rng->Uniform(sample.size());
    size_t j = rng->Uniform(sample.size());
    if (i == j) continue;
    const double d = metric.Distance(sample[i], sample[j]);
    if (d <= 0.0) continue;
    pairs.push_back({i, j, d});
  }
  if (pairs.empty()) {
    candidates.resize(std::min(k, candidates.size()));
    return candidates;
  }

  // Candidate-to-sample distances.
  const auto dist = DistanceMatrix(candidates, sample, metric);

  // cur[t] = max over chosen pivots of |d(o_i,p) - d(o_j,p)| for pair t.
  std::vector<double> cur(pairs.size(), 0.0);
  std::vector<bool> used(candidates.size(), false);
  std::vector<Blob> result;
  while (result.size() < k && result.size() < candidates.size()) {
    size_t best = SIZE_MAX;
    double best_precision = -1.0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      double total = 0.0;
      for (size_t t = 0; t < pairs.size(); ++t) {
        const double lb =
            std::fabs(dist[c][pairs[t].i] - dist[c][pairs[t].j]);
        total += std::max(cur[t], lb) / pairs[t].d;
      }
      if (total > best_precision) {
        best_precision = total;
        best = c;
      }
    }
    if (best == SIZE_MAX) break;
    used[best] = true;
    for (size_t t = 0; t < pairs.size(); ++t) {
      cur[t] = std::max(cur[t],
                        std::fabs(dist[best][pairs[t].i] -
                                  dist[best][pairs[t].j]));
    }
    result.push_back(candidates[best]);
  }
  return result;
}

// Sparse Spatial Selection (Brisaboa et al.): scan objects in random order,
// promoting any object farther than alpha * d+ from every chosen pivot. The
// paper's Section 2.2 survey entry; alpha controls pivot density.
std::vector<Blob> SelectSss(const std::vector<Blob>& objects,
                            const DistanceFunction& metric, size_t k,
                            double alpha, Rng* rng) {
  std::vector<Blob> pivots;
  if (objects.empty() || k == 0) return pivots;
  const double threshold = alpha * metric.max_distance();
  std::vector<size_t> order(objects.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::shuffle(order.begin(), order.end(), rng->engine());
  pivots.push_back(objects[order[0]]);
  for (size_t idx = 1; idx < order.size() && pivots.size() < k; ++idx) {
    const Blob& candidate = objects[order[idx]];
    bool sparse = true;
    for (const Blob& p : pivots) {
      if (metric.Distance(candidate, p) < threshold) {
        sparse = false;
        break;
      }
    }
    if (sparse) pivots.push_back(candidate);
  }
  // SSS may under-produce for a large alpha; top up with FFT-style picks so
  // callers always receive k pivots when possible.
  size_t idx = 0;
  while (pivots.size() < k && idx < order.size()) {
    const Blob& candidate = objects[order[idx++]];
    if (std::find(pivots.begin(), pivots.end(), candidate) == pivots.end()) {
      pivots.push_back(candidate);
    }
  }
  return pivots;
}

}  // namespace

const char* PivotSelectorName(PivotSelectorType type) {
  switch (type) {
    case PivotSelectorType::kRandom:
      return "Random";
    case PivotSelectorType::kFft:
      return "FFT";
    case PivotSelectorType::kHf:
      return "HF";
    case PivotSelectorType::kSpacing:
      return "Spacing";
    case PivotSelectorType::kPca:
      return "PCA";
    case PivotSelectorType::kHfi:
      return "HFI";
    case PivotSelectorType::kSss:
      return "SSS";
  }
  return "Unknown";
}

std::vector<Blob> SelectPivots(PivotSelectorType type,
                               const std::vector<Blob>& objects,
                               const DistanceFunction& metric,
                               const PivotSelectionOptions& options) {
  Rng rng(options.seed);
  const size_t k = std::min(options.num_pivots, objects.size());
  switch (type) {
    case PivotSelectorType::kRandom:
      return SelectRandom(objects, k, &rng);
    case PivotSelectorType::kFft:
      return SelectFft(objects, metric, k, options.sample_size, &rng);
    case PivotSelectorType::kHf:
      return SelectHf(objects, metric, k, options.sample_size, &rng);
    case PivotSelectorType::kSpacing:
      return SelectSpacing(objects, metric, k, options, &rng);
    case PivotSelectorType::kPca:
      return SelectPca(objects, metric, k, options, &rng);
    case PivotSelectorType::kHfi:
      return SelectHfi(objects, metric, k, options, &rng);
    case PivotSelectorType::kSss:
      return SelectSss(objects, metric, k, options.sss_alpha, &rng);
  }
  return {};
}

double PivotSetPrecision(const PivotTable& pivots,
                         const std::vector<Blob>& objects,
                         const DistanceFunction& metric, size_t num_pairs,
                         uint64_t seed) {
  if (pivots.empty() || objects.size() < 2) return 0.0;
  Rng rng(seed);
  double total = 0.0;
  size_t counted = 0;
  for (size_t t = 0; t < num_pairs; ++t) {
    const size_t i = rng.Uniform(objects.size());
    const size_t j = rng.Uniform(objects.size());
    if (i == j) continue;
    const double d = metric.Distance(objects[i], objects[j]);
    if (d <= 0.0) continue;
    const auto phi_i = pivots.Map(objects[i], metric);
    const auto phi_j = pivots.Map(objects[j], metric);
    double lb = 0.0;
    for (size_t p = 0; p < phi_i.size(); ++p) {
      lb = std::max(lb, std::fabs(phi_i[p] - phi_j[p]));
    }
    total += lb / d;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double IntrinsicDimensionality(const std::vector<Blob>& objects,
                               const DistanceFunction& metric,
                               size_t num_pairs, uint64_t seed) {
  if (objects.size() < 2) return 0.0;
  Rng rng(seed);
  std::vector<double> dists;
  dists.reserve(num_pairs);
  for (size_t t = 0; t < num_pairs; ++t) {
    const size_t i = rng.Uniform(objects.size());
    const size_t j = rng.Uniform(objects.size());
    if (i == j) continue;
    dists.push_back(metric.Distance(objects[i], objects[j]));
  }
  if (dists.size() < 2) return 0.0;
  const double mean =
      std::accumulate(dists.begin(), dists.end(), 0.0) / dists.size();
  double var = 0.0;
  for (double d : dists) var += (d - mean) * (d - mean);
  var /= dists.size();
  if (var <= 0.0) return 0.0;
  return mean * mean / (2.0 * var);
}

}  // namespace spb
