#ifndef SPB_PIVOTS_PIVOT_TABLE_H_
#define SPB_PIVOTS_PIVOT_TABLE_H_

#include <vector>

#include "common/blob.h"
#include "common/status.h"
#include "metrics/distance.h"

namespace spb {

/// The pivot table of an SPB-tree: the objects that define the mapping
/// phi(o) = <d(o,p_1), ..., d(o,p_n)> from the metric space into the vector
/// space (R^n, L-inf). Shared by both operands of a similarity join.
class PivotTable {
 public:
  PivotTable() = default;
  explicit PivotTable(std::vector<Blob> pivots) : pivots_(std::move(pivots)) {}

  size_t size() const { return pivots_.size(); }
  bool empty() const { return pivots_.empty(); }
  const Blob& pivot(size_t i) const { return pivots_[i]; }
  const std::vector<Blob>& pivots() const { return pivots_; }

  /// Computes phi(o): the vector of distances from `o` to every pivot.
  /// Costs size() distance computations.
  std::vector<double> Map(const Blob& o, const DistanceFunction& metric) const {
    std::vector<double> phi(pivots_.size());
    for (size_t i = 0; i < pivots_.size(); ++i) {
      phi[i] = metric.Distance(o, pivots_[i]);
    }
    return phi;
  }

  /// Maps `count` objects at once into a caller-owned row-major buffer
  /// (`out[i * size() + j] = d(objects[i], p_j)`), avoiding the per-object
  /// vector allocation of Map(). Used by the bulk-load path, which maps the
  /// whole dataset. Costs count * size() distance computations.
  void MapBatch(const Blob* objects, size_t count,
                const DistanceFunction& metric, double* out) const;

  /// Serializes the table (count + length-prefixed pivot payloads).
  Blob Serialize() const;

  /// Inverse of Serialize.
  static Status Deserialize(const Blob& data, PivotTable* out);

 private:
  std::vector<Blob> pivots_;
};

}  // namespace spb

#endif  // SPB_PIVOTS_PIVOT_TABLE_H_
