#include "vptree/vp_tree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "common/coding.h"

namespace spb {

namespace {
constexpr size_t kLeafHeader = 4;
constexpr size_t kLeafEntryOverhead = 8;  // id + len
}  // namespace

size_t VpTree::Node::LeafByteSize() const {
  size_t bytes = kLeafHeader;
  for (const LeafEntry& e : entries) bytes += kLeafEntryOverhead + e.obj.size();
  return bytes;
}

void VpTree::Node::SerializeTo(Page* page) const {
  page->Clear();
  uint8_t* dst = page->bytes();
  dst[0] = is_leaf ? 1 : 0;
  if (is_leaf) {
    EncodeFixed16(dst + 2, uint16_t(entries.size()));
    dst += kLeafHeader;
    for (const LeafEntry& e : entries) {
      EncodeFixed32(dst, e.id);
      EncodeFixed32(dst + 4, uint32_t(e.obj.size()));
      std::memcpy(dst + 8, e.obj.data(), e.obj.size());
      dst += kLeafEntryOverhead + e.obj.size();
    }
  } else {
    EncodeFixed32(dst + 4, uint32_t(vantage.size()));
    EncodeDouble(dst + 8, mu);
    EncodeFixed32(dst + 16, inner);
    EncodeFixed32(dst + 20, outer);
    EncodeFixed32(dst + 24, vantage_id);
    std::memcpy(dst + 28, vantage.data(), vantage.size());
  }
}

Status VpTree::Node::DeserializeFrom(const Page& page, PageId page_id) {
  const uint8_t* src = page.bytes();
  id = page_id;
  is_leaf = src[0] != 0;
  entries.clear();
  if (is_leaf) {
    const uint16_t count = DecodeFixed16(src + 2);
    src += kLeafHeader;
    entries.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      LeafEntry e;
      e.id = DecodeFixed32(src);
      const uint32_t len = DecodeFixed32(src + 4);
      e.obj.assign(src + 8, src + 8 + len);
      src += kLeafEntryOverhead + len;
      entries.push_back(std::move(e));
    }
  } else {
    const uint32_t vlen = DecodeFixed32(src + 4);
    mu = DecodeDouble(src + 8);
    inner = DecodeFixed32(src + 16);
    outer = DecodeFixed32(src + 20);
    vantage_id = DecodeFixed32(src + 24);
    vantage.assign(src + 28, src + 28 + vlen);
  }
  return Status::OK();
}

Status VpTree::ReadNode(PageId id, Node* node) {
  Page page;
  SPB_RETURN_IF_ERROR(pool_.Read(id, &page));
  return node->DeserializeFrom(page, id);
}

Status VpTree::WriteNode(const Node& node) {
  Page page;
  node.SerializeTo(&page);
  return pool_.Write(node.id, page);
}

Status VpTree::AllocateNode(bool is_leaf, Node* node) {
  PageId id;
  SPB_RETURN_IF_ERROR(pool_.Allocate(&id));
  *node = Node{};
  node->id = id;
  node->is_leaf = is_leaf;
  return Status::OK();
}

Status VpTree::BuildRec(std::vector<Item> items, PageId* root) {
  // Leaf case: all items fit in one page.
  size_t bytes = kLeafHeader;
  for (const Item& it : items) bytes += kLeafEntryOverhead + it.obj->size();
  if (bytes <= kPageSize || items.size() < 2) {
    if (bytes > kPageSize) {
      return Status::InvalidArgument("object too large for a VP-tree leaf");
    }
    Node leaf;
    SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/true, &leaf));
    for (const Item& it : items) {
      leaf.entries.push_back(LeafEntry{it.id, *it.obj});
    }
    SPB_RETURN_IF_ERROR(WriteNode(leaf));
    *root = leaf.id;
    return Status::OK();
  }

  // Pick a random vantage, split the rest at the median distance.
  const size_t vi = rng_.Uniform(items.size());
  std::swap(items[vi], items.back());
  const Item vantage = items.back();
  items.pop_back();
  for (Item& it : items) it.dist = Distance(*it.obj, *vantage.obj);
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.dist < b.dist; });
  const size_t mid = items.size() / 2;
  const double mu = items[mid].dist;
  // Invariant: inner items satisfy d <= mu, outer items d >= mu.
  std::vector<Item> inner_items(items.begin(), items.begin() + ptrdiff_t(mid));
  std::vector<Item> outer_items(items.begin() + ptrdiff_t(mid), items.end());

  Node node;
  SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/false, &node));
  node.vantage = *vantage.obj;
  node.vantage_id = vantage.id;
  node.mu = mu;
  if (!inner_items.empty()) {
    SPB_RETURN_IF_ERROR(BuildRec(std::move(inner_items), &node.inner));
  }
  SPB_RETURN_IF_ERROR(BuildRec(std::move(outer_items), &node.outer));
  SPB_RETURN_IF_ERROR(WriteNode(node));
  *root = node.id;
  return Status::OK();
}

Status VpTree::Build(const std::vector<Blob>& objects,
                     const DistanceFunction* metric,
                     const VpTreeOptions& options,
                     std::unique_ptr<VpTree>* out) {
  auto tree = std::unique_ptr<VpTree>(new VpTree(metric, options));
  std::vector<Item> items;
  items.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    items.push_back(Item{ObjectId(i), &objects[i], 0.0});
  }
  SPB_RETURN_IF_ERROR(tree->BuildRec(std::move(items), &tree->root_));
  tree->num_objects_ = objects.size();
  *out = std::move(tree);
  return Status::OK();
}

Status VpTree::SplitLeaf(Node* leaf) {
  // Rebuild the overflowing bucket as a subtree, then graft the new root's
  // contents into the existing page so the parent pointer stays valid. (The
  // freshly allocated root page becomes garbage — a one-page cost per
  // split.)
  std::vector<Blob> owned;
  owned.reserve(leaf->entries.size());
  for (const LeafEntry& e : leaf->entries) owned.push_back(e.obj);
  std::vector<Item> items;
  for (size_t i = 0; i < owned.size(); ++i) {
    items.push_back(Item{leaf->entries[i].id, &owned[i], 0.0});
  }
  PageId subtree;
  SPB_RETURN_IF_ERROR(BuildRec(std::move(items), &subtree));
  Node new_root;
  SPB_RETURN_IF_ERROR(ReadNode(subtree, &new_root));
  new_root.id = leaf->id;
  return WriteNode(new_root);
}

Status VpTree::InsertRec(PageId node_id, const Blob& obj, ObjectId id) {
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.is_leaf) {
    node.entries.push_back(LeafEntry{id, obj});
    if (node.LeafByteSize() <= kPageSize) return WriteNode(node);
    return SplitLeaf(&node);
  }
  const double d = Distance(obj, node.vantage);
  if (d <= node.mu && node.inner != kInvalidPageId) {
    return InsertRec(node.inner, obj, id);
  }
  if (node.outer != kInvalidPageId) return InsertRec(node.outer, obj, id);
  // Missing side (built from a degenerate split): start a new leaf there.
  Node leaf;
  SPB_RETURN_IF_ERROR(AllocateNode(/*is_leaf=*/true, &leaf));
  leaf.entries.push_back(LeafEntry{id, obj});
  SPB_RETURN_IF_ERROR(WriteNode(leaf));
  if (d <= node.mu) {
    node.inner = leaf.id;
  } else {
    node.outer = leaf.id;
  }
  return WriteNode(node);
}

Status VpTree::Insert(const Blob& obj, ObjectId id) {
  SPB_RETURN_IF_ERROR(InsertRec(root_, obj, id));
  ++num_objects_;
  return Status::OK();
}

Status VpTree::RangeRec(PageId node_id, const Blob& q, double r,
                        std::vector<ObjectId>* result) {
  if (node_id == kInvalidPageId) return Status::OK();
  Node node;
  SPB_RETURN_IF_ERROR(ReadNode(node_id, &node));
  if (node.is_leaf) {
    for (const LeafEntry& e : node.entries) {
      if (Distance(q, e.obj) <= r) result->push_back(e.id);
    }
    return Status::OK();
  }
  const double d = Distance(q, node.vantage);
  if (d <= r) result->push_back(node.vantage_id);
  if (d - r <= node.mu) {
    SPB_RETURN_IF_ERROR(RangeRec(node.inner, q, r, result));
  }
  if (d + r >= node.mu) {
    SPB_RETURN_IF_ERROR(RangeRec(node.outer, q, r, result));
  }
  return Status::OK();
}

Status VpTree::RangeQuery(const Blob& q, double r,
                          std::vector<ObjectId>* result, QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ > 0) {
    SPB_RETURN_IF_ERROR(RangeRec(root_, q, r, result));
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

Status VpTree::KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                        QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const QueryStats before = cumulative_stats();
  result->clear();
  if (num_objects_ > 0 && k > 0) {
    std::priority_queue<Neighbor, std::vector<Neighbor>,
                        decltype([](const Neighbor& a, const Neighbor& b) {
                          return a.distance < b.distance;
                        })>
        best;
    auto cur_ndk = [&]() {
      return best.size() < k ? std::numeric_limits<double>::infinity()
                             : best.top().distance;
    };
    auto offer = [&](ObjectId id, double d) {
      if (best.size() < k) {
        best.push(Neighbor{id, d});
      } else if (d < best.top().distance) {
        best.pop();
        best.push(Neighbor{id, d});
      }
    };
    struct HeapItem {
      double dmin;
      PageId node;
    };
    auto cmp = [](const HeapItem& a, const HeapItem& b) {
      return a.dmin > b.dmin;
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
        cmp);
    heap.push(HeapItem{0.0, root_});
    Node node;
    while (!heap.empty()) {
      const HeapItem item = heap.top();
      heap.pop();
      if (item.dmin >= cur_ndk()) break;
      SPB_RETURN_IF_ERROR(ReadNode(item.node, &node));
      if (node.is_leaf) {
        for (const LeafEntry& e : node.entries) {
          offer(e.id, Distance(q, e.obj));
        }
        continue;
      }
      const double d = Distance(q, node.vantage);
      offer(node.vantage_id, d);
      if (node.inner != kInvalidPageId) {
        const double dmin = std::max(item.dmin, d - node.mu);
        if (dmin < cur_ndk()) {
          heap.push(HeapItem{std::max(0.0, dmin), node.inner});
        }
      }
      if (node.outer != kInvalidPageId) {
        const double dmin = std::max(item.dmin, node.mu - d);
        if (dmin < cur_ndk()) {
          heap.push(HeapItem{std::max(0.0, dmin), node.outer});
        }
      }
    }
    result->resize(best.size());
    for (size_t i = best.size(); i-- > 0;) {
      (*result)[i] = best.top();
      best.pop();
    }
  }
  if (stats != nullptr) {
    const QueryStats after = cumulative_stats();
    stats->page_accesses = after.page_accesses - before.page_accesses;
    stats->distance_computations =
        after.distance_computations - before.distance_computations;
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return Status::OK();
}

QueryStats VpTree::cumulative_stats() const {
  QueryStats s;
  s.page_accesses = pool_.stats().page_accesses();
  s.distance_computations = counting_.count();
  return s;
}

void VpTree::ResetCounters() {
  pool_.stats().Reset();
  counting_.Reset();
}

}  // namespace spb
