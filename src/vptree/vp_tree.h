#ifndef SPB_VPTREE_VP_TREE_H_
#define SPB_VPTREE_VP_TREE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/metric_index.h"
#include "metrics/distance.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace spb {

struct VpTreeOptions {
  size_t cache_pages = 32;
  /// Sample size used to estimate the median radius at each split.
  size_t median_sample = 64;
  uint64_t seed = 20150415;
};

/// Disk-based Vantage-Point tree (Yianilos, SODA 1993; Bozkaya & Ozsoyoglu's
/// mvp-variant ancestry) — the classic pivot-based method from the paper's
/// related-work survey (Section 2.1, refs [8], [23]). Included as an extra
/// baseline beyond the paper's evaluated competitors.
///
/// Each internal node stores a vantage object and the median distance mu of
/// its subtree to that vantage; objects closer than mu descend into the
/// inner child, the rest into the outer child. Pruning uses
/// |d(q,v) - mu| > r to skip a side. Leaves store object payloads inline
/// (like the M-tree, objects live in the index).
class VpTree final : public MetricIndex {
 public:
  /// Bulk-builds by recursive median splitting (ids = positions).
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const VpTreeOptions& options,
                      std::unique_ptr<VpTree>* out);

  Status Insert(const Blob& obj, ObjectId id) override;
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats) override;
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats) override;

  uint64_t storage_bytes() const override {
    return uint64_t(file_->num_pages()) * kPageSize;
  }
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;
  void FlushCaches() override { pool_.Flush(); }
  std::string name() const override { return "VP-tree"; }

  uint64_t size() const { return num_objects_; }

 private:
  struct Item {
    ObjectId id;
    const Blob* obj;
    double dist;  // scratch
  };
  struct LeafEntry {
    ObjectId id;
    Blob obj;
  };
  // In-memory node. Internal nodes hold the vantage object (which is itself
  // a data object) plus the two children; leaves hold a bucket of objects.
  struct Node {
    PageId id = kInvalidPageId;
    bool is_leaf = true;
    // Internal:
    ObjectId vantage_id = 0;
    Blob vantage;
    double mu = 0.0;
    PageId inner = kInvalidPageId;
    PageId outer = kInvalidPageId;
    // Leaf:
    std::vector<LeafEntry> entries;

    size_t LeafByteSize() const;
    void SerializeTo(Page* page) const;
    Status DeserializeFrom(const Page& page, PageId page_id);
  };

  VpTree(const DistanceFunction* metric, const VpTreeOptions& options)
      : options_(options),
        counting_(metric),
        file_(PageFile::CreateInMemory()),
        pool_(file_.get(), options.cache_pages),
        rng_(options.seed) {}

  double Distance(const Blob& a, const Blob& b) {
    return counting_.Distance(a, b);
  }
  Status ReadNode(PageId id, Node* node);
  Status WriteNode(const Node& node);
  Status AllocateNode(bool is_leaf, Node* node);

  Status BuildRec(std::vector<Item> items, PageId* root);
  Status InsertRec(PageId node_id, const Blob& obj, ObjectId id);
  Status SplitLeaf(Node* leaf);
  Status RangeRec(PageId node_id, const Blob& q, double r,
                  std::vector<ObjectId>* result);

  VpTreeOptions options_;
  CountingDistance counting_;
  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  Rng rng_;
  PageId root_ = kInvalidPageId;
  uint64_t num_objects_ = 0;
};

}  // namespace spb

#endif  // SPB_VPTREE_VP_TREE_H_
