#ifndef SPB_CORE_COST_MODEL_H_
#define SPB_CORE_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/mapped_space.h"

namespace spb {

/// Predicted cost of a similarity operation, in the paper's two metrics.
struct CostEstimate {
  /// EDC — estimated number of distance computations (Eqs. 3, 7).
  double distance_computations = 0.0;
  /// EPA — estimated number of page accesses (Eqs. 6, 8).
  double page_accesses = 0.0;
  /// For kNN: the estimated k-th NN distance eND_k (Eq. 5).
  double estimated_radius = 0.0;
};

/// The SPB-tree cost model (Sections 4.4, 5.3). Holds the sampled *union*
/// distance distribution F(r_1, ..., r_|P|) of Eq. 2 — a reservoir sample of
/// exact mapped vectors phi(o) gathered at construction time — plus the node
/// MBB summary needed for the I(M_i) term of Eq. 6.
class CostModel {
 public:
  CostModel() = default;

  /// `sample` are exact phi(o) vectors of sampled objects, `total_objects` is
  /// |O|, `objects_per_page` is f (average objects per RAF page), and
  /// `node_boxes` are the cell-space MBBs of every B+-tree node.
  CostModel(std::vector<std::vector<double>> sample, uint64_t total_objects,
            double objects_per_page, uint64_t num_leaf_pages,
            std::vector<std::pair<std::vector<uint32_t>,
                                  std::vector<uint32_t>>> node_boxes);

  /// Empirical Pr(phi(o) in RR(q, r)) — the inclusion-exclusion of Eq. 4
  /// evaluated against the sampled union distribution.
  double RegionProbability(const std::vector<double>& phi_q, double r) const;

  /// Eq. 5: the estimated k-th NN distance. F_q is approximated by the
  /// mapped-space lower-bound distribution (in the spirit of the
  /// query-sensitive model of Ciaccia & Nanni the paper cites as [40]) and
  /// calibrated by the pivot-set precision of Definition 1.
  double EstimateKnnRadius(const std::vector<double>& phi_q, uint64_t k) const;

  /// Range-query cost (Eqs. 3, 4, 6).
  CostEstimate EstimateRange(const MappedSpace& space,
                             const std::vector<double>& phi_q,
                             double r) const;

  /// kNN cost: a range estimate at radius eND_k (Eq. 5).
  CostEstimate EstimateKnn(const MappedSpace& space,
                           const std::vector<double>& phi_q,
                           uint64_t k) const;

  /// Join cost (Eqs. 7, 8): `probe` is the cost model of SPB_Q whose sampled
  /// vectors stand in for the outer objects q; `this` models SPB_O.
  CostEstimate EstimateJoin(const CostModel& probe, double epsilon) const;

  /// Adds one mapped vector to the reservoir sample (used by Insert).
  void AddSample(const std::vector<double>& phi, uint64_t seen_so_far,
                 uint64_t rng_draw);

  /// Pivot-set precision (Definition 1) used to calibrate kNN radius
  /// estimates; measured on sampled pairs at build time.
  void set_precision(double p) { precision_ = p; }
  double precision() const { return precision_; }

  /// Installs the sampled overall distance distribution (Eq. 1): sorted
  /// pairwise distances measured at build time, plus the intrinsic
  /// dimensionality used to extrapolate quantiles below 1/sample-size.
  void set_distance_distribution(std::vector<double> sorted_distances,
                                 double intrinsic_dim) {
    pair_distances_ = std::move(sorted_distances);
    intrinsic_dim_ = intrinsic_dim;
  }
  const std::vector<double>& pair_distances() const {
    return pair_distances_;
  }
  double intrinsic_dim() const { return intrinsic_dim_; }

  /// Fraction of the sampled overall distance distribution (Eq. 1) at or
  /// below `r` — the query planner's O(log sample) candidate-selectivity
  /// proxy (EstimateRange's exact Eq. 4 term sweeps the full phi sample;
  /// this stays cheap enough for every query). 0 with no distribution.
  double DistanceFractionLE(double r) const {
    if (pair_distances_.empty()) return 0.0;
    const auto it = std::upper_bound(pair_distances_.begin(),
                                     pair_distances_.end(), r);
    return double(it - pair_distances_.begin()) /
           double(pair_distances_.size());
  }

  uint64_t total_objects() const { return total_objects_; }
  void set_total_objects(uint64_t n) { total_objects_ = n; }
  double objects_per_page() const { return objects_per_page_; }
  uint64_t num_leaf_pages() const { return num_leaf_pages_; }
  const std::vector<std::vector<double>>& sample() const { return sample_; }

  static constexpr size_t kDefaultSampleCapacity = 1024;

 private:
  std::vector<std::vector<double>> sample_;
  uint64_t total_objects_ = 0;
  double objects_per_page_ = 1.0;
  uint64_t num_leaf_pages_ = 0;
  double precision_ = 1.0;
  // Sorted sample of pairwise distances (the overall distribution of Eq. 1)
  // and the intrinsic dimensionality for sub-sample quantile extrapolation.
  std::vector<double> pair_distances_;
  double intrinsic_dim_ = 1.0;
  std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
      node_boxes_;
};

}  // namespace spb

#endif  // SPB_CORE_COST_MODEL_H_
