#include "core/spb_tree.h"

#include "common/coding.h"
#include "common/crash_point.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <cstring>
#include <queue>
#include <thread>
#include <unordered_map>

namespace spb {

namespace {

/// Captures the cost counters around one query and writes the delta (plus
/// wall time) into `out` when it goes out of scope.
class StatScope {
 public:
  StatScope(const SpbTree& tree, QueryStats* out)
      : tree_(tree), out_(out), before_(tree.cumulative_stats()),
        start_(std::chrono::steady_clock::now()) {}

  ~StatScope() {
    if (out_ == nullptr) return;
    const QueryStats after = tree_.cumulative_stats();
    out_->page_accesses = after.page_accesses - before_.page_accesses;
    out_->distance_computations =
        after.distance_computations - before_.distance_computations;
    out_->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
  }

 private:
  const SpbTree& tree_;
  QueryStats* out_;
  QueryStats before_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

// All transient state of one query traversal, as reusable buffers: once a
// few queries have warmed up the capacities, RangeQuery and KnnQuery run
// with zero heap allocation in the traversal loop (the decoded-node cache —
// or `scratch_node` when it is off — supplies parsed nodes, LeafScratch the
// batch buffers, and the FIFO/heap vectors keep their high-water capacity).
struct SpbTree::QueryArena {
  // Pending subtree of a range traversal. The parent's MBB corners live in
  // `box_buf` (lo at box_off, hi at box_off + dims): the FIFO grows while
  // iterating, so offsets stay valid where pointers would dangle.
  struct RangeTodo {
    PageId id;
    uint32_t box_off;
    bool has_box;
  };
  // kNN frontier element (min-heap on mind via std::push_heap/pop_heap —
  // the standard mandates the same element evolution as the
  // std::priority_queue this replaces).
  struct KnnHeapItem {
    double mind;
    bool is_entry;
    PageId node;      // when !is_entry
    LeafEntry entry;  // when is_entry
  };

  std::vector<double> phi_q;
  std::vector<uint32_t> rr_lo, rr_hi;  // range region RR(q, r)
  std::vector<uint32_t> ilo, ihi;      // RR ∩ MBB(N)
  std::vector<RangeTodo> todo;         // range FIFO (index cursor, no pops)
  std::vector<uint32_t> box_buf;       // flat parent-box storage
  std::vector<uint64_t> region_keys;   // computeSFC enumeration
  std::vector<KnnHeapItem> heap;       // kNN frontier
  std::vector<Neighbor> best;          // current k best (max-heap)
  DecodedNode scratch_node;            // decode target on cache miss/off
  LeafScratch leaf;                    // batched leaf verification buffers
};

SpbTree::QueryArena& SpbTree::ThreadArena() {
  // One arena per thread is safe because a thread runs one query at a time
  // (QueryExecutor workers are distinct threads; SJA's paired cursors own
  // their node scratch separately).
  thread_local QueryArena arena;
  return arena;
}

Status SpbTree::MakeFiles(std::unique_ptr<PageFile>* btree_file,
                          std::unique_ptr<PageFile>* raf_file) const {
  if (options_.storage_dir.empty()) {
    *btree_file = PageFile::CreateInMemory();
    *raf_file = PageFile::CreateInMemory();
    return Status::OK();
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.storage_dir, ec);
  if (ec) return Status::IOError("cannot create " + options_.storage_dir);
  SPB_RETURN_IF_ERROR(PageFile::CreateOnDisk(
      options_.storage_dir + "/btree.spb", btree_file));
  return PageFile::CreateOnDisk(options_.storage_dir + "/raf.spb", raf_file);
}

Status SpbTree::Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const SpbTreeOptions& options,
                      std::unique_ptr<SpbTree>* out) {
  CountingDistance counting(metric);
  PivotSelectionOptions popts;
  popts.num_pivots = options.num_pivots;
  popts.seed = options.seed;
  PivotTable pivots(
      SelectPivots(options.pivot_selector, objects, counting, popts));
  if (pivots.empty() && !objects.empty()) {
    return Status::InvalidArgument("pivot selection produced no pivots");
  }
  Status s = BuildInternal(objects, metric, std::move(pivots), options, out);
  if (s.ok()) {
    // Fold the pivot-selection distance computations into construction cost.
    (*out)->extra_distance_computations_ = counting.count();
  }
  return s;
}

Status SpbTree::BuildWithPivots(const std::vector<Blob>& objects,
                                const DistanceFunction* metric,
                                PivotTable pivots,
                                const SpbTreeOptions& options,
                                std::unique_ptr<SpbTree>* out,
                                const std::vector<ObjectId>* ids,
                                const double* phis) {
  if (ids != nullptr && ids->size() != objects.size()) {
    return Status::InvalidArgument("BuildWithPivots: objects/ids mismatch");
  }
  return BuildInternal(objects, metric, std::move(pivots), options, out, ids,
                       phis);
}

Status SpbTree::BuildInternal(const std::vector<Blob>& objects,
                              const DistanceFunction* metric,
                              PivotTable pivots,
                              const SpbTreeOptions& options,
                              std::unique_ptr<SpbTree>* out,
                              const std::vector<ObjectId>* ids,
                              const double* phis_in) {
  if (options.num_pivots == 0 || (pivots.empty() && !objects.empty())) {
    return Status::InvalidArgument("SPB-tree needs at least one pivot");
  }
  auto tree = std::unique_ptr<SpbTree>(new SpbTree(metric, options));
  tree->sample_rng_ = Rng(options.seed ^ 0x5b5b5b5bULL);

  // Handle the degenerate empty-index case with a single dummy pivot-free
  // mapping: create structures lazily sized for 1 dimension.
  if (pivots.empty()) {
    pivots = PivotTable({Blob{}});
  }
  tree->space_ = std::make_unique<MappedSpace>(std::move(pivots), *metric,
                                               options.delta, options.curve);

  std::unique_ptr<PageFile> btree_file, raf_file;
  SPB_RETURN_IF_ERROR(tree->MakeFiles(&btree_file, &raf_file));
  SPB_RETURN_IF_ERROR(BPlusTree::Create(std::move(btree_file),
                                        options.btree_cache_pages,
                                        &tree->space_->curve(), &tree->btree_));
  SPB_RETURN_IF_ERROR(
      tree->btree_->SetNodeCacheEntries(options.node_cache_entries));
  {
    std::unique_ptr<Raf> raf;
    SPB_RETURN_IF_ERROR(
        Raf::Create(std::move(raf_file), options.raf_cache_pages, &raf));
    tree->raf_ = std::move(raf);
  }

  // ---- Stage 1+2: map every object and sort by SFC value. `pos` is the
  // position in `objects` (needed to fetch the payload once ids are
  // explicit and no longer double as positions).
  struct Mapped {
    uint64_t key;
    ObjectId id;
    uint32_t pos;
  };
  std::vector<Mapped> mapped(objects.size());
  std::vector<std::vector<double>> sample;
  const size_t sample_cap = options.cost_sample_size;
  Rng sample_rng(options.seed ^ 0xc0);
  // Map the whole dataset into one row-major buffer (same distance-call
  // order as per-object Phi, without a vector allocation per object) —
  // unless the caller (a sharding router) already did and passed the rows
  // in, in which case the distance calls were counted at the router.
  const size_t dims = tree->space_->dims();
  std::vector<double> phis_own;
  const double* phis = phis_in;
  if (phis == nullptr) {
    phis_own.resize(objects.size() * dims);
    tree->space_->pivots().MapBatch(objects.data(), objects.size(),
                                    tree->counting_, phis_own.data());
    phis = phis_own.data();
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    const double* phi = phis + i * dims;
    const ObjectId id = ids != nullptr ? (*ids)[i] : ObjectId(i);
    mapped[i] = Mapped{tree->space_->KeyFor(phi, dims), id, uint32_t(i)};
    if (sample_cap > 0) {
      if (sample.size() < sample_cap) {
        sample.emplace_back(phi, phi + dims);
      } else {
        const uint64_t slot = sample_rng.Uniform(i + 1);
        if (slot < sample_cap) sample[slot].assign(phi, phi + dims);
      }
    }
  }
  std::sort(mapped.begin(), mapped.end(),
            [](const Mapped& a, const Mapped& b) {
              return a.key < b.key || (a.key == b.key && a.id < b.id);
            });

  // ---- RAF in ascending SFC order; B+-tree entries reference offsets.
  std::vector<LeafEntry> entries;
  entries.reserve(mapped.size());
  for (const Mapped& m : mapped) {
    uint64_t offset;
    SPB_RETURN_IF_ERROR(tree->raf_->Append(m.id, objects[m.pos], &offset));
    entries.push_back(LeafEntry{m.key, offset});
  }
  SPB_RETURN_IF_ERROR(tree->raf_->Sync());
  SPB_RETURN_IF_ERROR(tree->btree_->BulkLoad(entries));
  SPB_RETURN_IF_ERROR(tree->btree_->Sync());
  tree->num_objects_ = objects.size();
  tree->inserts_seen_ = objects.size();

  // ---- Cost model: union distance distribution sample + node MBB summary.
  std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> boxes;
  SPB_RETURN_IF_ERROR(tree->CollectNodeBoxes(&boxes));
  const double data_pages =
      std::max<double>(1.0, double(tree->raf_->file_bytes() / kPageSize) - 1);
  const double f = double(std::max<uint64_t>(tree->num_objects_, 1)) /
                   data_pages;
  uint64_t leaf_pages =
      (tree->num_objects_ + BptNode::kLeafCapacity - 1) /
      std::max<size_t>(BptNode::kLeafCapacity, 1);
  tree->cost_model_ = CostModel(std::move(sample), tree->num_objects_, f,
                                leaf_pages, std::move(boxes));
  if (objects.size() >= 2 && options.cost_sample_size > 0) {
    tree->cost_model_.set_precision(PivotSetPrecision(
        tree->space_->pivots(), objects, tree->counting_,
        /*num_pairs=*/256, options.seed ^ 0xfeed));
    // Overall distance distribution (Eq. 1): sampled pairwise distances for
    // the kNN radius estimate, plus intrinsic dimensionality (rho) for
    // sub-sample quantile extrapolation.
    Rng pair_rng(options.seed ^ 0xd15f);
    std::vector<double> pair_distances;
    pair_distances.reserve(512);
    double mean = 0.0;
    for (int t = 0; t < 512; ++t) {
      const Blob& a = objects[pair_rng.Uniform(objects.size())];
      const Blob& b = objects[pair_rng.Uniform(objects.size())];
      const double d = tree->counting_.Distance(a, b);
      pair_distances.push_back(d);
      mean += d;
    }
    mean /= double(pair_distances.size());
    double var = 0.0;
    for (double d : pair_distances) var += (d - mean) * (d - mean);
    var /= double(pair_distances.size());
    const double rho = var > 0 ? mean * mean / (2.0 * var) : 1.0;
    std::sort(pair_distances.begin(), pair_distances.end());
    tree->cost_model_.set_distance_distribution(std::move(pair_distances),
                                                rho);
  }
  tree->InitFetcher();
  tree->InitSnapshots();
  SPB_RETURN_IF_ERROR(tree->InitEngine());
  // No writer lock needed: the tree is not shared until *out is assigned.
  tree->RebuildLocatorLocked();
  *out = std::move(tree);
  return Status::OK();
}

namespace {

constexpr uint64_t kSpbMetaMagic = 0x5350424D45544131ULL;  // "SPBMETA1"

// Serializes a byte buffer into a page file: page 0 holds magic + length,
// the raw bytes follow across subsequent pages.
Status WriteBufferToPageFile(const std::vector<uint8_t>& buf,
                             PageFile* file) {
  Page page;
  EncodeFixed64(page.bytes(), kSpbMetaMagic);
  EncodeFixed64(page.bytes() + 8, buf.size());
  PageId id;
  if (file->num_pages() == 0) {
    SPB_RETURN_IF_ERROR(file->Allocate(&id));
  }
  SPB_RETURN_IF_ERROR(file->Write(0, page));
  size_t pos = 0;
  PageId next = 1;
  while (pos < buf.size()) {
    Page data;
    const size_t chunk = std::min(kPageSize, buf.size() - pos);
    std::memcpy(data.bytes(), buf.data() + pos, chunk);
    while (file->num_pages() <= next) {
      PageId unused;
      SPB_RETURN_IF_ERROR(file->Allocate(&unused));
    }
    SPB_RETURN_IF_ERROR(file->Write(next, data));
    pos += chunk;
    ++next;
  }
  return file->Sync();
}

Status ReadBufferFromPageFile(PageFile* file, std::vector<uint8_t>* buf) {
  if (file->num_pages() == 0) return Status::Corruption("empty meta file");
  Page page;
  SPB_RETURN_IF_ERROR(file->Read(0, &page));
  if (DecodeFixed64(page.bytes()) != kSpbMetaMagic) {
    return Status::Corruption("bad SPB meta magic");
  }
  const uint64_t len = DecodeFixed64(page.bytes() + 8);
  buf->resize(len);
  size_t pos = 0;
  PageId next = 1;
  while (pos < len) {
    SPB_RETURN_IF_ERROR(file->Read(next, &page));
    const size_t chunk = std::min(kPageSize, size_t(len) - pos);
    std::memcpy(buf->data() + pos, page.bytes(), chunk);
    pos += chunk;
    ++next;
  }
  return Status::OK();
}

// Simple append-only binary writer/reader for the meta blob.
class MetaWriter {
 public:
  void U32(uint32_t v) {
    uint8_t b[4];
    EncodeFixed32(b, v);
    buf_.insert(buf_.end(), b, b + 4);
  }
  void U64(uint64_t v) {
    uint8_t b[8];
    EncodeFixed64(b, v);
    buf_.insert(buf_.end(), b, b + 8);
  }
  void F64(double v) {
    uint8_t b[8];
    EncodeDouble(b, v);
    buf_.insert(buf_.end(), b, b + 8);
  }
  void Bytes(const Blob& b) {
    U32(uint32_t(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  std::vector<uint8_t>& buf() { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class MetaReader {
 public:
  explicit MetaReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > buf_.size()) return false;
    *v = DecodeFixed32(buf_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = DecodeFixed64(buf_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool F64(double* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = DecodeDouble(buf_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool Bytes(Blob* b) {
    uint32_t len;
    if (!U32(&len) || pos_ + len > buf_.size()) return false;
    b->assign(buf_.begin() + ptrdiff_t(pos_),
              buf_.begin() + ptrdiff_t(pos_ + len));
    pos_ += len;
    return true;
  }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace

Status SpbTree::Save() {
  // Blocking lock, not try-lock: a checkpoint queues behind in-flight
  // commit groups (and vice versa), so it can never truncate WAL records a
  // group appended but has not applied yet.
  std::lock_guard<std::mutex> wlock(writer_mu_);
  return SaveLocked();
}

Status SpbTree::SaveLocked() {
  if (options_.storage_dir.empty()) {
    return Status::InvalidArgument("Save() requires a disk-backed index");
  }
  SPB_RETURN_IF_ERROR(btree_->Sync());
  SPB_RETURN_IF_ERROR(raf_->Sync());

  MetaWriter w;
  w.U64(num_objects_);
  w.U32(uint32_t(space_->pivots().size()));
  w.F64(options_.delta);
  w.U32(uint32_t(options_.curve));
  w.Bytes(space_->pivots().Serialize());
  // Cost model.
  w.F64(cost_model_.precision());
  w.F64(cost_model_.intrinsic_dim());
  w.F64(cost_model_.objects_per_page());
  w.U64(cost_model_.num_leaf_pages());
  const auto& pairs = cost_model_.pair_distances();
  w.U32(uint32_t(pairs.size()));
  for (double d : pairs) w.F64(d);
  const auto& sample = cost_model_.sample();
  w.U32(uint32_t(sample.size()));
  for (const auto& phi : sample) {
    for (double d : phi) w.F64(d);
  }
  // The RAF generation this checkpoint captured (appended last: MetaReader
  // returns false past EOF, so pre-PR7 meta files read back as 0, matching
  // pre-PR7 RAF headers). A mismatch on Open means a crash separated a
  // compaction's file swap from its checkpoint.
  w.U64(raf_->generation());
  // The dead-byte debt at checkpoint time, so a reopened tree still owes
  // the compactor what it owed before the restart (replayed deletes re-add
  // their own debt on top). Pre-PR7 meta files read back as 0.
  w.U64(raf_->dead_bytes());
  // Planner calibration EMA, so a reopened tree keeps the calibration it
  // learned from live traffic. Appended last: pre-PR9 meta files read back
  // the neutral 1.0.
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    w.F64(planner_ema_);
  }

  std::unique_ptr<PageFile> meta;
  SPB_RETURN_IF_ERROR(
      PageFile::CreateOnDisk(options_.storage_dir + "/meta.spb", &meta));
  SPB_RETURN_IF_ERROR(WriteBufferToPageFile(w.buf(), meta.get()));

  if (wal_ != nullptr) {
    // Everything the log covers is durable in the tree files now; a crash
    // here replays already-applied records, which is idempotent.
    MaybeCrash("checkpoint_before_truncate");
    SPB_RETURN_IF_ERROR(wal_->Checkpoint());
  }
  // Pages retired since the last checkpoint are now safe to recycle: no
  // remaining WAL record predates the tree state that superseded them, so
  // a replay can never need their old bytes (the pool writes through —
  // recycling earlier could overwrite a page an interrupted epoch still
  // reaches from the checkpointed root).
  std::vector<PageId> recyclable;
  {
    std::lock_guard<std::mutex> lock(recycle_mu_);
    recyclable.swap(pending_recycle_);
  }
  if (!recyclable.empty()) btree_->AddFreePages(recyclable);
  return Status::OK();
}

Status SpbTree::Open(const std::string& storage_dir,
                     const DistanceFunction* metric,
                     const SpbTreeOptions& options,
                     std::unique_ptr<SpbTree>* out) {
  std::unique_ptr<PageFile> meta_file;
  SPB_RETURN_IF_ERROR(
      PageFile::OpenOnDisk(storage_dir + "/meta.spb", &meta_file));
  std::vector<uint8_t> buf;
  SPB_RETURN_IF_ERROR(ReadBufferFromPageFile(meta_file.get(), &buf));
  MetaReader r(buf);

  SpbTreeOptions opts = options;
  opts.storage_dir = storage_dir;
  uint64_t num_objects;
  uint32_t num_pivots, curve_raw;
  Blob pivot_blob;
  if (!r.U64(&num_objects) || !r.U32(&num_pivots) || !r.F64(&opts.delta) ||
      !r.U32(&curve_raw) || !r.Bytes(&pivot_blob)) {
    return Status::Corruption("truncated SPB meta");
  }
  opts.num_pivots = num_pivots;
  opts.curve = CurveType(curve_raw);
  PivotTable pivots;
  SPB_RETURN_IF_ERROR(PivotTable::Deserialize(pivot_blob, &pivots));

  auto tree = std::unique_ptr<SpbTree>(new SpbTree(metric, opts));
  tree->sample_rng_ = Rng(opts.seed ^ 0x5b5b5b5bULL);
  tree->space_ = std::make_unique<MappedSpace>(std::move(pivots), *metric,
                                               opts.delta, opts.curve);

  // A leftover compaction temp file means a crash hit before the atomic
  // rename: the real raf.spb is intact, the temp is garbage.
  {
    std::error_code ec;
    std::filesystem::remove(storage_dir + "/raf.compact.spb", ec);
  }
  std::unique_ptr<PageFile> btree_file, raf_file;
  SPB_RETURN_IF_ERROR(
      PageFile::OpenOnDisk(storage_dir + "/btree.spb", &btree_file));
  SPB_RETURN_IF_ERROR(
      PageFile::OpenOnDisk(storage_dir + "/raf.spb", &raf_file));
  SPB_RETURN_IF_ERROR(BPlusTree::Open(std::move(btree_file),
                                      opts.btree_cache_pages,
                                      &tree->space_->curve(), &tree->btree_));
  SPB_RETURN_IF_ERROR(
      tree->btree_->SetNodeCacheEntries(opts.node_cache_entries));
  {
    std::unique_ptr<Raf> raf;
    SPB_RETURN_IF_ERROR(
        Raf::Open(std::move(raf_file), opts.raf_cache_pages, &raf));
    tree->raf_ = std::move(raf);
  }
  tree->num_objects_ = num_objects;
  tree->inserts_seen_ = num_objects;

  // Cost model: restore the persisted distributions, re-walk node boxes.
  double precision, rho, f;
  uint64_t leaf_pages;
  uint32_t pair_count;
  if (!r.F64(&precision) || !r.F64(&rho) || !r.F64(&f) ||
      !r.U64(&leaf_pages) || !r.U32(&pair_count)) {
    return Status::Corruption("truncated SPB meta (cost model)");
  }
  std::vector<double> pair_distances(pair_count);
  for (auto& d : pair_distances) {
    if (!r.F64(&d)) return Status::Corruption("truncated pair distances");
  }
  uint32_t sample_count;
  if (!r.U32(&sample_count)) return Status::Corruption("truncated sample");
  std::vector<std::vector<double>> sample(sample_count);
  for (auto& phi : sample) {
    phi.resize(num_pivots);
    for (auto& d : phi) {
      if (!r.F64(&d)) return Status::Corruption("truncated sample vector");
    }
  }
  // RAF generation vs. the one the meta checkpoint recorded (absent in
  // pre-PR7 meta files: both read 0). A mismatch means a crash landed
  // between a compaction's rename and its checkpoint — btree.spb still
  // references offsets of the replaced file and is garbage; rebuild it
  // from the surviving (compacted) RAF.
  uint64_t meta_raf_generation = 0;
  r.U64(&meta_raf_generation);
  uint64_t meta_dead_bytes = 0;
  r.U64(&meta_dead_bytes);
  double planner_ema = 1.0;
  r.F64(&planner_ema);  // absent in pre-PR9 meta files: neutral 1.0
  if (tree->raf_->generation() != meta_raf_generation) {
    SPB_RETURN_IF_ERROR(tree->RebuildBtreeFromRaf());
    num_objects = tree->num_objects_.load(std::memory_order_relaxed);
    tree->inserts_seen_ = num_objects;
    // meta_dead_bytes described the replaced pre-compaction file; the
    // rebuild already tallied the new file's own debt.
  } else {
    // Restore the checkpoint's compaction debt (replayed deletes re-add
    // theirs on top during InitEngine's WAL replay).
    tree->raf_->AddDeadBytes(meta_dead_bytes);
  }
  std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> boxes;
  SPB_RETURN_IF_ERROR(tree->CollectNodeBoxes(&boxes));
  tree->cost_model_ =
      CostModel(std::move(sample), num_objects, f, leaf_pages,
                std::move(boxes));
  tree->cost_model_.set_precision(precision);
  tree->cost_model_.set_distance_distribution(std::move(pair_distances), rho);
  tree->planner_ema_ = planner_ema;
  tree->InitFetcher();
  tree->InitSnapshots();
  // InitEngine replays WAL records past the checkpoint (idempotently, so a
  // checkpoint that raced the crash is harmless) before counters reset.
  SPB_RETURN_IF_ERROR(tree->InitEngine());
  // Model the replayed (current) version; no writer lock needed, the tree
  // is not shared until *out is assigned.
  tree->RebuildLocatorLocked();
  tree->ResetCounters();
  *out = std::move(tree);
  return Status::OK();
}

Status SpbTree::CollectNodeBoxes(
    std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>*
        boxes) {
  boxes->clear();
  // Walk the tree breadth-first collecting every entry's MBB; leaves are
  // summarized by their parents' entries, so this covers all nodes except
  // the root (whose box is the union — irrelevant for counting).
  std::queue<PageId> todo;
  todo.push(btree_->root());
  BptNode node;
  std::vector<uint32_t> lo, hi;
  while (!todo.empty()) {
    const PageId id = todo.front();
    todo.pop();
    SPB_RETURN_IF_ERROR(btree_->ReadNode(id, &node));
    if (node.is_leaf) continue;
    for (const InternalEntry& e : node.internal_entries) {
      btree_->DecodeBox(e.mbb_min, e.mbb_max, &lo, &hi);
      boxes->emplace_back(lo, hi);
      todo.push(e.child);
    }
  }
  return Status::OK();
}

void SpbTree::InitSnapshots() {
  // The retire callback runs on whichever thread drops the last pinning
  // snapshot. Everything it touches is thread-safe: node-cache Erase and
  // pool Retire take striped locks, AddFreePages its own mutex. Purge the
  // caches BEFORE free-listing the ids — once an id is reusable, a COW
  // write may redefine it, and no stale decode/frame must survive that.
  snapshots_ = std::make_unique<SnapshotManager>(
      CurrentVersion(), [this](std::vector<PageId> pages) {
        for (PageId p : pages) btree_->node_cache().Erase(p);
        btree_->pool().Retire(pages);
        if (wal_ != nullptr) {
          // Checkpoint-gated recycling: the pool writes through, so a
          // recycled id would be overwritten on disk while WAL records that
          // replay against the checkpointed tree may still reach the old
          // page. Hold the ids until the next checkpoint truncates the log.
          std::lock_guard<std::mutex> lock(recycle_mu_);
          pending_recycle_.insert(pending_recycle_.end(), pages.begin(),
                                  pages.end());
        } else {
          btree_->AddFreePages(pages);
        }
      });
}

IndexVersion SpbTree::CurrentVersion() const {
  const TreeVersion tv = btree_->version();
  IndexVersion v;
  v.root = tv.root;
  v.height = tv.height;
  v.num_entries = tv.num_entries;
  v.raf = RafPtr();
  v.raf_end_offset = v.raf->end_offset();
  v.num_objects = num_objects_.load(std::memory_order_relaxed);
  return v;
}

void SpbTree::PublishCurrent(std::vector<PageId> superseded) {
  snapshots_->Publish(CurrentVersion(), std::move(superseded));
}

Status SpbTree::InsertOneLocked(const Blob& obj, ObjectId id,
                                std::vector<PageId>* superseded) {
  const std::vector<double> phi = space_->Phi(obj, counting_);
  return InsertOneMappedLocked(obj, id, phi.data(), space_->KeyFor(phi),
                               superseded);
}

Status SpbTree::InsertOneMappedLocked(const Blob& obj, ObjectId id,
                                      const double* phi, uint64_t key,
                                      std::vector<PageId>* superseded) {
  // Upsert: re-inserting an id that already lives at this key replaces the
  // old entry, and the replaced RAF record's bytes join the dead-byte debt
  // (they used to escape the accounting — the record was orphaned but never
  // tallied). This is also what makes WAL replay of an already-applied
  // insert idempotent.
  if (WriterLocatorUsable()) {
    // Locator descent: SeekRank lands on the leaf owning `key` directly, so
    // the probe skips every inner node the cursor's root-to-leaf walk would
    // read. The duplicate run is scanned in the same global key order as the
    // cursor (a run may span leaves), so the RAF probe sequence — and the
    // entry the upsert unlinks — is identical.
    const LeafModel& model = *locator_;
    DecodedNode scratch;
    NodeHandle h;
    ObjectId rid;
    Blob robj;
    bool done = false, past = false;
    for (size_t rank = model.SeekRank(key);
         !done && !past && rank < model.num_leaves() &&
         model.min_key(rank) <= key;
         ++rank) {
      SPB_RETURN_IF_ERROR(btree_->GetNode(model.leaf_id(rank), &scratch, &h));
      const auto& les = h->node.leaf_entries;
      auto it = std::lower_bound(
          les.begin(), les.end(), key,
          [](const LeafEntry& e, uint64_t want) { return e.key < want; });
      for (; it != les.end(); ++it) {
        if (it->key != key) {
          past = true;
          break;
        }
        const uint64_t ptr = it->ptr;
        SPB_RETURN_IF_ERROR(raf_->Get(ptr, &rid, &robj));
        if (rid == id) {
          bool found = false;
          TreeVersion tv;
          SPB_RETURN_IF_ERROR(
              btree_->DeleteCow(key, ptr, &found, &tv, superseded));
          if (found) {
            btree_->AdoptVersion(tv);
            InvalidateLocator();
            raf_->AddDeadBytes(8 + robj.size());
            num_objects_.fetch_sub(1, std::memory_order_relaxed);
          }
          done = true;
          break;
        }
      }
    }
  } else {
    BPlusTree::LeafCursor cur(btree_.get(), btree_->version());
    SPB_RETURN_IF_ERROR(cur.Seek(key));
    ObjectId rid;
    Blob robj;
    while (cur.valid() && cur.entry().key == key) {
      SPB_RETURN_IF_ERROR(raf_->Get(cur.entry().ptr, &rid, &robj));
      if (rid == id) {
        bool found = false;
        TreeVersion tv;
        SPB_RETURN_IF_ERROR(
            btree_->DeleteCow(key, cur.entry().ptr, &found, &tv, superseded));
        if (found) {
          btree_->AdoptVersion(tv);
          InvalidateLocator();
          raf_->AddDeadBytes(8 + robj.size());
          num_objects_.fetch_sub(1, std::memory_order_relaxed);
        }
        break;
      }
      SPB_RETURN_IF_ERROR(cur.Next());
    }
  }
  // RAF first: the new leaf entry references the record's offset, and the
  // appender's release-store of the watermark happens before the version
  // holding this entry can be published.
  uint64_t offset;
  SPB_RETURN_IF_ERROR(raf_->Append(id, obj, &offset));
  TreeVersion tv;
  SPB_RETURN_IF_ERROR(btree_->InsertCow(key, offset, &tv, superseded));
  btree_->AdoptVersion(tv);
  InvalidateLocator();
  const uint64_t n = num_objects_.fetch_add(1, std::memory_order_relaxed) + 1;
  ++inserts_seen_;
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_model_.set_total_objects(n);
    if (options_.cost_sample_size > 0) {
      cost_model_.AddSample(std::vector<double>(phi, phi + space_->dims()),
                            inserts_seen_, sample_rng_.Uniform(UINT64_MAX));
    }
  }
  return Status::OK();
}

Status SpbTree::Insert(const Blob& obj, ObjectId id) {
  if (write_queue_ != nullptr) {
    // Map outside any lock (the mapped space is immutable, the distance
    // counter atomic); the group-commit leader applies the request.
    WriteQueue::Request req;
    req.kind = WriteQueue::OpKind::kInsert;
    req.obj = obj;
    req.id = id;
    req.phi = space_->Phi(obj, counting_);
    req.key = space_->KeyFor(req.phi);
    return write_queue_->Submit(std::move(req));
  }
  std::unique_lock<std::mutex> wlock(writer_mu_, std::try_to_lock);
  if (!wlock.owns_lock()) {
    return Status::Busy("Insert raced another writer; retry when it drains");
  }
  if (wal_ != nullptr) {
    Wal::Record rec{Wal::RecordType::kInsert, id, obj};
    SPB_RETURN_IF_ERROR(wal_->AppendGroup(
        &rec, 1, wal_fsync_.load(std::memory_order_relaxed)));
  }
  std::vector<PageId> superseded;
  SPB_RETURN_IF_ERROR(InsertOneLocked(obj, id, &superseded));
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
  return Status::OK();
}

Status SpbTree::BatchInsert(const std::vector<Blob>& objs,
                            const std::vector<ObjectId>& ids) {
  if (objs.size() != ids.size()) {
    return Status::InvalidArgument("BatchInsert: objs/ids size mismatch");
  }
  if (write_queue_ != nullptr) {
    // Map the whole batch up front (same distance-call order as per-object
    // Phi), then enqueue the records individually: they may commit across
    // several groups, interleaved with other writers.
    const size_t dims = space_->dims();
    std::vector<double> phis(objs.size() * dims);
    space_->pivots().MapBatch(objs.data(), objs.size(), counting_,
                              phis.data());
    std::vector<WriteQueue::Request> reqs(objs.size());
    for (size_t i = 0; i < objs.size(); ++i) {
      reqs[i].kind = WriteQueue::OpKind::kInsert;
      reqs[i].obj = objs[i];
      reqs[i].id = ids[i];
      reqs[i].phi.assign(phis.data() + i * dims, phis.data() + (i + 1) * dims);
      reqs[i].key = space_->KeyFor(reqs[i].phi);
    }
    return write_queue_->SubmitBatch(&reqs);
  }
  std::unique_lock<std::mutex> wlock(writer_mu_, std::try_to_lock);
  if (!wlock.owns_lock()) {
    return Status::Busy(
        "BatchInsert raced another writer; retry when it drains");
  }
  if (wal_ != nullptr) {
    std::vector<Wal::Record> recs(objs.size());
    for (size_t i = 0; i < objs.size(); ++i) {
      recs[i] = Wal::Record{Wal::RecordType::kInsert, ids[i], objs[i]};
    }
    SPB_RETURN_IF_ERROR(wal_->AppendGroup(
        recs.data(), recs.size(), wal_fsync_.load(std::memory_order_relaxed)));
  }
  // One publish for the whole batch: readers keep the pre-batch version
  // until every object is in; intermediate versions are adopted privately
  // and never published, so queueing their superseded pages behind the
  // final epoch is conservative and safe.
  std::vector<PageId> superseded;
  for (size_t i = 0; i < objs.size(); ++i) {
    SPB_RETURN_IF_ERROR(InsertOneLocked(objs[i], ids[i], &superseded));
  }
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
  return Status::OK();
}

Status SpbTree::BatchInsertMapped(const MappedInsert* items, size_t count) {
  if (write_queue_ != nullptr) {
    std::vector<WriteQueue::Request> reqs(count);
    const size_t dims = space_->dims();
    for (size_t i = 0; i < count; ++i) {
      reqs[i].kind = WriteQueue::OpKind::kInsert;
      reqs[i].obj = *items[i].obj;
      reqs[i].id = items[i].id;
      reqs[i].key = items[i].key;
      reqs[i].phi.assign(items[i].phi, items[i].phi + dims);
    }
    return write_queue_->SubmitBatch(&reqs);
  }
  std::unique_lock<std::mutex> wlock(writer_mu_, std::try_to_lock);
  if (!wlock.owns_lock()) {
    return Status::Busy(
        "BatchInsertMapped raced another writer; retry when it drains");
  }
  if (wal_ != nullptr) {
    std::vector<Wal::Record> recs(count);
    for (size_t i = 0; i < count; ++i) {
      recs[i] = Wal::Record{Wal::RecordType::kInsert, items[i].id,
                            *items[i].obj};
    }
    SPB_RETURN_IF_ERROR(wal_->AppendGroup(
        recs.data(), recs.size(), wal_fsync_.load(std::memory_order_relaxed)));
  }
  // Same one-publish-per-batch contract as BatchInsert.
  std::vector<PageId> superseded;
  for (size_t i = 0; i < count; ++i) {
    const MappedInsert& m = items[i];
    SPB_RETURN_IF_ERROR(
        InsertOneMappedLocked(*m.obj, m.id, m.phi, m.key, &superseded));
  }
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
  return Status::OK();
}

Status SpbTree::Delete(const Blob& obj, ObjectId id, bool* found) {
  // Mapping outside the writer lock is safe: the mapped space is immutable
  // and the distance counter atomic.
  return DeleteMapped(obj, id, space_->KeyFor(space_->Phi(obj, counting_)),
                      found);
}

Status SpbTree::DeleteMapped(const Blob& obj, ObjectId id, uint64_t key,
                             bool* found) {
  *found = false;
  if (write_queue_ != nullptr) {
    WriteQueue::Request req;
    req.kind = WriteQueue::OpKind::kDelete;
    req.obj = obj;
    req.id = id;
    req.key = key;
    return write_queue_->Submit(std::move(req), found);
  }
  std::unique_lock<std::mutex> wlock(writer_mu_, std::try_to_lock);
  if (!wlock.owns_lock()) {
    return Status::Busy("Delete raced another writer; retry when it drains");
  }
  if (wal_ != nullptr) {
    Wal::Record rec{Wal::RecordType::kDelete, id, obj};
    SPB_RETURN_IF_ERROR(wal_->AppendGroup(
        &rec, 1, wal_fsync_.load(std::memory_order_relaxed)));
  }
  std::vector<PageId> superseded;
  SPB_RETURN_IF_ERROR(
      DeleteOneMappedLocked(obj, id, key, found, &superseded));
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
  return Status::OK();
}

Status SpbTree::DeleteOneMappedLocked(const Blob& obj, ObjectId id,
                                      uint64_t key, bool* found,
                                      std::vector<PageId>* superseded) {
  if (found != nullptr) *found = false;
  // Locate the duplicate whose RAF record matches (id, payload). With a
  // current locator model SeekRank jumps straight to the owning leaf; the
  // fallback is a chain-free cursor (the leaf chain is stale once COW
  // writes happen). Both scan the duplicate run in global key order, so
  // they locate the same entry with the same RAF probe sequence.
  uint64_t ptr = 0;
  bool located = false;
  ObjectId rid;
  Blob robj;
  if (WriterLocatorUsable()) {
    const LeafModel& model = *locator_;
    DecodedNode scratch;
    NodeHandle h;
    bool past = false;
    for (size_t rank = model.SeekRank(key);
         !located && !past && rank < model.num_leaves() &&
         model.min_key(rank) <= key;
         ++rank) {
      SPB_RETURN_IF_ERROR(btree_->GetNode(model.leaf_id(rank), &scratch, &h));
      const auto& les = h->node.leaf_entries;
      auto it = std::lower_bound(
          les.begin(), les.end(), key,
          [](const LeafEntry& e, uint64_t want) { return e.key < want; });
      for (; it != les.end(); ++it) {
        if (it->key != key) {
          past = true;
          break;
        }
        SPB_RETURN_IF_ERROR(raf_->Get(it->ptr, &rid, &robj));
        if (rid == id && robj == obj) {
          ptr = it->ptr;
          located = true;
          break;
        }
      }
    }
  } else {
    BPlusTree::LeafCursor cur(btree_.get(), btree_->version());
    SPB_RETURN_IF_ERROR(cur.Seek(key));
    while (cur.valid() && cur.entry().key == key) {
      SPB_RETURN_IF_ERROR(raf_->Get(cur.entry().ptr, &rid, &robj));
      if (rid == id && robj == obj) {
        ptr = cur.entry().ptr;
        located = true;
        break;
      }
      SPB_RETURN_IF_ERROR(cur.Next());
    }
  }
  // Missing record: not-found, kOk — which is exactly what makes WAL replay
  // of an already-applied delete idempotent.
  if (!located) return Status::OK();
  TreeVersion tv;
  bool removed = false;
  SPB_RETURN_IF_ERROR(btree_->DeleteCow(key, ptr, &removed, &tv, superseded));
  if (!removed) return Status::OK();
  if (found != nullptr) *found = true;
  // The unlinked RAF record (u32 id + u32 len header plus the payload) is
  // garbage until a rebuild/compaction: tally it as compaction debt.
  raf_->AddDeadBytes(8 + robj.size());
  btree_->AdoptVersion(tv);
  InvalidateLocator();
  const uint64_t n = num_objects_.fetch_sub(1, std::memory_order_relaxed) - 1;
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_model_.set_total_objects(n);
  }
  return Status::OK();
}

Status SpbTree::VerifyLeafBatch(Raf* raf, const LeafEntry* entries,
                                size_t count, const Blob& q,
                                const std::vector<double>& phi_q, double r,
                                bool check_region, bool use_cutoff,
                                const std::vector<uint32_t>& rr_lo,
                                const std::vector<uint32_t>& rr_hi,
                                LeafScratch* scratch,
                                std::vector<ObjectId>* result,
                                Readahead* ra) {
  if (count == 0) return Status::OK();
  scratch->keys.resize(count);
  for (size_t i = 0; i < count; ++i) scratch->keys[i] = entries[i].key;
  space_->DecodeKeys(scratch->keys.data(), count, &scratch->block);
  if (check_region) {  // batch Lemma 1
    MappedSpace::BatchCellInBox(scratch->block, rr_lo, rr_hi,
                                &scratch->in_box);
  }
  if (options_.enable_lemma2) {  // batch Lemma 2
    space_->BatchGuaranteedWithin(scratch->block, phi_q, r,
                                  &scratch->guaranteed);
  }
  if (ra != nullptr) {
    // The lemma sweeps just fixed the set of entries the fetch loop below
    // will touch; their RAF pages are known now and (entries being in key
    // order) land in ascending SFC page order — hand them all to the
    // readahead session so dense survivor runs become span reads. A record
    // may spill onto the next page, so schedule that too; oversubmitting is
    // safe (unclaimed staged pages never count logical PA).
    scratch->pages.clear();
    for (size_t i = 0; i < count; ++i) {
      if (check_region && !scratch->in_box[i]) continue;
      const PageId first = Raf::PageOf(entries[i].ptr);
      scratch->pages.push_back(first);
      scratch->pages.push_back(first + 1);
    }
    ra->Schedule(scratch->pages);
  }
  // Survivors are fetched and verified in entry order, so the result order,
  // the RAF page-access order and the sequence of distance calls all match
  // the per-entry loop this replaces. Zero-copy fetches serve the object
  // straight from the pinned frame (identical accounting — see
  // Raf::GetView); the view/obj buffers are reused across all entries.
  for (size_t i = 0; i < count; ++i) {
    if (check_region && !scratch->in_box[i]) {
      continue;  // Lemma 1: phi(o) outside RR(q, r)
    }
    ObjectId id;
    BlobRef obj;
    if (options_.enable_zero_copy) {
      SPB_RETURN_IF_ERROR(
          raf->GetView(entries[i].ptr, &id, &scratch->view, ra));
      obj = scratch->view.ref();
    } else {
      SPB_RETURN_IF_ERROR(raf->Get(entries[i].ptr, &id, &scratch->obj, ra));
      obj = scratch->obj;
    }
    if (options_.enable_lemma2 && scratch->guaranteed[i]) {
      // Lemma 2: in the result without computing d(q, o).
      result->push_back(id);
      continue;
    }
    const double d = use_cutoff ? counting_.DistanceWithCutoff(q, obj, r)
                                : counting_.Distance(q, obj);
    if (d <= r) result->push_back(id);
  }
  return Status::OK();
}

Status SpbTree::RangeQuery(const Blob& q, double r,
                           std::vector<ObjectId>* result, QueryStats* stats) {
  StatScope scope(*this, stats);
  result->clear();
  // Pin the published version: the traversal below touches only pages
  // reachable from snap's root, which stay un-retired while snap lives.
  const Snapshot snap = AcquireSnapshot();
  if (snap.version().num_objects == 0) return Status::OK();
  QueryArena& A = ThreadArena();
  A.phi_q.resize(space_->dims());
  // Same distance-call count and values as Phi(), without the allocation.
  space_->pivots().MapBatch(&q, 1, counting_, A.phi_q.data());
  return RangeSearch(q, r, snap, A, result);
}

Status SpbTree::RangeQueryMapped(const Blob& q,
                                 const std::vector<double>& phi_q, double r,
                                 std::vector<ObjectId>* result,
                                 QueryStats* stats) {
  StatScope scope(*this, stats);
  result->clear();
  if (phi_q.size() != space_->dims()) {
    return Status::InvalidArgument("RangeQueryMapped: phi dimensionality");
  }
  const Snapshot snap = AcquireSnapshot();
  if (snap.version().num_objects == 0) return Status::OK();
  QueryArena& A = ThreadArena();
  A.phi_q.assign(phi_q.begin(), phi_q.end());
  return RangeSearch(q, r, snap, A, result);
}

Status SpbTree::RangeSearch(const Blob& q, double r, const Snapshot& snap,
                            QueryArena& A, std::vector<ObjectId>* result) {
  const std::shared_ptr<const LeafModel> model = LocatorForSnapshot(snap);
  const bool use_cutoff = options_.enable_cutoff;

  // Planner: the O(log) selectivity proxy predicts the verification count
  // and sizes the readahead session; the prediction is squared against the
  // measured distance-call delta afterwards (feedback). Zero distance
  // computations — everything works off phi_q and the sampled distribution.
  const bool planned = options_.enable_planner;
  double predicted = 0.0;
  size_t ra_budget = options_.max_readahead_pages;
  uint64_t dist_before = 0;
  if (planned) {
    plan_range_.fetch_add(1, std::memory_order_relaxed);
    double frac, f, ema;
    uint64_t total;
    {
      std::lock_guard<std::mutex> lock(cost_mu_);
      frac = cost_model_.DistanceFractionLE(r);
      f = cost_model_.objects_per_page();
      total = cost_model_.total_objects();
      ema = planner_ema_;
    }
    predicted = std::max(1.0, frac * double(total) * ema);
    ra_budget = PlannedBudget(f > 0.0 ? predicted / f : predicted);
    dist_before = counting_.count();
  }

  // The snapshot's RAF, not the tree's current one: a concurrent compaction
  // may swap raf_ mid-traversal, but this version's offsets only resolve
  // against the file it was published with (which the snapshot co-owns).
  Raf* const sraf = snap.version().raf.get();
  Readahead ra = NewReadaheadSession(*sraf, ra_budget);

  // Point lookup with a valid model: skip the descent entirely (SeekRank →
  // owning leaf → duplicate run). Byte-identical results/compdists to the
  // classic r == 0 traversal; only B+-tree inner-node accesses differ.
  if (r == 0.0 && model != nullptr && model->num_leaves() > 0) {
    const Status s =
        PointSearchWithLocator(q, *model, snap, A, use_cutoff, result, &ra);
    if (planned && s.ok()) {
      UpdatePlannerFeedback(predicted,
                            double(counting_.count() - dist_before));
    }
    return s;
  }

  space_->RangeRegion(A.phi_q, r, &A.rr_lo, &A.rr_hi);

  const size_t dims = space_->dims();
  // Flat FIFO: an index cursor over a growing vector visits nodes in exactly
  // the order of the std::queue this replaces, and both the todo list and
  // the box buffer keep their capacity across queries.
  A.todo.clear();
  A.box_buf.clear();
  A.todo.push_back(QueryArena::RangeTodo{snap.version().root, 0, false});
  NodeHandle h;

  for (size_t cursor = 0; cursor < A.todo.size(); ++cursor) {
    const QueryArena::RangeTodo ref = A.todo[cursor];  // copy: todo may grow
    // Inner nodes come from the model's image when one is valid for this
    // snapshot: the image covers ALL internal pages of the version, so an
    // image miss proves `ref.id` is a leaf and the counted demand path
    // runs. The visit *sequence* is untouched — only where the decoded
    // bytes come from changes — which keeps results and compdists
    // byte-identical while inner-node page accesses drop to zero.
    const DecodedNode* img =
        model != nullptr ? model->FindInternal(ref.id) : nullptr;
    if (img != nullptr) {
      h.SetBorrowed(img);
      loc_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      SPB_RETURN_IF_ERROR(btree_->GetNode(ref.id, &A.scratch_node, &h));
    }
    const BptNode& node = h->node;

    if (!node.is_leaf) {
      // Lemma 1 over the cached entry-major MBB corners: no per-entry curve
      // decode on the warm path.
      for (size_t i = 0; i < node.internal_entries.size(); ++i) {
        if (MappedSpace::BoxesIntersect(h->lo(i), h->hi(i), A.rr_lo.data(),
                                        A.rr_hi.data(), dims)) {
          const uint32_t off = static_cast<uint32_t>(A.box_buf.size());
          A.box_buf.insert(A.box_buf.end(), h->lo(i), h->lo(i) + dims);
          A.box_buf.insert(A.box_buf.end(), h->hi(i), h->hi(i) + dims);
          A.todo.push_back(
              QueryArena::RangeTodo{node.internal_entries[i].child, off,
                                    true});
        }
      }
      continue;
    }

    // Leaf node: three verification regimes (Algorithm 1, lines 11-23).
    bool enumerated = false;
    if (ref.has_box) {
      const uint32_t* blo = A.box_buf.data() + ref.box_off;
      const uint32_t* bhi = blo + dims;
      if (MappedSpace::BoxContains(A.rr_lo.data(), A.rr_hi.data(), blo, bhi,
                                   dims)) {
        // MBB(N) fully inside RR: membership is implied.
        SPB_RETURN_IF_ERROR(VerifyLeafBatch(sraf, node.leaf_entries.data(),
                                            node.leaf_entries.size(), q,
                                            A.phi_q, r, false, use_cutoff,
                                            A.rr_lo, A.rr_hi, &A.leaf, result,
                                            &ra));
        continue;
      }
      if (!MappedSpace::IntersectBoxes(blo, bhi, A.rr_lo.data(),
                                       A.rr_hi.data(), dims, &A.ilo,
                                       &A.ihi)) {
        continue;  // race with stale parent box: nothing to do
      }
      const uint64_t cells = RegionCellCount(A.ilo, A.ihi);
      if (options_.enable_compute_sfc && cells < node.leaf_entries.size()) {
        // computeSFC path: enumerate the region's keys, merge-scan the
        // (sorted) leaf entries against them, and batch-verify the matches.
        EnumerateRegionKeysInto(space_->curve(), A.ilo, A.ihi,
                                &A.region_keys);
        A.leaf.matched.clear();
        size_t ei = 0, ki = 0;
        while (ei < node.leaf_entries.size() && ki < A.region_keys.size()) {
          if (node.leaf_entries[ei].key == A.region_keys[ki]) {
            A.leaf.matched.push_back(node.leaf_entries[ei]);
            ++ei;
          } else if (node.leaf_entries[ei].key > A.region_keys[ki]) {
            ++ki;
          } else {
            ++ei;
          }
        }
        SPB_RETURN_IF_ERROR(VerifyLeafBatch(sraf, A.leaf.matched.data(),
                                            A.leaf.matched.size(), q,
                                            A.phi_q, r, false, use_cutoff,
                                            A.rr_lo, A.rr_hi, &A.leaf, result,
                                            &ra));
        enumerated = true;
      }
    }
    if (!enumerated) {
      SPB_RETURN_IF_ERROR(VerifyLeafBatch(sraf, node.leaf_entries.data(),
                                          node.leaf_entries.size(), q,
                                          A.phi_q, r, true, use_cutoff,
                                          A.rr_lo, A.rr_hi, &A.leaf, result,
                                          &ra));
    }
  }
  if (planned) {
    UpdatePlannerFeedback(predicted, double(counting_.count() - dist_before));
  }
  return Status::OK();
}

Status SpbTree::PointSearchWithLocator(const Blob& q, const LeafModel& model,
                                       const Snapshot& snap, QueryArena& A,
                                       bool use_cutoff,
                                       std::vector<ObjectId>* result,
                                       Readahead* ra) {
  // Identity argument (docs/ARCHITECTURE.md §"Learned locator + planner"):
  // at r == 0 the classic traversal verifies exactly the entries whose SFC
  // key equals key(q) — every leaf regime reduces to that set, in entry
  // order — and Lemma 2's batch sweep performs no metric distance calls.
  // This path collects the same run from the same leaves in the same order,
  // so results, RAF accesses and compdists are byte-identical; the elided
  // root-to-leaf descent is the only difference.
  const uint64_t key_q = space_->KeyFor(A.phi_q.data(), space_->dims());
  bool miss = false;
  size_t rank = model.SeekRank(key_q, &miss);
  if (miss) loc_seek_misses_.fetch_add(1, std::memory_order_relaxed);
  Raf* const sraf = snap.version().raf.get();
  NodeHandle h;
  bool past = false;
  for (; !past && rank < model.num_leaves() && model.min_key(rank) <= key_q;
       ++rank) {
    SPB_RETURN_IF_ERROR(
        btree_->GetNode(model.leaf_id(rank), &A.scratch_node, &h));
    const auto& les = h->node.leaf_entries;
    A.leaf.matched.clear();
    auto it = std::lower_bound(
        les.begin(), les.end(), key_q,
        [](const LeafEntry& e, uint64_t want) { return e.key < want; });
    for (; it != les.end(); ++it) {
      if (it->key != key_q) {
        past = true;
        break;
      }
      A.leaf.matched.push_back(*it);
    }
    SPB_RETURN_IF_ERROR(VerifyLeafBatch(
        sraf, A.leaf.matched.data(), A.leaf.matched.size(), q, A.phi_q,
        /*r=*/0.0, /*check_region=*/false, use_cutoff, A.rr_lo, A.rr_hi,
        &A.leaf, result, ra));
  }
  return Status::OK();
}

Status SpbTree::KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                         QueryStats* stats, KnnTraversal traversal) {
  StatScope scope(*this, stats);
  result->clear();
  // Pin the published version (same reader contract as RangeQuery).
  const Snapshot snap = AcquireSnapshot();
  if (snap.version().num_objects == 0 || k == 0) return Status::OK();
  QueryArena& A = ThreadArena();
  A.phi_q.resize(space_->dims());
  // Same distance-call count and values as Phi(), without the allocation.
  space_->pivots().MapBatch(&q, 1, counting_, A.phi_q.data());
  return KnnSearch(q, k, snap, A, result, traversal, nullptr);
}

Status SpbTree::KnnQueryMapped(const Blob& q, const std::vector<double>& phi_q,
                               size_t k, std::vector<Neighbor>* result,
                               QueryStats* stats, KnnTraversal traversal,
                               SharedKnnBound* shared) {
  StatScope scope(*this, stats);
  result->clear();
  if (phi_q.size() != space_->dims()) {
    return Status::InvalidArgument("KnnQueryMapped: phi dimensionality");
  }
  const Snapshot snap = AcquireSnapshot();
  if (snap.version().num_objects == 0 || k == 0) return Status::OK();
  QueryArena& A = ThreadArena();
  A.phi_q.assign(phi_q.begin(), phi_q.end());
  return KnnSearch(q, k, snap, A, result, traversal, shared);
}

Status SpbTree::KnnSearch(const Blob& q, size_t k, const Snapshot& snap,
                          QueryArena& A, std::vector<Neighbor>* result,
                          KnnTraversal traversal, SharedKnnBound* shared) {
  const std::shared_ptr<const LeafModel> model = LocatorForSnapshot(snap);

  // kAuto resolves here: the planner picks greedy vs best-first, per-query
  // cutoff and the readahead budget from the cost model (zero distance
  // calls); with the planner off it degrades to the kIncremental default.
  // Explicit traversals bypass planning entirely. Every routing choice
  // returns identical results; compdists match whichever static
  // configuration the plan resolves to.
  KnnPlan plan;
  const bool planned =
      traversal == KnnTraversal::kAuto && options_.enable_planner;
  if (traversal == KnnTraversal::kAuto) {
    if (planned) plan = PlanKnn(A.phi_q, k);
    traversal = plan.traversal;
  }
  const bool use_cutoff = options_.enable_cutoff && plan.use_cutoff;
  const size_t ra_budget =
      planned ? plan.readahead_budget : options_.max_readahead_pages;
  const uint64_t dist_before = planned ? counting_.count() : 0;
  const auto time_before = std::chrono::steady_clock::now();

  // Max-heap of current k best over the arena vector (std::push_heap /
  // pop_heap — the standard mandates the same element evolution as a
  // std::priority_queue): front is the current k-th NN distance.
  A.best.clear();
  auto best_cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  auto cur_ndk = [&]() {
    return A.best.size() < k ? std::numeric_limits<double>::infinity()
                             : A.best.front().distance;
  };
  // The pruning bound: the local NDk, tightened by the cross-shard bound
  // when this traversal is one shard of a scatter-gather kNN. Used for
  // every Lemma 3 decision (frontier cutoff, node pushes, leaf filters) but
  // NOT as the DistanceWithCutoff threshold — see SharedKnnBound.
  auto prune_ndk = [&]() {
    const double local = cur_ndk();
    if (shared == nullptr) return local;
    return std::min(local, shared->load());
  };
  auto offer = [&](ObjectId id, double d) {
    if (A.best.size() < k) {
      A.best.push_back(Neighbor{id, d});
      std::push_heap(A.best.begin(), A.best.end(), best_cmp);
    } else if (d < A.best.front().distance) {
      std::pop_heap(A.best.begin(), A.best.end(), best_cmp);
      A.best.back() = Neighbor{id, d};
      std::push_heap(A.best.begin(), A.best.end(), best_cmp);
    }
    // Publish only exact, heap-full k-th distances: every stored distance
    // is exact (the cutoff threshold is the local NDk), and a partial heap
    // bounds nothing.
    if (shared != nullptr && A.best.size() == k) {
      shared->Offer(A.best.front().distance);
    }
  };
  // With the cutoff enabled, the current k-th NN distance is the pruning
  // threshold: an object at distance >= NDk can never enter `best` (offer()
  // requires d < top), and DistanceWithCutoff returns a value > NDk exactly
  // when d > NDk — so offer() makes the same decision, and any distance that
  // does get stored is the exact one. While the heap is not yet full, NDk is
  // +inf and the computation runs to completion.
  // Snapshot-pinned RAF, same reasoning as RangeSearch.
  Raf* const sraf = snap.version().raf.get();
  Readahead ra = NewReadaheadSession(*sraf, ra_budget);
  auto verify_entry = [&](const LeafEntry& e) -> Status {
    ObjectId id;
    BlobRef obj;
    if (options_.enable_zero_copy) {
      SPB_RETURN_IF_ERROR(sraf->GetView(e.ptr, &id, &A.leaf.view, &ra));
      obj = A.leaf.view.ref();
    } else {
      SPB_RETURN_IF_ERROR(sraf->Get(e.ptr, &id, &A.leaf.obj, &ra));
      obj = A.leaf.obj;
    }
    const double d = use_cutoff
                         ? counting_.DistanceWithCutoff(q, obj, cur_ndk())
                         : counting_.Distance(q, obj);
    offer(id, d);
    return Status::OK();
  };

  auto heap_cmp = [](const QueryArena::KnnHeapItem& a,
                     const QueryArena::KnnHeapItem& b) {
    return a.mind > b.mind;
  };
  A.heap.clear();
  A.heap.push_back(
      QueryArena::KnnHeapItem{0.0, false, snap.version().root, {}});

  NodeHandle h;
  // Decodes one leaf's keys and computes all MIND(q, cell) bounds as one
  // SoA batch. The bounds don't depend on the evolving NDk, so hoisting
  // them out of the per-entry loop cannot change any pruning decision.
  auto batch_bounds = [&](const std::vector<LeafEntry>& entries) {
    A.leaf.keys.resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      A.leaf.keys[i] = entries[i].key;
    }
    space_->DecodeKeys(A.leaf.keys.data(), entries.size(), &A.leaf.block);
    space_->BatchLowerBoundToCell(A.leaf.block, A.phi_q, &A.leaf.mind);
  };
  while (!A.heap.empty()) {
    const QueryArena::KnnHeapItem item = A.heap.front();
    std::pop_heap(A.heap.begin(), A.heap.end(), heap_cmp);
    A.heap.pop_back();
    if (item.mind >= prune_ndk()) break;  // Lemma 3 early termination

    if (item.is_entry) {
      // Speculative prefetch of the next heap-front entry: it is the most
      // likely next verification, and scheduling is free if Lemma 3
      // terminates first (unclaimed pages never count logical PA).
      if (!A.heap.empty() && A.heap.front().is_entry) {
        const PageId next = Raf::PageOf(A.heap.front().entry.ptr);
        A.leaf.pages.assign({next, next + 1});
        ra.Schedule(A.leaf.pages);
      }
      SPB_RETURN_IF_ERROR(verify_entry(item.entry));
      continue;
    }
    // Same image-serving rule as RangeSearch: inner nodes of a snapshot
    // with a valid model never touch the buffer pool; a miss proves the
    // page is a leaf and the counted demand path runs.
    const DecodedNode* img =
        model != nullptr ? model->FindInternal(item.node) : nullptr;
    if (img != nullptr) {
      h.SetBorrowed(img);
      loc_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      SPB_RETURN_IF_ERROR(btree_->GetNode(item.node, &A.scratch_node, &h));
    }
    const BptNode& node = h->node;
    if (!node.is_leaf) {
      // Lemma 3 over the cached entry-major MBB corners: no per-entry curve
      // decode on the warm path.
      for (size_t i = 0; i < node.internal_entries.size(); ++i) {
        const double mind =
            space_->LowerBoundToBox(A.phi_q, h->lo(i), h->hi(i));
        if (mind < prune_ndk()) {
          A.heap.push_back(QueryArena::KnnHeapItem{
              mind, false, node.internal_entries[i].child, {}});
          std::push_heap(A.heap.begin(), A.heap.end(), heap_cmp);
        }
      }
      continue;
    }
    batch_bounds(node.leaf_entries);
    // All entries the traversal may verify from this leaf are known now
    // (mind below the current NDk); schedule their RAF pages as one sorted
    // batch. NDk only tightens afterwards, so this over-approximates —
    // harmless, unclaimed pages never count.
    A.leaf.pages.clear();
    for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
      if (A.leaf.mind[i] < prune_ndk()) {
        const PageId first = Raf::PageOf(node.leaf_entries[i].ptr);
        A.leaf.pages.push_back(first);
        A.leaf.pages.push_back(first + 1);
      }
    }
    ra.Schedule(A.leaf.pages);
    if (traversal == KnnTraversal::kGreedy) {
      // Greedy: evaluate the whole leaf now — no RAF page revisits later,
      // at the price of possibly unnecessary distance computations. The
      // NDk comparison stays inside the loop (it tightens as entries are
      // verified); only the bound computation was hoisted.
      for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
        if (A.leaf.mind[i] < prune_ndk()) {
          SPB_RETURN_IF_ERROR(verify_entry(node.leaf_entries[i]));
        }
      }
    } else {
      for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
        if (A.leaf.mind[i] < prune_ndk()) {
          A.heap.push_back(QueryArena::KnnHeapItem{
              A.leaf.mind[i], true, kInvalidPageId, node.leaf_entries[i]});
          std::push_heap(A.heap.begin(), A.heap.end(), heap_cmp);
        }
      }
    }
  }

  result->resize(A.best.size());
  for (size_t i = A.best.size(); i-- > 0;) {
    (*result)[i] = A.best.front();
    std::pop_heap(A.best.begin(), A.best.end(), best_cmp);
    A.best.pop_back();
  }
  if (planned) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - time_before)
                               .count();
    UpdateKnnPlannerFeedback(plan.predicted_verifications,
                             double(counting_.count() - dist_before),
                             traversal, elapsed);
  }
  return Status::OK();
}

CostEstimate SpbTree::EstimateRangeCost(const Blob& q, double r) const {
  const std::vector<double> phi_q = space_->Phi(q, counting_);
  // cost_mu_: the writer mutates the sample reservoir concurrently.
  std::lock_guard<std::mutex> lock(cost_mu_);
  return cost_model_.EstimateRange(*space_, phi_q, r);
}

CostEstimate SpbTree::EstimateKnnCost(const Blob& q, size_t k) const {
  const std::vector<double> phi_q = space_->Phi(q, counting_);
  std::lock_guard<std::mutex> lock(cost_mu_);
  return cost_model_.EstimateKnn(*space_, phi_q, k);
}

CostEstimate SpbTree::EstimateRangeCostMapped(
    const std::vector<double>& phi_q, double r) const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  return cost_model_.EstimateRange(*space_, phi_q, r);
}

CostEstimate SpbTree::EstimateKnnCostMapped(const std::vector<double>& phi_q,
                                            size_t k) const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  return cost_model_.EstimateKnn(*space_, phi_q, k);
}

// ---------------------------------------------------------------------------
// Learned leaf locator + cost-model query planner.
// ---------------------------------------------------------------------------

std::shared_ptr<const LeafModel> SpbTree::LocatorForSnapshot(
    const Snapshot& snap) const {
  if (!options_.enable_learned_locator) return nullptr;
  std::shared_ptr<const LeafModel> m;
  {
    std::lock_guard<InstrumentedMutex> lock(locator_mu_);
    m = locator_;
  }
  if (m == nullptr) {
    loc_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Validity is tagged, not checked: the model is only good for the exact
  // epoch it was built at. Any COW publish since then bumped the epoch, so
  // a stale model can never be consulted — this comparison IS the
  // correctness argument for concurrent writes.
  if (m->epoch() != snap.epoch()) {
    loc_stale_.fetch_add(1, std::memory_order_relaxed);
    loc_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return m;
}

void SpbTree::RebuildLocatorLocked() {
  std::shared_ptr<const LeafModel> m;
  if (options_.enable_learned_locator) {
    const Status s = LeafModel::Build(btree_.get(), btree_->version(),
                                      options_.locator_epsilon,
                                      snapshots_->current_epoch(), &m);
    if (!s.ok()) {
      m = nullptr;  // best-effort: every query falls back to classic descent
    } else {
      loc_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<InstrumentedMutex> lock(locator_mu_);
    locator_ = m;
  }
  locator_current_ = (m != nullptr);
  locator_stale_writes_ = 0;
}

void SpbTree::MaybeRefreshLocatorLocked() {
  if (!options_.enable_learned_locator || locator_current_) return;
  if (locator_stale_writes_ < kLocatorRefreshWrites) return;
  RebuildLocatorLocked();
}

void SpbTree::InvalidateLocator() {
  if (!options_.enable_learned_locator) return;
  locator_current_ = false;
  ++locator_stale_writes_;
}

LocatorStats SpbTree::locator_stats() const {
  LocatorStats s;
  std::shared_ptr<const LeafModel> m;
  {
    std::lock_guard<InstrumentedMutex> lock(locator_mu_);
    m = locator_;
  }
  if (m != nullptr) {
    s.model_present = true;
    s.pla_ok = m->pla_ok();
    s.epoch = m->epoch();
    s.leaves = m->num_leaves();
    s.internal_nodes = m->num_internal_nodes();
    s.segments = m->num_segments();
    s.epsilon = m->epsilon();
  } else {
    s.epsilon = options_.locator_epsilon;
  }
  s.hits = loc_hits_.load(std::memory_order_relaxed);
  s.fallbacks = loc_fallbacks_.load(std::memory_order_relaxed);
  s.stale = loc_stale_.load(std::memory_order_relaxed);
  s.seek_misses = loc_seek_misses_.load(std::memory_order_relaxed);
  s.rebuilds = loc_rebuilds_.load(std::memory_order_relaxed);
  return s;
}

PlannerStats SpbTree::planner_stats() const {
  PlannerStats s;
  s.planned_range = plan_range_.load(std::memory_order_relaxed);
  s.planned_knn = plan_knn_.load(std::memory_order_relaxed);
  s.routed_greedy = plan_greedy_.load(std::memory_order_relaxed);
  s.routed_incremental = plan_incremental_.load(std::memory_order_relaxed);
  s.cutoff_disabled = plan_cutoff_off_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    s.calibration = planner_ema_;
  }
  s.drift = std::abs(std::log(std::max(s.calibration, 1e-12)));
  return s;
}

namespace {

// Route to greedy when the predicted candidate set exceeds this fraction of
// the data: the regime (the paper's low-precision datasets, Table 5) where
// best-first's per-entry heap churn and repeated RAF page visits cost more
// than the extra verifications greedy spends.
constexpr double kGreedyCandidateFraction = 0.05;
// Disable the per-distance early-abandon check when nearly everything is
// predicted inside the radius anyway — the cutoff then never fires and is
// pure per-call overhead. Never changes results or compdists counts.
constexpr double kCutoffOffFraction = 0.75;

}  // namespace

SpbTree::KnnPlan SpbTree::PlanKnn(const std::vector<double>& phi_q,
                                  size_t k) const {
  KnnPlan plan;
  const uint64_t seq = plan_knn_.fetch_add(1, std::memory_order_relaxed);
  double radius, frac, ema, f;
  uint64_t total;
  double cost_inc, cost_grd;
  uint64_t obs_inc, obs_grd;
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    radius = cost_model_.EstimateKnnRadius(phi_q, k);
    frac = cost_model_.DistanceFractionLE(radius);
    ema = planner_ema_;
    total = cost_model_.total_objects();
    f = cost_model_.objects_per_page();
    cost_inc = arm_cost_[0];
    cost_grd = arm_cost_[1];
    obs_inc = arm_obs_[0];
    obs_grd = arm_obs_[1];
  }
  const double candidates =
      std::max(double(k), frac * double(total) * ema);
  plan.predicted_verifications = std::max(1.0, candidates);
  const double cand_frac = total > 0 ? candidates / double(total) : 0.0;
  // Routing, in preference order: measured per-arm runtime once both arms
  // have observations; an unobserved arm first (one forced probe each at
  // startup); the selectivity prior while completely cold. A fixed-cadence
  // probe of the losing arm keeps its EMA honest under workload drift.
  if (obs_inc > 0 && obs_grd > 0) {
    plan.traversal = cost_grd < cost_inc ? KnnTraversal::kGreedy
                                         : KnnTraversal::kIncremental;
    // Probe the losing arm less often the further behind it is: the probe
    // overhead is (gap-1)/cadence of total throughput, so a hopeless arm
    // is re-checked rarely and a closely-contested one often.
    const double lo = std::min(cost_inc, cost_grd);
    const double gap = lo > 0.0 ? std::max(cost_inc, cost_grd) / lo : 1.0;
    const uint64_t cadence = gap < 2.0   ? kPlannerExploreEvery
                             : gap < 8.0 ? kPlannerExploreEvery * 4
                                         : kPlannerExploreEvery * 16;
    if (seq % cadence == cadence - 1) {
      plan.traversal = plan.traversal == KnnTraversal::kGreedy
                           ? KnnTraversal::kIncremental
                           : KnnTraversal::kGreedy;
    }
  } else if (obs_inc > 0 || obs_grd > 0) {
    plan.traversal =
        obs_grd == 0 ? KnnTraversal::kGreedy : KnnTraversal::kIncremental;
  } else {
    plan.traversal = cand_frac > kGreedyCandidateFraction
                         ? KnnTraversal::kGreedy
                         : KnnTraversal::kIncremental;
  }
  if (plan.traversal == KnnTraversal::kGreedy) {
    plan_greedy_.fetch_add(1, std::memory_order_relaxed);
  } else {
    plan_incremental_.fetch_add(1, std::memory_order_relaxed);
  }
  plan.use_cutoff = frac <= kCutoffOffFraction;
  if (!plan.use_cutoff) {
    plan_cutoff_off_.fetch_add(1, std::memory_order_relaxed);
  }
  plan.readahead_budget =
      PlannedBudget(f > 0.0 ? candidates / f : candidates);
  return plan;
}

size_t SpbTree::PlannedBudget(double predicted_pages) const {
  // Only ever shrinks the configured budget (physical I/O shaping; logical
  // PA is untouched), with slack for record spill and estimate error.
  const size_t cap = std::max<size_t>(1, options_.max_readahead_pages);
  if (!(predicted_pages > 0.0)) return std::min<size_t>(8, cap);
  const double want = std::min(predicted_pages + 8.0, double(cap));
  return std::max<size_t>(std::min<size_t>(size_t(want), cap), 1);
}

void SpbTree::UpdateKnnPlannerFeedback(double predicted, double measured,
                                       KnnTraversal used,
                                       double elapsed_seconds) {
  if (predicted > 0.0 && elapsed_seconds > 0.0) {
    const size_t arm = used == KnnTraversal::kGreedy ? 1 : 0;
    const double unit = elapsed_seconds / predicted;
    std::lock_guard<std::mutex> lock(cost_mu_);
    arm_cost_[arm] = arm_obs_[arm] == 0
                         ? unit
                         : 0.8 * arm_cost_[arm] + 0.2 * unit;
    ++arm_obs_[arm];
  }
  UpdatePlannerFeedback(predicted, measured);
}

void SpbTree::UpdatePlannerFeedback(double predicted, double measured) {
  if (!(predicted > 0.0)) return;
  // Clamp so one pathological query cannot wreck the calibration. The
  // clamp is tunable (planner_feedback_clamp): on datasets where the
  // radius/selectivity estimate is off by more than the clamp on EVERY
  // query (synthetic-uniform kNN underestimates >= 64x), the default pins
  // each observation and the EMA saturates below the true ratio — warn
  // once so such runs are diagnosable, and let operators widen it.
  const double clamp =
      std::max(1.0, planner_clamp_.load(std::memory_order_relaxed));
  const double raw = measured / predicted;
  const double ratio = std::clamp(raw, 1.0 / clamp, clamp);
  if (ratio != raw &&
      !planner_clamp_warned_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[spb] planner feedback pinned at its %gx clamp "
                 "(measured/predicted = %.3g); calibration can no longer "
                 "follow this workload — consider raising "
                 "TuningOptions::planner_feedback_clamp\n",
                 clamp, raw);
  }
  std::lock_guard<std::mutex> lock(cost_mu_);
  planner_ema_ = 0.9 * planner_ema_ + 0.1 * ratio;
  // Nudge the pivot-set precision (Definition 1) the same direction, gently
  // and clamped: measured > predicted means the radius/selectivity estimate
  // ran hot, i.e. the mapped lower bounds are looser than the recorded
  // precision claims.
  const double p = cost_model_.precision();
  cost_model_.set_precision(
      std::clamp(p * std::pow(ratio, -0.05), 0.02, 1.0));
}

uint64_t SpbTree::storage_bytes() const {
  return btree_->file_bytes() + RafPtr()->file_bytes() +
         space_->pivots().Serialize().size();
}

void SpbTree::InitFetcher() {
  size_t threads = options_.prefetch_threads;
  if (threads == SIZE_MAX) {
    // Background threads only pay off when there is a core to run them on.
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? 2 : 0;
  }
  fetcher_ = std::make_unique<PageFetcher>(threads);
}

IoStats SpbTree::io_stats() const {
  IoStats s;
  s += btree_->stats();
  s += RafPtr()->stats();
  return s;
}

QueryStats SpbTree::cumulative_stats() const {
  QueryStats s;
  s.page_accesses =
      btree_->stats().page_accesses() + RafPtr()->stats().page_accesses();
  s.distance_computations = counting_.count() + extra_distance_computations_;
  return s;
}

void SpbTree::ResetCounters() {
  btree_->pool().stats().Reset();
  RafPtr()->ResetStats();
  counting_.Reset();
  extra_distance_computations_ = 0;
  // Locator/planner counters are counters; the calibration EMA is model
  // state and deliberately survives (same rule as the cost model itself).
  loc_hits_.store(0, std::memory_order_relaxed);
  loc_fallbacks_.store(0, std::memory_order_relaxed);
  loc_stale_.store(0, std::memory_order_relaxed);
  loc_seek_misses_.store(0, std::memory_order_relaxed);
  loc_rebuilds_.store(0, std::memory_order_relaxed);
  plan_range_.store(0, std::memory_order_relaxed);
  plan_knn_.store(0, std::memory_order_relaxed);
  plan_greedy_.store(0, std::memory_order_relaxed);
  plan_incremental_.store(0, std::memory_order_relaxed);
  plan_cutoff_off_.store(0, std::memory_order_relaxed);
}

void SpbTree::FlushCaches() {
  btree_->pool().Flush();
  btree_->node_cache().Clear();
  RafPtr()->FlushCache();
}

Status SpbTree::ApplyTuning(const TuningOptions& t) {
  if (t.num_shards != 1) {
    return Status::InvalidArgument(
        "num_shards is a construction-time parameter: a plain SPB-tree has "
        "exactly one shard (re-partitioning is a ShardedSpbTree rebuild)");
  }
  if (!(t.planner_feedback_clamp >= 1.0)) {
    return Status::InvalidArgument(
        "planner_feedback_clamp must be >= 1 (the ratio is clamped to "
        "[1/clamp, clamp])");
  }
  std::unique_lock<std::mutex> wlock(writer_mu_, std::try_to_lock);
  if (!wlock.owns_lock()) {
    return Status::Busy(
        "ApplyTuning raced a writer; retry when it drains");
  }
  options_.enable_lemma2 = t.enable_lemma2;
  options_.enable_compute_sfc = t.enable_compute_sfc;
  options_.enable_cutoff = t.enable_cutoff;
  options_.enable_prefetch = t.enable_prefetch;
  options_.enable_zero_copy = t.enable_zero_copy;
  options_.max_readahead_pages = t.max_readahead_pages;
  // Capacity changes rebuild sharded caches — the caller quiesces readers
  // for these (see the ApplyTuning contract). Skipped when unchanged so a
  // read-modify-write of the flags never drops a warm cache.
  if (t.node_cache_entries != options_.node_cache_entries) {
    options_.node_cache_entries = t.node_cache_entries;
    SPB_RETURN_IF_ERROR(btree_->SetNodeCacheEntries(t.node_cache_entries));
  }
  if (t.btree_cache_pages != options_.btree_cache_pages) {
    options_.btree_cache_pages = t.btree_cache_pages;
    btree_->pool().set_capacity(t.btree_cache_pages);
  }
  if (t.raf_cache_pages != options_.raf_cache_pages) {
    options_.raf_cache_pages = t.raf_cache_pages;
    SPB_RETURN_IF_ERROR(raf_->SetCachePages(t.raf_cache_pages));
  }
  // Write-path engine knobs: the group-commit leader and the compactor read
  // these through atomics / the queue's own lock, so they retune live.
  options_.wal_group_max = t.wal_group_max;
  options_.wal_fsync = t.wal_fsync;
  options_.compact_dead_bytes_threshold = t.compact_dead_bytes_threshold;
  wal_fsync_.store(t.wal_fsync, std::memory_order_relaxed);
  compact_threshold_.store(t.compact_dead_bytes_threshold,
                           std::memory_order_relaxed);
  if (write_queue_ != nullptr) {
    write_queue_->set_group_max(std::max<size_t>(1, t.wal_group_max));
  }
  // Locator/planner knobs. Toggling the locator on (or changing ε) builds
  // the model here, under the writer lock; toggling it off drops it. Both
  // are flag-safe under concurrent queries — readers copy the shared_ptr
  // per query and validate by epoch.
  const bool locator_was = options_.enable_learned_locator;
  const size_t epsilon_was = options_.locator_epsilon;
  options_.enable_learned_locator = t.enable_learned_locator;
  options_.locator_epsilon = t.locator_epsilon;
  options_.enable_planner = t.enable_planner;
  if (t.planner_feedback_clamp != options_.planner_feedback_clamp) {
    options_.planner_feedback_clamp = t.planner_feedback_clamp;
    planner_clamp_.store(t.planner_feedback_clamp,
                         std::memory_order_relaxed);
    // A widened clamp gives the EMA new headroom — re-arm the pinned
    // warning so it fires again if the new bound saturates too.
    planner_clamp_warned_.store(false, std::memory_order_relaxed);
  }
  if (t.enable_learned_locator != locator_was ||
      (t.enable_learned_locator && t.locator_epsilon != epsilon_was)) {
    RebuildLocatorLocked();
  }
  return Status::OK();
}

TuningOptions SpbTree::tuning() const {
  TuningOptions t;
  t.enable_lemma2 = options_.enable_lemma2;
  t.enable_compute_sfc = options_.enable_compute_sfc;
  t.enable_cutoff = options_.enable_cutoff;
  t.enable_prefetch = options_.enable_prefetch;
  t.enable_zero_copy = options_.enable_zero_copy;
  t.node_cache_entries = options_.node_cache_entries;
  t.btree_cache_pages = options_.btree_cache_pages;
  t.raf_cache_pages = options_.raf_cache_pages;
  t.max_readahead_pages = options_.max_readahead_pages;
  t.wal_group_max = options_.wal_group_max;
  t.wal_fsync = wal_fsync_.load(std::memory_order_relaxed);
  t.compact_dead_bytes_threshold =
      compact_threshold_.load(std::memory_order_relaxed);
  t.enable_learned_locator = options_.enable_learned_locator;
  t.locator_epsilon = options_.locator_epsilon;
  t.enable_planner = options_.enable_planner;
  t.planner_feedback_clamp = planner_clamp_.load(std::memory_order_relaxed);
  return t;
}

// ---------------------------------------------------------------------------
// Write-path engine: group-commit WAL, writer queueing, recovery, compaction.
// ---------------------------------------------------------------------------

SpbTree::~SpbTree() {
  // Stop the queue's compactor thread before members tear down: its hooks
  // touch btree_/raf_/snapshots_.
  if (write_queue_ != nullptr) write_queue_->Stop();
}

Status SpbTree::InitEngine() {
  wal_fsync_.store(options_.wal_fsync, std::memory_order_relaxed);
  compact_threshold_.store(options_.compact_dead_bytes_threshold,
                           std::memory_order_relaxed);
  planner_clamp_.store(options_.planner_feedback_clamp,
                       std::memory_order_relaxed);
  if (options_.enable_wal) {
    if (options_.storage_dir.empty()) {
      return Status::InvalidArgument(
          "enable_wal requires a disk-backed index (storage_dir)");
    }
    SPB_RETURN_IF_ERROR(Wal::Open(options_.storage_dir + "/wal.spb", &wal_));
    SPB_RETURN_IF_ERROR(ReplayWal());
  }
  // The queue exists for group commit AND for the background compactor (it
  // owns the worker thread); a compactor-only tree still routes its writes
  // through it, which only upgrades kBusy into queueing.
  if (options_.enable_group_commit ||
      options_.compact_dead_bytes_threshold > 0) {
    write_queue_ = std::make_unique<WriteQueue>(
        [this](std::vector<WriteQueue::Request*>& group) {
          CommitGroup(group);
        },
        std::max<size_t>(1, options_.wal_group_max));
    if (options_.compact_dead_bytes_threshold > 0) {
      write_queue_->StartCompactor([this] { return NeedsCompaction(); },
                                   [this] { Compact(); });
    }
  }
  return Status::OK();
}

void SpbTree::CommitGroup(std::vector<WriteQueue::Request*>& group) {
  // Blocking lock — the leader queues behind a checkpoint/compaction rather
  // than failing, and holding it across append+fsync+apply+publish is what
  // guarantees a concurrent Save can never truncate WAL records that are
  // appended but not yet applied.
  std::lock_guard<std::mutex> wlock(writer_mu_);
  if (wal_ != nullptr) {
    std::vector<Wal::Record> recs(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      recs[i].type = group[i]->kind == WriteQueue::OpKind::kInsert
                         ? Wal::RecordType::kInsert
                         : Wal::RecordType::kDelete;
      recs[i].id = group[i]->id;
      recs[i].payload = group[i]->obj;
    }
    // ONE segment write + ONE fsync for the whole group.
    const Status ws = wal_->AppendGroup(
        recs.data(), recs.size(), wal_fsync_.load(std::memory_order_relaxed));
    if (!ws.ok()) {
      for (WriteQueue::Request* r : group) r->status = ws;
      return;
    }
  }
  std::vector<PageId> superseded;
  for (WriteQueue::Request* r : group) {
    if (r->kind == WriteQueue::OpKind::kInsert) {
      r->status = InsertOneMappedLocked(r->obj, r->id, r->phi.data(), r->key,
                                        &superseded);
    } else {
      r->status =
          DeleteOneMappedLocked(r->obj, r->id, r->key, &r->found, &superseded);
    }
  }
  // ONE snapshot epoch for the whole group.
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
}

Status SpbTree::ReplayWal() {
  std::vector<Wal::Record> records;
  SPB_RETURN_IF_ERROR(wal_->ReadAll(&records));
  if (records.empty()) return Status::OK();
  // Records below the checkpoint LSN are already captured by the tree files
  // (the checkpoint truncates, so normally none exist — a crash between the
  // meta write and the truncate leaves some, and replaying them is a no-op
  // thanks to upsert/missing-delete idempotence; skipping the provably
  // captured ones just saves the work).
  const uint64_t checkpoint_lsn = wal_->stats().checkpoint_lsn;
  std::lock_guard<std::mutex> wlock(writer_mu_);
  std::vector<PageId> superseded;
  for (const Wal::Record& rec : records) {
    if (rec.lsn < checkpoint_lsn) continue;
    if (rec.type == Wal::RecordType::kInsert) {
      const std::vector<double> phi = space_->Phi(rec.payload, counting_);
      SPB_RETURN_IF_ERROR(InsertOneMappedLocked(
          rec.payload, rec.id, phi.data(), space_->KeyFor(phi), &superseded));
    } else {
      bool found = false;
      SPB_RETURN_IF_ERROR(DeleteOneMappedLocked(
          rec.payload, rec.id,
          space_->KeyFor(space_->Phi(rec.payload, counting_)), &found,
          &superseded));
    }
  }
  PublishCurrent(std::move(superseded));
  MaybeRefreshLocatorLocked();
  return Status::OK();
}

Status SpbTree::RebuildBtreeFromRaf() {
  // The B+-tree references offsets of a RAF file that no longer exists (a
  // crash split a compaction's rename from its checkpoint). Every record in
  // the surviving file is authoritative; keep the LAST occurrence per id (a
  // post-swap re-insert supersedes earlier records) and bulk-load a fresh
  // tree over them. Raw reads: recovery I/O never enters the accounting.
  struct Rec {
    uint64_t key;
    uint64_t ptr;
    ObjectId id;
    uint32_t len;
  };
  std::vector<Rec> recs;
  std::unordered_map<ObjectId, size_t> by_id;
  Raf::RawReadCache cache;
  uint64_t dead = 0;
  const uint64_t end = raf_->end_offset();
  uint64_t off = kPageSize;
  ObjectId id;
  Blob obj;
  while (off < end) {
    SPB_RETURN_IF_ERROR(raf_->GetRaw(off, &id, &obj, &cache));
    const uint64_t key = space_->KeyFor(space_->Phi(obj, counting_));
    const auto [it, inserted] = by_id.try_emplace(id, recs.size());
    if (inserted) {
      recs.push_back(Rec{key, off, id, uint32_t(obj.size())});
    } else {
      Rec& old = recs[it->second];
      dead += 8 + old.len;
      old = Rec{key, off, id, uint32_t(obj.size())};
    }
    off += 8 + obj.size();
  }
  // (key, ptr) order reproduces the compacted file's leaf order exactly.
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    return a.key < b.key || (a.key == b.key && a.ptr < b.ptr);
  });
  std::vector<LeafEntry> entries;
  entries.reserve(recs.size());
  for (const Rec& rc : recs) entries.push_back(LeafEntry{rc.key, rc.ptr});

  btree_.reset();
  std::unique_ptr<PageFile> bf;
  SPB_RETURN_IF_ERROR(
      PageFile::CreateOnDisk(options_.storage_dir + "/btree.spb", &bf));
  SPB_RETURN_IF_ERROR(BPlusTree::Create(
      std::move(bf), options_.btree_cache_pages, &space_->curve(), &btree_));
  SPB_RETURN_IF_ERROR(
      btree_->SetNodeCacheEntries(options_.node_cache_entries));
  SPB_RETURN_IF_ERROR(btree_->BulkLoad(entries));
  SPB_RETURN_IF_ERROR(btree_->Sync());
  raf_->AddDeadBytes(dead);
  num_objects_.store(recs.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status SpbTree::Compact() {
  // Blocking lock: compaction queues behind in-flight commit groups.
  std::lock_guard<std::mutex> wlock(writer_mu_);
  return CompactLocked();
}

Status SpbTree::CompactLocked() {
  const TreeVersion tv = btree_->version();
  // Live entries of the current version, ascending key order (raw reads —
  // the walk stays out of the accounting).
  std::vector<LeafEntry> entries;
  SPB_RETURN_IF_ERROR(btree_->CollectLeafEntriesRaw(tv, &entries));

  const bool on_disk = !options_.storage_dir.empty();
  const std::string tmp_path = options_.storage_dir + "/raf.compact.spb";
  std::unique_ptr<PageFile> file;
  if (on_disk) {
    SPB_RETURN_IF_ERROR(PageFile::CreateOnDisk(tmp_path, &file));
  } else {
    file = PageFile::CreateInMemory();
  }
  std::unique_ptr<Raf> fresh;
  SPB_RETURN_IF_ERROR(Raf::Create(std::move(file), options_.raf_cache_pages,
                                  &fresh, raf_->generation() + 1));
  // Copy the live records in SFC order: the new file is dense and restored
  // to bulk-load locality, and every orphaned record is left behind.
  Raf::RawReadCache cache;
  ObjectId id;
  Blob obj;
  std::vector<LeafEntry> new_entries;
  new_entries.reserve(entries.size());
  for (const LeafEntry& e : entries) {
    SPB_RETURN_IF_ERROR(raf_->GetRaw(e.ptr, &id, &obj, &cache));
    uint64_t offset;
    SPB_RETURN_IF_ERROR(fresh->Append(id, obj, &offset));
    new_entries.push_back(LeafEntry{e.key, offset});
  }
  SPB_RETURN_IF_ERROR(fresh->Sync());
  // Cumulative counters carry across the swap (compaction is invisible to
  // PA accounting — its own writes are overwritten here); dead debt resets.
  fresh->CarryStatsFrom(*raf_);

  // The whole outgoing tree version is superseded, exactly like a COW
  // write's page set: retired once the last pinning snapshot drains.
  std::vector<PageId> old_pages;
  SPB_RETURN_IF_ERROR(btree_->CollectVersionPages(tv, &old_pages));
  TreeVersion new_tv;
  SPB_RETURN_IF_ERROR(btree_->BulkLoadCow(new_entries, &new_tv));

  MaybeCrash("compact_before_rename");
  if (on_disk) {
    // Atomic swap on disk. The old Raf's fd survives the rename-over
    // (POSIX), so snapshots pinned to pre-swap versions keep reading the
    // unlinked inode until they drain.
    std::error_code ec;
    std::filesystem::rename(tmp_path, options_.storage_dir + "/raf.spb", ec);
    if (ec) {
      return Status::IOError("compaction rename failed: " + ec.message());
    }
  }
  MaybeCrash("compact_after_rename");
  {
    std::lock_guard<std::mutex> lock(raf_mu_);
    raf_ = std::shared_ptr<Raf>(std::move(fresh));
  }
  btree_->AdoptVersion(new_tv);
  PublishCurrent(std::move(old_pages));
  // The whole tree was rebuilt: model the fresh version immediately (the
  // compaction swap is exactly the "refresh per snapshot epoch" moment).
  RebuildLocatorLocked();
  // Checkpoint immediately: the meta must record the new generation (a
  // crash before this line is the rebuild-on-open case the kill-point tests
  // exercise).
  if (on_disk) SPB_RETURN_IF_ERROR(SaveLocked());
  return Status::OK();
}

bool SpbTree::NeedsCompaction() const {
  const uint64_t threshold =
      compact_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  return RafPtr()->dead_bytes() >= threshold;
}

Wal::Stats SpbTree::wal_stats() const {
  return wal_ != nullptr ? wal_->stats() : Wal::Stats{};
}

WriteQueue::Stats SpbTree::write_queue_stats() const {
  return write_queue_ != nullptr ? write_queue_->stats()
                                 : WriteQueue::Stats{};
}

StatsSnapshot SpbTree::CollectStats() const {
  StatsSnapshot s;
  s.name = name();
  s.num_objects = size();
  s.storage_bytes = storage_bytes();
  const QueryStats q = cumulative_stats();
  s.page_accesses = q.page_accesses;
  s.distance_computations = q.distance_computations;
  s.SetIoStats(io_stats());
  const Wal::Stats w = wal_stats();
  s.wal_segment_bytes = w.segment_bytes;
  s.wal_checkpoint_lsn = w.checkpoint_lsn;
  s.wal_next_lsn = w.next_lsn;
  s.wal_pending_records = w.pending_records;
  s.wal_groups = w.groups;
  s.wal_fsyncs = w.fsyncs;
  s.wal_replayed_records = w.replayed_records;
  const WriteQueue::Stats wq = write_queue_stats();
  s.wq_ops = wq.ops;
  s.wq_groups = wq.groups;
  s.wq_max_group = wq.max_group;
  s.wq_compactions = wq.compactions;
  const LocatorStats ls = locator_stats();
  s.locator_model_present = ls.model_present;
  s.locator_pla_ok = ls.pla_ok;
  s.locator_epoch = ls.epoch;
  s.locator_leaves = ls.leaves;
  s.locator_internal_nodes = ls.internal_nodes;
  s.locator_segments = ls.segments;
  s.locator_epsilon = ls.epsilon;
  s.locator_hits = ls.hits;
  s.locator_fallbacks = ls.fallbacks;
  s.locator_stale = ls.stale;
  s.locator_seek_misses = ls.seek_misses;
  s.locator_rebuilds = ls.rebuilds;
  const PlannerStats ps = planner_stats();
  s.planner_planned_range = ps.planned_range;
  s.planner_planned_knn = ps.planned_knn;
  s.planner_routed_greedy = ps.routed_greedy;
  s.planner_routed_incremental = ps.routed_incremental;
  s.planner_cutoff_disabled = ps.cutoff_disabled;
  s.planner_calibration = ps.calibration;
  s.planner_drift = ps.drift;
  return s;
}

size_t SpbTree::writer_concurrency() const {
  // With the commit queue, any number of writers make progress (they
  // group-commit instead of failing with kBusy); report a width that tells
  // QueryExecutor not to serialize them behind its own mutex.
  return write_queue_ != nullptr ? 64 : 1;
}

Status SpbTree::CheckIntegrity() {
  SPB_RETURN_IF_ERROR(btree_->CheckInvariants());
  // Every leaf entry's key must equal the recomputed key of its RAF object.
  // Chain-free cursor scan: valid on COW'd trees, identical coverage on
  // never-updated ones.
  BPlusTree::LeafCursor cur(btree_.get(), btree_->version());
  SPB_RETURN_IF_ERROR(cur.SeekFirst());
  uint64_t count = 0;
  ObjectId id;
  Blob obj;
  while (cur.valid()) {
    const LeafEntry e = cur.entry();
    SPB_RETURN_IF_ERROR(raf_->Get(e.ptr, &id, &obj));
    const uint64_t key = space_->KeyFor(space_->Phi(obj, counting_));
    if (key != e.key) {
      return Status::Corruption("leaf key does not match object mapping");
    }
    ++count;
    SPB_RETURN_IF_ERROR(cur.Next());
  }
  if (count != num_objects_.load(std::memory_order_relaxed)) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

}  // namespace spb
