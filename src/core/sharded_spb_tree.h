#ifndef SPB_CORE_SHARDED_SPB_TREE_H_
#define SPB_CORE_SHARDED_SPB_TREE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/contention.h"
#include "core/spb_tree.h"

namespace spb {

/// SFC-range-partitioned SPB-tree: the Hilbert key space is split into
/// S = options.num_shards (a power of two) contiguous key ranges and each
/// range is served by one fully independent SpbTree — its own B+-tree, RAF,
/// buffer pools, node cache and snapshot manager. Every shard shares the
/// router's pivot table, delta and curve, so phi/key computed once at the
/// router are valid in every shard.
///
/// Range boundaries are chosen at the bulk-load key quantiles, not as an
/// equal-width split of the raw 64-bit key space: the discretizer sizes the
/// cell grid for the metric's maximum distance d+, while observed pivot
/// distances occupy a narrow band of it, so real datasets map into a thin
/// slice of the key space and an equal-width prefix split would leave every
/// object in shard 0. Quantile boundaries are persisted in the manifest and
/// fixed for the index's lifetime (later inserts may skew shard sizes —
/// re-balancing is a rebuild, like any range-partitioned store).
///
/// What sharding buys:
///  - *Writers only contend within a shard.* Each shard keeps the SPB-tree's
///    single-writer try-lock, but two writers landing on different shards
///    never see Status::Busy from each other (kBusy becomes per-shard).
///    writer_concurrency() reports S so QueryExecutor dispatches writes
///    concurrently with retry-on-Busy instead of serializing them.
///  - *Shallower trees.* Each shard holds ~N/S objects, so its COW insert
///    path copies a shorter root-to-leaf spine and its queries touch a
///    shallower B+-tree.
///  - *Parallel bulk load.* Build maps the dataset once, partitions it by
///    routed key, and bulk-loads the S shards on one thread each.
///
/// Queries scatter-gather. Each shard's mapped extent is tracked as a
/// cell-space MBB (grown on insert, never shrunk on delete — conservative
/// by construction), so the router prunes whole shards before dispatch:
/// a range query only visits shards whose box intersects the range region
/// RR(q, r); a kNN query visits shards in ascending MIND(q, box) order
/// under the deterministic seeding cascade described at KnnQuery.
///
/// Surviving subqueries dispatch in parallel (PR 8) when the caller is a
/// TaskArena worker — i.e. the query runs inside a QueryExecutor batch —
/// and parallel_scatter() is on: per-shard subqueries become one nested
/// task group on the same pool (help-first, so a pool of any size stays
/// deadlock-free), with per-shard result slots concatenated in shard-rank
/// order. By construction the parallel path is *byte-identical* to the
/// serial one — same results, same logical PA, same compdists — because no
/// cross-shard state flows between subqueries at run time: range scatter
/// shares nothing, and kNN fan-out seeds every wave shard with the same
/// fixed bound (see KnnQuery). The ctest identity sweep and the bench A/B
/// gate both assert this equivalence per query.
///
/// S == 1 is pure delegation: every operation forwards to the single
/// backing SpbTree's public entry points, so results, logical PA, compdists
/// and cache behaviour are byte-identical to an unsharded tree built with
/// the same options (asserted by tests/sharded_test.cc and the bench's
/// identity gate).
///
/// Thread safety matches SpbTree, per shard: any number of concurrent
/// queries, at most one writer *per shard* (a second writer on the same
/// shard gets Status::Busy). Router-level mutable state is limited to the
/// per-shard boxes (seqlock: lock-free readers, mutex-serialized writers)
/// and the counting metric (striped counters).
/// Save/FlushCaches/ResetCounters/ApplyTuning remain quiesced-only, as on
/// SpbTree.
class ShardedSpbTree : public MetricIndex {
 public:
  /// Bulk-builds S shards from `objects` (ids are positions, as in
  /// SpbTree::Build). Pivots are selected once over the whole dataset, the
  /// dataset is mapped once, the key range is cut at the S-quantiles of the
  /// mapped keys, and each shard is bulk-loaded on its own thread from its
  /// partition. options.num_shards must be a power of two. Shards may end
  /// up empty (duplicate quantile keys, tiny datasets); empty shards are
  /// never dispatched to.
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const SpbTreeOptions& options,
                      std::unique_ptr<ShardedSpbTree>* out);

  /// Reopens a sharded index persisted with Save(): reads the manifest
  /// (shards.spb), opens every shard, rebuilds the router's mapping from
  /// shard 0's restored pivots/delta/curve and recomputes the per-shard
  /// boxes from the leaf keys. `options` supplies cache sizes, exactly as
  /// SpbTree::Open.
  static Status Open(const std::string& storage_dir,
                     const DistanceFunction* metric,
                     const SpbTreeOptions& options,
                     std::unique_ptr<ShardedSpbTree>* out);

  /// True when `storage_dir` holds a sharded index (a shards.spb manifest).
  /// The CLI uses this to auto-pick Open vs SpbTree::Open.
  static bool IsShardedDir(const std::string& storage_dir);

  /// Persists every shard plus the manifest. Disk-backed indexes only.
  /// With WALs on this checkpoints every shard (log truncation included).
  Status Save();

  /// Compacts every shard's RAF (see SpbTree::Compact). Shards compact in
  /// order; queries keep running against their pinned snapshots throughout.
  Status Compact();

  /// Sum of every shard's WAL counters (checkpoint_lsn/next_lsn summed too:
  /// meaningful as totals, not as a single log's position). Deprecated:
  /// read the wal_* fields of CollectStats() (per-shard drill-down in
  /// CollectStats().shards).
  Wal::Stats wal_stats() const;
  /// Sum of every shard's commit-queue counters (max_group is the max).
  /// Deprecated: read the wq_* fields of CollectStats().
  WriteQueue::Stats write_queue_stats() const;

  /// The one stats surface (PR 10): the aggregate over every shard under
  /// the same summation rules the per-subsystem accessors used (sums;
  /// wq_max_group the max; locator flags AND-ed, epoch the max, epsilon
  /// shard 0's; planner calibration the mean of the per-shard EMAs), plus
  /// the router's own mapping distance computations. `shards` holds one
  /// full per-shard snapshot — the drill-down `spb_cli stats` prints.
  StatsSnapshot CollectStats() const override;

  /// Routed single insert: phi/key are computed once at the router, the
  /// owning shard is the top log2(S) key bits, and the shard's pre-mapped
  /// batch path runs with the usual COW + publish semantics.
  /// Status::Busy only when a writer is active on the *same* shard.
  Status Insert(const Blob& obj, ObjectId id) override;

  /// Routed batch insert: the batch is mapped once, partitioned by shard,
  /// and applied as one pre-mapped sub-batch per shard (one snapshot
  /// publication per touched shard). Shards are applied in shard order; on
  /// Status::Busy the remaining shards are left unapplied and the already
  /// published sub-batches stay — callers that need all-or-nothing retry
  /// the whole batch (inserting an existing id is idempotent at the B+-tree
  /// level only if the caller dedupes, so prefer retrying on quiesced
  /// shards).
  Status BatchInsert(const std::vector<Blob>& objs,
                     const std::vector<ObjectId>& ids) override;

  /// Routed delete (lazy, as SpbTree::Delete; the shard's RAF dead-bytes
  /// counter absorbs the orphaned record). The shard box is *not* shrunk.
  Status Delete(const Blob& obj, ObjectId id, bool* found) override;

  /// Scatter-gather RQ(q, O, r): q is mapped once, shards whose box misses
  /// RR(q, r) are pruned at the router, the rest run the standard RQA
  /// traversal against their own snapshot. Result order is unspecified
  /// (per-shard results are concatenated).
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats = nullptr) override;

  /// Scatter-gather kNN(q, k) under the deterministic MIND-order seeding
  /// cascade (docs/ARCHITECTURE.md §"Sharding"): shards are ranked by
  /// (MIND(q, shard box), shard index) and visited sequentially — each with
  /// its own k-th-NN bound — until one publishes a finite exact k-th
  /// distance (rank 0 alone, whenever it holds >= k objects). That value
  /// becomes the *fixed seed* for every remaining shard: shards whose box
  /// lower bound reaches the seed are skipped outright, the rest each run
  /// with a fresh bound seeded to exactly that value — concurrently when
  /// parallel scatter is active, in rank order otherwise. Because every
  /// post-seed subquery depends only on (snapshot, q, k, seed) — never on a
  /// sibling's progress — results, logical PA and compdists are identical
  /// whichever way the wave executes. Results merged by (distance, id),
  /// truncated to k.
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats, KnnTraversal traversal);
  /// Default traversal is kAuto: each dispatched shard resolves it against
  /// its own cost model (planner on) or to the kIncremental default
  /// (planner off) — so per-shard routing decisions can differ within one
  /// scatter, which is exactly right: the seeding shard sees k against its
  /// own density, wave shards see the fixed seed.
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats = nullptr) override {
    return KnnQuery(q, k, result, stats, KnnTraversal::kAuto);
  }

  /// Aggregated learned-locator counters: sums over shards; model_present /
  /// pla_ok hold iff they hold on every shard, epoch is the max, epsilon is
  /// shard 0's (ApplyTuning fans one value out to all shards).
  LocatorStats locator_stats() const;
  /// Aggregated planner counters: decision counts summed, calibration is
  /// the mean of the per-shard EMAs, drift = |log(mean)|.
  PlannerStats planner_stats() const;

  /// Structural self-check: every shard's CheckIntegrity plus the routing
  /// invariant (every leaf key routes to the shard holding it).
  Status CheckIntegrity();

  size_t num_shards() const { return shards_.size(); }

  /// Toggles parallel cross-shard fan-out (default on). Even when on,
  /// queries fan out only when issued from inside a TaskArena worker (a
  /// QueryExecutor batch); top-level callers always run the serial scatter.
  /// The off position is the A/B lever the identity gates and the
  /// contention bench use. May be flipped at any time (queries in flight
  /// finish under the policy they started with).
  void set_parallel_scatter(bool on) {
    parallel_scatter_.store(on, std::memory_order_relaxed);
  }
  bool parallel_scatter() const {
    return parallel_scatter_.load(std::memory_order_relaxed);
  }
  /// Direct access to one shard (tests, stats drill-down). The shard is
  /// still owned by the router; treat it as read-only unless you know no
  /// router-level invariant (boxes) depends on your write.
  SpbTree& shard(size_t s) { return *shards_[s]; }
  const SpbTree& shard(size_t s) const { return *shards_[s]; }

  /// Live objects across all shards.
  uint64_t size() const;
  /// The router's mapping (shared by every shard).
  const MappedSpace& space() const { return *space_; }

  /// Shard index owning an SFC key: the number of range boundaries at or
  /// below it (boundaries_[s] is the smallest key shard s+1 owns).
  size_t RouteKey(uint64_t key) const {
    return static_cast<size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), key) -
        boundaries_.begin());
  }

  // MetricIndex surface -----------------------------------------------------
  uint64_t storage_bytes() const override;
  /// Sum over shards, plus the router's own mapping/pivot-selection
  /// distance computations (so construction and update accounting matches
  /// the unsharded tree's).
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;
  /// Aggregate of every shard's I/O counters (including per-shard
  /// dead_bytes; use shard(s).raf().dead_bytes() for the drill-down).
  IoStats io_stats() const override;
  void FlushCaches() override;
  /// Writers contend per shard; with the commit queues on, each shard
  /// additionally absorbs concurrent writers by grouping, so the width is
  /// the sum of the shards' own widths.
  size_t writer_concurrency() const override {
    size_t n = 0;
    for (const auto& s : shards_) n += s->writer_concurrency();
    return n;
  }
  std::string name() const override;

  /// Fans the tunable group out to every shard. t.num_shards must equal
  /// num_shards() — re-partitioning is a rebuild, not a tune — otherwise
  /// InvalidArgument. Busy if any shard has a writer in flight (shards
  /// already tuned stay tuned; retry when writers drain).
  Status ApplyTuning(const TuningOptions& t);
  /// Shard 0's tuning group with num_shards set to num_shards().
  TuningOptions tuning() const;

 private:
  // Conservative cell-space bounding box of one shard's mapped objects.
  // Grown by the insert path *before* the shard publishes, so a concurrent
  // scatter never misses a just-inserted object; never shrunk (deletes
  // leave it over-covering, which only costs a wasted dispatch).
  //
  // Readers go through a seqlock (PR 8) — every query loads every shard's
  // box, making this the hottest router structure, and the old per-box
  // mutex serialized all of them. Writers (rare: inserts and recompute)
  // still serialize on `mu`, bump `seq` odd, mutate, bump it back even;
  // readers snapshot the cells and retry if `seq` moved. The cells are
  // relaxed atomics so the deliberate read/write overlap is a data race to
  // the seqlock protocol, not to the memory model (TSan-clean).
  struct ShardBox {
    /// Writer serialization only; instrumented so the contention surface
    /// shows up in bench JSON. Readers never touch it.
    InstrumentedMutex mu{"shard.box"};
    /// 0 = never written, odd = write in flight, even >= 2 = stable.
    std::atomic<uint32_t> seq{0};
    /// Whether the shard currently holds >= 1 object. Versioned by `seq`
    /// like the cells.
    std::atomic<bool> valid{false};
    /// Set once under mu before the first seq publish; readers see it only
    /// after an acquire load of a nonzero seq.
    size_t dims = 0;
    std::unique_ptr<std::atomic<uint32_t>[]> lo, hi;
  };

  ShardedSpbTree() = default;

  static Status BuildShards(const std::vector<Blob>& objects,
                            const DistanceFunction* metric,
                            const SpbTreeOptions& options, PivotTable pivots,
                            ShardedSpbTree* t);

  // Per-shard options: storage under <dir>/shard_<s>, num_shards reset to 1.
  static SpbTreeOptions ShardOptions(const SpbTreeOptions& options, size_t s);

  // Rebuilds every shard box from its leaf keys (post-build / post-open).
  Status RecomputeBoxes();
  // Extends shard s's box to cover `cells`.
  void GrowBox(size_t s, const std::vector<uint32_t>& cells);
  // Snapshot of shard s's box; false when the shard is empty.
  bool LoadBox(size_t s, std::vector<uint32_t>* lo,
               std::vector<uint32_t>* hi) const;

  Status WriteManifest() const;

  std::string storage_dir_;
  const DistanceFunction* base_metric_ = nullptr;
  // Counts the router's own distance calls: pivot mapping for routing and
  // scatter (S > 1 only; with S == 1 every call delegates and counts inside
  // the shard).
  std::unique_ptr<CountingDistance> counting_;
  // Pivot-selection cost (Build) — folded into cumulative_stats, like
  // SpbTree::extra_distance_computations_.
  uint64_t extra_distance_computations_ = 0;
  std::unique_ptr<MappedSpace> space_;
  std::vector<std::unique_ptr<SpbTree>> shards_;
  std::vector<std::unique_ptr<ShardBox>> boxes_;
  // S-1 ascending range boundaries: boundaries_[s] is the smallest key
  // owned by shard s+1 (shard 0 starts at key 0). Fixed at build time,
  // persisted in the manifest.
  std::vector<uint64_t> boundaries_;
  // See set_parallel_scatter().
  std::atomic<bool> parallel_scatter_{true};
};

}  // namespace spb

#endif  // SPB_CORE_SHARDED_SPB_TREE_H_
