#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace spb {

CostModel::CostModel(
    std::vector<std::vector<double>> sample, uint64_t total_objects,
    double objects_per_page, uint64_t num_leaf_pages,
    std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
        node_boxes)
    : sample_(std::move(sample)),
      total_objects_(total_objects),
      objects_per_page_(std::max(objects_per_page, 1e-9)),
      num_leaf_pages_(num_leaf_pages),
      node_boxes_(std::move(node_boxes)) {}

double CostModel::RegionProbability(const std::vector<double>& phi_q,
                                    double r) const {
  if (sample_.empty()) return 0.0;
  size_t inside = 0;
  for (const auto& phi : sample_) {
    bool in = true;
    for (size_t i = 0; i < phi.size() && in; ++i) {
      in = phi[i] >= phi_q[i] - r && phi[i] <= phi_q[i] + r;
    }
    if (in) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(sample_.size());
}

double CostModel::EstimateKnnRadius(const std::vector<double>& phi_q,
                                    uint64_t k) const {
  if (total_objects_ == 0) return 0.0;
  // Query objects follow the paper's protocol (members of the dataset), so
  // F_q has an atom at 0 from the self-match: |O| * F_q(0) = 1 and Eq. 5
  // gives eND_1 = 0. The sampled pair distribution lacks self-pairs, so the
  // effective rank is k - 1.
  const double frac =
      std::min(1.0, static_cast<double>(k - 1) /
                        static_cast<double>(total_objects_));

  if (!pair_distances_.empty()) {
    // Eq. 5 with F_q approximated by the overall distance distribution
    // (Eq. 1, homogeneity assumption): eND_k = G^{-1}(k / |O|). Quantiles
    // below the sample resolution are extrapolated with the standard
    // F(r) ~ r^(2 rho) small-radius model, rho = intrinsic dimensionality.
    const double m = static_cast<double>(pair_distances_.size());
    const double pos = frac * m;
    if (pos >= 1.0) {
      size_t idx = static_cast<size_t>(pos) - 1;
      idx = std::min(idx, pair_distances_.size() - 1);
      return pair_distances_[idx];
    }
    const double exponent = std::max(1.0, 2.0 * intrinsic_dim_);
    return pair_distances_.front() * std::pow(pos, 1.0 / exponent);
  }

  if (sample_.empty()) return 0.0;
  // Fallback: quantile of mapped-space lower bounds, calibrated by the
  // pivot-set precision (Definition 1).
  std::vector<double> lbs;
  lbs.reserve(sample_.size());
  for (const auto& phi : sample_) {
    double lb = 0.0;
    for (size_t i = 0; i < phi_q.size(); ++i) {
      lb = std::max(lb, std::fabs(phi[i] - phi_q[i]));
    }
    lbs.push_back(lb);
  }
  std::sort(lbs.begin(), lbs.end());
  size_t idx = static_cast<size_t>(std::ceil(frac * lbs.size()));
  if (idx > 0) --idx;
  idx = std::min(idx, lbs.size() - 1);
  const double calibration = std::clamp(precision_, 0.05, 1.0);
  return lbs[idx] / calibration;
}

CostEstimate CostModel::EstimateRange(const MappedSpace& space,
                                      const std::vector<double>& phi_q,
                                      double r) const {
  CostEstimate est;
  est.estimated_radius = r;
  const double pr = RegionProbability(phi_q, r);
  // Eq. 3: pivots for phi(q), plus one computation per object expected in RR.
  est.distance_computations =
      static_cast<double>(phi_q.size()) + pr * static_cast<double>(total_objects_);

  // Eq. 6: B+-tree nodes whose MBB intersects RR, plus RAF pages.
  std::vector<uint32_t> lo, hi;
  space.RangeRegion(phi_q, r, &lo, &hi);
  double nodes_hit = 0.0;
  for (const auto& [blo, bhi] : node_boxes_) {
    if (MappedSpace::BoxesIntersect(blo, bhi, lo, hi)) nodes_hit += 1.0;
  }
  const double verified = pr * static_cast<double>(total_objects_);
  est.page_accesses = nodes_hit + verified / objects_per_page_;
  return est;
}

CostEstimate CostModel::EstimateKnn(const MappedSpace& space,
                                    const std::vector<double>& phi_q,
                                    uint64_t k) const {
  const double radius = EstimateKnnRadius(phi_q, k);
  CostEstimate est = EstimateRange(space, phi_q, radius);
  est.estimated_radius = radius;
  return est;
}

CostEstimate CostModel::EstimateJoin(const CostModel& probe,
                                     double epsilon) const {
  CostEstimate est;
  est.estimated_radius = epsilon;
  // Eq. 7 evaluated on the probe sample: EDC = sum over q of
  // |O| * Pr(phi(o) in RR(q, eps)), scaled from sample to |Q|.
  double avg_pr = 0.0;
  for (const auto& phi_q : probe.sample_) {
    avg_pr += RegionProbability(phi_q, epsilon);
  }
  if (!probe.sample_.empty()) avg_pr /= double(probe.sample_.size());
  est.distance_computations = avg_pr * static_cast<double>(total_objects_) *
                              static_cast<double>(probe.total_objects_);
  // Eq. 8: one pass over both trees' leaves and both RAFs.
  est.page_accesses =
      static_cast<double>(probe.num_leaf_pages_) +
      static_cast<double>(num_leaf_pages_) +
      static_cast<double>(probe.total_objects_) / probe.objects_per_page_ +
      static_cast<double>(total_objects_) / objects_per_page_;
  return est;
}

void CostModel::AddSample(const std::vector<double>& phi,
                          uint64_t seen_so_far, uint64_t rng_draw) {
  if (sample_.size() < kDefaultSampleCapacity) {
    sample_.push_back(phi);
    return;
  }
  // Reservoir replacement: keep each of the `seen_so_far` vectors with equal
  // probability.
  if (seen_so_far == 0) return;
  const uint64_t slot = rng_draw % seen_so_far;
  if (slot < sample_.size()) sample_[slot] = phi;
}

}  // namespace spb
