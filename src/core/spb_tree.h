#ifndef SPB_CORE_SPB_TREE_H_
#define SPB_CORE_SPB_TREE_H_

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bptree/bptree.h"
#include "bptree/leaf_model.h"
#include "common/blob.h"
#include "common/contention.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/mapped_space.h"
#include "core/metric_index.h"
#include "core/tuning.h"
#include "exec/snapshot.h"
#include "exec/write_queue.h"
#include "metrics/distance.h"
#include "common/rng.h"
#include "pivots/selection.h"
#include "storage/io_engine.h"
#include "storage/raf.h"
#include "storage/wal.h"

namespace spb {

/// Construction/runtime knobs of an SPB-tree, mirroring Table 3 of the paper.
struct SpbTreeOptions {
  /// |P| — number of pivots (paper default 5, near the datasets' intrinsic
  /// dimensionality).
  size_t num_pivots = 5;
  /// Pivot selection algorithm (paper default: HFI).
  PivotSelectorType pivot_selector = PivotSelectorType::kHfi;
  /// delta-approximation granularity for continuous metrics (paper default
  /// 0.005); ignored for discrete metrics.
  double delta = 0.005;
  /// Space-filling curve (Hilbert by default; similarity joins require
  /// Z-order, see SimilarityJoin()).
  CurveType curve = CurveType::kHilbert;
  /// LRU buffer-pool sizes in 4 KB pages (paper default 32; 0 disables).
  size_t btree_cache_pages = 32;
  size_t raf_cache_pages = 32;
  /// Reservoir size for the cost model's union distance distribution; 0
  /// disables cost-model collection.
  size_t cost_sample_size = CostModel::kDefaultSampleCapacity;
  /// Seed for pivot selection and sampling.
  uint64_t seed = 20150415;
  /// Directory for the index files (btree.spb, raf.spb). Empty = in-memory.
  std::string storage_dir;
  /// Ablation switches (DESIGN.md §5): disable the Lemma 2 "free inclusion"
  /// shortcut or the computeSFC leaf optimization of Algorithm 1 to measure
  /// their contribution. Production defaults: both on.
  bool enable_lemma2 = true;
  bool enable_compute_sfc = true;
  /// Early-abandoning verification: queries pass their pruning threshold to
  /// DistanceWithCutoff (RQA the radius, NNA the current k-th NN distance,
  /// SJA the join radius) so the metric may stop mid-computation once the
  /// object is provably pruned. Never changes results or compdists counts —
  /// only the work done inside each distance call (see
  /// docs/ARCHITECTURE.md §"Distance kernels"). Off = plain Distance(),
  /// for ablation and regression tests.
  bool enable_cutoff = true;
  /// I/O engine (docs/ARCHITECTURE.md §"I/O engine"): when on, each query
  /// opens a readahead session over the RAF and schedules the pages of
  /// Lemma-surviving leaf entries (RQA/NNA) before fetching them, so runs of
  /// SFC-adjacent pages coalesce into span reads. Results, logical PA and
  /// compdists are identical either way — readahead stages bytes outside the
  /// buffer pool and claims them with demand-path accounting on first touch.
  bool enable_prefetch = true;
  /// Background fetch threads. SIZE_MAX = auto (2 when the machine has more
  /// than one hardware thread, else 0); 0 = no threads, span reads run
  /// inline at schedule time (coalescing still applies, overlap does not).
  size_t prefetch_threads = SIZE_MAX;
  /// Per-session readahead budget, in pages (also the max span-read length).
  size_t max_readahead_pages = 64;
  /// Warm-path decode engine (docs/ARCHITECTURE.md §"Warm-path decode
  /// engine"). `node_cache_entries` sizes the decoded-node cache (B+-tree
  /// nodes kept parsed, with internal MBB corners pre-decoded; 0 disables).
  /// `enable_zero_copy` serves RAF records from pinned buffer-pool frames
  /// instead of copying into a fresh Blob. Results, logical PA, cache_hits
  /// and compdists are byte-identical with either switch on or off (the
  /// accounting-parity rule, asserted by the warm A/B bench); the toggles
  /// exist for ablation and the identity harness.
  size_t node_cache_entries = 1024;
  bool enable_zero_copy = true;
  /// Number of SFC key-range shards (power of two; 1 = a single tree).
  /// Consumed by ShardedSpbTree::Build, which splits the Hilbert key space
  /// into `num_shards` contiguous ranges and builds one independent SpbTree
  /// (own B+-tree + RAF + buffer pools + snapshot manager) per range.
  /// Ignored by SpbTree itself.
  size_t num_shards = 1;
  /// Write-path engine (docs/OPERATIONS.md §"Durability"). With
  /// `enable_group_commit` on, Insert/Delete/BatchInsert enqueue into a
  /// per-tree commit queue instead of try-locking the writer mutex: a
  /// leader drains up to `wal_group_max` requests, appends them as ONE WAL
  /// segment write with ONE fsync (when `enable_wal` and `wal_fsync` are
  /// on), applies them through the COW write path and publishes ONE
  /// snapshot epoch — so concurrent writers queue instead of bouncing off
  /// Status::Busy. `enable_wal` (requires a disk-backed tree) adds the
  /// group-commit log itself: logical records are replayed on Open past the
  /// last checkpoint (a Save() checkpoints and truncates the log).
  bool enable_group_commit = false;
  bool enable_wal = false;
  size_t wal_group_max = 64;
  bool wal_fsync = true;
  /// Dead-byte debt at which the background compactor rewrites the RAF back
  /// into SFC order on fresh pages (0 disables the compactor thread). The
  /// swap goes through the snapshot/retire protocol, so in-flight queries
  /// keep reading their pinned version's file.
  uint64_t compact_dead_bytes_threshold = 0;
  /// Learned leaf locator (docs/ARCHITECTURE.md §"Learned locator +
  /// planner"): a per-TreeVersion PGM-style model — leaf directory +
  /// internal-node image + ε-bounded piecewise-linear segments — built in
  /// one uncounted pass at Build/Open/compaction and refreshed per snapshot
  /// epoch. Point lookups, RQA/NNA traversals, SJA leaf scans and the write
  /// path's descent then skip inner B+-tree pages entirely; any miss or
  /// stale (COW-invalidated) model falls back to classic descent. Results
  /// and compdists are byte-identical either way; B+-tree inner-node page
  /// accesses are NOT — eliding them is the optimization — which is why the
  /// default is off: the paper-protocol figures keep their classic PA
  /// accounting unless a bench opts in (the accounting-parity rule applies
  /// to the default configuration only).
  bool enable_learned_locator = false;
  /// Locator PLA error bound ε, in directory ranks (probe window ±(ε+2)).
  /// Smaller = more segments, tighter probes; 0 still works (pure directory
  /// binary search per miss).
  size_t locator_epsilon = 16;
  /// Cost-model query planner: routes each query online from the persisted
  /// cost model — greedy vs best-first NNA, per-query cutoff, readahead
  /// budget, sharded scatter parallelism — and calibrates itself with a
  /// measured-vs-predicted distance-computation feedback loop (EMA +
  /// precision_ nudges). Results are identical for every routing choice;
  /// compdists match whichever static configuration the plan resolves to.
  /// Default off so the fig15/fig16 estimate-accuracy experiments see the
  /// untouched build-time model.
  bool enable_planner = false;
  /// Clamp on each measured/predicted planner-feedback ratio before it
  /// enters the calibration EMA (see TuningOptions::planner_feedback_clamp
  /// for the tuning story; runtime-adjustable there).
  double planner_feedback_clamp = 64.0;
};

/// The global NDk bound one kNN query shares across shards: a monotonically
/// tightening upper bound on the k-th nearest-neighbor distance, published
/// by whichever shard currently holds the best k candidates and consumed by
/// every shard's traversal for Lemma 3 pruning (frontier cutoff, node
/// pushes, leaf filters). Only *exact* k-th distances from a full local
/// candidate heap are ever offered, never early-abandoned lower bounds —
/// an under-estimate here would prune true neighbors in sibling shards.
/// Shards keep their *local* NDk as the DistanceWithCutoff threshold for
/// the same reason: an abandoned value only lower-bounds the true distance,
/// so admitting one past a foreign (tighter) threshold into the local heap
/// could later be published as a too-small global bound.
class SharedKnnBound {
 public:
  /// Current bound (+inf until the first shard fills its heap).
  double load() const { return bound_.load(std::memory_order_relaxed); }

  /// CAS-min: tightens the bound to `d` if d is smaller. Lock-free; safe
  /// from concurrent shard traversals.
  void Offer(double d) {
    double cur = bound_.load(std::memory_order_relaxed);
    while (d < cur &&
           !bound_.compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

/// kNN traversal strategies of Section 4.3 / Table 5.
enum class KnnTraversal {
  /// Best-first over individual leaf entries — optimal in distance
  /// computations (Lemma 4).
  kIncremental,
  /// Verifies whole leaves as soon as they are reached — optimal in RAF page
  /// accesses, the paper's default for low-precision datasets (DNA).
  kGreedy,
  /// Let the cost-model planner pick per query (resolves to kIncremental
  /// when enable_planner is off). The resolved traversal runs byte-identical
  /// to passing it explicitly.
  kAuto,
};

/// Learned-locator observability (spb_cli stats, bench_learned,
/// docs/OPERATIONS.md §"Reading locator/planner counters").
struct LocatorStats {
  bool model_present = false;
  bool pla_ok = false;
  uint64_t epoch = 0;         // snapshot epoch the model was built at
  uint64_t leaves = 0;        // non-empty leaves in the directory
  uint64_t internal_nodes = 0;
  uint64_t segments = 0;      // PLA segments
  uint64_t epsilon = 0;
  uint64_t hits = 0;          // inner-node reads served from the model image
  uint64_t fallbacks = 0;     // queries that ran classic descent instead
  uint64_t stale = 0;         // fallbacks due to a snapshot/model epoch mismatch
  uint64_t seek_misses = 0;   // SeekRank probes outside the ±(ε+2) window
  uint64_t rebuilds = 0;
};

/// Planner observability: routing decisions + calibration state.
struct PlannerStats {
  uint64_t planned_range = 0;
  uint64_t planned_knn = 0;
  uint64_t routed_greedy = 0;
  uint64_t routed_incremental = 0;
  uint64_t cutoff_disabled = 0;  // kNN queries planned without the cutoff
  /// EMA of measured/predicted distance computations (1.0 = perfectly
  /// calibrated); drift = |log(calibration)|.
  double calibration = 1.0;
  double drift = 0.0;
};

/// The Space-filling-curve and Pivot-based B+-tree (the paper's primary
/// contribution): pivot table + B+-tree over SFC keys + RAF, with range /
/// kNN search and cost models. Construction cost (page accesses, distance
/// computations) is observable through stats(); per-query costs through the
/// QueryStats out-parameters.
///
/// Thread safety — the epoch/snapshot protocol (docs/ARCHITECTURE.md
/// §"Threading model"): RangeQuery()/KnnQuery()/EstimateRangeCost()/
/// EstimateKnnCost() may run from any number of threads concurrently with
/// at most one writer (Insert/Delete/BatchInsert/ApplyTuning). Each query
/// pins a Snapshot of the published index version (B+-tree root + RAF
/// watermark) and traverses only pages reachable from it; the writer
/// builds new versions copy-on-write and publishes them atomically, so
/// readers never see a half-applied update and pay no per-node locks on
/// the warm path. A second concurrent writer gets Status::Busy (kBusy) —
/// writers are serialized by one try-lock, not queued. Superseded pages
/// are retired (cache-purged and id-recycled) only after the last snapshot
/// pinning them drains.
///
/// Cumulative PA/compdists counters are atomic and stay exact in
/// aggregate; per-query QueryStats deltas are only attributable when
/// queries do not overlap, so concurrent callers should pass stats ==
/// nullptr and read aggregate costs from cumulative_stats().
/// Save/FlushCaches/ResetCounters and cache-capacity retuning remain
/// quiesced-only operations (they rebuild sharded structures or reset
/// counters mid-measurement).
class SpbTree : public MetricIndex {
 public:
  /// Builds an index over `objects` (bulk-loading path: pivot selection,
  /// two-stage mapping, SFC sort, RAF fill, B+-tree bulk-load). Object ids
  /// are the positions in `objects`. `metric` must outlive the tree.
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const SpbTreeOptions& options,
                      std::unique_ptr<SpbTree>* out);

  /// Same, but with a caller-supplied pivot table — required for similarity
  /// joins, where both operands must share one mapping, and for sharded
  /// builds, where every shard shares the router's pivots. `ids` (optional)
  /// assigns explicit object ids instead of positions — ids[i] names
  /// objects[i]. `phis` (optional) supplies the precomputed pivot mapping as
  /// a row-major objects.size() x num_pivots buffer so a router that already
  /// mapped the dataset for partitioning does not pay the distance calls a
  /// second time; it must match what MapBatch would produce.
  static Status BuildWithPivots(const std::vector<Blob>& objects,
                                const DistanceFunction* metric,
                                PivotTable pivots,
                                const SpbTreeOptions& options,
                                std::unique_ptr<SpbTree>* out,
                                const std::vector<ObjectId>* ids = nullptr,
                                const double* phis = nullptr);

  /// Reopens an index persisted with Save() in `storage_dir`. The caller
  /// supplies the same metric the index was built with (metrics are code,
  /// not data); cache sizes come from `options`, everything else (pivots,
  /// delta, curve, cost model) is restored from the meta file.
  static Status Open(const std::string& storage_dir,
                     const DistanceFunction* metric,
                     const SpbTreeOptions& options,
                     std::unique_ptr<SpbTree>* out);

  /// Stops the write-queue leader/compactor threads before members tear
  /// down (the compactor touches btree_/raf_/snapshots_).
  ~SpbTree() override;

  /// Persists the meta file (pivot table, mapping parameters, cost model)
  /// and syncs the B+-tree and RAF. Only valid for disk-backed indexes
  /// (non-empty options.storage_dir). With the WAL enabled this is the
  /// checkpoint: after the tree state is durable the log is truncated and
  /// pages retired since the last checkpoint become recyclable. Blocks
  /// behind in-flight commit groups (takes the writer lock, waiting).
  Status Save();

  /// Rewrites the RAF into SFC order on fresh pages, dropping every record
  /// orphaned by deletes/re-inserts, and swaps it in through the snapshot
  /// protocol — concurrent queries keep reading their pinned version's old
  /// file and never block. Cumulative PA/compdists counters carry over
  /// unchanged (compaction I/O is raw, outside the buffer pool) and
  /// dead_bytes resets to zero. Disk-backed trees swap via an atomic
  /// rename and checkpoint afterwards; a crash between the two is healed
  /// on Open by a generation check that rebuilds the B+-tree from the RAF.
  /// Blocks behind in-flight writers (takes the writer lock, waiting).
  Status Compact();

  /// WAL counters (zeros when the WAL is off): segment bytes, checkpoint
  /// LSN, records appended since the checkpoint, group/fsync totals.
  /// Deprecated: read the wal_* fields of CollectStats() instead (kept one
  /// PR for drill-down call sites; see docs/API.md §"Stats surface").
  Wal::Stats wal_stats() const;
  /// Commit-queue counters (zeros when group commit is off). Deprecated:
  /// read the wq_* fields of CollectStats() instead.
  WriteQueue::Stats write_queue_stats() const;

  /// The one stats surface (PR 10): every counter group this tree has —
  /// paper cost metrics, I/O engine, WAL, commit queue, learned locator,
  /// planner — in a single plain-value snapshot. Supersedes the six
  /// per-subsystem accessors.
  StatsSnapshot CollectStats() const override;

  /// With the commit queue on, concurrent writers enqueue and never see
  /// Status::Busy, so the executor may dispatch them freely; without it the
  /// single try-lock admits one writer at a time.
  size_t writer_concurrency() const override;

  /// Inserts one object with explicit id (Appendix C path: map, append to
  /// RAF, copy-on-write B+-tree insert, snapshot publish). Safe under
  /// concurrent queries; a second in-flight writer gets Status::Busy.
  Status Insert(const Blob& obj, ObjectId id) override;

  /// Batch insert with one snapshot publication at the end instead of one
  /// per object — pages created and superseded *within* the batch are
  /// still retired through the snapshot queue, so readers pinning the
  /// pre-batch version stay consistent. Status::Busy on a writer race.
  Status BatchInsert(const std::vector<Blob>& objs,
                     const std::vector<ObjectId>& ids) override;

  /// Removes the object with the given payload and id. `*found` reports
  /// whether it was present. The RAF record becomes garbage (space is
  /// reclaimed on rebuild; the orphaned bytes are tallied in the RAF's
  /// dead_bytes counter), matching the lazy-deletion design. Safe under
  /// concurrent queries (COW + publish); Status::Busy on a writer race.
  Status Delete(const Blob& obj, ObjectId id, bool* found) override;

  /// One pre-mapped write, for routers that computed phi/key once to pick a
  /// shard: `obj`/`phi` must outlive the call, `phi` is space().dims()
  /// doubles and `key` its SFC key.
  struct MappedInsert {
    const Blob* obj;
    ObjectId id;
    uint64_t key;
    const double* phi;
  };

  /// BatchInsert over pre-mapped records: identical publication semantics
  /// (one snapshot publish for the whole batch, Status::Busy on a writer
  /// race) without re-computing the |P| mapping distances per record —
  /// those were already spent, and counted, at the caller's router.
  Status BatchInsertMapped(const MappedInsert* items, size_t count);

  /// Delete with the SFC key precomputed by a router (the mapping is only
  /// used to locate the leaf). Same contract as Delete otherwise.
  Status DeleteMapped(const Blob& obj, ObjectId id, uint64_t key,
                      bool* found);

  /// RQ(q, O, r) — Algorithm 1 (RQA) with Lemmas 1-2 and the computeSFC leaf
  /// optimization. Result ids are in no particular order.
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats = nullptr) override;

  /// kNN(q, k) — Algorithm 2 (NNA) with Lemma 3 pruning; result sorted by
  /// ascending distance. Fewer than k results when the index holds fewer
  /// objects.
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats, KnnTraversal traversal);
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats = nullptr) override {
    return KnnQuery(q, k, result, stats, KnnTraversal::kAuto);
  }

  /// RangeQuery with phi(q) precomputed by a router — identical traversal,
  /// without re-spending the |P| mapping distance calls per shard.
  Status RangeQueryMapped(const Blob& q, const std::vector<double>& phi_q,
                          double r, std::vector<ObjectId>* result,
                          QueryStats* stats = nullptr);

  /// KnnQuery with phi(q) precomputed and an optional cross-shard NDk bound
  /// (see SharedKnnBound). With `shared` non-null the traversal prunes on
  /// min(local NDk, shared bound) — frontier cutoff, node pushes and leaf
  /// filters all tighten — and publishes its own exact k-th distance
  /// whenever the local heap is full. The local heap still collects up to k
  /// candidates (the router merges across shards), and DistanceWithCutoff
  /// keeps the *local* NDk threshold so early-abandoned (inexact) values
  /// can never be admitted and later published as a global bound.
  Status KnnQueryMapped(const Blob& q, const std::vector<double>& phi_q,
                        size_t k, std::vector<Neighbor>* result,
                        QueryStats* stats, KnnTraversal traversal,
                        SharedKnnBound* shared);

  /// Cost models (Section 4.4). Each estimate costs |P| distance
  /// computations (mapping q).
  CostEstimate EstimateRangeCost(const Blob& q, double r) const;
  CostEstimate EstimateKnnCost(const Blob& q, size_t k) const;

  /// The same estimates with phi(q) precomputed: ZERO distance computations.
  /// This is what the online planner consumes (a router already mapped q, or
  /// the query entry point maps once and shares), so planning never perturbs
  /// a query's compdists.
  CostEstimate EstimateRangeCostMapped(const std::vector<double>& phi_q,
                                       double r) const;
  CostEstimate EstimateKnnCostMapped(const std::vector<double>& phi_q,
                                     size_t k) const;

  /// The learned leaf-location model matching `snap`, or nullptr when the
  /// locator is off, not yet built, or built for a different epoch (the
  /// caller then uses classic descent — this check IS the fallback path).
  /// The returned model is immutable and safe to use for as long as the
  /// snapshot is held. Public for the joins' leaf scans and for tests.
  std::shared_ptr<const LeafModel> LocatorForSnapshot(
      const Snapshot& snap) const;

  /// Locator/planner counters (cumulative since ResetCounters; calibration
  /// survives resets — it is model state, not a counter). Deprecated: read
  /// the locator_* / planner_* fields of CollectStats() instead.
  LocatorStats locator_stats() const;
  PlannerStats planner_stats() const;

  uint64_t size() const { return num_objects_.load(std::memory_order_relaxed); }
  const MappedSpace& space() const { return *space_; }
  const DistanceFunction& metric() const { return counting_; }
  /// The counting wrapper itself — exposes the cutoff-call/hit counters.
  const CountingDistance& counting() const { return counting_; }

  /// Pins the currently published index version: queries against the
  /// returned snapshot see a frozen tree/RAF state no matter how many
  /// writes land concurrently. Queries pin one internally; callers only
  /// need this to hold a version across multiple calls (e.g. the joins'
  /// leaf cursors) or to assert epoch behaviour in tests.
  Snapshot AcquireSnapshot() const { return snapshots_->Acquire(); }
  /// The snapshot manager itself (test/diagnostic hook: live epoch count,
  /// pending retirements).
  const SnapshotManager& snapshots() const { return *snapshots_; }

  /// Applies the runtime-tunable option group as one atomic switch (see
  /// core/tuning.h). Takes the writer lock: Status::Busy if an
  /// Insert/Delete/BatchInsert is in flight. Flag-only changes (lemma2,
  /// compute_sfc, cutoff, prefetch, zero_copy, max_readahead_pages) are
  /// safe under concurrent queries; changes to node_cache_entries /
  /// btree_cache_pages / raf_cache_pages rebuild sharded caches and
  /// additionally require quiesced readers, same as FlushCaches.
  Status ApplyTuning(const TuningOptions& t);
  /// The currently applied tuning group.
  TuningOptions tuning() const;

  /// Opens a readahead session over the current RAF for one caller thread
  /// (used by the joins, which drive their own leaf scans; they run with
  /// writes quiesced, so the RAF cannot be swapped out from under the
  /// session). Returns a session even when enable_prefetch is off —
  /// Schedule() is then a no-op (null fetcher), so the session degrades to
  /// the demand path. Query traversals use the private overload bound to
  /// their snapshot's RAF instead.
  Readahead NewReadaheadSession() { return NewReadaheadSession(*RafPtr()); }

  /// Aggregate I/O counters of both files (logical + physical + prefetch).
  IoStats io_stats() const override;
  BPlusTree& btree() { return *btree_; }
  const BPlusTree& btree() const { return *btree_; }
  /// The current-generation RAF. Quiesced-only accessor (joins, CLI stats,
  /// tests): a concurrent compaction swaps the pointer this dereferences.
  Raf& raf() { return *raf_; }
  const CostModel& cost_model() const { return cost_model_; }
  const SpbTreeOptions& options() const { return options_; }

  /// Total on-disk footprint: B+-tree pages + RAF pages + pivot table.
  uint64_t storage_bytes() const override;

  /// Cumulative counters since the last ResetCounters() (page accesses of
  /// both files + distance computations). Used for construction-cost
  /// accounting.
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;

  /// Drops both LRU caches (the paper flushes caches before every query).
  void FlushCaches() override;
  std::string name() const override { return "SPB-tree"; }

  /// Runs a full structural self-check (B+-tree invariants + key/object
  /// agreement). Test hook; expensive.
  Status CheckIntegrity();

 private:
  SpbTree(const DistanceFunction* metric, const SpbTreeOptions& options)
      : options_(options), base_metric_(metric), counting_(metric) {}

  static Status BuildInternal(const std::vector<Blob>& objects,
                              const DistanceFunction* metric,
                              PivotTable pivots, const SpbTreeOptions& options,
                              std::unique_ptr<SpbTree>* out,
                              const std::vector<ObjectId>* ids = nullptr,
                              const double* phis_in = nullptr);

  Status MakeFiles(std::unique_ptr<PageFile>* btree_file,
                   std::unique_ptr<PageFile>* raf_file) const;

  // Reusable per-query buffers for the batched leaf hot loop. Owned by the
  // per-thread QueryArena, so concurrent queries never share one.
  struct LeafScratch {
    std::vector<uint64_t> keys;
    MappedSpace::CellBlock block;
    std::vector<uint8_t> in_box;      // batch Lemma 1 flags
    std::vector<uint8_t> guaranteed;  // batch Lemma 2 flags
    std::vector<double> mind;         // batch MIND(q, cell) for NNA
    std::vector<LeafEntry> matched;   // computeSFC merge output
    std::vector<PageId> pages;        // RAF pages to hand to readahead
    Blob obj;                         // reusable object buffer (copy path)
    BlobView view;                    // reusable zero-copy view
  };

  // All transient state of one query traversal, reused across queries so the
  // steady-state warm loop performs no heap allocation (the vectors keep
  // their high-water capacity). One arena per thread (ThreadArena): a thread
  // runs one query at a time, and QueryExecutor workers each get their own.
  // Defined in spb_tree.cc.
  struct QueryArena;
  static QueryArena& ThreadArena();

  // Verifies a run of leaf entries for a range query (the paper's VerifyRQ,
  // batched): decodes all SFC keys into an SoA cell block, applies Lemma 1
  // and Lemma 2 as per-dimension sweeps, then fetches/verifies survivors in
  // entry order — same results, RAF access order and compdists as the
  // entry-at-a-time loop. `check_region` is Algorithm 1's `flag` parameter.
  // `use_cutoff` is the per-query cutoff decision (== options_.enable_cutoff
  // unless the planner turned it off for this query; never changes results
  // or compdists — only work inside each distance call).
  Status VerifyLeafBatch(Raf* raf, const LeafEntry* entries, size_t count,
                         const Blob& q, const std::vector<double>& phi_q,
                         double r, bool check_region, bool use_cutoff,
                         const std::vector<uint32_t>& rr_lo,
                         const std::vector<uint32_t>& rr_hi,
                         LeafScratch* scratch, std::vector<ObjectId>* result,
                         Readahead* ra);

  // Builds the prefetch thread pool per options_ (called once per tree).
  void InitFetcher();

  // Creates the snapshot manager over the freshly built/opened structures,
  // wiring the retire callback (node-cache purge + pool retire + free-list
  // recycle). Called once per tree, after btree_/raf_ exist.
  void InitSnapshots();

  // The writer-side view of the published state, assembled from the
  // B+-tree version plus the RAF watermark and object count.
  IndexVersion CurrentVersion() const;

  // One insert under the already-held writer lock, WITHOUT publishing:
  // superseded page ids accumulate in `*superseded` for a later
  // PublishCurrent. Insert() publishes per call; BatchInsert() once.
  Status InsertOneLocked(const Blob& obj, ObjectId id,
                         std::vector<PageId>* superseded);

  // Same, with phi/key already computed (by InsertOneLocked or a router).
  // Upsert semantics: an existing entry with the same (key, id, payload)
  // is first unlinked and its RAF record's bytes added to the dead-byte
  // debt — re-inserting an id never double-counts an object, and WAL
  // replay of an already-applied insert is a clean no-op-shaped rewrite.
  Status InsertOneMappedLocked(const Blob& obj, ObjectId id,
                               const double* phi, uint64_t key,
                               std::vector<PageId>* superseded);

  // One delete under the already-held writer lock, WITHOUT publishing.
  // Sets `*found` (may be null); missing records are kOk/not-found, which
  // makes WAL replay of an already-applied delete idempotent.
  Status DeleteOneMappedLocked(const Blob& obj, ObjectId id, uint64_t key,
                               bool* found,
                               std::vector<PageId>* superseded);

  // The traversal bodies of RangeQuery/KnnQuery, shared with the *Mapped
  // variants: the caller has pinned `snap`, cleared `result` and filled
  // A.phi_q (either by mapping q or by copying a router's phi).
  Status RangeSearch(const Blob& q, double r, const Snapshot& snap,
                     QueryArena& A, std::vector<ObjectId>* result);
  Status KnnSearch(const Blob& q, size_t k, const Snapshot& snap,
                   QueryArena& A, std::vector<Neighbor>* result,
                   KnnTraversal traversal, SharedKnnBound* shared);

  // The r == 0 locator fast path of RangeSearch: SeekRank straight to the
  // owning leaf, scan the duplicate run, batch-verify the exact-key matches.
  // Proven byte-identical in results/compdists to the classic descent
  // (docs/ARCHITECTURE.md §"Learned locator + planner"); only inner-node
  // page accesses differ. Requires a model valid for `snap`.
  Status PointSearchWithLocator(const Blob& q, const LeafModel& model,
                                const Snapshot& snap, QueryArena& A,
                                bool use_cutoff, std::vector<ObjectId>* result,
                                Readahead* ra);

  // ---- Learned locator maintenance (writer lock held for all of these).
  // Rebuilds the model from the writer's current adopted+published version,
  // stamped with the current snapshot epoch. Best-effort: on failure the
  // model is dropped and every query falls back to classic descent.
  void RebuildLocatorLocked();
  // Rebuild-on-churn policy: after kLocatorRefreshWrites COW mutations since
  // the model went stale, rebuild it (called after PublishCurrent on the
  // write paths, so the epoch stamp matches what readers acquire).
  void MaybeRefreshLocatorLocked();
  // Marks the writer's model stale (called on every COW mutation).
  void InvalidateLocator();
  // True when the writer may use the model's leaf directory for its own
  // descent (model built for exactly the current adopted version).
  bool WriterLocatorUsable() const {
    return options_.enable_learned_locator && locator_current_ &&
           locator_ != nullptr;
  }

  // ---- Planner.
  // One kNN routing decision, from the cost model's O(log) components (the
  // full Eq. 6/8 estimates stay available via Estimate*CostMapped; the hot
  // path avoids their sample/box sweeps). Zero distance computations.
  struct KnnPlan {
    KnnTraversal traversal = KnnTraversal::kIncremental;
    bool use_cutoff = true;
    size_t readahead_budget = 0;
    double predicted_verifications = 0.0;  // feedback baseline
  };
  KnnPlan PlanKnn(const std::vector<double>& phi_q, size_t k) const;
  // Readahead budget from a predicted page-access count: clamped to
  // [8, options_.max_readahead_pages] — the planner only ever shrinks the
  // configured budget (physical I/O shaping; logical PA is untouched).
  size_t PlannedBudget(double predicted_pages) const;
  // Measured-vs-predicted feedback: folds measured/predicted verification
  // counts into the calibration EMA and nudges the cost model's precision_
  // (Definition 1) so radius estimates track live traffic.
  void UpdatePlannerFeedback(double predicted, double measured);
  // kNN variant: additionally feeds the per-traversal runtime EMAs that
  // drive the greedy/incremental routing (elapsed normalized by the plan's
  // predicted work, so observations from different (k, query) mixes stay
  // comparable). `used` is the traversal that actually ran.
  void UpdateKnnPlannerFeedback(double predicted, double measured,
                                KnnTraversal used, double elapsed_seconds);

  // Publishes the current adopted version, handing `superseded` to the
  // epoch retire queue.
  void PublishCurrent(std::vector<PageId> superseded);

  // Readahead session bound to one specific RAF (the snapshot's, for query
  // traversals; the current one, for the public wrapper). The planner
  // overload caps the session budget at its predicted need.
  Readahead NewReadaheadSession(Raf& raf) {
    return NewReadaheadSession(raf, options_.max_readahead_pages);
  }
  Readahead NewReadaheadSession(Raf& raf, size_t budget) {
    return Readahead(&raf.pool(),
                     options_.enable_prefetch ? fetcher_.get() : nullptr,
                     ReadaheadOptions{budget});
  }

  // The current RAF under the swap lock (shared_ptr copy: callers keep the
  // file alive across a concurrent compaction swap).
  std::shared_ptr<Raf> RafPtr() const {
    std::lock_guard<std::mutex> lock(raf_mu_);
    return raf_;
  }

  // Wires the write-path engine (WAL + commit queue + compactor) per
  // options_. Called once, after InitSnapshots(), from BuildInternal/Open.
  Status InitEngine();

  // The group-commit leader body: takes the writer lock (blocking — commit
  // groups queue behind checkpoints/compactions, never fail), appends the
  // whole group as one WAL write + one fsync, applies every request through
  // the COW write path and publishes ONE snapshot epoch. Per-request
  // statuses land in the requests.
  void CommitGroup(std::vector<WriteQueue::Request*>& group);

  // Replays WAL records past the last checkpoint through the locked write
  // path (one publish at the end). Called from Open before counters reset.
  Status ReplayWal();

  // Rebuilds btree.spb from a full raw RAF scan (re-mapping every record).
  // Open's recovery path for a crash that landed between a compaction's
  // rename and its checkpoint (RAF generation != meta generation).
  Status RebuildBtreeFromRaf();

  // Save()'s body under the already-held writer lock; also drains
  // checkpoint-gated page recycling into the B+-tree free list.
  Status SaveLocked();

  // Compact()'s body under the already-held writer lock.
  Status CompactLocked();

  // True when the dead-byte debt crossed the compactor threshold.
  bool NeedsCompaction() const;

  // Collects node MBBs for the cost model (post-bulk-load tree walk).
  Status CollectNodeBoxes(
      std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>*
          boxes);

  SpbTreeOptions options_;
  const DistanceFunction* base_metric_;
  CountingDistance counting_;
  std::unique_ptr<MappedSpace> space_;
  std::unique_ptr<BPlusTree> btree_;
  // shared_ptr: published IndexVersions co-own the RAF they were built
  // against, so a compaction swap retires the old file only after the last
  // snapshot referencing it drains. raf_mu_ guards the pointer swap.
  std::shared_ptr<Raf> raf_;
  mutable std::mutex raf_mu_;
  std::unique_ptr<PageFetcher> fetcher_;
  CostModel cost_model_;
  std::atomic<uint64_t> num_objects_{0};
  uint64_t inserts_seen_ = 0;  // reservoir counter for cost-model updates
  // Distance computations spent before the counting wrapper existed (pivot
  // selection during Build); folded into cumulative_stats().
  uint64_t extra_distance_computations_ = 0;
  Rng sample_rng_{12345};

  // Single-writer gate: Insert/Delete/BatchInsert/ApplyTuning try-lock it
  // and return Status::Busy when it is held. Readers never take it. The
  // group-commit leader, Save and Compact take it BLOCKING — they queue
  // behind each other instead of failing, which is what keeps a checkpoint
  // from truncating WAL records a concurrent group appended but has not
  // yet applied.
  std::mutex writer_mu_;
  // Guards the cost model, which the writer mutates (AddSample /
  // set_total_objects) while readers run Estimate*Cost.
  mutable std::mutex cost_mu_;

  // ---- Learned leaf locator (null when disabled / dropped) ----
  // locator_ is the published model: writers install under locator_mu_,
  // readers copy the shared_ptr under it once per query and validate by
  // epoch. Instrumented ("locator.model"): the copy is the only lock a
  // locator-enabled query adds, and its contention should stay invisible.
  mutable InstrumentedMutex locator_mu_{"locator.model"};
  std::shared_ptr<const LeafModel> locator_;
  // Writer-side validity + churn counter (writer lock): the model matches
  // the current adopted version until the first COW mutation; after
  // kLocatorRefreshWrites stale writes the write path rebuilds it.
  bool locator_current_ = false;
  uint64_t locator_stale_writes_ = 0;
  static constexpr uint64_t kLocatorRefreshWrites = 64;
  mutable std::atomic<uint64_t> loc_hits_{0};
  mutable std::atomic<uint64_t> loc_fallbacks_{0};
  mutable std::atomic<uint64_t> loc_stale_{0};
  mutable std::atomic<uint64_t> loc_seek_misses_{0};
  mutable std::atomic<uint64_t> loc_rebuilds_{0};

  // ---- Planner counters + calibration (calibration under cost_mu_) ----
  mutable std::atomic<uint64_t> plan_range_{0};
  mutable std::atomic<uint64_t> plan_knn_{0};
  mutable std::atomic<uint64_t> plan_greedy_{0};
  mutable std::atomic<uint64_t> plan_incremental_{0};
  mutable std::atomic<uint64_t> plan_cutoff_off_{0};
  // EMA of measured/predicted verification counts (persisted in meta so a
  // reopened tree keeps its calibration).
  mutable double planner_ema_ = 1.0;
  // One-shot latch for the "feedback pinned at the clamp" warning (see
  // UpdatePlannerFeedback): first pinned observation logs, the rest stay
  // silent so a miscalibrated workload does not flood stderr.
  mutable std::atomic<bool> planner_clamp_warned_{false};
  // Atomic mirror of options_.planner_feedback_clamp: ApplyTuning writes
  // under writer_mu_ while UpdatePlannerFeedback reads on the query hot
  // path, so the feedback path reads this (like wal_fsync_) instead of
  // racing on the plain double in options_. Default mirrors SpbTreeOptions.
  std::atomic<double> planner_clamp_{64.0};
  // Per-traversal runtime EMAs (seconds / predicted verification), index
  // 0 = kIncremental, 1 = kGreedy, under cost_mu_. Compdists say which
  // traversal is work-optimal (Lemma 4: always best-first), but wall clock
  // depends on the metric's cost — a cheap metric makes greedy's
  // whole-leaf sweeps beat best-first's per-entry heap churn. These EMAs
  // learn that trade-off online; PlanKnn routes to the cheaper arm once
  // both have observations and re-probes the losing arm on a fixed cadence
  // (kPlannerExploreEvery) so the estimate tracks workload drift.
  // Transient (not persisted): runtime is a property of this process.
  mutable double arm_cost_[2] = {0.0, 0.0};
  mutable uint64_t arm_obs_[2] = {0, 0};
  static constexpr uint64_t kPlannerExploreEvery = 32;

  // ---- Write-path engine (null / empty when disabled) ----
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<WriteQueue> write_queue_;
  // With the WAL on, pages retired by the snapshot queue are NOT recycled
  // immediately: the buffer pool writes through, so a recycled page could
  // be overwritten on disk while the WAL records that rebuild its epoch
  // still matter for recovery. They queue here and join the free list at
  // the next checkpoint (Save), whose truncation makes them unreachable
  // from any replay.
  std::mutex recycle_mu_;
  std::vector<PageId> pending_recycle_;
  // Runtime-tunable engine knobs: the leader/compactor threads read these
  // while ApplyTuning writes them.
  std::atomic<bool> wal_fsync_{true};
  std::atomic<uint64_t> compact_threshold_{0};

  // Declared after btree_/raf_ so it is destroyed first: its teardown
  // drains the retire queue, whose callback touches the B+-tree caches.
  std::unique_ptr<SnapshotManager> snapshots_;
};

}  // namespace spb

#endif  // SPB_CORE_SPB_TREE_H_
