#ifndef SPB_CORE_SPB_TREE_H_
#define SPB_CORE_SPB_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "bptree/bptree.h"
#include "common/blob.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/mapped_space.h"
#include "core/metric_index.h"
#include "metrics/distance.h"
#include "common/rng.h"
#include "pivots/selection.h"
#include "storage/io_engine.h"
#include "storage/raf.h"

namespace spb {

/// Construction/runtime knobs of an SPB-tree, mirroring Table 3 of the paper.
struct SpbTreeOptions {
  /// |P| — number of pivots (paper default 5, near the datasets' intrinsic
  /// dimensionality).
  size_t num_pivots = 5;
  /// Pivot selection algorithm (paper default: HFI).
  PivotSelectorType pivot_selector = PivotSelectorType::kHfi;
  /// delta-approximation granularity for continuous metrics (paper default
  /// 0.005); ignored for discrete metrics.
  double delta = 0.005;
  /// Space-filling curve (Hilbert by default; similarity joins require
  /// Z-order, see SimilarityJoin()).
  CurveType curve = CurveType::kHilbert;
  /// LRU buffer-pool sizes in 4 KB pages (paper default 32; 0 disables).
  size_t btree_cache_pages = 32;
  size_t raf_cache_pages = 32;
  /// Reservoir size for the cost model's union distance distribution; 0
  /// disables cost-model collection.
  size_t cost_sample_size = CostModel::kDefaultSampleCapacity;
  /// Seed for pivot selection and sampling.
  uint64_t seed = 20150415;
  /// Directory for the index files (btree.spb, raf.spb). Empty = in-memory.
  std::string storage_dir;
  /// Ablation switches (DESIGN.md §5): disable the Lemma 2 "free inclusion"
  /// shortcut or the computeSFC leaf optimization of Algorithm 1 to measure
  /// their contribution. Production defaults: both on.
  bool enable_lemma2 = true;
  bool enable_compute_sfc = true;
  /// Early-abandoning verification: queries pass their pruning threshold to
  /// DistanceWithCutoff (RQA the radius, NNA the current k-th NN distance,
  /// SJA the join radius) so the metric may stop mid-computation once the
  /// object is provably pruned. Never changes results or compdists counts —
  /// only the work done inside each distance call (see
  /// docs/ARCHITECTURE.md §"Distance kernels"). Off = plain Distance(),
  /// for ablation and regression tests.
  bool enable_cutoff = true;
  /// I/O engine (docs/ARCHITECTURE.md §"I/O engine"): when on, each query
  /// opens a readahead session over the RAF and schedules the pages of
  /// Lemma-surviving leaf entries (RQA/NNA) before fetching them, so runs of
  /// SFC-adjacent pages coalesce into span reads. Results, logical PA and
  /// compdists are identical either way — readahead stages bytes outside the
  /// buffer pool and claims them with demand-path accounting on first touch.
  bool enable_prefetch = true;
  /// Background fetch threads. SIZE_MAX = auto (2 when the machine has more
  /// than one hardware thread, else 0); 0 = no threads, span reads run
  /// inline at schedule time (coalescing still applies, overlap does not).
  size_t prefetch_threads = SIZE_MAX;
  /// Per-session readahead budget, in pages (also the max span-read length).
  size_t max_readahead_pages = 64;
  /// Warm-path decode engine (docs/ARCHITECTURE.md §"Warm-path decode
  /// engine"). `node_cache_entries` sizes the decoded-node cache (B+-tree
  /// nodes kept parsed, with internal MBB corners pre-decoded; 0 disables).
  /// `enable_zero_copy` serves RAF records from pinned buffer-pool frames
  /// instead of copying into a fresh Blob. Results, logical PA, cache_hits
  /// and compdists are byte-identical with either switch on or off (the
  /// accounting-parity rule, asserted by the warm A/B bench); the toggles
  /// exist for ablation and the identity harness.
  size_t node_cache_entries = 1024;
  bool enable_zero_copy = true;
};

/// kNN traversal strategies of Section 4.3 / Table 5.
enum class KnnTraversal {
  /// Best-first over individual leaf entries — optimal in distance
  /// computations (Lemma 4).
  kIncremental,
  /// Verifies whole leaves as soon as they are reached — optimal in RAF page
  /// accesses, the paper's default for low-precision datasets (DNA).
  kGreedy,
};

/// The Space-filling-curve and Pivot-based B+-tree (the paper's primary
/// contribution): pivot table + B+-tree over SFC keys + RAF, with range /
/// kNN search and cost models. Construction cost (page accesses, distance
/// computations) is observable through stats(); per-query costs through the
/// QueryStats out-parameters.
///
/// Thread safety: after Build()/Open() (and Sync via Save(), or any point
/// with no Insert/Delete in flight) the tree is an immutable structure and
/// RangeQuery()/KnnQuery()/EstimateRangeCost()/EstimateKnnCost() may be
/// called from any number of threads concurrently — see
/// src/exec/query_executor.h for the batch engine that does so. Cumulative
/// PA/compdists counters are atomic and stay exact in aggregate; per-query
/// QueryStats deltas are only attributable when queries do not overlap, so
/// concurrent callers should pass stats == nullptr and read aggregate
/// costs from cumulative_stats() (docs/ARCHITECTURE.md §"Threading model").
/// Insert/Delete/Save/FlushCaches/ResetCounters/SetRafCachePages are
/// single-writer operations that must be externally excluded from queries.
class SpbTree : public MetricIndex {
 public:
  /// Builds an index over `objects` (bulk-loading path: pivot selection,
  /// two-stage mapping, SFC sort, RAF fill, B+-tree bulk-load). Object ids
  /// are the positions in `objects`. `metric` must outlive the tree.
  static Status Build(const std::vector<Blob>& objects,
                      const DistanceFunction* metric,
                      const SpbTreeOptions& options,
                      std::unique_ptr<SpbTree>* out);

  /// Same, but with a caller-supplied pivot table — required for similarity
  /// joins, where both operands must share one mapping.
  static Status BuildWithPivots(const std::vector<Blob>& objects,
                                const DistanceFunction* metric,
                                PivotTable pivots,
                                const SpbTreeOptions& options,
                                std::unique_ptr<SpbTree>* out);

  /// Reopens an index persisted with Save() in `storage_dir`. The caller
  /// supplies the same metric the index was built with (metrics are code,
  /// not data); cache sizes come from `options`, everything else (pivots,
  /// delta, curve, cost model) is restored from the meta file.
  static Status Open(const std::string& storage_dir,
                     const DistanceFunction* metric,
                     const SpbTreeOptions& options,
                     std::unique_ptr<SpbTree>* out);

  /// Persists the meta file (pivot table, mapping parameters, cost model)
  /// and syncs the B+-tree and RAF. Only valid for disk-backed indexes
  /// (non-empty options.storage_dir).
  Status Save();

  /// Inserts one object with explicit id (Appendix C path: map, append to
  /// RAF, B+-tree insert).
  Status Insert(const Blob& obj, ObjectId id) override;

  /// Removes the object with the given payload and id. `*found` reports
  /// whether it was present. The RAF record becomes garbage (space is
  /// reclaimed on rebuild), matching the lazy-deletion design.
  Status Delete(const Blob& obj, ObjectId id, bool* found);

  /// RQ(q, O, r) — Algorithm 1 (RQA) with Lemmas 1-2 and the computeSFC leaf
  /// optimization. Result ids are in no particular order.
  Status RangeQuery(const Blob& q, double r, std::vector<ObjectId>* result,
                    QueryStats* stats = nullptr) override;

  /// kNN(q, k) — Algorithm 2 (NNA) with Lemma 3 pruning; result sorted by
  /// ascending distance. Fewer than k results when the index holds fewer
  /// objects.
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats, KnnTraversal traversal);
  Status KnnQuery(const Blob& q, size_t k, std::vector<Neighbor>* result,
                  QueryStats* stats = nullptr) override {
    return KnnQuery(q, k, result, stats, KnnTraversal::kIncremental);
  }

  /// Cost models (Section 4.4). Each estimate costs |P| distance
  /// computations (mapping q).
  CostEstimate EstimateRangeCost(const Blob& q, double r) const;
  CostEstimate EstimateKnnCost(const Blob& q, size_t k) const;

  uint64_t size() const { return num_objects_; }
  const MappedSpace& space() const { return *space_; }
  const DistanceFunction& metric() const { return counting_; }
  /// The counting wrapper itself — exposes the cutoff-call/hit counters.
  const CountingDistance& counting() const { return counting_; }
  /// Ablation hooks (single-writer: exclude concurrent queries while
  /// flipping, like the other mutators).
  void set_enable_cutoff(bool v) { options_.enable_cutoff = v; }
  void set_enable_prefetch(bool v) { options_.enable_prefetch = v; }
  /// Warm-path decode engine toggles (single-writer, like the above; the
  /// warm A/B bench flips them between interleaved passes).
  void set_node_cache_entries(size_t n) {
    options_.node_cache_entries = n;
    btree_->set_node_cache_entries(n);
  }
  void set_enable_zero_copy(bool v) { options_.enable_zero_copy = v; }

  /// Opens a readahead session over the RAF for one caller thread (used by
  /// the joins, which drive their own leaf scans). Returns a session even
  /// when enable_prefetch is off — Schedule() is then a no-op (null
  /// fetcher), so the session degrades to the demand path.
  Readahead NewReadaheadSession() {
    return Readahead(&raf_->pool(),
                     options_.enable_prefetch ? fetcher_.get() : nullptr,
                     ReadaheadOptions{options_.max_readahead_pages});
  }

  /// Aggregate I/O counters of both files (logical + physical + prefetch).
  IoStats io_stats() const override;
  BPlusTree& btree() { return *btree_; }
  const BPlusTree& btree() const { return *btree_; }
  Raf& raf() { return *raf_; }
  const CostModel& cost_model() const { return cost_model_; }
  const SpbTreeOptions& options() const { return options_; }

  /// Total on-disk footprint: B+-tree pages + RAF pages + pivot table.
  uint64_t storage_bytes() const override;

  /// Cumulative counters since the last ResetCounters() (page accesses of
  /// both files + distance computations). Used for construction-cost
  /// accounting.
  QueryStats cumulative_stats() const override;
  void ResetCounters() override;

  /// Drops both LRU caches (the paper flushes caches before every query).
  void FlushCaches() override;
  std::string name() const override { return "SPB-tree"; }
  /// Resizes the RAF cache (Fig. 10 experiment).
  void SetRafCachePages(size_t pages);

  /// Runs a full structural self-check (B+-tree invariants + key/object
  /// agreement). Test hook; expensive.
  Status CheckIntegrity();

 private:
  SpbTree(const DistanceFunction* metric, const SpbTreeOptions& options)
      : options_(options), base_metric_(metric), counting_(metric) {}

  static Status BuildInternal(const std::vector<Blob>& objects,
                              const DistanceFunction* metric,
                              PivotTable pivots, const SpbTreeOptions& options,
                              std::unique_ptr<SpbTree>* out);

  Status MakeFiles(std::unique_ptr<PageFile>* btree_file,
                   std::unique_ptr<PageFile>* raf_file) const;

  // Reusable per-query buffers for the batched leaf hot loop. Owned by the
  // per-thread QueryArena, so concurrent queries never share one.
  struct LeafScratch {
    std::vector<uint64_t> keys;
    MappedSpace::CellBlock block;
    std::vector<uint8_t> in_box;      // batch Lemma 1 flags
    std::vector<uint8_t> guaranteed;  // batch Lemma 2 flags
    std::vector<double> mind;         // batch MIND(q, cell) for NNA
    std::vector<LeafEntry> matched;   // computeSFC merge output
    std::vector<PageId> pages;        // RAF pages to hand to readahead
    Blob obj;                         // reusable object buffer (copy path)
    BlobView view;                    // reusable zero-copy view
  };

  // All transient state of one query traversal, reused across queries so the
  // steady-state warm loop performs no heap allocation (the vectors keep
  // their high-water capacity). One arena per thread (ThreadArena): a thread
  // runs one query at a time, and QueryExecutor workers each get their own.
  // Defined in spb_tree.cc.
  struct QueryArena;
  static QueryArena& ThreadArena();

  // Verifies a run of leaf entries for a range query (the paper's VerifyRQ,
  // batched): decodes all SFC keys into an SoA cell block, applies Lemma 1
  // and Lemma 2 as per-dimension sweeps, then fetches/verifies survivors in
  // entry order — same results, RAF access order and compdists as the
  // entry-at-a-time loop. `check_region` is Algorithm 1's `flag` parameter.
  Status VerifyLeafBatch(const LeafEntry* entries, size_t count, const Blob& q,
                         const std::vector<double>& phi_q, double r,
                         bool check_region,
                         const std::vector<uint32_t>& rr_lo,
                         const std::vector<uint32_t>& rr_hi,
                         LeafScratch* scratch, std::vector<ObjectId>* result,
                         Readahead* ra);

  // Builds the prefetch thread pool per options_ (called once per tree).
  void InitFetcher();

  // Collects node MBBs for the cost model (post-bulk-load tree walk).
  Status CollectNodeBoxes(
      std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>*
          boxes);

  SpbTreeOptions options_;
  const DistanceFunction* base_metric_;
  CountingDistance counting_;
  std::unique_ptr<MappedSpace> space_;
  std::unique_ptr<BPlusTree> btree_;
  std::unique_ptr<Raf> raf_;
  std::unique_ptr<PageFetcher> fetcher_;
  CostModel cost_model_;
  uint64_t num_objects_ = 0;
  uint64_t inserts_seen_ = 0;  // reservoir counter for cost-model updates
  // Distance computations spent before the counting wrapper existed (pivot
  // selection during Build); folded into cumulative_stats().
  uint64_t extra_distance_computations_ = 0;
  Rng sample_rng_{12345};
};

}  // namespace spb

#endif  // SPB_CORE_SPB_TREE_H_
