#ifndef SPB_CORE_METRIC_INDEX_H_
#define SPB_CORE_METRIC_INDEX_H_

#include <string>
#include <vector>

#include "common/blob.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/stats_snapshot.h"

namespace spb {

/// One kNN result.
struct Neighbor {
  ObjectId id;
  double distance;

  bool operator==(const Neighbor&) const = default;
};

/// Common interface of every metric access method in this library — the
/// SPB-tree and the competitors it is evaluated against (M-tree, OmniR-tree,
/// M-Index). The benchmark harness drives all MAMs through this interface so
/// costs are measured identically.
class MetricIndex {
 public:
  virtual ~MetricIndex() = default;

  /// Inserts one object (the Table 7 update operation).
  virtual Status Insert(const Blob& obj, ObjectId id) = 0;

  /// Inserts a batch of objects (objs[i] gets ids[i]). Indexes with a
  /// publication step may amortize it across the batch; the default simply
  /// loops Insert. Requires objs.size() == ids.size().
  virtual Status BatchInsert(const std::vector<Blob>& objs,
                             const std::vector<ObjectId>& ids) {
    if (objs.size() != ids.size()) {
      return Status::InvalidArgument("BatchInsert: objs/ids size mismatch");
    }
    for (size_t i = 0; i < objs.size(); ++i) {
      SPB_RETURN_IF_ERROR(Insert(objs[i], ids[i]));
    }
    return Status::OK();
  }

  /// Removes the object with the given payload and id; `*found` reports
  /// whether it was present. Baselines without a delete path return
  /// Status::Unimplemented — the harness skips the operation rather than
  /// downcasting to find out who supports it.
  virtual Status Delete(const Blob& obj, ObjectId id, bool* found) {
    (void)obj;
    (void)id;
    (void)found;
    return Status::Unimplemented(name() + " does not support Delete");
  }

  /// RQ(q, O, r).
  virtual Status RangeQuery(const Blob& q, double r,
                            std::vector<ObjectId>* result,
                            QueryStats* stats) = 0;

  /// kNN(q, k), sorted by ascending distance.
  virtual Status KnnQuery(const Blob& q, size_t k,
                          std::vector<Neighbor>* result,
                          QueryStats* stats) = 0;

  /// Total storage footprint in bytes (index + separately stored objects).
  virtual uint64_t storage_bytes() const = 0;

  /// Page accesses + distance computations accumulated since the last
  /// ResetCounters(); used for construction and update cost accounting.
  virtual QueryStats cumulative_stats() const = 0;
  virtual void ResetCounters() = 0;

  /// Aggregate I/O counters (logical reads/writes/hits plus the I/O
  /// engine's physical_reads / prefetch / coalescing stats) since the last
  /// ResetCounters(). Indexes without instrumented storage return zeros.
  virtual IoStats io_stats() const { return IoStats{}; }

  /// The one stats surface (PR 10): everything the index can report in a
  /// single plain-value snapshot — the paper's cost counters, the I/O
  /// engine's, and (where the index has them) WAL / commit-queue / learned
  /// locator / planner counters, with per-shard drill-down for sharded
  /// indexes. This is what `spb_cli stats` prints and what the wire
  /// protocol's STATS op serializes. The base implementation fills the
  /// sections every MetricIndex has; SpbTree and ShardedSpbTree override to
  /// add theirs.
  virtual StatsSnapshot CollectStats() const {
    StatsSnapshot s;
    s.name = name();
    s.storage_bytes = storage_bytes();
    const QueryStats q = cumulative_stats();
    s.page_accesses = q.page_accesses;
    s.distance_computations = q.distance_computations;
    s.SetIoStats(io_stats());
    return s;
  }

  /// Drops LRU caches (done before each measured query, as in the paper).
  virtual void FlushCaches() = 0;

  /// How many Insert/Delete operations can make progress concurrently
  /// before the index starts reporting Status::Busy to the extras. 1 for
  /// single-writer indexes (the SPB-tree's writer try-lock); S for the
  /// sharded SPB-tree, whose writers only contend within one SFC key-range
  /// shard. QueryExecutor uses this to decide between serializing writes
  /// behind one mutex (== 1) and dispatching them concurrently with
  /// retry-on-Busy (> 1).
  virtual size_t writer_concurrency() const { return 1; }

  virtual std::string name() const = 0;
};

}  // namespace spb

#endif  // SPB_CORE_METRIC_INDEX_H_
