#ifndef SPB_CORE_MAPPED_SPACE_H_
#define SPB_CORE_MAPPED_SPACE_H_

#include <memory>
#include <vector>

#include "common/blob.h"
#include "metrics/discretizer.h"
#include "metrics/distance.h"
#include "pivots/pivot_table.h"
#include "sfc/sfc.h"

namespace spb {

/// The geometry of the SPB-tree's two-stage mapping (Fig. 1): pivot table
/// (metric space -> vector space), delta-discretizer (vector space -> cell
/// grid) and space-filling curve (cell grid -> SFC keys). All pruning
/// arithmetic used by the query, join and cost-model code lives here so that
/// every lemma is implemented exactly once.
class MappedSpace {
 public:
  /// Builds the mapping for `pivots` over `metric`. `delta` is the paper's
  /// delta parameter for continuous metrics (ignored for discrete ones).
  /// Bits per SFC dimension are auto-derived from d+/delta and clamped so
  /// keys fit 64 bits; if clamped, delta is coarsened accordingly (the grid
  /// only ever gets coarser — pruning stays safe, collisions just rise).
  MappedSpace(PivotTable pivots, const DistanceFunction& metric, double delta,
              CurveType curve_type);

  const PivotTable& pivots() const { return pivots_; }
  const Discretizer& discretizer() const { return disc_; }
  const SpaceFillingCurve& curve() const { return *curve_; }
  size_t dims() const { return pivots_.size(); }

  /// phi(o): exact distances to the pivots (costs dims() distance calls).
  std::vector<double> Phi(const Blob& o, const DistanceFunction& metric) const {
    return pivots_.Map(o, metric);
  }

  /// Cell coordinates of a mapped vector.
  std::vector<uint32_t> ToCells(const std::vector<double>& phi) const {
    std::vector<uint32_t> cells(phi.size());
    for (size_t i = 0; i < phi.size(); ++i) cells[i] = disc_.ToCell(phi[i]);
    return cells;
  }

  /// SFC key of an object (the B+-tree key).
  uint64_t KeyFor(const std::vector<double>& phi) const {
    return curve_->Encode(ToCells(phi));
  }

  /// Same, from a raw row of a PivotTable::MapBatch() buffer.
  uint64_t KeyFor(const double* phi, size_t n) const {
    std::vector<uint32_t> cells(n);
    for (size_t i = 0; i < n; ++i) cells[i] = disc_.ToCell(phi[i]);
    return curve_->Encode(cells);
  }

  /// A batch of decoded cells in structure-of-arrays layout: `cells[d *
  /// count + i]` is dimension d of entry i, so the per-dimension sweeps of
  /// the batch lemma checks stream over contiguous memory (and
  /// auto-vectorize). Filled by DecodeKeys(); reuse one instance across
  /// leaves to amortize the allocations.
  struct CellBlock {
    size_t count = 0;
    size_t dims = 0;
    std::vector<uint32_t> cells;    // dims * count entries, dimension-major
    std::vector<uint32_t> scratch;  // count words, batch-decode scratch row

    uint32_t At(size_t d, size_t i) const { return cells[d * count + i]; }
  };

  /// Decodes `count` SFC keys (one leaf's worth) into `block`.
  void DecodeKeys(const uint64_t* keys, size_t count, CellBlock* block) const;

  /// Batch Lemma 1: out[i] != 0 iff entry i's cell lies in [lo, hi].
  /// Bit-for-bit equivalent to calling CellInBox per entry.
  static void BatchCellInBox(const CellBlock& block,
                             const std::vector<uint32_t>& lo,
                             const std::vector<uint32_t>& hi,
                             std::vector<uint8_t>* out);

  /// Batch MIND(q, cell): out[i] = LowerBoundToCell(phi_q, cell_i), bit-
  /// identical to the scalar loop (the branchless max(lo-q, q-hi, 0) form
  /// evaluates the exact same subtraction in every case).
  void BatchLowerBoundToCell(const CellBlock& block,
                             const std::vector<double>& phi_q,
                             std::vector<double>* out) const;

  /// Batch Lemma 2: out[i] != 0 iff GuaranteedWithin(phi_q, cell_i, r).
  void BatchGuaranteedWithin(const CellBlock& block,
                             const std::vector<double>& phi_q, double r,
                             std::vector<uint8_t>* out) const;

  /// The mapped range region RR(q, r) (Lemma 1) as an inclusive cell box.
  /// Always non-empty for r >= 0.
  void RangeRegion(const std::vector<double>& phi_q, double r,
                   std::vector<uint32_t>* lo, std::vector<uint32_t>* hi) const;

  /// True iff `cell` lies inside the inclusive box [lo, hi].
  static bool CellInBox(const std::vector<uint32_t>& cell,
                        const std::vector<uint32_t>& lo,
                        const std::vector<uint32_t>& hi);

  /// True iff boxes [alo, ahi] and [blo, bhi] intersect.
  static bool BoxesIntersect(const std::vector<uint32_t>& alo,
                             const std::vector<uint32_t>& ahi,
                             const std::vector<uint32_t>& blo,
                             const std::vector<uint32_t>& bhi);

  /// True iff box [ilo, ihi] is contained in box [olo, ohi].
  static bool BoxContains(const std::vector<uint32_t>& olo,
                          const std::vector<uint32_t>& ohi,
                          const std::vector<uint32_t>& ilo,
                          const std::vector<uint32_t>& ihi);

  /// Intersection of two boxes; returns false if empty.
  static bool IntersectBoxes(const std::vector<uint32_t>& alo,
                             const std::vector<uint32_t>& ahi,
                             const std::vector<uint32_t>& blo,
                             const std::vector<uint32_t>& bhi,
                             std::vector<uint32_t>* lo,
                             std::vector<uint32_t>* hi);

  /// MIND(q, cell): lower bound of d(q, o) for an object whose mapped vector
  /// falls in `cell`, given exact phi(q). This is D(phi(q), phi(o)) computed
  /// from cell intervals — never exceeds the true distance.
  double LowerBoundToCell(const std::vector<double>& phi_q,
                          const std::vector<uint32_t>& cell) const;

  /// MIND(q, E): lower bound of d(q, o) over all objects mapped inside the
  /// MBB box [lo, hi] (Lemma 3's pruning distance).
  double LowerBoundToBox(const std::vector<double>& phi_q,
                         const std::vector<uint32_t>& lo,
                         const std::vector<uint32_t>& hi) const;

  /// Lemma 2: true when an object in `cell` is guaranteed to be within
  /// distance r of q — some pivot p_i has d(o,p_i) <= r - d(q,p_i) — so the
  /// distance computation d(q, o) can be skipped entirely.
  bool GuaranteedWithin(const std::vector<double>& phi_q,
                        const std::vector<uint32_t>& cell, double r) const;

  /// Raw-pointer forms of the box predicates (each corner is `dims`
  /// coordinates). The decoded-node cache stores internal-entry MBB corners
  /// entry-major (bptree/node_cache.h), so warm traversals call these
  /// directly on cached corner rows without materializing vectors; the
  /// vector overloads above forward here.
  static bool BoxesIntersect(const uint32_t* alo, const uint32_t* ahi,
                             const uint32_t* blo, const uint32_t* bhi,
                             size_t dims);
  static bool BoxContains(const uint32_t* olo, const uint32_t* ohi,
                          const uint32_t* ilo, const uint32_t* ihi,
                          size_t dims);
  static bool IntersectBoxes(const uint32_t* alo, const uint32_t* ahi,
                             const uint32_t* blo, const uint32_t* bhi,
                             size_t dims, std::vector<uint32_t>* lo,
                             std::vector<uint32_t>* hi);
  double LowerBoundToBox(const std::vector<double>& phi_q, const uint32_t* lo,
                         const uint32_t* hi) const;

 private:
  PivotTable pivots_;
  Discretizer disc_;
  std::unique_ptr<SpaceFillingCurve> curve_;
};

/// Derives the per-dimension SFC bit width for `num_pivots` dimensions and a
/// grid of `num_cells` cells, clamped so num_pivots * bits <= 64.
int SfcBitsFor(size_t num_pivots, uint32_t num_cells);

}  // namespace spb

#endif  // SPB_CORE_MAPPED_SPACE_H_
